//! # mm-data
//!
//! Data vectors, synthetic datasets and the relative-error evaluation harness.
//!
//! The paper's relative-error experiments (Figs. 3(b), 3(d), Table 2) use the
//! US-Census (IPUMS) and UCI Adult datasets, which are not redistributable
//! here; [`synthetic`] provides seeded generators that produce histograms of
//! the same shape, scale and skew (see `DESIGN.md` for the substitution
//! argument).  [`relative_error`] runs the matrix mechanism end to end on a
//! data vector and measures the average relative error of the workload
//! answers, exactly as the experiments require.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod data_vector;
pub mod relative_error;
pub mod synthetic;

pub use data_vector::DataVector;
pub use synthetic::{adult_like, census_like, SyntheticDataset};
