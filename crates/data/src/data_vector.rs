//! Data vectors: per-cell counts over a domain (Def. 1).

use mm_workload::Domain;

/// A data vector `x` of nonnegative cell counts over a [`Domain`].
#[derive(Debug, Clone)]
pub struct DataVector {
    domain: Domain,
    counts: Vec<f64>,
}

impl DataVector {
    /// Creates a data vector from explicit counts (must match the domain size
    /// and be nonnegative and finite).
    pub fn new(domain: Domain, counts: Vec<f64>) -> Self {
        assert_eq!(
            counts.len(),
            domain.n_cells(),
            "count vector length must equal the number of cells"
        );
        assert!(
            counts.iter().all(|&c| c >= 0.0 && c.is_finite()),
            "cell counts must be nonnegative and finite"
        );
        DataVector { domain, counts }
    }

    /// An all-zero data vector.
    pub fn zeros(domain: Domain) -> Self {
        let n = domain.n_cells();
        DataVector {
            domain,
            counts: vec![0.0; n],
        }
    }

    /// Builds a data vector by counting tuples (given as multi-indices).
    pub fn from_tuples<'a>(domain: Domain, tuples: impl IntoIterator<Item = &'a [usize]>) -> Self {
        let mut v = DataVector::zeros(domain);
        for t in tuples {
            let idx = v.domain.index_of(t);
            v.counts[idx] += 1.0;
        }
        v
    }

    /// The underlying domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// The cell counts.
    pub fn counts(&self) -> &[f64] {
        &self.counts
    }

    /// Mutable access to the cell counts.
    pub fn counts_mut(&mut self) -> &mut [f64] {
        &mut self.counts
    }

    /// Number of cells.
    pub fn n_cells(&self) -> usize {
        self.counts.len()
    }

    /// Total number of tuples (sum of counts).
    pub fn total(&self) -> f64 {
        self.counts.iter().sum()
    }

    /// The count of a single cell by multi-index.
    pub fn count_at(&self, multi: &[usize]) -> f64 {
        self.counts[self.domain.index_of(multi)]
    }

    /// Increments the count of a cell by multi-index.
    pub fn add_tuple(&mut self, multi: &[usize]) {
        let idx = self.domain.index_of(multi);
        self.counts[idx] += 1.0;
    }

    /// Fraction of cells with zero count (sparsity).
    pub fn sparsity(&self) -> f64 {
        let zero = self.counts.iter().filter(|&&c| c == 0.0).count();
        zero as f64 / self.counts.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_totals() {
        let d = Domain::new(&[2, 3]);
        let v = DataVector::new(d, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(v.total(), 21.0);
        assert_eq!(v.n_cells(), 6);
        assert_eq!(v.count_at(&[1, 2]), 6.0);
        assert_eq!(v.sparsity(), 0.0);
    }

    #[test]
    fn from_tuples_counts_correctly() {
        let d = Domain::new(&[2, 2]);
        let tuples: Vec<Vec<usize>> = vec![vec![0, 0], vec![0, 0], vec![1, 1]];
        let refs: Vec<&[usize]> = tuples.iter().map(|t| t.as_slice()).collect();
        let v = DataVector::from_tuples(d, refs);
        assert_eq!(v.counts(), &[2.0, 0.0, 0.0, 1.0]);
        assert_eq!(v.sparsity(), 0.5);
    }

    #[test]
    fn add_tuple_increments() {
        let mut v = DataVector::zeros(Domain::new(&[3]));
        v.add_tuple(&[1]);
        v.add_tuple(&[1]);
        assert_eq!(v.counts(), &[0.0, 2.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "length must equal")]
    fn wrong_length_panics() {
        DataVector::new(Domain::new(&[2, 2]), vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_count_panics() {
        DataVector::new(Domain::new(&[2]), vec![-1.0, 0.0]);
    }
}
