//! Monte-Carlo relative-error evaluation harness.
//!
//! Workload error (Prop. 4) is data independent, but *relative* error is not:
//! it depends on the magnitudes of the true answers.  The experiments of
//! Figs. 3(b)/3(d) therefore run the mechanism end to end on a data vector and
//! report the average relative error over all workload queries,
//!
//! ```text
//!     (1/m) Σ_i |ŵᵢ − wᵢ| / max(|wᵢ|, floor)
//! ```
//!
//! with a small floor (sanity bound) preventing division by zero on empty
//! queries, averaged over repeated noise draws.

use crate::data_vector::DataVector;
use mm_core::mechanism::MatrixMechanism;
use mm_core::PrivacyParams;
use mm_strategies::Strategy;
use mm_workload::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Options for the relative-error harness.
#[derive(Debug, Clone)]
pub struct RelativeErrorOptions {
    /// Number of independent mechanism runs to average over.
    pub trials: usize,
    /// Relative-error floor: denominators are `max(|true answer|, floor)`.
    pub floor: f64,
    /// RNG seed (results are deterministic given the seed).
    pub seed: u64,
}

impl Default for RelativeErrorOptions {
    fn default() -> Self {
        RelativeErrorOptions {
            trials: 5,
            floor: 1.0,
            seed: 0,
        }
    }
}

/// Summary statistics of a relative-error evaluation.
#[derive(Debug, Clone)]
pub struct RelativeErrorReport {
    /// Mean relative error over queries and trials.
    pub mean: f64,
    /// Median (over queries) of the per-query mean relative error.
    pub median: f64,
    /// Number of trials.
    pub trials: usize,
    /// Number of workload queries.
    pub queries: usize,
}

/// Evaluates the average relative error of answering `workload` on `data`
/// with the matrix mechanism configured with `strategy`.
pub fn average_relative_error<W: Workload + ?Sized>(
    workload: &W,
    strategy: &Strategy,
    data: &DataVector,
    privacy: &PrivacyParams,
    opts: &RelativeErrorOptions,
) -> mm_core::Result<RelativeErrorReport> {
    if opts.trials == 0 {
        return Err(mm_core::MechanismError::InvalidArgument(
            "at least one trial is required".into(),
        ));
    }
    let mechanism = MatrixMechanism::new(strategy.clone(), *privacy)?;
    let x = data.counts();
    let truth = workload.evaluate(x);
    let m = truth.len();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut per_query = vec![0.0; m];
    for _ in 0..opts.trials {
        let (answers, _) = mechanism.answer_workload(workload, x, &mut rng)?;
        for ((t, a), acc) in truth.iter().zip(answers.iter()).zip(per_query.iter_mut()) {
            *acc += (a - t).abs() / t.abs().max(opts.floor);
        }
    }
    for v in &mut per_query {
        *v /= opts.trials as f64;
    }
    let mean = per_query.iter().sum::<f64>() / m as f64;
    let mut sorted = per_query.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let median = if m % 2 == 1 {
        sorted[m / 2]
    } else {
        0.5 * (sorted[m / 2 - 1] + sorted[m / 2])
    };
    Ok(RelativeErrorReport {
        mean,
        median,
        trials: opts.trials,
        queries: m,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::synthetic_histogram;
    use mm_strategies::identity::identity_strategy;
    use mm_strategies::wavelet::wavelet_strategy;
    use mm_workload::range::AllRangeWorkload;
    use mm_workload::Domain;

    fn small_dataset() -> DataVector {
        synthetic_histogram(&Domain::new(&[8, 8]), 100_000.0, 1.0, 3, 1)
    }

    #[test]
    fn relative_error_decreases_with_epsilon() {
        let data = small_dataset();
        let w = AllRangeWorkload::new(data.domain().clone());
        let strategy = wavelet_strategy(data.domain());
        let opts = RelativeErrorOptions::default();
        let loose =
            average_relative_error(&w, &strategy, &data, &PrivacyParams::new(2.0, 1e-4), &opts)
                .unwrap();
        let tight =
            average_relative_error(&w, &strategy, &data, &PrivacyParams::new(0.1, 1e-4), &opts)
                .unwrap();
        assert!(
            tight.mean > loose.mean,
            "tight {} loose {}",
            tight.mean,
            loose.mean
        );
        assert_eq!(loose.queries, w.query_count());
    }

    #[test]
    fn wavelet_beats_identity_on_ranges() {
        let data = small_dataset();
        let w = AllRangeWorkload::new(data.domain().clone());
        let p = PrivacyParams::new(0.5, 1e-4);
        let opts = RelativeErrorOptions {
            trials: 3,
            ..Default::default()
        };
        let wav =
            average_relative_error(&w, &wavelet_strategy(data.domain()), &data, &p, &opts).unwrap();
        let id = average_relative_error(&w, &identity_strategy(64), &data, &p, &opts).unwrap();
        assert!(
            wav.mean < id.mean,
            "wavelet {} vs identity {}",
            wav.mean,
            id.mean
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let data = small_dataset();
        let w = AllRangeWorkload::new(data.domain().clone());
        let p = PrivacyParams::new(0.5, 1e-4);
        let opts = RelativeErrorOptions {
            trials: 2,
            ..Default::default()
        };
        let s = wavelet_strategy(data.domain());
        let a = average_relative_error(&w, &s, &data, &p, &opts).unwrap();
        let b = average_relative_error(&w, &s, &data, &p, &opts).unwrap();
        assert_eq!(a.mean, b.mean);
        assert_eq!(a.median, b.median);
    }

    #[test]
    fn zero_trials_rejected() {
        let data = small_dataset();
        let w = AllRangeWorkload::new(data.domain().clone());
        let p = PrivacyParams::new(0.5, 1e-4);
        let opts = RelativeErrorOptions {
            trials: 0,
            ..Default::default()
        };
        assert!(average_relative_error(&w, &identity_strategy(64), &data, &p, &opts).is_err());
    }
}
