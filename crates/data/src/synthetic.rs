//! Synthetic datasets standing in for the paper's evaluation data.
//!
//! Table 1 of the paper:
//!
//! | Dataset   | Dimensions    | # Tuples |
//! |-----------|---------------|----------|
//! | US Census | 8 × 16 × 16   | 15 M     |
//! | Adult     | 8 × 8 × 16 × 2| 33 K     |
//!
//! We cannot redistribute IPUMS or UCI data, so [`census_like`] and
//! [`adult_like`] generate histograms with the same domain shape and total
//! count, heavy-tailed (Zipf-like) per-attribute marginals and positive
//! inter-attribute correlation — the properties relative error actually
//! depends on.  Generation samples cell *probabilities* (a correlated
//! product-form mixture) and then distributes the tuple mass multinomially,
//! so results are deterministic given the seed.

use crate::data_vector::DataVector;
use mm_workload::Domain;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A synthetic dataset: a data vector plus descriptive metadata.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// Short name used in reports ("census-like", "adult-like").
    pub name: String,
    /// The generated data vector.
    pub data: DataVector,
}

/// Per-attribute Zipf-like probability vector with exponent `s`, randomly
/// permuted so that the heavy buckets are not always the first ones.
fn zipf_weights<R: Rng + ?Sized>(d: usize, s: f64, rng: &mut R) -> Vec<f64> {
    let mut w: Vec<f64> = (1..=d).map(|r| 1.0 / (r as f64).powf(s)).collect();
    // Fisher–Yates shuffle.
    for i in (1..d).rev() {
        let j = rng.gen_range(0..=i);
        w.swap(i, j);
    }
    let total: f64 = w.iter().sum();
    w.iter_mut().for_each(|x| *x /= total);
    w
}

/// Generates a skewed, correlated histogram over `domain` with roughly
/// `total_tuples` tuples, deterministically from `seed`.
///
/// The cell distribution is a mixture of `num_components` product
/// distributions, each with Zipf-like per-attribute marginals; the mixture
/// induces correlation between attributes (a single product distribution
/// would make all attributes independent).
pub fn synthetic_histogram(
    domain: &Domain,
    total_tuples: f64,
    skew: f64,
    num_components: usize,
    seed: u64,
) -> DataVector {
    assert!(total_tuples > 0.0 && total_tuples.is_finite());
    assert!(num_components > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let k = domain.num_attributes();
    let n = domain.n_cells();

    // Mixture weights.
    let mut mix: Vec<f64> = (0..num_components)
        .map(|_| rng.gen_range(0.2..1.0))
        .collect();
    let mix_total: f64 = mix.iter().sum();
    mix.iter_mut().for_each(|x| *x /= mix_total);

    // Per-component, per-attribute marginals.
    let components: Vec<Vec<Vec<f64>>> = (0..num_components)
        .map(|_| {
            (0..k)
                .map(|a| zipf_weights(domain.size(a), skew, &mut rng))
                .collect()
        })
        .collect();

    // Cell probabilities.
    let mut probs = vec![0.0; n];
    for (idx, p) in probs.iter_mut().enumerate() {
        let multi = domain.multi_index(idx);
        for (c, weights) in components.iter().enumerate() {
            let mut prod = mix[c];
            for (a, &v) in multi.iter().enumerate() {
                prod *= weights[a][v];
            }
            *p += prod;
        }
    }

    // Distribute the tuple mass: expected count plus a small stochastic
    // remainder so counts are integral.
    let mut counts = vec![0.0; n];
    let mut allocated = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        let expected = p * total_tuples;
        let floor = expected.floor();
        counts[i] = floor;
        allocated += floor;
    }
    let mut remaining = (total_tuples - allocated).round() as i64;
    while remaining > 0 {
        // Assign leftover tuples to cells proportionally to their probability.
        let r: f64 = rng.gen_range(0.0..1.0);
        let mut acc = 0.0;
        for (i, &p) in probs.iter().enumerate() {
            acc += p;
            if r <= acc {
                counts[i] += 1.0;
                break;
            }
        }
        remaining -= 1;
    }
    DataVector::new(domain.clone(), counts)
}

/// The census-like dataset: domain 8 × 16 × 16 (age × occupation × income
/// buckets), ≈ 15 million tuples.
pub fn census_like(seed: u64) -> SyntheticDataset {
    let domain = Domain::new(&[8, 16, 16]);
    SyntheticDataset {
        name: "census-like".to_string(),
        data: synthetic_histogram(&domain, 15_000_000.0, 1.1, 4, seed),
    }
}

/// The adult-like dataset: domain 8 × 8 × 16 × 2 (age × work × education ×
/// income), ≈ 33 thousand (weight-aggregated) tuples.
pub fn adult_like(seed: u64) -> SyntheticDataset {
    let domain = Domain::new(&[8, 8, 16, 2]);
    SyntheticDataset {
        name: "adult-like".to_string(),
        data: synthetic_histogram(&domain, 33_000.0, 1.0, 3, seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_like_shape_and_scale() {
        let ds = census_like(7);
        assert_eq!(ds.data.domain().sizes(), &[8, 16, 16]);
        assert_eq!(ds.data.n_cells(), 2048);
        let total = ds.data.total();
        assert!(
            (total - 15_000_000.0).abs() / 15_000_000.0 < 0.01,
            "total {total}"
        );
    }

    #[test]
    fn adult_like_shape_and_scale() {
        let ds = adult_like(7);
        assert_eq!(ds.data.domain().sizes(), &[8, 8, 16, 2]);
        let total = ds.data.total();
        assert!((total - 33_000.0).abs() / 33_000.0 < 0.05, "total {total}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = census_like(3);
        let b = census_like(3);
        assert_eq!(a.data.counts(), b.data.counts());
        let c = census_like(4);
        assert_ne!(a.data.counts(), c.data.counts());
    }

    #[test]
    fn histogram_is_skewed() {
        // Heavy-tailed: the largest cell should hold far more than the mean.
        let ds = census_like(11);
        let counts = ds.data.counts();
        let mean = ds.data.total() / counts.len() as f64;
        let max = counts.iter().fold(0.0_f64, |m, &c| m.max(c));
        assert!(max > 5.0 * mean, "max {max} vs mean {mean}");
    }

    #[test]
    fn attributes_are_correlated() {
        // The mixture construction induces correlation: the joint distribution
        // should differ from the product of its marginals.
        let d = Domain::new(&[4, 4]);
        let v = synthetic_histogram(&d, 100_000.0, 1.0, 3, 5);
        let total = v.total();
        // Marginals.
        let mut m0 = [0.0; 4];
        let mut m1 = [0.0; 4];
        for (i, m0i) in m0.iter_mut().enumerate() {
            for (j, m1j) in m1.iter_mut().enumerate() {
                let c = v.counts()[i * 4 + j];
                *m0i += c;
                *m1j += c;
            }
        }
        let mut max_dev: f64 = 0.0;
        for (i, &m0i) in m0.iter().enumerate() {
            for (j, &m1j) in m1.iter().enumerate() {
                let joint = v.counts()[i * 4 + j] / total;
                let indep = (m0i / total) * (m1j / total);
                max_dev = max_dev.max((joint - indep).abs());
            }
        }
        assert!(
            max_dev > 1e-3,
            "joint should deviate from independence, dev = {max_dev}"
        );
    }

    #[test]
    fn counts_are_integral() {
        let d = Domain::new(&[5, 5]);
        let v = synthetic_histogram(&d, 1000.0, 1.2, 2, 9);
        assert!(v.counts().iter().all(|c| c.fract() == 0.0));
        assert!((v.total() - 1000.0).abs() <= 25.0);
    }
}
