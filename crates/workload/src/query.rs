//! Sparse linear counting queries.
//!
//! A linear query (Def. 2) is a length-`n` row vector; most counting queries
//! of interest (cells, ranges, marginals, predicates) are sparse and 0/1
//! valued, so queries are stored as sorted `(cell, coefficient)` pairs.

use crate::domain::Domain;
use mm_linalg::Matrix;

/// A single linear counting query over an `n`-cell data vector, stored sparsely.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearQuery {
    dim: usize,
    /// `(cell index, coefficient)` pairs sorted by cell index with no duplicates.
    entries: Vec<(usize, f64)>,
}

impl LinearQuery {
    /// Creates a query from unsorted `(cell, coefficient)` pairs.
    ///
    /// Duplicate cells are summed; zero coefficients are dropped.
    /// Panics when a cell index is out of bounds.
    pub fn new(dim: usize, mut entries: Vec<(usize, f64)>) -> Self {
        for &(i, _) in &entries {
            assert!(i < dim, "cell index {i} out of bounds for dimension {dim}");
        }
        entries.sort_by_key(|&(i, _)| i);
        let mut merged: Vec<(usize, f64)> = Vec::with_capacity(entries.len());
        for (i, v) in entries {
            match merged.last_mut() {
                Some((j, acc)) if *j == i => *acc += v,
                _ => merged.push((i, v)),
            }
        }
        merged.retain(|&(_, v)| v != 0.0);
        LinearQuery {
            dim,
            entries: merged,
        }
    }

    /// Creates a query from a dense coefficient vector.
    pub fn from_dense(coeffs: &[f64]) -> Self {
        let entries = coeffs
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0.0)
            .map(|(i, &v)| (i, v))
            .collect();
        LinearQuery {
            dim: coeffs.len(),
            entries,
        }
    }

    /// The query counting a single cell.
    pub fn cell(dim: usize, index: usize) -> Self {
        LinearQuery::new(dim, vec![(index, 1.0)])
    }

    /// The total query (all coefficients 1).
    pub fn total(dim: usize) -> Self {
        LinearQuery {
            dim,
            entries: (0..dim).map(|i| (i, 1.0)).collect(),
        }
    }

    /// A one-dimensional range query counting cells `lo..=hi`.
    pub fn range_1d(dim: usize, lo: usize, hi: usize) -> Self {
        assert!(
            lo <= hi && hi < dim,
            "invalid range [{lo}, {hi}] for dimension {dim}"
        );
        LinearQuery {
            dim,
            entries: (lo..=hi).map(|i| (i, 1.0)).collect(),
        }
    }

    /// A multi-dimensional (hyper-rectangle) range query over `domain`
    /// counting every cell whose multi-index lies within `lows..=highs`.
    pub fn range(domain: &Domain, lows: &[usize], highs: &[usize]) -> Self {
        assert_eq!(lows.len(), domain.num_attributes());
        assert_eq!(highs.len(), domain.num_attributes());
        for a in 0..domain.num_attributes() {
            assert!(
                lows[a] <= highs[a] && highs[a] < domain.size(a),
                "invalid range on attribute {a}"
            );
        }
        let mut entries = Vec::new();
        let mut current = lows.to_vec();
        loop {
            entries.push((domain.index_of(&current), 1.0));
            // Advance the odometer.
            let mut a = domain.num_attributes();
            loop {
                if a == 0 {
                    return LinearQuery {
                        dim: domain.n_cells(),
                        entries: {
                            entries.sort_by_key(|&(i, _)| i);
                            entries
                        },
                    };
                }
                a -= 1;
                if current[a] < highs[a] {
                    current[a] += 1;
                    let tail = (a + 1)..domain.num_attributes();
                    current[tail.clone()].copy_from_slice(&lows[tail]);
                    break;
                }
            }
        }
    }

    /// A predicate query from a boolean membership vector.
    pub fn predicate(members: &[bool]) -> Self {
        let entries = members
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| (i, 1.0))
            .collect();
        LinearQuery {
            dim: members.len(),
            entries,
        }
    }

    /// Dimension `n` of the data vector this query applies to.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of nonzero coefficients.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// The sparse `(cell, coefficient)` entries, sorted by cell.
    pub fn entries(&self) -> &[(usize, f64)] {
        &self.entries
    }

    /// Evaluates the query on a data vector: `q · x`.
    pub fn evaluate(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dim, "data vector length mismatch");
        self.entries.iter().map(|&(i, v)| v * x[i]).sum()
    }

    /// Dense coefficient vector of length `dim`.
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.dim];
        for &(i, v) in &self.entries {
            out[i] = v;
        }
        out
    }

    /// L2 norm of the coefficient vector.
    pub fn l2_norm(&self) -> f64 {
        self.entries.iter().map(|&(_, v)| v * v).sum::<f64>().sqrt()
    }

    /// L1 norm of the coefficient vector.
    pub fn l1_norm(&self) -> f64 {
        self.entries.iter().map(|&(_, v)| v.abs()).sum()
    }

    /// Returns the query with every coefficient multiplied by `s`.
    pub fn scaled(&self, s: f64) -> Self {
        LinearQuery {
            dim: self.dim,
            entries: self.entries.iter().map(|&(i, v)| (i, v * s)).collect(),
        }
    }

    /// Returns the query normalised to unit L2 norm (unchanged if zero).
    pub fn normalized(&self) -> Self {
        let n = self.l2_norm();
        if n == 0.0 {
            self.clone()
        } else {
            self.scaled(1.0 / n)
        }
    }
}

/// Builds a dense query matrix from a slice of queries (all with equal `dim`).
pub fn queries_to_matrix(queries: &[LinearQuery]) -> Matrix {
    if queries.is_empty() {
        return Matrix::zeros(0, 0);
    }
    let dim = queries[0].dim();
    let mut m = Matrix::zeros(queries.len(), dim);
    for (r, q) in queries.iter().enumerate() {
        assert_eq!(q.dim(), dim, "inconsistent query dimensions");
        let row = m.row_mut(r);
        for &(i, v) in q.entries() {
            row[i] = v;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_linalg::approx_eq;

    #[test]
    fn cell_and_total() {
        let c = LinearQuery::cell(4, 2);
        assert_eq!(c.to_dense(), vec![0.0, 0.0, 1.0, 0.0]);
        let t = LinearQuery::total(3);
        assert_eq!(t.nnz(), 3);
        assert_eq!(t.evaluate(&[1.0, 2.0, 3.0]), 6.0);
    }

    #[test]
    fn duplicates_merged_and_zeros_dropped() {
        let q = LinearQuery::new(5, vec![(1, 1.0), (1, 2.0), (3, 0.0), (0, -1.0)]);
        assert_eq!(q.entries(), &[(0, -1.0), (1, 3.0)]);
        assert_eq!(q.nnz(), 2);
    }

    #[test]
    fn range_1d_query() {
        let q = LinearQuery::range_1d(6, 2, 4);
        assert_eq!(q.to_dense(), vec![0.0, 0.0, 1.0, 1.0, 1.0, 0.0]);
        assert!(approx_eq(q.l2_norm(), 3.0_f64.sqrt(), 1e-12));
        assert_eq!(q.l1_norm(), 3.0);
    }

    #[test]
    fn multi_dim_range_query() {
        let d = Domain::new(&[3, 4]);
        let q = LinearQuery::range(&d, &[1, 1], &[2, 2]);
        // Covers cells (1,1),(1,2),(2,1),(2,2) -> flat 5,6,9,10.
        let cells: Vec<usize> = q.entries().iter().map(|&(i, _)| i).collect();
        assert_eq!(cells, vec![5, 6, 9, 10]);
    }

    #[test]
    fn full_range_equals_total() {
        let d = Domain::new(&[2, 3]);
        let q = LinearQuery::range(&d, &[0, 0], &[1, 2]);
        assert_eq!(q.to_dense(), LinearQuery::total(6).to_dense());
    }

    #[test]
    fn predicate_query() {
        let q = LinearQuery::predicate(&[true, false, true]);
        assert_eq!(q.to_dense(), vec![1.0, 0.0, 1.0]);
    }

    #[test]
    fn from_dense_roundtrip() {
        let dense = vec![0.0, 2.0, 0.0, -1.5];
        let q = LinearQuery::from_dense(&dense);
        assert_eq!(q.to_dense(), dense);
        assert_eq!(q.nnz(), 2);
    }

    #[test]
    fn scaling_and_normalization() {
        let q = LinearQuery::range_1d(4, 0, 3);
        let s = q.scaled(2.0);
        assert_eq!(s.evaluate(&[1.0; 4]), 8.0);
        let n = q.normalized();
        assert!(approx_eq(n.l2_norm(), 1.0, 1e-12));
        let zero = LinearQuery::new(4, vec![]);
        assert_eq!(zero.normalized().nnz(), 0);
    }

    #[test]
    fn queries_to_matrix_layout() {
        let qs = vec![LinearQuery::cell(3, 0), LinearQuery::range_1d(3, 1, 2)];
        let m = queries_to_matrix(&qs);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 1)], 1.0);
        assert_eq!(m[(1, 2)], 1.0);
        assert_eq!(queries_to_matrix(&[]).shape(), (0, 0));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_entry_panics() {
        LinearQuery::new(3, vec![(3, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn invalid_range_panics() {
        LinearQuery::range_1d(4, 3, 1);
    }
}
