//! Unions of workloads.
//!
//! Ad hoc workloads (Sec. 1, Sec. 5.1) arise from combining the queries of
//! several users or specialising larger workloads; a [`UnionWorkload`] simply
//! concatenates the queries of its parts, so its gram matrix is the sum of the
//! parts' gram matrices.

use crate::Workload;
use mm_linalg::Matrix;

/// The union (concatenation) of several workloads over the same cells.
pub struct UnionWorkload {
    parts: Vec<Box<dyn Workload + Send + Sync>>,
    name: String,
}

impl UnionWorkload {
    /// Creates a union from boxed parts. Panics when the parts are empty or
    /// disagree on the number of cells.
    pub fn new(name: impl Into<String>, parts: Vec<Box<dyn Workload + Send + Sync>>) -> Self {
        assert!(!parts.is_empty(), "union needs at least one part");
        let dim = parts[0].dim();
        assert!(
            parts.iter().all(|p| p.dim() == dim),
            "all parts must share the same number of cells"
        );
        UnionWorkload {
            parts,
            name: name.into(),
        }
    }

    /// The parts of the union.
    pub fn parts(&self) -> &[Box<dyn Workload + Send + Sync>] {
        &self.parts
    }
}

impl Workload for UnionWorkload {
    fn dim(&self) -> usize {
        self.parts[0].dim()
    }

    fn query_count(&self) -> usize {
        self.parts.iter().map(|p| p.query_count()).sum()
    }

    fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.dim(), self.dim());
        for p in &self.parts {
            g += &p.gram();
        }
        g
    }

    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.query_count());
        for p in &self.parts {
            out.extend(p.evaluate(x));
        }
        out
    }

    fn description(&self) -> String {
        format!("union `{}` of {} workloads", self.name, self.parts.len())
    }

    fn query_squared_norms(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.query_count());
        for p in &self.parts {
            out.extend(p.query_squared_norms());
        }
        out
    }

    fn to_matrix(&self) -> Option<Matrix> {
        let mut acc: Option<Matrix> = None;
        for p in &self.parts {
            let m = p.to_matrix()?;
            acc = Some(match acc {
                None => m,
                Some(a) => a.vstack(&m).ok()?,
            });
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::{gram_consistent, IdentityWorkload, TotalWorkload};
    use crate::prefix::PrefixWorkload;
    use mm_linalg::approx_eq;

    fn union_of_three() -> UnionWorkload {
        UnionWorkload::new(
            "mixed",
            vec![
                Box::new(IdentityWorkload::new(4)),
                Box::new(TotalWorkload::new(4)),
                Box::new(PrefixWorkload::new(4)),
            ],
        )
    }

    #[test]
    fn counts_and_dims() {
        let u = union_of_three();
        assert_eq!(u.dim(), 4);
        assert_eq!(u.query_count(), 4 + 1 + 4);
        assert_eq!(u.parts().len(), 3);
    }

    #[test]
    fn gram_is_sum_of_parts() {
        let u = union_of_three();
        let g = u.gram();
        let expected = &(&IdentityWorkload::new(4).gram() + &TotalWorkload::new(4).gram())
            + &PrefixWorkload::new(4).gram();
        for i in 0..4 {
            for j in 0..4 {
                assert!(approx_eq(g[(i, j)], expected[(i, j)], 1e-12));
            }
        }
        assert!(gram_consistent(&u, 1e-10));
    }

    #[test]
    fn evaluate_concatenates() {
        let u = union_of_three();
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = u.evaluate(&x);
        assert_eq!(y.len(), 9);
        assert_eq!(&y[0..4], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(y[4], 10.0);
        assert_eq!(&y[5..9], &[1.0, 3.0, 6.0, 10.0]);
    }

    #[test]
    fn norms_concatenate() {
        let u = union_of_three();
        let norms = u.query_squared_norms();
        assert_eq!(norms.len(), 9);
        assert_eq!(norms[4], 4.0);
    }

    #[test]
    #[should_panic(expected = "same number of cells")]
    fn mismatched_dims_panic() {
        UnionWorkload::new(
            "bad",
            vec![
                Box::new(IdentityWorkload::new(3)),
                Box::new(IdentityWorkload::new(4)),
            ],
        );
    }
}
