//! The one-dimensional CDF (prefix-sum) workload.
//!
//! Query `k` of the workload counts cells `0..=k`, so the answers form the
//! empirical cumulative distribution function.  The paper (Table 2) uses this
//! as an example of a highly skewed workload: the first cell appears in all
//! `n` queries while the last appears in only one, and it is the one workload
//! on which the eigen-strategy's advantage over prior techniques is marginal.

use crate::Workload;
use mm_linalg::Matrix;

/// The workload of all prefix (CDF) queries over `n` ordered cells.
#[derive(Debug, Clone)]
pub struct PrefixWorkload {
    dim: usize,
    normalized: bool,
}

impl PrefixWorkload {
    /// All `n` prefix queries over `n` cells.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "prefix workload needs at least one cell");
        PrefixWorkload {
            dim: n,
            normalized: false,
        }
    }

    /// Prefix queries scaled to unit L2 norm.
    pub fn normalized(n: usize) -> Self {
        assert!(n > 0, "prefix workload needs at least one cell");
        PrefixWorkload {
            dim: n,
            normalized: true,
        }
    }
}

impl Workload for PrefixWorkload {
    fn dim(&self) -> usize {
        self.dim
    }

    fn query_count(&self) -> usize {
        self.dim
    }

    fn gram(&self) -> Matrix {
        let n = self.dim;
        if !self.normalized {
            // G[i][j] = number of prefixes containing both i and j = n - max(i, j).
            return Matrix::from_fn(n, n, |i, j| (n - i.max(j)) as f64);
        }
        // Normalized: prefix k has norm sqrt(k+1); G'[i][j] = sum_{k >= max(i,j)} 1/(k+1).
        let mut suffix = vec![0.0; n + 1];
        for k in (0..n).rev() {
            suffix[k] = suffix[k + 1] + 1.0 / (k as f64 + 1.0);
        }
        Matrix::from_fn(n, n, |i, j| suffix[i.max(j)])
    }

    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim);
        let mut out = Vec::with_capacity(self.dim);
        let mut acc = 0.0;
        for (k, &v) in x.iter().enumerate() {
            acc += v;
            let val = if self.normalized {
                acc / ((k + 1) as f64).sqrt()
            } else {
                acc
            };
            out.push(val);
        }
        out
    }

    fn description(&self) -> String {
        format!(
            "1D CDF / prefix workload ({} cells){}",
            self.dim,
            if self.normalized { " (normalized)" } else { "" }
        )
    }

    fn query_squared_norms(&self) -> Vec<f64> {
        if self.normalized {
            vec![1.0; self.dim]
        } else {
            (0..self.dim).map(|k| (k + 1) as f64).collect()
        }
    }

    fn to_matrix(&self) -> Option<Matrix> {
        let n = self.dim;
        if n * n > 16_000_000 {
            return None;
        }
        let mut m = Matrix::zeros(n, n);
        for k in 0..n {
            let w = if self.normalized {
                1.0 / ((k + 1) as f64).sqrt()
            } else {
                1.0
            };
            for j in 0..=k {
                m[(k, j)] = w;
            }
        }
        Some(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::gram_consistent;
    use mm_linalg::approx_eq;

    #[test]
    fn gram_matches_matrix() {
        for normalized in [false, true] {
            let w = if normalized {
                PrefixWorkload::normalized(7)
            } else {
                PrefixWorkload::new(7)
            };
            assert!(gram_consistent(&w, 1e-10), "normalized={normalized}");
        }
    }

    #[test]
    fn evaluate_is_cumulative_sum() {
        let w = PrefixWorkload::new(4);
        assert_eq!(w.evaluate(&[1.0, 2.0, 3.0, 4.0]), vec![1.0, 3.0, 6.0, 10.0]);
    }

    #[test]
    fn normalized_evaluate_scales_by_sqrt_len() {
        let w = PrefixWorkload::normalized(4);
        let v = w.evaluate(&[1.0; 4]);
        for (k, &val) in v.iter().enumerate() {
            assert!(approx_eq(val, ((k + 1) as f64).sqrt(), 1e-12));
        }
    }

    #[test]
    fn first_cell_is_heaviest() {
        // The CDF workload is skewed: cell 0 appears in all n queries.
        let w = PrefixWorkload::new(8);
        let g = w.gram();
        assert_eq!(g[(0, 0)], 8.0);
        assert_eq!(g[(7, 7)], 1.0);
    }

    #[test]
    fn norms_and_counts() {
        let w = PrefixWorkload::new(5);
        assert_eq!(w.query_count(), 5);
        assert_eq!(w.query_squared_norms(), vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert!(PrefixWorkload::normalized(5)
            .query_squared_norms()
            .iter()
            .all(|&v| v == 1.0));
    }
}
