//! Uniformly sampled predicate-query workloads.
//!
//! A predicate query counts the tuples satisfying an arbitrary boolean
//! condition over the cells, i.e. an arbitrary 0/1 row vector.  The workload
//! of *all* predicate queries has 2ⁿ rows and is never materialised; the
//! paper evaluates on **uniformly sampled** predicate queries (Table 2), where
//! each cell is included in a query independently with probability 1/2.

use crate::explicit::dense_gram_worthwhile;
use crate::query::LinearQuery;
use crate::Workload;
use mm_linalg::{ops, Matrix};
use rand::Rng;

/// A workload of uniformly sampled 0/1 predicate queries.
#[derive(Debug, Clone)]
pub struct RandomPredicateWorkload {
    dim: usize,
    queries: Vec<LinearQuery>,
    normalized: bool,
}

impl RandomPredicateWorkload {
    /// Samples `count` predicates over `n` cells, each cell independently
    /// included with probability 1/2 (empty predicates are re-sampled).
    pub fn sample<R: Rng + ?Sized>(n: usize, count: usize, rng: &mut R) -> Self {
        assert!(n > 0 && count > 0);
        let mut queries = Vec::with_capacity(count);
        while queries.len() < count {
            let members: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
            if members.iter().any(|&b| b) {
                queries.push(LinearQuery::predicate(&members));
            }
        }
        RandomPredicateWorkload {
            dim: n,
            queries,
            normalized: false,
        }
    }

    /// Builds the workload from explicit predicate queries.
    pub fn from_queries(queries: Vec<LinearQuery>) -> Self {
        assert!(!queries.is_empty());
        let dim = queries[0].dim();
        assert!(queries.iter().all(|q| q.dim() == dim));
        RandomPredicateWorkload {
            dim,
            queries,
            normalized: false,
        }
    }

    /// Scales each predicate to unit L2 norm.
    pub fn into_normalized(mut self) -> Self {
        self.normalized = true;
        self
    }

    fn weighted_queries(&self) -> Vec<LinearQuery> {
        self.queries
            .iter()
            .map(|q| {
                if self.normalized {
                    q.normalized()
                } else {
                    q.clone()
                }
            })
            .collect()
    }
}

impl Workload for RandomPredicateWorkload {
    fn dim(&self) -> usize {
        self.dim
    }

    fn query_count(&self) -> usize {
        self.queries.len()
    }

    fn gram(&self) -> Matrix {
        // Uniformly sampled predicates include each cell with probability
        // 1/2, so these workloads are essentially always dense: route large
        // grams through the blocked `WᵀW` kernel (the sparse accumulation
        // below is O(nnz²/m) — quadratic in the predicate width).
        let queries = self.weighted_queries();
        if dense_gram_worthwhile(&queries, self.dim) {
            let dense = crate::query::queries_to_matrix(&queries);
            return ops::matmul_transpose_left(&dense, &dense)
                .expect("a matrix always matches its own row count");
        }
        let mut g = Matrix::zeros(self.dim, self.dim);
        for q in &queries {
            for &(i, vi) in q.entries() {
                let row = g.row_mut(i);
                for &(j, vj) in q.entries() {
                    row[j] += vi * vj;
                }
            }
        }
        g
    }

    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        self.weighted_queries()
            .iter()
            .map(|q| q.evaluate(x))
            .collect()
    }

    fn description(&self) -> String {
        format!(
            "{} random predicate queries on {} cells{}",
            self.queries.len(),
            self.dim,
            if self.normalized { " (normalized)" } else { "" }
        )
    }

    fn query_squared_norms(&self) -> Vec<f64> {
        self.weighted_queries()
            .iter()
            .map(|q| {
                let n = q.l2_norm();
                n * n
            })
            .collect()
    }

    fn to_matrix(&self) -> Option<Matrix> {
        if self.queries.len() * self.dim > 16_000_000 {
            return None;
        }
        Some(crate::query::queries_to_matrix(&self.weighted_queries()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::gram_consistent;
    use mm_linalg::approx_eq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sampled_predicates_are_nonempty() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = RandomPredicateWorkload::sample(16, 50, &mut rng);
        assert_eq!(w.query_count(), 50);
        assert!(w
            .to_matrix()
            .unwrap()
            .rows_iter()
            .all(|r| r.iter().sum::<f64>() > 0.0));
    }

    #[test]
    fn gram_consistent_with_matrix() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = RandomPredicateWorkload::sample(12, 30, &mut rng);
        assert!(gram_consistent(&w, 1e-9));
        let wn = w.into_normalized();
        assert!(gram_consistent(&wn, 1e-9));
    }

    #[test]
    fn gram_consistent_on_the_dense_kernel_path() {
        // 160 predicates on 160 cells crosses the dense-gram thresholds
        // (density ≈ 1/2), so this exercises the blocked `WᵀW` route; the
        // normalised variant rides it too.
        let mut rng = StdRng::seed_from_u64(5);
        let w = RandomPredicateWorkload::sample(160, 160, &mut rng);
        assert!(gram_consistent(&w, 1e-9));
        assert!(
            w.gram().is_symmetric(0.0),
            "blocked gram stays exactly symmetric"
        );
        let wn = w.into_normalized();
        assert!(gram_consistent(&wn, 1e-9));
    }

    #[test]
    fn normalized_norms_are_one() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = RandomPredicateWorkload::sample(10, 20, &mut rng).into_normalized();
        for n in w.query_squared_norms() {
            assert!(approx_eq(n, 1.0, 1e-12));
        }
    }

    #[test]
    fn evaluate_matches_matrix() {
        let mut rng = StdRng::seed_from_u64(4);
        let w = RandomPredicateWorkload::sample(8, 15, &mut rng);
        let x: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let fast = w.evaluate(&x);
        let slow = w.to_matrix().unwrap().matvec(&x).unwrap();
        for (f, s) in fast.iter().zip(slow.iter()) {
            assert!(approx_eq(*f, *s, 1e-12));
        }
    }

    #[test]
    fn from_queries_constructor() {
        let qs = vec![
            LinearQuery::predicate(&[true, false, true]),
            LinearQuery::predicate(&[false, true, true]),
        ];
        let w = RandomPredicateWorkload::from_queries(qs);
        assert_eq!(w.dim(), 3);
        assert_eq!(w.query_count(), 2);
    }
}
