//! # mm-workload
//!
//! Workloads of linear counting queries for the adaptive matrix mechanism
//! (Li & Miklau, VLDB 2012).
//!
//! A *workload* is a set of linear counting queries over a data vector `x` of
//! cell counts (Sec. 2.1 of the paper).  Under the matrix mechanism the error
//! of answering a workload `W` with a strategy `A` depends on `W` only through
//! its gram matrix `WᵀW` (Prop. 4), so the central abstraction of this crate
//! is the [`Workload`] trait whose main obligation is producing that gram
//! matrix — which many workload families can do *without materialising `W`*
//! (the workload of all range queries over 2048 cells has ~2·10⁶ rows; its
//! gram matrix has a closed form).
//!
//! Provided workload families:
//!
//! * [`IdentityWorkload`], [`TotalWorkload`], [`ExplicitWorkload`] — basics;
//! * [`range::AllRangeWorkload`], [`range::RandomRangeWorkload`],
//!   [`prefix::PrefixWorkload`] (1D CDF) — (multi-dimensional) range queries;
//! * [`marginal::MarginalWorkload`] — k-way marginals, range marginals,
//!   random marginal unions;
//! * [`predicate::RandomPredicateWorkload`] — uniformly sampled 0/1 predicate
//!   queries;
//! * [`kronecker::KroneckerWorkload`], [`union::UnionWorkload`],
//!   [`transform::PermutedWorkload`], [`transform::ScaledWorkload`] —
//!   combinators used to build the paper's ad hoc workloads;
//! * [`example::fig1_workload`] — the 8-query student workload of Fig. 1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod domain;
pub mod example;
pub mod explicit;
pub mod fingerprint;
pub mod kronecker;
pub mod marginal;
pub mod predicate;
pub mod prefix;
pub mod query;
pub mod range;
pub mod structured;
pub mod tensor;
pub mod transform;
pub mod union;

pub use domain::Domain;
pub use explicit::{ExplicitWorkload, IdentityWorkload, TotalWorkload};
pub use fingerprint::{
    gram_fingerprint, structured_fingerprint, try_gram_fingerprint, workload_fingerprint,
    Fingerprint, NanGramEntry, WorkloadDescriptor,
};
pub use query::LinearQuery;
pub use structured::{RangeQueryWorkload, StructuredWorkload};

use mm_linalg::Matrix;

/// A workload of linear counting queries over an `n`-cell data vector.
///
/// Implementations must be consistent: `gram()` must equal `WᵀW` for the same
/// (conceptual) query matrix whose answers `evaluate()` returns, and
/// `query_count()` must equal the number of rows of that matrix.
pub trait Workload {
    /// Number of cells `n` in the data vector the queries are expressed over.
    fn dim(&self) -> usize;

    /// Number of queries `m` in the workload.
    fn query_count(&self) -> usize;

    /// The gram matrix `WᵀW` (an `n x n` symmetric positive semidefinite matrix).
    fn gram(&self) -> Matrix;

    /// Evaluates every query against the data vector, returning `W x`
    /// (length `query_count()`), in a fixed deterministic order.
    fn evaluate(&self, x: &[f64]) -> Vec<f64>;

    /// Evaluates every query against each *column* of `x` (an `n × K` matrix
    /// of K data vectors), returning the `m × K` answer matrix `W·X` with
    /// column `k` equal to `evaluate(x.col(k))` — **bit for bit**, so
    /// batched serving paths can substitute this for a per-column loop
    /// without changing a single result.
    ///
    /// The default implementation is exactly that per-column loop.
    /// Workloads with a materialised query matrix (e.g.
    /// [`ExplicitWorkload`]) override it with one blocked mat-mat product,
    /// which accumulates each answer in the same ascending-index,
    /// zero-skipping order as their sparse per-query evaluation and
    /// therefore stays bit-identical while vectorising the whole batch.
    ///
    /// Panics when `x.rows() != dim()` (like [`Workload::evaluate`] on a
    /// wrong-length vector).
    fn evaluate_matrix(&self, x: &Matrix) -> Matrix {
        assert_eq!(
            x.rows(),
            self.dim(),
            "data matrix has {} rows but the workload covers {} cells",
            x.rows(),
            self.dim()
        );
        let m = self.query_count();
        let k = x.cols();
        let mut out = Matrix::zeros(m, k);
        for c in 0..k {
            let answers = self.evaluate(&x.col(c));
            assert_eq!(
                answers.len(),
                m,
                "evaluate must return one answer per query"
            );
            for (i, v) in answers.into_iter().enumerate() {
                out[(i, c)] = v;
            }
        }
        out
    }

    /// Human-readable description used in reports and experiment output.
    fn description(&self) -> String;

    /// The squared L2 norm of every query (the diagonal of `W Wᵀ`), in the
    /// same order as [`Workload::evaluate`].
    ///
    /// Used when optimizing for relative error (Sec. 3.4): queries are scaled
    /// to unit L2 norm before strategy selection.
    fn query_squared_norms(&self) -> Vec<f64>;

    /// The explicit query matrix `W`, when it is reasonable to materialise.
    ///
    /// The default implementation returns `None`; small/explicit workloads
    /// override it.  Callers that require `W` (e.g. actually running the
    /// mechanism end-to-end on every workload query) should prefer workloads
    /// that provide it or use [`Workload::evaluate`] instead.
    fn to_matrix(&self) -> Option<Matrix> {
        None
    }
}

/// Convenience: total squared Frobenius norm of the workload, i.e.
/// `trace(WᵀW)`, computable from any [`Workload`].
pub fn total_squared_norm<W: Workload + ?Sized>(w: &W) -> f64 {
    w.gram().trace()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_squared_norm_of_identity() {
        let w = IdentityWorkload::new(5);
        assert_eq!(total_squared_norm(&w), 5.0);
    }
}
