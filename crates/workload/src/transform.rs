//! Workload transformations: cell permutation and query scaling.
//!
//! The paper's *semantic equivalence* experiments (Prop. 5, Table 2, Fig. 5)
//! permute the order of the cell conditions: the permuted workload answers the
//! same logical queries but its matrix has permuted columns, which breaks
//! strategies that rely on cell locality (wavelet, hierarchical) while the
//! Eigen-Design algorithm is invariant.  [`ScaledWorkload`] applies one global
//! scale factor to every query (used by tests of error scaling behaviour).

use crate::Workload;
use mm_linalg::Matrix;

/// A workload whose cell conditions have been reordered by a permutation.
///
/// `perm[j]` gives, for column `j` of the permuted workload, the cell index of
/// the inner workload it corresponds to: `W' = W P` with `P[perm[j], j] = 1`,
/// equivalently `x_inner[perm[j]] = x_permuted[j]`.
pub struct PermutedWorkload<W> {
    inner: W,
    perm: Vec<usize>,
    inverse: Vec<usize>,
}

impl<W: Workload> PermutedWorkload<W> {
    /// Wraps a workload with a cell permutation.
    ///
    /// Panics unless `perm` is a permutation of `0..inner.dim()`.
    pub fn new(inner: W, perm: Vec<usize>) -> Self {
        let n = inner.dim();
        assert_eq!(
            perm.len(),
            n,
            "permutation length must equal the cell count"
        );
        let mut seen = vec![false; n];
        for &p in &perm {
            assert!(p < n && !seen[p], "not a permutation");
            seen[p] = true;
        }
        let mut inverse = vec![0usize; n];
        for (j, &p) in perm.iter().enumerate() {
            inverse[p] = j;
        }
        PermutedWorkload {
            inner,
            perm,
            inverse,
        }
    }

    /// The permutation applied to the cells.
    pub fn permutation(&self) -> &[usize] {
        &self.perm
    }

    /// The wrapped workload.
    pub fn inner(&self) -> &W {
        &self.inner
    }
}

impl<W: Workload> Workload for PermutedWorkload<W> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn query_count(&self) -> usize {
        self.inner.query_count()
    }

    fn gram(&self) -> Matrix {
        // G' = Pᵀ G P: entry (i, j) of the permuted gram is G[perm[i], perm[j]].
        let g = self.inner.gram();
        let n = self.dim();
        Matrix::from_fn(n, n, |i, j| g[(self.perm[i], self.perm[j])])
    }

    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim());
        // Un-permute the data vector, then evaluate the inner workload.
        let mut inner_x = vec![0.0; x.len()];
        for (j, &p) in self.perm.iter().enumerate() {
            inner_x[p] = x[j];
        }
        self.inner.evaluate(&inner_x)
    }

    fn description(&self) -> String {
        format!("{} with permuted cell conditions", self.inner.description())
    }

    fn query_squared_norms(&self) -> Vec<f64> {
        self.inner.query_squared_norms()
    }

    fn to_matrix(&self) -> Option<Matrix> {
        let m = self.inner.to_matrix()?;
        // Column j of the permuted workload is column perm[j] of the inner one.
        m.permute_cols(&self.perm).ok()
    }
}

impl<W: Workload> PermutedWorkload<W> {
    /// Maps a cell index of the permuted workload to the inner workload's index.
    pub fn to_inner_cell(&self, permuted_cell: usize) -> usize {
        self.perm[permuted_cell]
    }

    /// Maps an inner cell index to the permuted workload's index.
    pub fn from_inner_cell(&self, inner_cell: usize) -> usize {
        self.inverse[inner_cell]
    }
}

/// A workload with every query multiplied by a constant factor.
pub struct ScaledWorkload<W> {
    inner: W,
    scale: f64,
}

impl<W: Workload> ScaledWorkload<W> {
    /// Wraps a workload, scaling every query by `scale` (must be nonzero).
    pub fn new(inner: W, scale: f64) -> Self {
        assert!(
            scale != 0.0 && scale.is_finite(),
            "scale must be finite and nonzero"
        );
        ScaledWorkload { inner, scale }
    }

    /// The scale factor.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl<W: Workload> Workload for ScaledWorkload<W> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn query_count(&self) -> usize {
        self.inner.query_count()
    }

    fn gram(&self) -> Matrix {
        self.inner.gram().scaled(self.scale * self.scale)
    }

    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        self.inner
            .evaluate(x)
            .into_iter()
            .map(|v| v * self.scale)
            .collect()
    }

    fn description(&self) -> String {
        format!("{} scaled by {}", self.inner.description(), self.scale)
    }

    fn query_squared_norms(&self) -> Vec<f64> {
        self.inner
            .query_squared_norms()
            .into_iter()
            .map(|v| v * self.scale * self.scale)
            .collect()
    }

    fn to_matrix(&self) -> Option<Matrix> {
        Some(self.inner.to_matrix()?.scaled(self.scale))
    }
}

/// Generates a deterministic pseudo-random permutation of `0..n` from a seed,
/// used by the "permuted cell conditions" experiments.
pub fn seeded_permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    // Simple xorshift-based Fisher–Yates shuffle; deterministic across runs.
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
    for i in (1..n).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let j = (state % (i as u64 + 1)) as usize;
        perm.swap(i, j);
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::gram_consistent;
    use crate::prefix::PrefixWorkload;
    use crate::range::AllRangeWorkload;
    use crate::Domain;
    use mm_linalg::approx_eq;

    #[test]
    fn permuted_gram_matches_matrix() {
        let inner = PrefixWorkload::new(6);
        let perm = seeded_permutation(6, 42);
        let w = PermutedWorkload::new(inner, perm);
        assert!(gram_consistent(&w, 1e-10));
    }

    #[test]
    fn permuted_evaluate_matches_matrix() {
        let inner = PrefixWorkload::new(5);
        let perm = seeded_permutation(5, 7);
        let w = PermutedWorkload::new(inner, perm);
        let x: Vec<f64> = (0..5).map(|i| (i * i) as f64).collect();
        let fast = w.evaluate(&x);
        let slow = w.to_matrix().unwrap().matvec(&x).unwrap();
        for (f, s) in fast.iter().zip(slow.iter()) {
            assert!(approx_eq(*f, *s, 1e-12));
        }
    }

    #[test]
    fn permutation_preserves_gram_trace_and_eigen_structure() {
        let inner = AllRangeWorkload::new(Domain::new(&[8]));
        let g_inner = inner.gram();
        let perm = seeded_permutation(8, 3);
        let w = PermutedWorkload::new(inner, perm);
        let g_perm = w.gram();
        assert!(approx_eq(g_inner.trace(), g_perm.trace(), 1e-9));
        assert!(approx_eq(
            g_inner.sum_of_squares(),
            g_perm.sum_of_squares(),
            1e-9
        ));
    }

    #[test]
    fn cell_index_mapping_roundtrip() {
        let w = PermutedWorkload::new(PrefixWorkload::new(6), seeded_permutation(6, 9));
        for c in 0..6 {
            assert_eq!(w.from_inner_cell(w.to_inner_cell(c)), c);
        }
    }

    #[test]
    fn identity_permutation_is_noop() {
        let inner = PrefixWorkload::new(4);
        let g1 = inner.gram();
        let w = PermutedWorkload::new(inner, vec![0, 1, 2, 3]);
        let g2 = w.gram();
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(g1[(i, j)], g2[(i, j)]);
            }
        }
    }

    #[test]
    fn scaled_workload_scales_gram_quadratically() {
        let w = ScaledWorkload::new(PrefixWorkload::new(4), 3.0);
        let g = w.gram();
        let g0 = PrefixWorkload::new(4).gram();
        for i in 0..4 {
            for j in 0..4 {
                assert!(approx_eq(g[(i, j)], 9.0 * g0[(i, j)], 1e-12));
            }
        }
        assert!(gram_consistent(&w, 1e-10));
        assert_eq!(w.evaluate(&[1.0; 4])[3], 12.0);
    }

    #[test]
    fn seeded_permutation_is_valid_and_deterministic() {
        let p1 = seeded_permutation(100, 5);
        let p2 = seeded_permutation(100, 5);
        assert_eq!(p1, p2);
        let mut sorted = p1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // A different seed gives a different permutation.
        assert_ne!(p1, seeded_permutation(100, 6));
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn invalid_permutation_panics() {
        PermutedWorkload::new(PrefixWorkload::new(3), vec![0, 0, 2]);
    }
}
