//! Explicit (materialised) workloads and the trivial identity/total workloads.

use crate::query::{queries_to_matrix, LinearQuery};
use crate::Workload;
use mm_linalg::{ops, Matrix};
use std::sync::OnceLock;

/// A workload stored as an explicit list of sparse queries.
///
/// Suitable for small or irregular workloads (the paper's Fig. 1 example,
/// sampled predicate workloads, hand-built ad hoc workloads).  Larger
/// structured families (all ranges, all marginals) have dedicated implicit
/// types in this crate.
#[derive(Debug, Clone)]
pub struct ExplicitWorkload {
    dim: usize,
    queries: Vec<LinearQuery>,
    name: String,
    /// Lazily materialised dense query matrix, shared by
    /// [`Workload::to_matrix`] and the batched [`Workload::evaluate_matrix`]
    /// so repeated (batch) answers do not rebuild it.
    dense: OnceLock<Matrix>,
}

impl ExplicitWorkload {
    /// Creates a workload from explicit queries.
    ///
    /// Panics when queries have inconsistent dimensions or the list is empty.
    pub fn new(name: impl Into<String>, queries: Vec<LinearQuery>) -> Self {
        assert!(
            !queries.is_empty(),
            "workload must contain at least one query"
        );
        let dim = queries[0].dim();
        assert!(
            queries.iter().all(|q| q.dim() == dim),
            "all queries must share the same dimension"
        );
        ExplicitWorkload {
            dim,
            queries,
            name: name.into(),
            dense: OnceLock::new(),
        }
    }

    /// The dense query matrix, built once per workload.
    fn dense(&self) -> &Matrix {
        self.dense.get_or_init(|| queries_to_matrix(&self.queries))
    }

    /// Creates a workload from a dense query matrix (each row is a query).
    pub fn from_matrix(name: impl Into<String>, matrix: &Matrix) -> Self {
        let queries = (0..matrix.rows())
            .map(|i| LinearQuery::from_dense(matrix.row(i)))
            .collect();
        ExplicitWorkload::new(name, queries)
    }

    /// The queries of this workload.
    pub fn queries(&self) -> &[LinearQuery] {
        &self.queries
    }

    /// Returns a new workload with every query scaled to unit L2 norm
    /// (queries with zero norm are left unchanged).
    pub fn normalized(&self) -> Self {
        ExplicitWorkload::new(
            format!("{} (normalized)", self.name),
            self.queries.iter().map(LinearQuery::normalized).collect(),
        )
    }
}

/// Fraction of nonzero coefficients above which a gram matrix is assembled
/// with the blocked dense `WᵀW` kernel instead of sparse outer products.
pub(crate) const DENSE_GRAM_DENSITY: f64 = 0.25;

/// Minimum `queries × cells` size before the dense gram path is considered
/// (below this the sparse accumulation is always at least as fast).
pub(crate) const DENSE_GRAM_MIN_ENTRIES: usize = 16_384;

/// The one dense-vs-sparse gram-assembly decision, shared by every workload
/// type with an explicit query list: dense pays off once the workload is
/// both large (`queries × cells` entries) and dense (nonzero fraction).
pub(crate) fn dense_gram_worthwhile(queries: &[LinearQuery], dim: usize) -> bool {
    let total = queries.len() * dim;
    if total < DENSE_GRAM_MIN_ENTRIES {
        return false;
    }
    let nnz: usize = queries.iter().map(|q| q.entries().len()).sum();
    nnz as f64 >= DENSE_GRAM_DENSITY * total as f64
}

impl Workload for ExplicitWorkload {
    fn dim(&self) -> usize {
        self.dim
    }

    fn query_count(&self) -> usize {
        self.queries.len()
    }

    fn gram(&self) -> Matrix {
        // Dense workloads (predicate samples, materialised transforms) pay
        // O(nnz²/m) in the sparse entry-by-entry accumulation below; above a
        // density threshold the blocked, threaded `WᵀW` mat-mat kernel wins
        // outright, and the memoised dense matrix is reused by later batch
        // evaluation anyway.
        if dense_gram_worthwhile(&self.queries, self.dim) {
            let dense = self.dense();
            return ops::matmul_transpose_left(dense, dense)
                .expect("a matrix always matches its own row count");
        }
        // Accumulate sparse outer products qᵀq.
        let mut g = Matrix::zeros(self.dim, self.dim);
        for q in &self.queries {
            let entries = q.entries();
            for &(i, vi) in entries {
                for &(j, vj) in entries {
                    g[(i, j)] += vi * vj;
                }
            }
        }
        g
    }

    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        self.queries.iter().map(|q| q.evaluate(x)).collect()
    }

    fn evaluate_matrix(&self, x: &Matrix) -> Matrix {
        assert_eq!(
            x.rows(),
            self.dim,
            "data matrix has {} rows but the workload covers {} cells",
            x.rows(),
            self.dim
        );
        // Width 1 (the engine's single-`answer` hot path): the sparse
        // per-query evaluation is O(nnz) where the dense product would read
        // every coefficient; both produce identical bits (see below), so
        // pick by shape.
        if x.cols() == 1 {
            let mut out = Matrix::zeros(self.queries.len(), 1);
            for (i, q) in self.queries.iter().enumerate() {
                out[(i, 0)] = q.evaluate(x.as_slice());
            }
            return out;
        }
        // Batches: one blocked mat-mat product over the memoised dense
        // matrix (the PR 3 kernel).  Bit-identical to the per-column
        // default: the kernel accumulates each output entry in ascending
        // depth order and skips zero coefficients — exactly the addition
        // sequence of the sparse per-query `evaluate` over its (sorted,
        // zero-free) entries.
        ops::matmul(self.dense(), x).expect("dimensions checked above")
    }

    fn description(&self) -> String {
        format!(
            "{} ({} queries on {} cells)",
            self.name,
            self.queries.len(),
            self.dim
        )
    }

    fn query_squared_norms(&self) -> Vec<f64> {
        self.queries
            .iter()
            .map(|q| {
                let n = q.l2_norm();
                n * n
            })
            .collect()
    }

    fn to_matrix(&self) -> Option<Matrix> {
        Some(self.dense().clone())
    }
}

/// The identity workload: one query per cell count.
#[derive(Debug, Clone)]
pub struct IdentityWorkload {
    dim: usize,
}

impl IdentityWorkload {
    /// Creates the identity workload over `n` cells.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "identity workload needs at least one cell");
        IdentityWorkload { dim: n }
    }
}

impl Workload for IdentityWorkload {
    fn dim(&self) -> usize {
        self.dim
    }

    fn query_count(&self) -> usize {
        self.dim
    }

    fn gram(&self) -> Matrix {
        Matrix::identity(self.dim)
    }

    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim);
        x.to_vec()
    }

    fn evaluate_matrix(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.rows(), self.dim);
        x.clone()
    }

    fn description(&self) -> String {
        format!("identity ({} cells)", self.dim)
    }

    fn query_squared_norms(&self) -> Vec<f64> {
        vec![1.0; self.dim]
    }

    fn to_matrix(&self) -> Option<Matrix> {
        Some(Matrix::identity(self.dim))
    }
}

/// The single total query `1ᵀ x`.
#[derive(Debug, Clone)]
pub struct TotalWorkload {
    dim: usize,
}

impl TotalWorkload {
    /// Creates the total workload over `n` cells.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "total workload needs at least one cell");
        TotalWorkload { dim: n }
    }
}

impl Workload for TotalWorkload {
    fn dim(&self) -> usize {
        self.dim
    }

    fn query_count(&self) -> usize {
        1
    }

    fn gram(&self) -> Matrix {
        Matrix::filled(self.dim, self.dim, 1.0)
    }

    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim);
        vec![x.iter().sum()]
    }

    fn description(&self) -> String {
        format!("total ({} cells)", self.dim)
    }

    fn query_squared_norms(&self) -> Vec<f64> {
        vec![self.dim as f64]
    }

    fn to_matrix(&self) -> Option<Matrix> {
        Some(Matrix::filled(1, self.dim, 1.0))
    }
}

/// Checks that an explicit workload's gram matrix equals `WᵀW` computed from
/// its dense matrix (used by tests across the workspace).
pub fn gram_consistent(w: &dyn Workload, tol: f64) -> bool {
    match w.to_matrix() {
        Some(m) => {
            let g1 = w.gram();
            let g2 = ops::gram(&m);
            if g1.shape() != g2.shape() {
                return false;
            }
            for i in 0..g1.rows() {
                for j in 0..g1.cols() {
                    if !mm_linalg::approx_eq(g1[(i, j)], g2[(i, j)], tol) {
                        return false;
                    }
                }
            }
            true
        }
        None => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use mm_linalg::approx_eq;

    #[test]
    fn explicit_gram_matches_matrix() {
        let d = Domain::new(&[2, 3]);
        let queries = vec![
            LinearQuery::total(6),
            LinearQuery::range(&d, &[0, 0], &[0, 2]),
            LinearQuery::cell(6, 4),
        ];
        let w = ExplicitWorkload::new("test", queries);
        assert!(gram_consistent(&w, 1e-12));
        assert_eq!(w.query_count(), 3);
        assert_eq!(w.dim(), 6);
    }

    #[test]
    fn explicit_evaluate_matches_matrix_product() {
        let queries = vec![
            LinearQuery::range_1d(4, 0, 1),
            LinearQuery::range_1d(4, 2, 3),
        ];
        let w = ExplicitWorkload::new("pair", queries);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let y = w.evaluate(&x);
        assert_eq!(y, vec![3.0, 7.0]);
        let m = w.to_matrix().unwrap();
        let y2 = m.matvec(&x).unwrap();
        assert_eq!(y, y2);
    }

    #[test]
    fn explicit_normalized_has_unit_norms() {
        let queries = vec![LinearQuery::total(4), LinearQuery::cell(4, 0)];
        let w = ExplicitWorkload::new("w", queries).normalized();
        for n in w.query_squared_norms() {
            assert!(approx_eq(n, 1.0, 1e-12));
        }
    }

    #[test]
    fn evaluate_matrix_is_bit_identical_to_per_column_evaluate() {
        // The blocked-matmul override must not change a single bit relative
        // to the sparse per-query evaluation, for every column of the batch
        // — including awkward coefficients and irregular sparsity.
        let d = Domain::new(&[4, 8]);
        let queries = vec![
            LinearQuery::total(32),
            LinearQuery::range(&d, &[1, 2], &[3, 5]),
            LinearQuery::cell(32, 17),
            LinearQuery::new(32, vec![(0, 0.3), (7, -1.7), (31, 2.25), (16, 1e-9)]),
            LinearQuery::from_dense(&(0..32).map(|i| (i as f64 * 0.37).sin()).collect::<Vec<_>>()),
        ];
        let w = ExplicitWorkload::new("irregular", queries);
        let k = 7;
        let x = Matrix::from_fn(32, k, |i, c| ((i * 31 + c * 17) % 13) as f64 * 0.71 - 3.0);
        let batched = w.evaluate_matrix(&x);
        assert_eq!(batched.shape(), (w.query_count(), k));
        for c in 0..k {
            let per_column = w.evaluate(&x.col(c));
            for (i, v) in per_column.iter().enumerate() {
                assert_eq!(
                    v.to_bits(),
                    batched[(i, c)].to_bits(),
                    "bit mismatch at query {i}, column {c}"
                );
            }
        }
        // The identity workload's trivial override is bit-identical too.
        let id = IdentityWorkload::new(32);
        let id_batched = id.evaluate_matrix(&x);
        for c in 0..k {
            let per_column = id.evaluate(&x.col(c));
            for (i, v) in per_column.iter().enumerate() {
                assert_eq!(v.to_bits(), id_batched[(i, c)].to_bits());
            }
        }
    }

    #[test]
    fn default_evaluate_matrix_matches_per_column() {
        // TotalWorkload uses the trait's default per-column implementation.
        let w = TotalWorkload::new(6);
        let x = Matrix::from_fn(6, 3, |i, c| (i + c) as f64 * 1.5);
        let batched = w.evaluate_matrix(&x);
        assert_eq!(batched.shape(), (1, 3));
        for c in 0..3 {
            assert_eq!(
                batched[(0, c)].to_bits(),
                w.evaluate(&x.col(c))[0].to_bits()
            );
        }
    }

    #[test]
    fn gram_is_consistent_on_both_assembly_paths() {
        // Dense path: a materialised 200×128 workload (density 1) crosses
        // both thresholds and routes through the blocked `WᵀW` kernel.
        let dense_m = Matrix::from_fn(200, 128, |i, j| ((i * 31 + j * 17) as f64 * 0.37).sin());
        let dense = ExplicitWorkload::from_matrix("dense", &dense_m);
        assert!(dense.query_count() * dense.dim() >= DENSE_GRAM_MIN_ENTRIES);
        assert!(gram_consistent(&dense, 1e-9));
        assert!(
            dense.gram().is_symmetric(0.0),
            "blocked gram stays exactly symmetric"
        );

        // Sparse path: same size, but single-cell queries keep the density
        // far below the threshold, so the outer-product accumulation runs.
        let sparse = ExplicitWorkload::new(
            "sparse",
            (0..200).map(|i| LinearQuery::cell(128, i % 128)).collect(),
        );
        assert!(gram_consistent(&sparse, 1e-12));

        // The two paths agree on the same workload: force the comparison by
        // building the sparse accumulation from a small copy of each query.
        let small =
            ExplicitWorkload::from_matrix("small", &Matrix::from_fn(4, 8, |i, j| (i + j) as f64));
        assert!(
            gram_consistent(&small, 1e-12),
            "small workloads stay on the sparse path"
        );
    }

    #[test]
    fn from_matrix_roundtrip() {
        let m = Matrix::from_rows(&[vec![1.0, 0.0, -1.0], vec![0.5, 0.5, 0.5]]).unwrap();
        let w = ExplicitWorkload::from_matrix("m", &m);
        assert_eq!(w.to_matrix().unwrap(), m);
        assert!(w.description().contains("2 queries"));
    }

    #[test]
    fn identity_workload_properties() {
        let w = IdentityWorkload::new(4);
        assert_eq!(w.gram(), Matrix::identity(4));
        assert_eq!(w.evaluate(&[1.0, 2.0, 3.0, 4.0]), vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(w.query_squared_norms(), vec![1.0; 4]);
        assert!(gram_consistent(&w, 1e-12));
    }

    #[test]
    fn total_workload_properties() {
        let w = TotalWorkload::new(3);
        assert_eq!(w.query_count(), 1);
        assert_eq!(w.evaluate(&[1.0, 2.0, 3.0]), vec![6.0]);
        assert_eq!(w.gram()[(0, 2)], 1.0);
        assert_eq!(w.query_squared_norms(), vec![3.0]);
        assert!(gram_consistent(&w, 1e-12));
    }

    #[test]
    #[should_panic(expected = "at least one query")]
    fn empty_workload_panics() {
        ExplicitWorkload::new("empty", vec![]);
    }

    #[test]
    #[should_panic(expected = "same dimension")]
    fn inconsistent_dims_panic() {
        ExplicitWorkload::new("bad", vec![LinearQuery::total(2), LinearQuery::total(3)]);
    }
}
