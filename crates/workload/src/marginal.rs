//! Marginal and range-marginal workloads over multi-attribute domains.
//!
//! A *k-way marginal* on an attribute subset `S` (|S| = k) has one query per
//! combination of values of the attributes in `S`; each query counts the
//! tuples matching those values (summing out the remaining attributes).  A
//! *k-way range marginal* (Sec. 2.1) instead has one query per combination of
//! **ranges** on the attributes of `S`, so that aggregate range conditions on
//! the margin can be answered directly rather than by summing noisy marginal
//! cells.
//!
//! As Kronecker products over attributes:
//!
//! * point marginal on `S`:  `⊗ᵢ (I_{dᵢ} if i ∈ S else 1ᵀ_{dᵢ})`
//! * range marginal on `S`:  `⊗ᵢ (R_{dᵢ} if i ∈ S else 1ᵀ_{dᵢ})`
//!
//! where `R_d` is the 1D all-range matrix.  A [`MarginalWorkload`] is the
//! union of such blocks over a list of attribute subsets, which covers "all
//! k-way marginals", "low-order marginals", random cuboid unions and the
//! paper's range-marginal workloads.

use crate::domain::Domain;
use crate::range::{all_range_1d_count, all_range_1d_gram, all_range_1d_matrix};
use crate::tensor::kron_apply;
use crate::Workload;
use mm_linalg::{ops, Matrix};
use rand::Rng;

/// Whether marginal queries are point (single margin value) or range queries
/// on the margin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MarginalKind {
    /// One query per value combination on the subset.
    Point,
    /// One query per range combination on the subset.
    Range,
}

/// A union of marginal (or range-marginal) query blocks over attribute subsets.
#[derive(Debug, Clone)]
pub struct MarginalWorkload {
    domain: Domain,
    subsets: Vec<Vec<usize>>,
    kind: MarginalKind,
    normalized: bool,
}

impl MarginalWorkload {
    /// Builds a marginal workload from explicit attribute subsets.
    ///
    /// Subsets are deduplicated and their attribute lists sorted.  Panics on
    /// out-of-range attribute indices or an empty subset list.
    pub fn from_subsets(domain: Domain, subsets: Vec<Vec<usize>>, kind: MarginalKind) -> Self {
        assert!(
            !subsets.is_empty(),
            "marginal workload needs at least one subset"
        );
        let k = domain.num_attributes();
        let mut cleaned: Vec<Vec<usize>> = subsets
            .into_iter()
            .map(|mut s| {
                s.sort_unstable();
                s.dedup();
                assert!(s.iter().all(|&a| a < k), "attribute index out of range");
                s
            })
            .collect();
        cleaned.sort();
        cleaned.dedup();
        MarginalWorkload {
            domain,
            subsets: cleaned,
            kind,
            normalized: false,
        }
    }

    /// All marginals on subsets of size exactly `k`.
    pub fn all_k_way(domain: Domain, k: usize, kind: MarginalKind) -> Self {
        let subsets = subsets_of_size(domain.num_attributes(), k);
        MarginalWorkload::from_subsets(domain, subsets, kind)
    }

    /// All marginals on subsets of size `0..=k` (low-order marginals).
    pub fn up_to_k_way(domain: Domain, k: usize, kind: MarginalKind) -> Self {
        let mut subsets = Vec::new();
        for size in 0..=k {
            subsets.extend(subsets_of_size(domain.num_attributes(), size));
        }
        MarginalWorkload::from_subsets(domain, subsets, kind)
    }

    /// All marginals of every order (the full data-cube workload).
    pub fn all_marginals(domain: Domain, kind: MarginalKind) -> Self {
        let k = domain.num_attributes();
        MarginalWorkload::up_to_k_way(domain, k, kind)
    }

    /// A random union of `count` distinct marginal cuboids (subsets sampled
    /// uniformly among the non-empty subsets), following the sampling used for
    /// the paper's "random marginal" workloads.
    pub fn random<R: Rng + ?Sized>(
        domain: Domain,
        count: usize,
        kind: MarginalKind,
        rng: &mut R,
    ) -> Self {
        let k = domain.num_attributes();
        let max_subsets = (1usize << k) - 1;
        let count = count.min(max_subsets);
        let mut chosen: Vec<Vec<usize>> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        while chosen.len() < count {
            let mask = rng.gen_range(1..=max_subsets);
            if seen.insert(mask) {
                let subset: Vec<usize> = (0..k).filter(|a| mask & (1 << a) != 0).collect();
                chosen.push(subset);
            }
        }
        MarginalWorkload::from_subsets(domain, chosen, kind)
    }

    /// Scales every query to unit L2 norm (for relative-error optimization).
    pub fn into_normalized(mut self) -> Self {
        self.normalized = true;
        self
    }

    /// The underlying domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// The attribute subsets, sorted and deduplicated.
    pub fn subsets(&self) -> &[Vec<usize>] {
        &self.subsets
    }

    /// Point or range marginals.
    pub fn kind(&self) -> MarginalKind {
        self.kind
    }

    /// Whether queries are scaled to unit norm.
    pub fn is_normalized(&self) -> bool {
        self.normalized
    }

    fn in_subset(subset: &[usize], a: usize) -> bool {
        subset.binary_search(&a).is_ok()
    }

    /// Number of queries contributed by one subset.
    fn subset_query_count(&self, subset: &[usize]) -> usize {
        self.domain
            .sizes()
            .iter()
            .enumerate()
            .map(|(a, &d)| {
                if Self::in_subset(subset, a) {
                    match self.kind {
                        MarginalKind::Point => d,
                        MarginalKind::Range => all_range_1d_count(d),
                    }
                } else {
                    1
                }
            })
            .product()
    }

    /// Per-attribute gram block for one subset.
    fn subset_gram(&self, subset: &[usize]) -> Matrix {
        let factors: Vec<Matrix> = self
            .domain
            .sizes()
            .iter()
            .enumerate()
            .map(|(a, &d)| {
                if Self::in_subset(subset, a) {
                    match self.kind {
                        MarginalKind::Point => Matrix::identity(d),
                        MarginalKind::Range => all_range_1d_gram(d, self.normalized),
                    }
                } else if self.normalized {
                    // 1ᵀ scaled to unit norm contributes J_d / d.
                    Matrix::filled(d, d, 1.0 / d as f64)
                } else {
                    Matrix::filled(d, d, 1.0)
                }
            })
            .collect();
        ops::kron_all(&factors)
    }

    /// Per-attribute factor matrices for evaluation (unnormalized).
    fn subset_factors(&self, subset: &[usize]) -> Vec<Matrix> {
        self.domain
            .sizes()
            .iter()
            .enumerate()
            .map(|(a, &d)| {
                if Self::in_subset(subset, a) {
                    match self.kind {
                        MarginalKind::Point => Matrix::identity(d),
                        MarginalKind::Range => all_range_1d_matrix(d),
                    }
                } else {
                    Matrix::filled(1, d, 1.0)
                }
            })
            .collect()
    }

    /// Squared norms of the queries of one subset, in evaluation order.
    fn subset_squared_norms(&self, subset: &[usize]) -> Vec<f64> {
        // Per-attribute list of per-row squared norms of the factor matrices.
        let per_dim: Vec<Vec<f64>> = self
            .domain
            .sizes()
            .iter()
            .enumerate()
            .map(|(a, &d)| {
                if Self::in_subset(subset, a) {
                    match self.kind {
                        MarginalKind::Point => vec![1.0; d],
                        MarginalKind::Range => {
                            let mut v = Vec::with_capacity(all_range_1d_count(d));
                            for lo in 0..d {
                                for hi in lo..d {
                                    v.push((hi - lo + 1) as f64);
                                }
                            }
                            v
                        }
                    }
                } else {
                    vec![d as f64]
                }
            })
            .collect();
        // Odometer over the per-dimension lists, first attribute slowest —
        // matching the row ordering of the Kronecker product.
        let total: usize = per_dim.iter().map(Vec::len).product();
        let mut out = Vec::with_capacity(total);
        let mut idx = vec![0usize; per_dim.len()];
        for _ in 0..total {
            let mut prod = 1.0;
            for (a, list) in per_dim.iter().enumerate() {
                prod *= list[idx[a]];
            }
            out.push(prod);
            for a in (0..per_dim.len()).rev() {
                idx[a] += 1;
                if idx[a] < per_dim[a].len() {
                    break;
                }
                idx[a] = 0;
            }
        }
        out
    }
}

impl Workload for MarginalWorkload {
    fn dim(&self) -> usize {
        self.domain.n_cells()
    }

    fn query_count(&self) -> usize {
        self.subsets
            .iter()
            .map(|s| self.subset_query_count(s))
            .sum()
    }

    fn gram(&self) -> Matrix {
        let n = self.dim();
        let mut g = Matrix::zeros(n, n);
        for s in &self.subsets {
            g += &self.subset_gram(s);
        }
        g
    }

    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim());
        let shape = self.domain.sizes().to_vec();
        let mut out = Vec::with_capacity(self.query_count());
        for s in &self.subsets {
            let factors = self.subset_factors(s);
            let refs: Vec<&Matrix> = factors.iter().collect();
            let mut vals = kron_apply(&refs, &shape, x);
            if self.normalized {
                let norms = self.subset_squared_norms(s);
                for (v, n2) in vals.iter_mut().zip(norms.iter()) {
                    *v /= n2.sqrt();
                }
            }
            out.extend(vals);
        }
        out
    }

    fn description(&self) -> String {
        let kind = match self.kind {
            MarginalKind::Point => "marginals",
            MarginalKind::Range => "range marginals",
        };
        format!(
            "{} on {} over {} subsets{}",
            kind,
            self.domain,
            self.subsets.len(),
            if self.normalized { " (normalized)" } else { "" }
        )
    }

    fn query_squared_norms(&self) -> Vec<f64> {
        if self.normalized {
            return vec![1.0; self.query_count()];
        }
        let mut out = Vec::with_capacity(self.query_count());
        for s in &self.subsets {
            out.extend(self.subset_squared_norms(s));
        }
        out
    }

    fn to_matrix(&self) -> Option<Matrix> {
        let total_entries = self.query_count() * self.dim();
        if total_entries > 16_000_000 {
            return None;
        }
        let mut blocks: Option<Matrix> = None;
        for s in &self.subsets {
            let factors = self.subset_factors(s);
            let mut block = ops::kron_all(&factors);
            if self.normalized {
                let norms = self.subset_squared_norms(s);
                for (r, n2) in norms.iter().enumerate() {
                    let scale = 1.0 / n2.sqrt();
                    for v in block.row_mut(r) {
                        *v *= scale;
                    }
                }
            }
            blocks = Some(match blocks {
                None => block,
                Some(acc) => acc.vstack(&block).expect("same cell count"),
            });
        }
        blocks
    }
}

/// All subsets of `{0, …, k-1}` with exactly `size` elements, in
/// lexicographic order.
pub fn subsets_of_size(k: usize, size: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    if size > k {
        return out;
    }
    let mut current: Vec<usize> = (0..size).collect();
    loop {
        out.push(current.clone());
        // Next combination.
        let mut i = size;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if current[i] != i + k - size {
                current[i] += 1;
                for j in (i + 1)..size {
                    current[j] = current[j - 1] + 1;
                }
                break;
            }
            if i == 0 {
                return out;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::gram_consistent;
    use mm_linalg::approx_eq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn subsets_of_size_enumeration() {
        assert_eq!(subsets_of_size(3, 0), vec![Vec::<usize>::new()]);
        assert_eq!(subsets_of_size(3, 1), vec![vec![0], vec![1], vec![2]]);
        assert_eq!(
            subsets_of_size(4, 2),
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3]
            ]
        );
        assert_eq!(subsets_of_size(3, 3), vec![vec![0, 1, 2]]);
        assert!(subsets_of_size(2, 3).is_empty());
    }

    #[test]
    fn two_way_marginal_counts() {
        let d = Domain::new(&[3, 4, 2]);
        let w = MarginalWorkload::all_k_way(d, 2, MarginalKind::Point);
        assert_eq!(w.subsets().len(), 3);
        // 3*4 + 3*2 + 4*2 = 12 + 6 + 8 = 26 queries.
        assert_eq!(w.query_count(), 26);
    }

    #[test]
    fn point_marginal_gram_consistent() {
        let d = Domain::new(&[3, 2, 2]);
        let w = MarginalWorkload::all_k_way(d, 2, MarginalKind::Point);
        assert!(gram_consistent(&w, 1e-9));
    }

    #[test]
    fn range_marginal_gram_consistent() {
        let d = Domain::new(&[3, 3]);
        let w = MarginalWorkload::all_k_way(d, 1, MarginalKind::Range);
        assert!(gram_consistent(&w, 1e-9));
    }

    #[test]
    fn normalized_gram_consistent() {
        let d = Domain::new(&[3, 2]);
        for kind in [MarginalKind::Point, MarginalKind::Range] {
            let w = MarginalWorkload::all_k_way(d.clone(), 1, kind).into_normalized();
            assert!(gram_consistent(&w, 1e-9), "{kind:?}");
            assert!(w.query_squared_norms().iter().all(|&v| v == 1.0));
        }
    }

    #[test]
    fn evaluate_matches_matrix() {
        let d = Domain::new(&[2, 3, 2]);
        let w = MarginalWorkload::up_to_k_way(d, 2, MarginalKind::Point);
        let x: Vec<f64> = (0..12).map(|i| (i as f64) * 0.7 + 1.0).collect();
        let fast = w.evaluate(&x);
        let m = w.to_matrix().unwrap();
        let slow = m.matvec(&x).unwrap();
        assert_eq!(fast.len(), w.query_count());
        for (f, s) in fast.iter().zip(slow.iter()) {
            assert!(approx_eq(*f, *s, 1e-10));
        }
    }

    #[test]
    fn normalized_evaluate_matches_matrix() {
        let d = Domain::new(&[2, 4]);
        let w = MarginalWorkload::all_k_way(d, 1, MarginalKind::Range).into_normalized();
        let x: Vec<f64> = (0..8).map(|i| (i % 3) as f64 + 0.5).collect();
        let fast = w.evaluate(&x);
        let m = w.to_matrix().unwrap();
        let slow = m.matvec(&x).unwrap();
        for (f, s) in fast.iter().zip(slow.iter()) {
            assert!(approx_eq(*f, *s, 1e-10));
        }
    }

    #[test]
    fn zero_way_marginal_is_total() {
        let d = Domain::new(&[2, 2]);
        let w = MarginalWorkload::all_k_way(d, 0, MarginalKind::Point);
        assert_eq!(w.query_count(), 1);
        assert_eq!(w.evaluate(&[1.0, 2.0, 3.0, 4.0]), vec![10.0]);
    }

    #[test]
    fn full_way_point_marginal_is_identity() {
        let d = Domain::new(&[2, 3]);
        let w = MarginalWorkload::all_k_way(d, 2, MarginalKind::Point);
        let g = w.gram();
        for i in 0..6 {
            for j in 0..6 {
                let e = if i == j { 1.0 } else { 0.0 };
                assert!(approx_eq(g[(i, j)], e, 1e-12));
            }
        }
    }

    #[test]
    fn all_marginals_subset_count() {
        let d = Domain::new(&[2, 2, 2]);
        let w = MarginalWorkload::all_marginals(d, MarginalKind::Point);
        assert_eq!(w.subsets().len(), 8); // 2^3 subsets including empty
    }

    #[test]
    fn random_marginals_are_distinct() {
        let d = Domain::new(&[2, 3, 2, 2]);
        let mut rng = StdRng::seed_from_u64(5);
        let w = MarginalWorkload::random(d, 6, MarginalKind::Point, &mut rng);
        assert_eq!(w.subsets().len(), 6);
        let mut sorted = w.subsets().to_vec();
        sorted.dedup();
        assert_eq!(sorted.len(), 6);
    }

    #[test]
    fn duplicate_subsets_removed() {
        let d = Domain::new(&[2, 2]);
        let w = MarginalWorkload::from_subsets(
            d,
            vec![vec![0], vec![0], vec![1, 0]],
            MarginalKind::Point,
        );
        assert_eq!(w.subsets(), &[vec![0], vec![0, 1]]);
    }

    #[test]
    fn marginal_evaluate_sums_out_other_attributes() {
        let d = Domain::new(&[2, 3]);
        let w = MarginalWorkload::from_subsets(d, vec![vec![0]], MarginalKind::Point);
        // x arranged row-major (attribute 0 slowest): rows are attr0 values.
        let x = vec![1.0, 2.0, 3.0, 10.0, 20.0, 30.0];
        assert_eq!(w.evaluate(&x), vec![6.0, 60.0]);
    }

    #[test]
    #[should_panic(expected = "attribute index out of range")]
    fn out_of_range_attribute_panics() {
        MarginalWorkload::from_subsets(Domain::new(&[2, 2]), vec![vec![5]], MarginalKind::Point);
    }
}
