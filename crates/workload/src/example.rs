//! The running example of the paper (Fig. 1): 8 counting queries over the
//! student relation `R(name, gradyear, gender, gpa)` with 8 cells formed by
//! gender × four gpa ranges.

use crate::explicit::ExplicitWorkload;
use crate::query::LinearQuery;

/// Number of cells in the Fig. 1 example (2 genders × 4 gpa buckets).
pub const FIG1_CELLS: usize = 8;

/// Builds the workload matrix `W` of Fig. 1(b):
///
/// * q1 — all students
/// * q2 — female students (cells 5–8 in the paper's ordering; here the first
///   four cells are Male and the last four Female, matching Fig. 1(a))
/// * q3 — male students
/// * q4 — students with gpa < 3.0
/// * q5 — students with gpa ≥ 3.0
/// * q6 — female students with gpa ≥ 3.0
/// * q7 — male students with gpa < 3.0
/// * q8 — difference between male and female students
pub fn fig1_workload() -> ExplicitWorkload {
    let rows: Vec<Vec<f64>> = vec![
        vec![1., 1., 1., 1., 1., 1., 1., 1.],
        vec![1., 1., 1., 1., 0., 0., 0., 0.],
        vec![0., 0., 0., 0., 1., 1., 1., 1.],
        vec![1., 1., 0., 0., 1., 1., 0., 0.],
        vec![0., 0., 1., 1., 0., 0., 1., 1.],
        vec![0., 0., 0., 0., 0., 0., 1., 1.],
        vec![1., 1., 0., 0., 0., 0., 0., 0.],
        vec![1., 1., 1., 1., -1., -1., -1., -1.],
    ];
    let queries = rows
        .into_iter()
        .map(|r| LinearQuery::from_dense(&r))
        .collect();
    ExplicitWorkload::new("fig1 student workload", queries)
}

/// Human-readable descriptions of the Fig. 1(c) queries, in row order.
pub fn fig1_query_descriptions() -> Vec<&'static str> {
    vec![
        "all students",
        "male students (cells 1-4)",
        "female students (cells 5-8)",
        "students with gpa < 3.0",
        "students with gpa >= 3.0",
        "female students with gpa >= 3.0",
        "male students with gpa < 3.0",
        "difference between male and female students",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workload;
    use mm_linalg::approx_eq;

    #[test]
    fn fig1_shape_and_sensitivity() {
        let w = fig1_workload();
        assert_eq!(w.dim(), FIG1_CELLS);
        assert_eq!(w.query_count(), 8);
        // The paper states ||W||_2 = sqrt(5).
        let m = w.to_matrix().unwrap();
        assert!(approx_eq(m.max_col_norm_l2(), 5.0_f64.sqrt(), 1e-12));
    }

    #[test]
    fn fig1_gram_trace() {
        // trace(WᵀW) = total squared entries = 36.
        let w = fig1_workload();
        assert!(approx_eq(w.gram().trace(), 36.0, 1e-12));
    }

    #[test]
    fn fig1_q3_is_q1_minus_q2() {
        let w = fig1_workload();
        let x: Vec<f64> = (1..=8).map(|v| v as f64).collect();
        let answers = w.evaluate(&x);
        assert!(approx_eq(answers[2], answers[0] - answers[1], 1e-12));
    }

    #[test]
    fn descriptions_match_query_count() {
        assert_eq!(
            fig1_query_descriptions().len(),
            fig1_workload().query_count()
        );
    }
}
