//! Tensor contraction helpers for Kronecker-structured workloads.
//!
//! Multi-dimensional workloads (ranges and marginals over product domains)
//! are Kronecker products `A₁ ⊗ A₂ ⊗ … ⊗ A_k` of small per-attribute
//! matrices.  Evaluating such a workload on a data vector never needs the
//! (potentially huge) product matrix: treating the data vector as a tensor of
//! shape `(d₁, …, d_k)` and applying each factor along its own axis gives the
//! same result with `O(Σ rᵢ dᵢ · n/dᵢ)` work.

use mm_linalg::Matrix;

/// Applies matrix `m` (shape `r x shape[axis]`) along `axis` of the row-major
/// tensor `x` with the given `shape`, returning the new tensor and its shape.
///
/// Panics when shapes are inconsistent.
pub fn apply_along_axis(
    x: &[f64],
    shape: &[usize],
    axis: usize,
    m: &Matrix,
) -> (Vec<f64>, Vec<usize>) {
    assert!(axis < shape.len(), "axis out of bounds");
    let d = shape[axis];
    assert_eq!(m.cols(), d, "matrix columns must match the axis size");
    assert_eq!(
        x.len(),
        shape.iter().product::<usize>(),
        "tensor data length must match its shape"
    );
    let r = m.rows();
    let inner: usize = shape[axis + 1..].iter().product();
    let outer: usize = shape[..axis].iter().product();

    let mut new_shape = shape.to_vec();
    new_shape[axis] = r;
    let mut out = vec![0.0; outer * r * inner];

    for o in 0..outer {
        let x_block = &x[o * d * inner..(o + 1) * d * inner];
        let out_block = &mut out[o * r * inner..(o + 1) * r * inner];
        for (i, row) in (0..r).map(|i| (i, m.row(i))) {
            let out_slice = &mut out_block[i * inner..(i + 1) * inner];
            for (k, &coeff) in row.iter().enumerate() {
                if coeff == 0.0 {
                    continue;
                }
                let x_slice = &x_block[k * inner..(k + 1) * inner];
                for (ov, xv) in out_slice.iter_mut().zip(x_slice.iter()) {
                    *ov += coeff * xv;
                }
            }
        }
    }
    (out, new_shape)
}

/// Evaluates `(A₁ ⊗ … ⊗ A_k) x` where `x` is a row-major tensor of shape
/// `shape` (so `shape[i] == factors[i].cols()`), without forming the product.
pub fn kron_apply(factors: &[&Matrix], shape: &[usize], x: &[f64]) -> Vec<f64> {
    assert_eq!(factors.len(), shape.len(), "one factor per axis required");
    let mut data = x.to_vec();
    let mut cur_shape = shape.to_vec();
    for (axis, m) in factors.iter().enumerate() {
        let (next, next_shape) = apply_along_axis(&data, &cur_shape, axis, m);
        data = next;
        cur_shape = next_shape;
    }
    data
}

/// Computes per-axis prefix sums of the row-major tensor `x`, producing the
/// summed-area table used to evaluate hyper-rectangle range queries in
/// `O(2^k)` per query.
pub fn summed_area_table(x: &[f64], shape: &[usize]) -> Vec<f64> {
    assert_eq!(x.len(), shape.iter().product::<usize>());
    let mut t = x.to_vec();
    let k = shape.len();
    for axis in 0..k {
        let d = shape[axis];
        let inner: usize = shape[axis + 1..].iter().product();
        let outer: usize = shape[..axis].iter().product();
        for o in 0..outer {
            for step in 1..d {
                let base = o * d * inner;
                let (prev_part, cur_part) =
                    t[base + (step - 1) * inner..base + (step + 1) * inner].split_at_mut(inner);
                for (c, p) in cur_part.iter_mut().zip(prev_part.iter()) {
                    *c += p;
                }
            }
        }
    }
    t
}

/// Evaluates the hyper-rectangle sum `Σ x[cell]` over `lows..=highs` using a
/// precomputed summed-area table (from [`summed_area_table`]).
pub fn box_sum(table: &[f64], shape: &[usize], lows: &[usize], highs: &[usize]) -> f64 {
    let k = shape.len();
    assert_eq!(lows.len(), k);
    assert_eq!(highs.len(), k);
    let mut total = 0.0;
    // Inclusion-exclusion over the 2^k corners.
    for mask in 0..(1usize << k) {
        let mut idx = 0usize;
        let mut sign = 1.0;
        let mut skip = false;
        for a in 0..k {
            let coord = if mask & (1 << a) == 0 {
                highs[a] as isize
            } else {
                sign = -sign;
                lows[a] as isize - 1
            };
            if coord < 0 {
                skip = true;
                break;
            }
            idx = idx * shape[a] + coord as usize;
        }
        if !skip {
            total += sign * table[idx];
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_linalg::approx_eq;
    use mm_linalg::ops::kron;

    #[test]
    fn apply_along_axis_matches_kron() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![0.0, 1.0], vec![1.0, 1.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![1.0, 0.0, 1.0], vec![2.0, 1.0, 0.0]]).unwrap();
        let shape = [2usize, 3usize];
        let x: Vec<f64> = (0..6).map(|i| i as f64 + 1.0).collect();
        let direct = kron(&a, &b).matvec(&x).unwrap();
        let via_tensor = kron_apply(&[&a, &b], &shape, &x);
        assert_eq!(direct.len(), via_tensor.len());
        for (d, t) in direct.iter().zip(via_tensor.iter()) {
            assert!(approx_eq(*d, *t, 1e-12), "{d} vs {t}");
        }
    }

    #[test]
    fn kron_apply_three_factors() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0]]).unwrap();
        let b = Matrix::identity(2);
        let c = Matrix::from_rows(&[vec![1.0, -1.0]]).unwrap();
        let shape = [2usize, 2, 2];
        let x = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let direct = kron(&kron(&a, &b), &c).matvec(&x).unwrap();
        let via = kron_apply(&[&a, &b, &c], &shape, &x);
        for (d, t) in direct.iter().zip(via.iter()) {
            assert!(approx_eq(*d, *t, 1e-12));
        }
    }

    #[test]
    fn summed_area_table_1d() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let t = summed_area_table(&x, &[4]);
        assert_eq!(t, vec![1.0, 3.0, 6.0, 10.0]);
        assert_eq!(box_sum(&t, &[4], &[1], &[2]), 5.0);
        assert_eq!(box_sum(&t, &[4], &[0], &[3]), 10.0);
        assert_eq!(box_sum(&t, &[4], &[3], &[3]), 4.0);
    }

    #[test]
    fn box_sum_matches_brute_force_2d() {
        let shape = [3usize, 4usize];
        let x: Vec<f64> = (0..12).map(|i| (i * i % 7) as f64).collect();
        let t = summed_area_table(&x, &shape);
        for lo0 in 0..3 {
            for hi0 in lo0..3 {
                for lo1 in 0..4 {
                    for hi1 in lo1..4 {
                        let mut expect = 0.0;
                        for i in lo0..=hi0 {
                            for j in lo1..=hi1 {
                                expect += x[i * 4 + j];
                            }
                        }
                        let got = box_sum(&t, &shape, &[lo0, lo1], &[hi0, hi1]);
                        assert!(approx_eq(got, expect, 1e-9), "({lo0},{hi0},{lo1},{hi1})");
                    }
                }
            }
        }
    }

    #[test]
    fn box_sum_matches_brute_force_3d() {
        let shape = [2usize, 3, 2];
        let x: Vec<f64> = (0..12).map(|i| ((i * 5) % 11) as f64).collect();
        let t = summed_area_table(&x, &shape);
        let got = box_sum(&t, &shape, &[0, 1, 0], &[1, 2, 1]);
        let mut expect = 0.0;
        for i in 0..2 {
            for j in 1..3 {
                for k in 0..2 {
                    expect += x[(i * 3 + j) * 2 + k];
                }
            }
        }
        assert!(approx_eq(got, expect, 1e-12));
    }

    #[test]
    #[should_panic(expected = "axis out of bounds")]
    fn bad_axis_panics() {
        apply_along_axis(&[1.0], &[1], 1, &Matrix::identity(1));
    }
}
