//! Workload fingerprints: a stable hash of the gram matrix used as a
//! strategy-cache key.
//!
//! Strategy selection is *data independent* (Sec. 1 of the paper): the
//! selected strategy depends on the workload only through its gram matrix
//! `WᵀW` (Props. 4–6).  Two workloads with the same gram matrix therefore
//! receive the same strategy, and a serving system can cache selections keyed
//! by a hash of the gram matrix alone.  This module provides that hash as a
//! [`Fingerprint`]: a 64-bit digest of the matrix shape and the exact bit
//! patterns of its entries (no tolerance — semantically equal workloads built
//! the same way hash equal because gram construction is deterministic).
//!
//! The digest is an FNV-1a/xxhash-style multiply-xor fold with a final
//! avalanche, chosen for speed on large matrices (hashing a 2048×2048 gram is
//! orders of magnitude cheaper than one iteration of strategy selection).

use crate::Workload;
use mm_linalg::Matrix;

/// A 64-bit digest identifying a workload up to its gram matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64);

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

const SEED: u64 = 0x9E37_79B9_7F4A_7C15;
const MULT: u64 = 0x2545_F491_4F6C_DD1D;

#[inline]
fn mix(state: u64, word: u64) -> u64 {
    let x = (state ^ word).wrapping_mul(MULT);
    x ^ (x >> 29)
}

#[inline]
fn avalanche(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^ (x >> 33)
}

/// A gram matrix handed to the fingerprint contained a NaN entry.
///
/// A NaN-poisoned gram is already broken upstream (some query coefficient or
/// matrix product produced NaN), and because `NaN != NaN` it would silently
/// violate the "equal grams hash equal" cache contract, so fingerprinting
/// surfaces it as a typed error in **all** builds — a `debug_assert!` here
/// once let release builds cache-key poisoned grams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NanGramEntry {
    /// Row of the first NaN entry found.
    pub row: usize,
    /// Column of the first NaN entry found.
    pub col: usize,
}

impl std::fmt::Display for NanGramEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "gram matrix entry ({}, {}) is NaN; the workload is numerically broken upstream",
            self.row, self.col
        )
    }
}

impl std::error::Error for NanGramEntry {}

/// `-0.0` hashes as `+0.0` so that two grams that compare equal entry-wise
/// hash equal (NaN entries are the callers' concern).
#[inline]
fn canonical_bits(v: f64) -> u64 {
    if v == 0.0 {
        0.0_f64.to_bits()
    } else {
        v.to_bits()
    }
}

/// The one hashing loop both fingerprint variants share; `entry_bits` maps
/// each entry to the bits to fold in, or rejects it.
fn fold_gram(
    gram: &Matrix,
    mut entry_bits: impl FnMut(f64, usize, usize) -> Result<u64, NanGramEntry>,
) -> Result<Fingerprint, NanGramEntry> {
    let mut state = mix(SEED, gram.rows() as u64);
    state = mix(state, gram.cols() as u64);
    for i in 0..gram.rows() {
        for j in 0..gram.cols() {
            state = mix(state, entry_bits(gram[(i, j)], i, j)?);
        }
    }
    Ok(Fingerprint(avalanche(state)))
}

/// Hashes a gram matrix (shape plus exact entry bit patterns), failing with
/// the location of the first NaN entry.
///
/// `-0.0` is canonicalised to `+0.0` so that two grams that compare equal
/// entry-wise hash equal.  This is the variant serving paths should use: a
/// NaN gram must not become a cache key (see [`NanGramEntry`]).
pub fn try_gram_fingerprint(gram: &Matrix) -> Result<Fingerprint, NanGramEntry> {
    fold_gram(gram, |v, row, col| {
        if v.is_nan() {
            Err(NanGramEntry { row, col })
        } else {
            Ok(canonical_bits(v))
        }
    })
}

/// Infallible [`try_gram_fingerprint`]: NaN entries are canonicalised to one
/// fixed bit pattern, so entry-wise-equal grams still hash equal even when
/// poisoned.  Prefer the checked variant wherever an error can be surfaced.
pub fn gram_fingerprint(gram: &Matrix) -> Fingerprint {
    fold_gram(gram, |v, _, _| {
        Ok(if v.is_nan() {
            f64::NAN.to_bits()
        } else {
            canonical_bits(v)
        })
    })
    .expect("NaN-canonicalising fingerprint cannot fail")
}

/// Fingerprints any [`Workload`] through its gram matrix.
///
/// Callers that already hold the gram matrix (e.g. a serving engine that
/// needs it for error analysis anyway) should prefer [`gram_fingerprint`]
/// to avoid recomputing it.
pub fn workload_fingerprint<W: Workload + ?Sized>(workload: &W) -> Fingerprint {
    gram_fingerprint(&workload.gram())
}

/// The structural identity of a matrix-free workload (see
/// [`crate::structured::StructuredWorkload`]): everything the serving
/// engine's structured path needs to key caches and persist selections
/// *without* materialising an O(n²) gram matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadDescriptor {
    /// 1D inclusive interval (range) queries over `n` cells, in evaluation
    /// order.
    Intervals {
        /// Number of cells in the data vector.
        n: usize,
        /// The queried inclusive intervals `(lo, hi)`.
        intervals: std::sync::Arc<Vec<(usize, usize)>>,
    },
}

impl WorkloadDescriptor {
    /// Number of cells the described workload covers.
    pub fn dim(&self) -> usize {
        match self {
            WorkloadDescriptor::Intervals { n, .. } => *n,
        }
    }

    /// Number of queries in the described workload.
    pub fn query_count(&self) -> usize {
        match self {
            WorkloadDescriptor::Intervals { intervals, .. } => intervals.len(),
        }
    }
}

/// Domain-separation tag folded into every structured fingerprint, so a
/// structured descriptor can never collide with a gram fingerprint by
/// construction (the gram fold starts from the matrix shape instead).
const STRUCTURED_TAG: u64 = 0x6d6d_5f73_7472_7563; // "mm_struc"

/// Fingerprints a [`WorkloadDescriptor`] in O(descriptor size) — for
/// interval workloads, O(m) integer folds instead of the O(n²) gram hash.
///
/// Same digest family as [`gram_fingerprint`] (multiply-xor fold plus
/// avalanche) but over the exact structural description, under a
/// domain-separating tag.  Two equal descriptors always hash equal; the
/// serving engine's structured cache and store key on this.
pub fn structured_fingerprint(descriptor: &WorkloadDescriptor) -> Fingerprint {
    let mut state = mix(SEED, STRUCTURED_TAG);
    match descriptor {
        WorkloadDescriptor::Intervals { n, intervals } => {
            state = mix(state, 1); // variant tag
            state = mix(state, *n as u64);
            state = mix(state, intervals.len() as u64);
            for &(lo, hi) in intervals.iter() {
                state = mix(state, lo as u64);
                state = mix(state, hi as u64);
            }
        }
    }
    Fingerprint(avalanche(state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::range::AllRangeWorkload;
    use crate::transform::{seeded_permutation, PermutedWorkload};
    use crate::{Domain, IdentityWorkload, TotalWorkload};

    #[test]
    fn deterministic_and_shape_sensitive() {
        let a = gram_fingerprint(&IdentityWorkload::new(8).gram());
        let b = gram_fingerprint(&IdentityWorkload::new(8).gram());
        assert_eq!(a, b);
        assert_ne!(a, gram_fingerprint(&IdentityWorkload::new(9).gram()));
        assert_ne!(a, gram_fingerprint(&TotalWorkload::new(8).gram()));
    }

    #[test]
    fn same_gram_same_fingerprint_across_construction() {
        // Two structurally different objects with the same gram matrix.
        let w1 = AllRangeWorkload::new(Domain::one_dim(16));
        let w2 = AllRangeWorkload::new(Domain::one_dim(16));
        assert_eq!(workload_fingerprint(&w1), workload_fingerprint(&w2));
    }

    #[test]
    fn permutation_changes_fingerprint() {
        // Permuted cell conditions change the gram (entry order), hence the
        // fingerprint — correctly so: the selected strategy matrix differs by
        // the same permutation.
        let base = AllRangeWorkload::new(Domain::one_dim(12));
        let perm = PermutedWorkload::new(
            AllRangeWorkload::new(Domain::one_dim(12)),
            seeded_permutation(12, 7),
        );
        assert_ne!(workload_fingerprint(&base), workload_fingerprint(&perm));
    }

    #[test]
    fn zero_sign_canonicalised() {
        let mut g1 = Matrix::zeros(2, 2);
        let mut g2 = Matrix::zeros(2, 2);
        g1[(0, 0)] = 0.0;
        g2[(0, 0)] = -0.0;
        assert_eq!(gram_fingerprint(&g1), gram_fingerprint(&g2));
    }

    #[test]
    fn nan_grams_are_detected_in_all_builds() {
        // Runs identically under `cargo test` and `cargo test --release`:
        // the NaN guard is a real check, not a debug assertion.
        let mut g = Matrix::zeros(3, 3);
        g[(1, 2)] = f64::NAN;
        let err = try_gram_fingerprint(&g).unwrap_err();
        assert_eq!(err, NanGramEntry { row: 1, col: 2 });
        assert!(err.to_string().contains("(1, 2)"));
        assert!(try_gram_fingerprint(&Matrix::zeros(3, 3)).is_ok());
    }

    #[test]
    fn infallible_fingerprint_canonicalises_nan() {
        // Entry-wise-equal poisoned grams hash equal despite NaN != NaN,
        // whatever the NaN's sign or payload bits.
        let mut g1 = Matrix::zeros(2, 2);
        let mut g2 = Matrix::zeros(2, 2);
        g1[(0, 1)] = f64::NAN;
        g2[(0, 1)] = -f64::NAN;
        assert_eq!(gram_fingerprint(&g1), gram_fingerprint(&g2));
        assert_ne!(
            gram_fingerprint(&g1),
            gram_fingerprint(&Matrix::zeros(2, 2))
        );
    }

    #[test]
    fn checked_and_infallible_agree_on_clean_grams() {
        let g = IdentityWorkload::new(8).gram();
        assert_eq!(try_gram_fingerprint(&g).unwrap(), gram_fingerprint(&g));
    }

    #[test]
    fn display_is_hex() {
        let f = Fingerprint(0xABCD);
        assert_eq!(f.to_string(), "000000000000abcd");
    }

    #[test]
    fn structured_fingerprint_is_deterministic_and_content_sensitive() {
        let desc = |n: usize, iv: Vec<(usize, usize)>| WorkloadDescriptor::Intervals {
            n,
            intervals: std::sync::Arc::new(iv),
        };
        let a = structured_fingerprint(&desc(8, vec![(0, 3), (2, 7)]));
        let b = structured_fingerprint(&desc(8, vec![(0, 3), (2, 7)]));
        assert_eq!(a, b);
        // Order, content, and domain size all matter.
        assert_ne!(a, structured_fingerprint(&desc(8, vec![(2, 7), (0, 3)])));
        assert_ne!(a, structured_fingerprint(&desc(8, vec![(0, 3), (2, 6)])));
        assert_ne!(a, structured_fingerprint(&desc(9, vec![(0, 3), (2, 7)])));
    }

    #[test]
    fn structured_and_gram_fingerprints_are_domain_separated() {
        // Same workload, two identity schemes: the structured digest is
        // keyed on the descriptor under its own tag and must not collide
        // with the gram digest of the same workload.
        let w = crate::structured::RangeQueryWorkload::prefixes(8);
        use crate::structured::StructuredWorkload;
        assert_ne!(
            structured_fingerprint(&w.descriptor()),
            workload_fingerprint(&w)
        );
    }
}
