//! Workload fingerprints: a stable hash of the gram matrix used as a
//! strategy-cache key.
//!
//! Strategy selection is *data independent* (Sec. 1 of the paper): the
//! selected strategy depends on the workload only through its gram matrix
//! `WᵀW` (Props. 4–6).  Two workloads with the same gram matrix therefore
//! receive the same strategy, and a serving system can cache selections keyed
//! by a hash of the gram matrix alone.  This module provides that hash as a
//! [`Fingerprint`]: a 64-bit digest of the matrix shape and the exact bit
//! patterns of its entries (no tolerance — semantically equal workloads built
//! the same way hash equal because gram construction is deterministic).
//!
//! The digest is an FNV-1a/xxhash-style multiply-xor fold with a final
//! avalanche, chosen for speed on large matrices (hashing a 2048×2048 gram is
//! orders of magnitude cheaper than one iteration of strategy selection).

use crate::Workload;
use mm_linalg::Matrix;

/// A 64-bit digest identifying a workload up to its gram matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64);

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

const SEED: u64 = 0x9E37_79B9_7F4A_7C15;
const MULT: u64 = 0x2545_F491_4F6C_DD1D;

#[inline]
fn mix(state: u64, word: u64) -> u64 {
    let x = (state ^ word).wrapping_mul(MULT);
    x ^ (x >> 29)
}

#[inline]
fn avalanche(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^ (x >> 33)
}

/// Hashes a gram matrix (shape plus exact entry bit patterns).
///
/// `-0.0` is canonicalised to `+0.0` so that two grams that compare equal
/// entry-wise hash equal; `NaN` entries are rejected by debug assertion (a
/// gram matrix with NaN entries is already broken upstream).
pub fn gram_fingerprint(gram: &Matrix) -> Fingerprint {
    let mut state = mix(SEED, gram.rows() as u64);
    state = mix(state, gram.cols() as u64);
    for i in 0..gram.rows() {
        for j in 0..gram.cols() {
            let v = gram[(i, j)];
            debug_assert!(!v.is_nan(), "gram matrix entry ({i},{j}) is NaN");
            let canonical = if v == 0.0 { 0.0_f64 } else { v };
            state = mix(state, canonical.to_bits());
        }
    }
    Fingerprint(avalanche(state))
}

/// Fingerprints any [`Workload`] through its gram matrix.
///
/// Callers that already hold the gram matrix (e.g. a serving engine that
/// needs it for error analysis anyway) should prefer [`gram_fingerprint`]
/// to avoid recomputing it.
pub fn workload_fingerprint<W: Workload + ?Sized>(workload: &W) -> Fingerprint {
    gram_fingerprint(&workload.gram())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::range::AllRangeWorkload;
    use crate::transform::{seeded_permutation, PermutedWorkload};
    use crate::{Domain, IdentityWorkload, TotalWorkload};

    #[test]
    fn deterministic_and_shape_sensitive() {
        let a = gram_fingerprint(&IdentityWorkload::new(8).gram());
        let b = gram_fingerprint(&IdentityWorkload::new(8).gram());
        assert_eq!(a, b);
        assert_ne!(a, gram_fingerprint(&IdentityWorkload::new(9).gram()));
        assert_ne!(a, gram_fingerprint(&TotalWorkload::new(8).gram()));
    }

    #[test]
    fn same_gram_same_fingerprint_across_construction() {
        // Two structurally different objects with the same gram matrix.
        let w1 = AllRangeWorkload::new(Domain::one_dim(16));
        let w2 = AllRangeWorkload::new(Domain::one_dim(16));
        assert_eq!(workload_fingerprint(&w1), workload_fingerprint(&w2));
    }

    #[test]
    fn permutation_changes_fingerprint() {
        // Permuted cell conditions change the gram (entry order), hence the
        // fingerprint — correctly so: the selected strategy matrix differs by
        // the same permutation.
        let base = AllRangeWorkload::new(Domain::one_dim(12));
        let perm = PermutedWorkload::new(
            AllRangeWorkload::new(Domain::one_dim(12)),
            seeded_permutation(12, 7),
        );
        assert_ne!(workload_fingerprint(&base), workload_fingerprint(&perm));
    }

    #[test]
    fn zero_sign_canonicalised() {
        let mut g1 = Matrix::zeros(2, 2);
        let mut g2 = Matrix::zeros(2, 2);
        g1[(0, 0)] = 0.0;
        g2[(0, 0)] = -0.0;
        assert_eq!(gram_fingerprint(&g1), gram_fingerprint(&g2));
    }

    #[test]
    fn display_is_hex() {
        let f = Fingerprint(0xABCD);
        assert_eq!(f.to_string(), "000000000000abcd");
    }
}
