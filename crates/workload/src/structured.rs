//! Structured (matrix-free) workloads: range queries as `LinearOperator`s.
//!
//! A dense workload caps the served domain near n ≈ 1024 — its gram matrix
//! alone is O(n²).  But the paper's central workload family, 1D range
//! queries, is *structured*: every query is an interval indicator, so `W·x`
//! is a batch of prefix-sum evaluations and the whole workload is described
//! by its interval list.  [`RangeQueryWorkload`] carries that description,
//! exposes it as a [`LinearOperator`] whose applies cost O(total interval
//! length) — O(n) for the prefix workload — and implements [`Workload`]
//! densely for small-n cross-validation.
//!
//! [`StructuredWorkload`] is the capability trait the serving engine's
//! matrix-free path keys on: an operator for evaluation plus a
//! [`WorkloadDescriptor`] that identifies the workload *without* an O(n²)
//! gram (see [`crate::fingerprint::structured_fingerprint`]).
//!
//! The operator obeys the crate-wide bitwise contract (see
//! [`mm_linalg::operator`]): `apply`/`apply_transpose` reproduce the dense
//! width-1 kernels bit for bit.  In particular `apply` shares one ascending
//! accumulator across queries with the same lower endpoint — the running
//! prefix sum for `(lo, h)` *is* the dense sequential sum for every shorter
//! `(lo, h′)` along the way — which is what makes the n-query prefix
//! workload an O(n) apply instead of O(n²).

use crate::{Workload, WorkloadDescriptor};
use mm_linalg::{LinearOperator, Matrix};
use std::sync::Arc;

/// Maximum number of entries for which [`RangeQueryWorkload::to_matrix`]
/// materialises the explicit query matrix (matches the caps used by the
/// dense range workloads).
const EXPLICIT_ENTRY_LIMIT: usize = 16_777_216; // 16M entries = 128 MiB

/// A workload of 1D range (interval) queries, stored structurally.
///
/// Each query is the indicator of an inclusive cell interval `[lo, hi]`;
/// answers come back in the order the intervals were given.  All
/// coefficients are exactly `1.0`, so structured and dense evaluation agree
/// bit for bit.
#[derive(Debug, Clone)]
pub struct RangeQueryWorkload {
    n: usize,
    intervals: Arc<Vec<(usize, usize)>>,
    operator: Arc<IntervalOperator>,
}

impl RangeQueryWorkload {
    /// Builds a workload from explicit inclusive intervals over `n` cells.
    ///
    /// Panics when `n == 0`, the interval list is empty, or any interval
    /// has `lo > hi` or `hi >= n` (workload constructors in this crate
    /// assert on malformed shapes; serving layers validate upstream).
    pub fn from_intervals(n: usize, intervals: Vec<(usize, usize)>) -> Self {
        assert!(n > 0, "range workload needs at least one cell");
        assert!(
            !intervals.is_empty(),
            "range workload needs at least one query"
        );
        for &(lo, hi) in &intervals {
            assert!(
                lo <= hi && hi < n,
                "interval ({lo}, {hi}) is malformed for a domain of {n} cells"
            );
        }
        let intervals = Arc::new(intervals);
        let operator = Arc::new(IntervalOperator::new(n, intervals.clone()));
        RangeQueryWorkload {
            n,
            intervals,
            operator,
        }
    }

    /// The n-query prefix workload over `n` cells: intervals `[0, k]` for
    /// every `k` — the 1D CDF, the workload the structured path answers in
    /// O(n) per apply.
    pub fn prefixes(n: usize) -> Self {
        RangeQueryWorkload::from_intervals(n, (0..n).map(|k| (0, k)).collect())
    }

    /// The queried intervals, in evaluation order.
    pub fn intervals(&self) -> &[(usize, usize)] {
        &self.intervals
    }
}

impl Workload for RangeQueryWorkload {
    fn dim(&self) -> usize {
        self.n
    }

    fn query_count(&self) -> usize {
        self.intervals.len()
    }

    fn gram(&self) -> Matrix {
        // (WᵀW)[i][j] = number of intervals containing both i and j: each
        // interval contributes +1 over the square block [lo..=hi]².  A 2D
        // difference array makes this O(m + n²) with exact integer counts,
        // so the result is independent of interval order bit for bit.
        let n = self.n;
        let mut diff = vec![0i64; (n + 1) * (n + 1)];
        for &(lo, hi) in self.intervals.iter() {
            diff[lo * (n + 1) + lo] += 1;
            diff[lo * (n + 1) + hi + 1] -= 1;
            diff[(hi + 1) * (n + 1) + lo] -= 1;
            diff[(hi + 1) * (n + 1) + hi + 1] += 1;
        }
        let mut gram = Matrix::zeros(n, n);
        let mut above = vec![0i64; n];
        for i in 0..n {
            let mut acc = 0i64;
            for j in 0..n {
                acc += diff[i * (n + 1) + j];
                above[j] += acc;
                gram[(i, j)] = above[j] as f64;
            }
        }
        gram
    }

    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        self.operator.apply(x)
    }

    fn description(&self) -> String {
        format!("range queries (m={}, n={})", self.intervals.len(), self.n)
    }

    fn query_squared_norms(&self) -> Vec<f64> {
        self.intervals
            .iter()
            .map(|&(lo, hi)| (hi - lo + 1) as f64)
            .collect()
    }

    fn to_matrix(&self) -> Option<Matrix> {
        let m = self.intervals.len();
        if m.saturating_mul(self.n) > EXPLICIT_ENTRY_LIMIT {
            return None;
        }
        let mut w = Matrix::zeros(m, self.n);
        for (r, &(lo, hi)) in self.intervals.iter().enumerate() {
            for v in &mut w.row_mut(r)[lo..=hi] {
                *v = 1.0;
            }
        }
        Some(w)
    }
}

/// A workload that can serve through the engine's matrix-free path.
///
/// Implementors provide a [`LinearOperator`] view of the query matrix and a
/// structural [`WorkloadDescriptor`] identifying the workload without
/// materialising anything O(n²).  The contract mirrors [`Workload`]'s:
/// `operator().apply(x)` must equal `evaluate(x)` (bit for bit), and two
/// workloads with equal descriptors must answer identically.
pub trait StructuredWorkload: Workload {
    /// The workload's query matrix as a matrix-free operator.
    fn operator(&self) -> Arc<dyn LinearOperator>;

    /// The structural description used for fingerprinting and persistence.
    fn descriptor(&self) -> WorkloadDescriptor;
}

impl StructuredWorkload for RangeQueryWorkload {
    fn operator(&self) -> Arc<dyn LinearOperator> {
        self.operator.clone()
    }

    fn descriptor(&self) -> WorkloadDescriptor {
        WorkloadDescriptor::Intervals {
            n: self.n,
            intervals: self.intervals.clone(),
        }
    }
}

/// The interval-indicator operator behind [`RangeQueryWorkload`].
///
/// `apply` walks each group of queries sharing a lower endpoint with one
/// ascending running accumulator (bitwise equal to the dense row sums, see
/// the module docs); `apply_transpose` scatters each row in ascending query
/// order, matching the dense width-1 transpose kernel.
#[derive(Debug)]
pub struct IntervalOperator {
    n: usize,
    intervals: Arc<Vec<(usize, usize)>>,
    /// Queries grouped by `lo` and sorted by `hi`, each carrying its
    /// original output index: `(lo, [(hi, index), …])`, ascending in both.
    groups: Vec<(usize, Vec<(usize, usize)>)>,
}

impl IntervalOperator {
    fn new(n: usize, intervals: Arc<Vec<(usize, usize)>>) -> Self {
        let mut order: Vec<usize> = (0..intervals.len()).collect();
        order.sort_by_key(|&q| (intervals[q].0, intervals[q].1, q));
        let mut groups: Vec<(usize, Vec<(usize, usize)>)> = Vec::new();
        for q in order {
            let (lo, hi) = intervals[q];
            match groups.last_mut() {
                Some((glo, members)) if *glo == lo => members.push((hi, q)),
                _ => groups.push((lo, vec![(hi, q)])),
            }
        }
        IntervalOperator {
            n,
            intervals,
            groups,
        }
    }
}

impl LinearOperator for IntervalOperator {
    fn dims(&self) -> (usize, usize) {
        (self.intervals.len(), self.n)
    }

    fn apply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n, "apply: dimension mismatch");
        let mut out = vec![0.0; self.intervals.len()];
        for (lo, members) in &self.groups {
            let mut acc = 0.0;
            let mut next = members.iter();
            let mut pending = next.next();
            let mut i = *lo;
            while let Some(&(hi, q)) = pending {
                while i <= hi {
                    acc += x[i];
                    i += 1;
                }
                out[q] = acc;
                pending = next.next();
            }
        }
        out
    }

    fn apply_transpose(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(
            y.len(),
            self.intervals.len(),
            "apply_transpose: dimension mismatch"
        );
        let mut out = vec![0.0; self.n];
        // Rows in *original* ascending order: the dense kernel accumulates
        // row contributions into each cell in row order, and reordering
        // float additions would change bits.
        for (&(lo, hi), &yr) in self.intervals.iter().zip(y.iter()) {
            for o in &mut out[lo..=hi] {
                *o += yr;
            }
        }
        out
    }

    fn gram_diag(&self) -> Option<Vec<f64>> {
        // Coverage counts via a difference array: exact integers, so the
        // result matches the dense squared-column-norm sums bit for bit.
        let mut diff = vec![0i64; self.n + 1];
        for &(lo, hi) in self.intervals.iter() {
            diff[lo] += 1;
            diff[hi + 1] -= 1;
        }
        let mut out = Vec::with_capacity(self.n);
        let mut acc = 0i64;
        for d in diff.iter().take(self.n) {
            acc += d;
            out.push(acc as f64);
        }
        Some(out)
    }

    fn materialize(&self) -> Option<Matrix> {
        let m = self.intervals.len();
        if m.saturating_mul(self.n) > EXPLICIT_ENTRY_LIMIT {
            return None;
        }
        let mut w = Matrix::zeros(m, self.n);
        for (r, &(lo, hi)) in self.intervals.iter().enumerate() {
            for v in &mut w.row_mut(r)[lo..=hi] {
                *v = 1.0;
            }
        }
        Some(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefix::PrefixWorkload;
    use mm_linalg::ExplicitOperator;

    fn sample() -> RangeQueryWorkload {
        RangeQueryWorkload::from_intervals(8, vec![(0, 7), (2, 5), (0, 3), (6, 6), (0, 7), (3, 3)])
    }

    #[test]
    fn apply_matches_dense_bitwise() {
        let w = sample();
        let dense = ExplicitOperator::new(w.to_matrix().unwrap());
        let x: Vec<f64> = (0..8).map(|i| 0.1 + (i as f64) * 0.37).collect();
        let got = w.operator().apply(&x);
        let expect = dense.apply(&x);
        assert_eq!(got.len(), expect.len());
        for (g, e) in got.iter().zip(expect.iter()) {
            assert_eq!(g.to_bits(), e.to_bits());
        }
    }

    #[test]
    fn transpose_and_gram_diag_match_dense_bitwise() {
        let w = sample();
        let op = w.operator();
        let dense = ExplicitOperator::new(op.materialize().unwrap());
        let y: Vec<f64> = (0..6).map(|i| -0.3 + (i as f64) * 0.11).collect();
        for (g, e) in op
            .apply_transpose(&y)
            .iter()
            .zip(dense.apply_transpose(&y).iter())
        {
            assert_eq!(g.to_bits(), e.to_bits());
        }
        for (g, e) in op
            .gram_diag()
            .unwrap()
            .iter()
            .zip(dense.gram_diag().unwrap().iter())
        {
            assert_eq!(g.to_bits(), e.to_bits());
        }
    }

    #[test]
    fn gram_matches_dense_gram() {
        let w = sample();
        let dense = mm_linalg::ops::gram(&w.to_matrix().unwrap());
        let gram = w.gram();
        for i in 0..8 {
            for j in 0..8 {
                assert_eq!(gram[(i, j)], dense[(i, j)], "({i},{j})");
            }
        }
    }

    #[test]
    fn prefixes_agree_with_prefix_workload() {
        let n = 16;
        let structured = RangeQueryWorkload::prefixes(n);
        let classic = PrefixWorkload::new(n);
        let x: Vec<f64> = (0..n).map(|i| (i as f64) * 1.5 - 3.0).collect();
        let a = structured.evaluate(&x);
        let b = classic.evaluate(&x);
        for (ai, bi) in a.iter().zip(b.iter()) {
            assert_eq!(ai.to_bits(), bi.to_bits());
        }
        let g = structured.gram();
        let gc = classic.gram();
        for i in 0..n {
            for j in 0..n {
                assert_eq!(g[(i, j)], gc[(i, j)]);
            }
        }
    }

    #[test]
    fn descriptor_identifies_the_query_set() {
        let a = sample().descriptor();
        let b = sample().descriptor();
        assert_eq!(a, b);
        assert_ne!(a, RangeQueryWorkload::prefixes(8).descriptor());
        assert_eq!(a.dim(), 8);
        assert_eq!(a.query_count(), 6);
    }

    #[test]
    fn query_norms_are_interval_lengths() {
        let w = sample();
        assert_eq!(w.query_squared_norms(), vec![8.0, 4.0, 4.0, 1.0, 8.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "malformed")]
    fn out_of_range_interval_panics() {
        RangeQueryWorkload::from_intervals(4, vec![(0, 4)]);
    }
}
