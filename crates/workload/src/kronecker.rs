//! Kronecker-product workloads.
//!
//! A [`KroneckerWorkload`] combines one explicit per-attribute workload block
//! per attribute; the combined workload is their Kronecker product.  Its gram
//! matrix is the Kronecker product of the per-attribute gram matrices and
//! evaluation is performed by tensor contraction, so the product matrix is
//! only materialised on demand for small cases.

use crate::domain::Domain;
use crate::tensor::kron_apply;
use crate::Workload;
use mm_linalg::{ops, Matrix};

/// A workload that is the Kronecker product of per-attribute query matrices.
#[derive(Debug, Clone)]
pub struct KroneckerWorkload {
    factors: Vec<Matrix>,
    name: String,
}

impl KroneckerWorkload {
    /// Creates a Kronecker workload from per-attribute factor matrices.
    ///
    /// Panics when the factor list is empty or any factor has no rows.
    pub fn new(name: impl Into<String>, factors: Vec<Matrix>) -> Self {
        assert!(!factors.is_empty(), "at least one factor required");
        assert!(
            factors.iter().all(|f| f.rows() > 0 && f.cols() > 0),
            "factors must be non-empty"
        );
        KroneckerWorkload {
            factors,
            name: name.into(),
        }
    }

    /// The per-attribute factors.
    pub fn factors(&self) -> &[Matrix] {
        &self.factors
    }

    /// The domain implied by the factor column counts.
    pub fn domain(&self) -> Domain {
        let sizes: Vec<usize> = self.factors.iter().map(Matrix::cols).collect();
        Domain::new(&sizes)
    }
}

impl Workload for KroneckerWorkload {
    fn dim(&self) -> usize {
        self.factors.iter().map(Matrix::cols).product()
    }

    fn query_count(&self) -> usize {
        self.factors.iter().map(Matrix::rows).product()
    }

    fn gram(&self) -> Matrix {
        let grams: Vec<Matrix> = self.factors.iter().map(ops::gram).collect();
        ops::kron_all(&grams)
    }

    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        let shape: Vec<usize> = self.factors.iter().map(Matrix::cols).collect();
        let refs: Vec<&Matrix> = self.factors.iter().collect();
        kron_apply(&refs, &shape, x)
    }

    fn description(&self) -> String {
        format!(
            "{} (kronecker of {} factors, {} queries on {} cells)",
            self.name,
            self.factors.len(),
            self.query_count(),
            self.dim()
        )
    }

    fn query_squared_norms(&self) -> Vec<f64> {
        // Squared row norms multiply across factors; enumerate in row-major
        // order (first factor slowest).
        let per_factor: Vec<Vec<f64>> = self
            .factors
            .iter()
            .map(|f| {
                (0..f.rows())
                    .map(|r| f.row(r).iter().map(|v| v * v).sum())
                    .collect()
            })
            .collect();
        let total: usize = per_factor.iter().map(Vec::len).product();
        let mut out = Vec::with_capacity(total);
        let mut idx = vec![0usize; per_factor.len()];
        for _ in 0..total {
            out.push(
                per_factor
                    .iter()
                    .zip(idx.iter())
                    .map(|(list, &i)| list[i])
                    .product(),
            );
            for a in (0..per_factor.len()).rev() {
                idx[a] += 1;
                if idx[a] < per_factor[a].len() {
                    break;
                }
                idx[a] = 0;
            }
        }
        out
    }

    fn to_matrix(&self) -> Option<Matrix> {
        if self.query_count() * self.dim() > 16_000_000 {
            return None;
        }
        Some(ops::kron_all(&self.factors))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::gram_consistent;
    use mm_linalg::approx_eq;

    fn sample_factors() -> Vec<Matrix> {
        vec![
            Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, -1.0]]).unwrap(),
            Matrix::from_rows(&[vec![1.0, 0.0, 0.0], vec![1.0, 1.0, 1.0]]).unwrap(),
        ]
    }

    #[test]
    fn shapes_and_domain() {
        let w = KroneckerWorkload::new("test", sample_factors());
        assert_eq!(w.dim(), 6);
        assert_eq!(w.query_count(), 4);
        assert_eq!(w.domain().sizes(), &[2, 3]);
    }

    #[test]
    fn gram_matches_matrix() {
        let w = KroneckerWorkload::new("test", sample_factors());
        assert!(gram_consistent(&w, 1e-10));
    }

    #[test]
    fn evaluate_matches_matrix() {
        let w = KroneckerWorkload::new("test", sample_factors());
        let x: Vec<f64> = (0..6).map(|i| i as f64 + 1.0).collect();
        let fast = w.evaluate(&x);
        let slow = w.to_matrix().unwrap().matvec(&x).unwrap();
        for (f, s) in fast.iter().zip(slow.iter()) {
            assert!(approx_eq(*f, *s, 1e-12));
        }
    }

    #[test]
    fn query_norms_match_matrix_rows() {
        let w = KroneckerWorkload::new("test", sample_factors());
        let m = w.to_matrix().unwrap();
        let norms = w.query_squared_norms();
        for (r, n2) in norms.iter().enumerate() {
            let row_n2: f64 = m.row(r).iter().map(|v| v * v).sum();
            assert!(approx_eq(*n2, row_n2, 1e-12));
        }
    }

    #[test]
    #[should_panic(expected = "at least one factor")]
    fn empty_factor_list_panics() {
        KroneckerWorkload::new("bad", vec![]);
    }
}
