//! Range-query workloads: all (multi-dimensional) range queries and random
//! subsets of them.
//!
//! The workload of **all** range queries over a product domain is a Kronecker
//! product of the per-attribute 1D all-range workloads, and under the matrix
//! mechanism only its gram matrix matters, which has a closed form per
//! attribute:
//!
//! * unweighted: `G[i][j] = (min(i,j)+1) · (d − max(i,j))` — the number of
//!   intervals of `{0,…,d−1}` containing both `i` and `j`;
//! * unit-norm scaled (used when optimizing towards relative error): each
//!   interval is scaled by `1/√len`, giving
//!   `G'[i][j] = Σ_len count(i,j,len) / len`.
//!
//! The full workload matrix (≈ n²/2 rows in 1D, far more in several
//! dimensions) is therefore never materialised.  Query evaluation uses a
//! summed-area table, so even the 665 000 range queries of the census domain
//! are evaluated in milliseconds.

use crate::domain::Domain;
use crate::tensor::{box_sum, summed_area_table};
use crate::Workload;
use mm_linalg::{ops, Matrix};
use rand::Rng;

/// A hyper-rectangle over a multi-attribute domain (inclusive bounds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeBox {
    /// Inclusive lower bounds, one per attribute.
    pub lows: Vec<usize>,
    /// Inclusive upper bounds, one per attribute.
    pub highs: Vec<usize>,
}

impl RangeBox {
    /// Creates a range box, validating the bounds against the domain.
    pub fn new(domain: &Domain, lows: Vec<usize>, highs: Vec<usize>) -> Self {
        assert_eq!(lows.len(), domain.num_attributes());
        assert_eq!(highs.len(), domain.num_attributes());
        for a in 0..domain.num_attributes() {
            assert!(
                lows[a] <= highs[a] && highs[a] < domain.size(a),
                "invalid bounds on attribute {a}"
            );
        }
        RangeBox { lows, highs }
    }

    /// Number of cells covered by the box.
    pub fn volume(&self) -> usize {
        self.lows
            .iter()
            .zip(self.highs.iter())
            .map(|(&l, &h)| h - l + 1)
            .product()
    }
}

/// Gram matrix of the 1D all-range workload over `d` cells.
///
/// When `normalized` is true every range query is scaled to unit L2 norm.
pub fn all_range_1d_gram(d: usize, normalized: bool) -> Matrix {
    assert!(d > 0);
    if !normalized {
        return Matrix::from_fn(d, d, |i, j| {
            let lo = i.min(j) as f64;
            let hi = i.max(j) as f64;
            (lo + 1.0) * (d as f64 - hi)
        });
    }
    // Normalized: sum over lengths of (count of ranges of that length
    // containing both cells) / length.
    let mut g = Matrix::zeros(d, d);
    for i in 0..d {
        for j in i..d {
            let mut acc = 0.0;
            for len in (j - i + 1)..=d {
                let lo_min = (j + 1).saturating_sub(len);
                let lo_max = i.min(d - len);
                if lo_max >= lo_min {
                    acc += (lo_max - lo_min + 1) as f64 / len as f64;
                }
            }
            g[(i, j)] = acc;
            g[(j, i)] = acc;
        }
    }
    g
}

/// Number of 1D range queries over `d` cells: `d(d+1)/2`.
pub fn all_range_1d_count(d: usize) -> usize {
    d * (d + 1) / 2
}

/// Explicit matrix of the 1D all-range workload over `d` cells, with rows
/// ordered by `(lo, hi)` — the same order used by
/// [`AllRangeWorkload::for_each_box`].
pub fn all_range_1d_matrix(d: usize) -> Matrix {
    let mut m = Matrix::zeros(all_range_1d_count(d), d);
    let mut r = 0;
    for lo in 0..d {
        for hi in lo..d {
            for c in lo..=hi {
                m[(r, c)] = 1.0;
            }
            r += 1;
        }
    }
    m
}

/// The workload of **all** axis-aligned range queries over a domain.
#[derive(Debug, Clone)]
pub struct AllRangeWorkload {
    domain: Domain,
    normalized: bool,
}

impl AllRangeWorkload {
    /// All range queries over the given domain.
    pub fn new(domain: Domain) -> Self {
        AllRangeWorkload {
            domain,
            normalized: false,
        }
    }

    /// All range queries, each scaled to unit L2 norm (for relative-error
    /// oriented strategy selection, Sec. 3.4).
    pub fn normalized(domain: Domain) -> Self {
        AllRangeWorkload {
            domain,
            normalized: true,
        }
    }

    /// The underlying domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Whether queries are scaled to unit norm.
    pub fn is_normalized(&self) -> bool {
        self.normalized
    }

    /// Enumerates all range boxes in the deterministic order used by
    /// [`Workload::evaluate`]: odometer over attributes (first attribute
    /// slowest), per attribute ordered by `(lo, hi)`.
    pub fn for_each_box<F: FnMut(&RangeBox)>(&self, mut f: F) {
        let k = self.domain.num_attributes();
        // Per-attribute list of (lo, hi) pairs.
        let per_dim: Vec<Vec<(usize, usize)>> = self
            .domain
            .sizes()
            .iter()
            .map(|&d| {
                let mut v = Vec::with_capacity(all_range_1d_count(d));
                for lo in 0..d {
                    for hi in lo..d {
                        v.push((lo, hi));
                    }
                }
                v
            })
            .collect();
        let mut idx = vec![0usize; k];
        loop {
            let mut lows = Vec::with_capacity(k);
            let mut highs = Vec::with_capacity(k);
            for a in 0..k {
                let (lo, hi) = per_dim[a][idx[a]];
                lows.push(lo);
                highs.push(hi);
            }
            f(&RangeBox { lows, highs });
            // Advance odometer, last attribute fastest.
            let mut a = k;
            loop {
                if a == 0 {
                    return;
                }
                a -= 1;
                idx[a] += 1;
                if idx[a] < per_dim[a].len() {
                    break;
                }
                idx[a] = 0;
                if a == 0 {
                    return;
                }
            }
        }
    }
}

impl Workload for AllRangeWorkload {
    fn dim(&self) -> usize {
        self.domain.n_cells()
    }

    fn query_count(&self) -> usize {
        self.domain
            .sizes()
            .iter()
            .map(|&d| all_range_1d_count(d))
            .product()
    }

    fn gram(&self) -> Matrix {
        let factors: Vec<Matrix> = self
            .domain
            .sizes()
            .iter()
            .map(|&d| all_range_1d_gram(d, self.normalized))
            .collect();
        ops::kron_all(&factors)
    }

    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim());
        let shape = self.domain.sizes().to_vec();
        let table = summed_area_table(x, &shape);
        let mut out = Vec::with_capacity(self.query_count());
        let normalized = self.normalized;
        self.for_each_box(|b| {
            let mut v = box_sum(&table, &shape, &b.lows, &b.highs);
            if normalized {
                v /= (b.volume() as f64).sqrt();
            }
            out.push(v);
        });
        out
    }

    fn description(&self) -> String {
        format!(
            "all range queries on {}{}",
            self.domain,
            if self.normalized { " (normalized)" } else { "" }
        )
    }

    fn query_squared_norms(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.query_count());
        if self.normalized {
            out.resize(self.query_count(), 1.0);
            return out;
        }
        self.for_each_box(|b| out.push(b.volume() as f64));
        out
    }
}

/// A workload of uniformly sampled range queries.
///
/// Sampling follows the two-step method used by Xiao et al.: for each
/// attribute independently, a range length is drawn uniformly from
/// `1..=d` and then a starting position uniformly among the valid ones.
#[derive(Debug, Clone)]
pub struct RandomRangeWorkload {
    domain: Domain,
    boxes: Vec<RangeBox>,
    normalized: bool,
}

impl RandomRangeWorkload {
    /// Samples `count` random range queries over `domain` using `rng`.
    pub fn sample<R: Rng + ?Sized>(domain: Domain, count: usize, rng: &mut R) -> Self {
        let boxes = (0..count)
            .map(|_| {
                let mut lows = Vec::with_capacity(domain.num_attributes());
                let mut highs = Vec::with_capacity(domain.num_attributes());
                for &d in domain.sizes() {
                    let len = rng.gen_range(1..=d);
                    let lo = rng.gen_range(0..=(d - len));
                    lows.push(lo);
                    highs.push(lo + len - 1);
                }
                RangeBox { lows, highs }
            })
            .collect();
        RandomRangeWorkload {
            domain,
            boxes,
            normalized: false,
        }
    }

    /// Builds the workload from explicit boxes.
    pub fn from_boxes(domain: Domain, boxes: Vec<RangeBox>) -> Self {
        assert!(
            !boxes.is_empty(),
            "random range workload needs at least one query"
        );
        RandomRangeWorkload {
            domain,
            boxes,
            normalized: false,
        }
    }

    /// Returns a unit-norm scaled copy of the workload.
    pub fn into_normalized(mut self) -> Self {
        self.normalized = true;
        self
    }

    /// The sampled range boxes.
    pub fn boxes(&self) -> &[RangeBox] {
        &self.boxes
    }

    /// The underlying domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    fn query_weight(&self, b: &RangeBox) -> f64 {
        if self.normalized {
            1.0 / (b.volume() as f64).sqrt()
        } else {
            1.0
        }
    }

    fn cells_of(&self, b: &RangeBox) -> Vec<usize> {
        // Enumerate covered cells via an odometer over the box.
        let k = self.domain.num_attributes();
        let mut cells = Vec::with_capacity(b.volume());
        let mut cur = b.lows.clone();
        loop {
            cells.push(self.domain.index_of(&cur));
            let mut a = k;
            loop {
                if a == 0 {
                    return cells;
                }
                a -= 1;
                if cur[a] < b.highs[a] {
                    cur[a] += 1;
                    cur[(a + 1)..k].copy_from_slice(&b.lows[(a + 1)..k]);
                    break;
                }
                if a == 0 {
                    return cells;
                }
            }
        }
    }
}

impl Workload for RandomRangeWorkload {
    fn dim(&self) -> usize {
        self.domain.n_cells()
    }

    fn query_count(&self) -> usize {
        self.boxes.len()
    }

    fn gram(&self) -> Matrix {
        let n = self.dim();
        let mut g = Matrix::zeros(n, n);
        for b in &self.boxes {
            let w = self.query_weight(b);
            let w2 = w * w;
            let cells = self.cells_of(b);
            for &i in &cells {
                let row = g.row_mut(i);
                for &j in &cells {
                    row[j] += w2;
                }
            }
        }
        g
    }

    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim());
        let shape = self.domain.sizes().to_vec();
        let table = summed_area_table(x, &shape);
        self.boxes
            .iter()
            .map(|b| self.query_weight(b) * box_sum(&table, &shape, &b.lows, &b.highs))
            .collect()
    }

    fn description(&self) -> String {
        format!(
            "{} random range queries on {}{}",
            self.boxes.len(),
            self.domain,
            if self.normalized { " (normalized)" } else { "" }
        )
    }

    fn query_squared_norms(&self) -> Vec<f64> {
        self.boxes
            .iter()
            .map(|b| {
                if self.normalized {
                    1.0
                } else {
                    b.volume() as f64
                }
            })
            .collect()
    }

    fn to_matrix(&self) -> Option<Matrix> {
        let n = self.dim();
        if n * self.boxes.len() > 16_000_000 {
            return None;
        }
        let mut m = Matrix::zeros(self.boxes.len(), n);
        for (r, b) in self.boxes.iter().enumerate() {
            let w = self.query_weight(b);
            for c in self.cells_of(b) {
                m[(r, c)] = w;
            }
        }
        Some(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explicit::gram_consistent;
    use crate::query::LinearQuery;
    use mm_linalg::approx_eq;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn explicit_all_range_gram(d: usize, normalized: bool) -> Matrix {
        // Brute force reference.
        let mut g = Matrix::zeros(d, d);
        for lo in 0..d {
            for hi in lo..d {
                let len = (hi - lo + 1) as f64;
                let w2 = if normalized { 1.0 / len } else { 1.0 };
                for i in lo..=hi {
                    for j in lo..=hi {
                        g[(i, j)] += w2;
                    }
                }
            }
        }
        g
    }

    #[test]
    fn all_range_1d_gram_matches_brute_force() {
        for d in [1usize, 2, 5, 9] {
            for normalized in [false, true] {
                let closed = all_range_1d_gram(d, normalized);
                let brute = explicit_all_range_gram(d, normalized);
                for i in 0..d {
                    for j in 0..d {
                        assert!(
                            approx_eq(closed[(i, j)], brute[(i, j)], 1e-10),
                            "d={d} normalized={normalized} ({i},{j}): {} vs {}",
                            closed[(i, j)],
                            brute[(i, j)]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn all_range_1d_matrix_gram_matches_closed_form() {
        for d in [1usize, 3, 6] {
            let m = all_range_1d_matrix(d);
            assert_eq!(m.rows(), all_range_1d_count(d));
            let g1 = mm_linalg::ops::gram(&m);
            let g2 = all_range_1d_gram(d, false);
            for i in 0..d {
                for j in 0..d {
                    assert!(approx_eq(g1[(i, j)], g2[(i, j)], 1e-10));
                }
            }
        }
    }

    #[test]
    fn all_range_query_count() {
        let w = AllRangeWorkload::new(Domain::new(&[4, 3]));
        assert_eq!(w.query_count(), 10 * 6);
        assert_eq!(w.dim(), 12);
        assert_eq!(all_range_1d_count(2048), 2048 * 2049 / 2);
    }

    #[test]
    fn all_range_multi_dim_gram_matches_explicit() {
        let domain = Domain::new(&[3, 2]);
        let w = AllRangeWorkload::new(domain.clone());
        // Build the explicit workload matrix by enumerating boxes.
        let mut queries = Vec::new();
        w.for_each_box(|b| {
            queries.push(LinearQuery::range(&domain, &b.lows, &b.highs));
        });
        let explicit = crate::explicit::ExplicitWorkload::new("explicit", queries);
        let g1 = w.gram();
        let g2 = explicit.gram();
        for i in 0..6 {
            for j in 0..6 {
                assert!(approx_eq(g1[(i, j)], g2[(i, j)], 1e-10));
            }
        }
    }

    #[test]
    fn all_range_evaluate_matches_explicit() {
        let domain = Domain::new(&[3, 4]);
        let w = AllRangeWorkload::new(domain.clone());
        let x: Vec<f64> = (0..12).map(|i| (i % 5) as f64 + 0.5).collect();
        let fast = w.evaluate(&x);
        let mut slow = Vec::new();
        w.for_each_box(|b| {
            slow.push(LinearQuery::range(&domain, &b.lows, &b.highs).evaluate(&x));
        });
        assert_eq!(fast.len(), w.query_count());
        for (f, s) in fast.iter().zip(slow.iter()) {
            assert!(approx_eq(*f, *s, 1e-10));
        }
    }

    #[test]
    fn normalized_all_range_has_unit_norms() {
        let w = AllRangeWorkload::normalized(Domain::new(&[4]));
        assert!(w.query_squared_norms().iter().all(|&v| v == 1.0));
        assert!(w.is_normalized());
        // Evaluating on the all-ones vector gives sqrt(len) per query.
        let vals = w.evaluate(&[1.0; 4]);
        let mut expected = Vec::new();
        w.for_each_box(|b| expected.push((b.volume() as f64).sqrt()));
        for (v, e) in vals.iter().zip(expected.iter()) {
            assert!(approx_eq(*v, *e, 1e-12));
        }
    }

    #[test]
    fn all_range_unnormalized_norms_are_volumes() {
        let w = AllRangeWorkload::new(Domain::new(&[3]));
        assert_eq!(w.query_squared_norms(), vec![1.0, 2.0, 3.0, 1.0, 2.0, 1.0]);
    }

    #[test]
    fn random_range_gram_consistent_with_matrix() {
        let domain = Domain::new(&[4, 3]);
        let mut rng = StdRng::seed_from_u64(7);
        let w = RandomRangeWorkload::sample(domain, 25, &mut rng);
        assert_eq!(w.query_count(), 25);
        assert!(gram_consistent(&w, 1e-9));
    }

    #[test]
    fn random_range_normalized_consistency() {
        let domain = Domain::new(&[5]);
        let mut rng = StdRng::seed_from_u64(11);
        let w = RandomRangeWorkload::sample(domain, 10, &mut rng).into_normalized();
        assert!(gram_consistent(&w, 1e-9));
        assert!(w.query_squared_norms().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn random_range_evaluate_matches_matrix() {
        let domain = Domain::new(&[3, 3]);
        let mut rng = StdRng::seed_from_u64(3);
        let w = RandomRangeWorkload::sample(domain, 12, &mut rng);
        let x: Vec<f64> = (0..9).map(|i| i as f64).collect();
        let fast = w.evaluate(&x);
        let m = w.to_matrix().unwrap();
        let slow = m.matvec(&x).unwrap();
        for (f, s) in fast.iter().zip(slow.iter()) {
            assert!(approx_eq(*f, *s, 1e-10));
        }
    }

    #[test]
    fn range_box_volume() {
        let d = Domain::new(&[4, 4]);
        let b = RangeBox::new(&d, vec![1, 0], vec![2, 3]);
        assert_eq!(b.volume(), 8);
    }

    #[test]
    #[should_panic(expected = "invalid bounds")]
    fn bad_range_box_panics() {
        let d = Domain::new(&[4]);
        RangeBox::new(&d, vec![3], vec![1]);
    }

    #[test]
    fn sampling_respects_domain_bounds() {
        let domain = Domain::new(&[7, 2, 5]);
        let mut rng = StdRng::seed_from_u64(99);
        let w = RandomRangeWorkload::sample(domain.clone(), 200, &mut rng);
        for b in w.boxes() {
            for a in 0..3 {
                assert!(b.lows[a] <= b.highs[a]);
                assert!(b.highs[a] < domain.size(a));
            }
        }
    }
}
