//! Multi-attribute domains and cell indexing.
//!
//! A data vector `x` (Def. 1) is defined by a list of pairwise-unsatisfiable
//! cell conditions.  For the structured workloads of the paper the cells are
//! the cross product of per-attribute buckets, so a [`Domain`] is simply the
//! list of per-attribute bucket counts, together with the row-major mapping
//! between multi-indices and flat cell indices.

use std::fmt;

/// A multi-attribute domain: the cross product of per-attribute bucket sets.
///
/// Cells are ordered row-major with the **first** attribute varying slowest,
/// matching the Kronecker-product convention `A₁ ⊗ A₂ ⊗ …` used throughout
/// the workspace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Domain {
    sizes: Vec<usize>,
}

impl Domain {
    /// Creates a domain from per-attribute bucket counts.
    ///
    /// Panics if any size is zero or the list is empty.
    pub fn new(sizes: &[usize]) -> Self {
        assert!(!sizes.is_empty(), "domain must have at least one attribute");
        assert!(
            sizes.iter().all(|&s| s > 0),
            "every attribute must have at least one bucket"
        );
        Domain {
            sizes: sizes.to_vec(),
        }
    }

    /// A one-dimensional domain with `n` cells.
    pub fn one_dim(n: usize) -> Self {
        Domain::new(&[n])
    }

    /// Per-attribute bucket counts.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Number of attributes.
    pub fn num_attributes(&self) -> usize {
        self.sizes.len()
    }

    /// Total number of cells (product of the per-attribute sizes).
    pub fn n_cells(&self) -> usize {
        self.sizes.iter().product()
    }

    /// Size of attribute `a`.
    pub fn size(&self, a: usize) -> usize {
        self.sizes[a]
    }

    /// Flattens a multi-index into a cell index.
    ///
    /// Panics when the multi-index has the wrong arity or is out of bounds.
    pub fn index_of(&self, multi: &[usize]) -> usize {
        assert_eq!(multi.len(), self.sizes.len(), "multi-index arity mismatch");
        let mut idx = 0;
        for (a, (&m, &s)) in multi.iter().zip(self.sizes.iter()).enumerate() {
            assert!(
                m < s,
                "index {m} out of bounds for attribute {a} (size {s})"
            );
            idx = idx * s + m;
        }
        idx
    }

    /// Expands a flat cell index into a multi-index.
    pub fn multi_index(&self, mut index: usize) -> Vec<usize> {
        assert!(index < self.n_cells(), "cell index out of bounds");
        let mut out = vec![0; self.sizes.len()];
        for a in (0..self.sizes.len()).rev() {
            out[a] = index % self.sizes[a];
            index /= self.sizes[a];
        }
        out
    }

    /// Iterates over all cells in flat order, yielding multi-indices.
    pub fn cells(&self) -> impl Iterator<Item = Vec<usize>> + '_ {
        (0..self.n_cells()).map(|i| self.multi_index(i))
    }

    /// The stride of attribute `a` in the flat ordering (product of the sizes
    /// of all later attributes).
    pub fn stride(&self, a: usize) -> usize {
        self.sizes[a + 1..].iter().product()
    }

    /// True when the domain has a single attribute.
    pub fn is_one_dimensional(&self) -> bool {
        self.sizes.len() == 1
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, s) in self.sizes.iter().enumerate() {
            if i > 0 {
                write!(f, "·")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_properties() {
        let d = Domain::new(&[8, 16, 16]);
        assert_eq!(d.n_cells(), 2048);
        assert_eq!(d.num_attributes(), 3);
        assert_eq!(d.size(1), 16);
        assert_eq!(d.sizes(), &[8, 16, 16]);
        assert!(!d.is_one_dimensional());
        assert!(Domain::one_dim(5).is_one_dimensional());
    }

    #[test]
    fn index_roundtrip() {
        let d = Domain::new(&[3, 4, 5]);
        for i in 0..d.n_cells() {
            let m = d.multi_index(i);
            assert_eq!(d.index_of(&m), i);
        }
    }

    #[test]
    fn row_major_ordering() {
        let d = Domain::new(&[2, 3]);
        assert_eq!(d.index_of(&[0, 0]), 0);
        assert_eq!(d.index_of(&[0, 2]), 2);
        assert_eq!(d.index_of(&[1, 0]), 3);
        assert_eq!(d.index_of(&[1, 2]), 5);
        assert_eq!(d.multi_index(4), vec![1, 1]);
    }

    #[test]
    fn strides() {
        let d = Domain::new(&[2, 3, 4]);
        assert_eq!(d.stride(0), 12);
        assert_eq!(d.stride(1), 4);
        assert_eq!(d.stride(2), 1);
    }

    #[test]
    fn cells_iterator_covers_domain() {
        let d = Domain::new(&[2, 2]);
        let cells: Vec<Vec<usize>> = d.cells().collect();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0], vec![0, 0]);
        assert_eq!(cells[3], vec![1, 1]);
    }

    #[test]
    fn display_format() {
        assert_eq!(Domain::new(&[16, 16, 8]).to_string(), "[16·16·8]");
        assert_eq!(Domain::one_dim(2048).to_string(), "[2048]");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        Domain::new(&[2, 2]).index_of(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "at least one attribute")]
    fn empty_domain_panics() {
        Domain::new(&[]);
    }
}
