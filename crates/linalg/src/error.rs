//! Error type shared by all linear algebra routines.

use std::fmt;

/// Result alias for linear algebra operations.
pub type Result<T> = std::result::Result<T, LinalgError>;

/// Errors produced by the linear algebra routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Operand shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Human readable description of the operation.
        op: &'static str,
        /// Shape of the left operand (rows, cols).
        left: (usize, usize),
        /// Shape of the right operand (rows, cols).
        right: (usize, usize),
    },
    /// A square matrix was required.
    NotSquare {
        /// Rows of the offending matrix.
        rows: usize,
        /// Columns of the offending matrix.
        cols: usize,
    },
    /// Cholesky factorization failed: the matrix is not positive definite.
    NotPositiveDefinite {
        /// Pivot index at which the failure was detected.
        pivot: usize,
        /// The value of the failing pivot.
        value: f64,
    },
    /// The matrix is singular (or numerically singular) and cannot be inverted/solved.
    Singular {
        /// Pivot index at which the singularity was detected.
        pivot: usize,
    },
    /// An iterative algorithm failed to converge.
    NonConvergence {
        /// Name of the algorithm.
        algorithm: &'static str,
        /// Number of iterations performed.
        iterations: usize,
    },
    /// The requested operation needs a non-empty matrix.
    Empty,
    /// Invalid argument supplied by the caller.
    InvalidArgument(String),
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch { op, left, right } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "expected a square matrix, got {rows}x{cols}")
            }
            LinalgError::NotPositiveDefinite { pivot, value } => write!(
                f,
                "matrix is not positive definite (pivot {pivot} = {value})"
            ),
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular (zero pivot at {pivot})")
            }
            LinalgError::NonConvergence {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} failed to converge after {iterations} iterations"
            ),
            LinalgError::Empty => write!(f, "operation requires a non-empty matrix"),
            LinalgError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = LinalgError::ShapeMismatch {
            op: "matmul",
            left: (2, 3),
            right: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3"));
        assert!(s.contains("4x5"));
    }

    #[test]
    fn display_not_positive_definite() {
        let e = LinalgError::NotPositiveDefinite {
            pivot: 3,
            value: -1.0,
        };
        assert!(e.to_string().contains("positive definite"));
    }

    #[test]
    fn display_singular_and_others() {
        assert!(LinalgError::Singular { pivot: 1 }
            .to_string()
            .contains("singular"));
        assert!(LinalgError::Empty.to_string().contains("non-empty"));
        assert!(LinalgError::NotSquare { rows: 2, cols: 3 }
            .to_string()
            .contains("square"));
        assert!(LinalgError::NonConvergence {
            algorithm: "eigen",
            iterations: 30
        }
        .to_string()
        .contains("converge"));
        assert!(LinalgError::InvalidArgument("bad".into())
            .to_string()
            .contains("bad"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&LinalgError::Empty);
    }
}
