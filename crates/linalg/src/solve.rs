//! High-level solves: linear systems, least squares, pseudo-inverse.
//!
//! The matrix mechanism's inference step (Prop. 3) computes
//! `x̂ = A⁺ y = (AᵀA)⁻¹ Aᵀ y` for a full-rank strategy `A`; these helpers wrap
//! the factorizations in [`crate::decomp`] behind the operations the mechanism
//! crates actually call.

use crate::decomp::{Cholesky, Lu, Qr};
use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::ops;

/// Solves the square linear system `A x = b` by LU with partial pivoting.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Lu::new(a)?.solve_vec(b)
}

/// Inverse of a general square matrix.
pub fn inverse(a: &Matrix) -> Result<Matrix> {
    Ok(Lu::new(a)?.inverse())
}

/// Inverse of a symmetric positive definite matrix via Cholesky.
pub fn inverse_spd(a: &Matrix) -> Result<Matrix> {
    Ok(Cholesky::new(a)?.inverse())
}

/// Solves the least-squares problem `min_x ||A x - b||₂` via QR.
///
/// This is the estimation step of the matrix mechanism: given noisy strategy
/// answers `y`, the estimate of the data vector is the least-squares solution
/// of `A x ≈ y`.
pub fn least_squares(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    Qr::new(a)?.solve_least_squares(b)
}

/// Solves least squares through the normal equations `(AᵀA) x = Aᵀ b`.
///
/// Faster than QR when `A` has many more rows than columns (the common shape
/// for strategies, which have at most a few times `n` rows) and `AᵀA` is well
/// conditioned; falls back on an error if `AᵀA` is not positive definite.
pub fn least_squares_normal(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    if b.len() != a.rows() {
        return Err(LinalgError::ShapeMismatch {
            op: "least_squares_normal",
            left: a.shape(),
            right: (b.len(), 1),
        });
    }
    let g = ops::gram(a);
    let atb = a.matvec_transposed(b)?;
    Cholesky::new(&g)?.solve_vec(&atb)
}

/// Moore–Penrose pseudo-inverse `A⁺ = (AᵀA)⁻¹ Aᵀ` for full column rank `A`.
///
/// Returns an error when `AᵀA` is not (numerically) positive definite, i.e.
/// when `A` does not have full column rank.
pub fn pseudo_inverse(a: &Matrix) -> Result<Matrix> {
    let g = ops::gram(a);
    let ginv = Cholesky::new(&g)?.inverse();
    // (AᵀA)⁻¹ Aᵀ  computed as (A (AᵀA)⁻¹)ᵀ to keep A in row-major order.
    let a_ginv = ops::matmul(a, &ginv)?;
    Ok(a_ginv.transpose())
}

/// Applies the pseudo-inverse to a vector without forming `A⁺`:
/// `A⁺ y = (AᵀA)⁻¹ (Aᵀ y)`.
pub fn apply_pseudo_inverse(a: &Matrix, y: &[f64]) -> Result<Vec<f64>> {
    least_squares_normal(a, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::ops::matmul;

    #[test]
    fn solve_square_system() {
        let a = Matrix::from_rows(&[vec![3.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let x = solve(&a, &[9.0, 8.0]).unwrap();
        assert!(approx_eq(x[0], 2.0, 1e-10));
        assert!(approx_eq(x[1], 3.0, 1e-10));
    }

    #[test]
    fn inverse_agrees_with_spd_inverse() {
        let a = Matrix::from_rows(&[vec![4.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let i1 = inverse(&a).unwrap();
        let i2 = inverse_spd(&a).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!(approx_eq(i1[(i, j)], i2[(i, j)], 1e-10));
            }
        }
    }

    #[test]
    fn least_squares_methods_agree() {
        let a = Matrix::from_fn(8, 3, |i, j| ((i + 1) as f64).powi(j as i32));
        let b: Vec<f64> = (0..8).map(|i| (i as f64) * 0.5 + 1.0).collect();
        let x_qr = least_squares(&a, &b).unwrap();
        let x_ne = least_squares_normal(&a, &b).unwrap();
        for (p, q) in x_qr.iter().zip(x_ne.iter()) {
            assert!(approx_eq(*p, *q, 1e-7), "{p} vs {q}");
        }
    }

    #[test]
    fn pseudo_inverse_of_square_is_inverse() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]).unwrap();
        let pinv = pseudo_inverse(&a).unwrap();
        let inv = inverse(&a).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!(approx_eq(pinv[(i, j)], inv[(i, j)], 1e-9));
            }
        }
    }

    #[test]
    fn pseudo_inverse_left_inverse_property() {
        // For a tall full-column-rank A, A⁺ A = I.
        let a = Matrix::from_fn(6, 3, |i, j| if i == j { 2.0 } else { ((i + j) % 3) as f64 });
        let pinv = pseudo_inverse(&a).unwrap();
        let prod = matmul(&pinv, &a).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let e = if i == j { 1.0 } else { 0.0 };
                assert!(approx_eq(prod[(i, j)], e, 1e-8));
            }
        }
    }

    #[test]
    fn apply_pseudo_inverse_matches_explicit() {
        let a = Matrix::from_fn(5, 3, |i, j| {
            ((i * 2 + j) % 4) as f64 + if i == j { 1.0 } else { 0.0 }
        });
        let y = vec![1.0, -1.0, 2.0, 0.5, 3.0];
        let implicit = apply_pseudo_inverse(&a, &y).unwrap();
        let explicit = pseudo_inverse(&a).unwrap().matvec(&y).unwrap();
        for (p, q) in implicit.iter().zip(explicit.iter()) {
            assert!(approx_eq(*p, *q, 1e-8));
        }
    }

    #[test]
    fn rank_deficient_pseudo_inverse_rejected() {
        let a = Matrix::from_fn(4, 3, |i, j| ((i + 1) * (j + 1)) as f64);
        assert!(pseudo_inverse(&a).is_err());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Matrix::identity(3);
        assert!(least_squares_normal(&a, &[1.0]).is_err());
    }
}
