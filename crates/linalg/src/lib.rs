//! # mm-linalg
//!
//! Dense linear algebra substrate for the adaptive matrix mechanism.
//!
//! The matrix mechanism (Li & Miklau, VLDB 2012) is linear-algebraic throughout:
//! workloads and strategies are matrices, error is a trace expression, strategy
//! selection diagonalises the workload gram matrix `WᵀW`.  This crate provides
//! everything those computations need, implemented from scratch on a simple
//! row-major [`Matrix`] type:
//!
//! * basic matrix/vector arithmetic, [`ops::matmul`], [`ops::gram`],
//!   [`ops::kron`] (Kronecker products drive multi-dimensional workloads),
//! * factorizations in [`decomp`]: Cholesky, LU with partial pivoting,
//!   Householder QR, symmetric eigendecomposition (tridiagonalisation +
//!   implicit-shift QL) and singular values via the gram matrix,
//! * high level solves in [`solve`]: linear systems, least squares and the
//!   Moore–Penrose pseudo-inverse used by the matrix mechanism's inference
//!   step.
//!
//! The crate is `no-unsafe`, has no dependencies, and every routine is covered
//! by unit and property tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decomp;
pub mod error;
pub mod matrix;
pub mod operator;
pub mod ops;
pub mod parallel;
pub mod solve;
pub mod vector;

pub use error::{LinalgError, Result};
pub use matrix::Matrix;
pub use operator::{ExplicitOperator, LinearOperator};

/// Default absolute tolerance used when comparing floating point results in
/// this workspace (tests, rank decisions, convergence checks).
pub const DEFAULT_TOL: f64 = 1e-9;

/// Returns true when `a` and `b` are equal up to `tol` absolutely or relatively.
///
/// This is the comparison used throughout the workspace's tests: two values are
/// considered equal when either their absolute difference or their difference
/// relative to the larger magnitude is below `tol`.
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    if diff <= tol {
        return true;
    }
    let scale = a.abs().max(b.abs());
    diff <= tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!approx_eq(1.0, 1.1, 1e-9));
    }

    #[test]
    fn approx_eq_relative() {
        assert!(approx_eq(1e12, 1e12 + 1.0, 1e-9));
        assert!(!approx_eq(1e12, 1.01e12, 1e-9));
    }

    #[test]
    fn approx_eq_zero() {
        assert!(approx_eq(0.0, 0.0, 1e-12));
        assert!(approx_eq(0.0, 1e-13, 1e-12));
    }
}
