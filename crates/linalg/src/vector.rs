//! Free functions on `&[f64]` vectors.
//!
//! The workspace passes plain `Vec<f64>` / `&[f64]` around for data vectors,
//! query answers and noise samples; these helpers provide the handful of
//! BLAS-1 style operations those call sites need.

/// Dot product of two equal-length vectors, through the fixed-lane
/// [`crate::ops::dot`] kernel. Panics on length mismatch.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    crate::ops::dot(a, b)
}

/// Euclidean (L2) norm.
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// L1 norm (sum of absolute values).
pub fn norm1(a: &[f64]) -> f64 {
    // mm-lint: allow(blessed-reduction): ascending-index abs fold is order-fixed; the slice kernel would need a temporary allocation in a BLAS-1 helper
    a.iter().map(|x| x.abs()).sum()
}

/// Infinity norm (maximum absolute value).
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
}

/// `y <- y + alpha * x` in place. Panics on length mismatch.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Elementwise sum of two vectors.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x + y).collect()
}

/// Elementwise difference `a - b`.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x - y).collect()
}

/// Vector scaled by a constant.
pub fn scale(a: &[f64], s: f64) -> Vec<f64> {
    a.iter().map(|x| x * s).collect()
}

/// Sum of all entries, through the fixed-lane [`crate::ops::sum`] kernel.
pub fn sum(a: &[f64]) -> f64 {
    crate::ops::sum(a)
}

/// Arithmetic mean; zero for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        sum(a) / a.len() as f64
    }
}

/// Root mean square of the entries; zero for an empty slice.
pub fn rms(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        (crate::ops::dot(a, a) / a.len() as f64).sqrt()
    }
}

/// Maximum entry; negative infinity for an empty slice.
pub fn max(a: &[f64]) -> f64 {
    a.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Minimum entry; positive infinity for an empty slice.
pub fn min(a: &[f64]) -> f64 {
    a.iter().copied().fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn dot_and_norms() {
        let a = [3.0, 4.0];
        assert_eq!(dot(&a, &a), 25.0);
        assert_eq!(norm2(&a), 5.0);
        assert_eq!(norm1(&a), 7.0);
        assert_eq!(norm_inf(&[-3.0, 2.0]), 3.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let x = [1.0, 2.0];
        let mut y = [10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0]);
    }

    #[test]
    fn add_sub_scale() {
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
        assert_eq!(sub(&[1.0, 2.0], &[3.0, 4.0]), vec![-2.0, -2.0]);
        assert_eq!(scale(&[1.0, 2.0], 3.0), vec![3.0, 6.0]);
    }

    #[test]
    fn statistics() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(sum(&a), 10.0);
        assert_eq!(mean(&a), 2.5);
        assert!(approx_eq(rms(&a), (30.0_f64 / 4.0).sqrt(), 1e-12));
        assert_eq!(max(&a), 4.0);
        assert_eq!(min(&a), 1.0);
    }

    #[test]
    fn empty_statistics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(rms(&[]), 0.0);
        assert_eq!(sum(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_panics_on_mismatch() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
