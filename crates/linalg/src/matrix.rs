//! Dense row-major matrix type.
//!
//! [`Matrix`] stores `f64` entries contiguously in row-major order.  It is the
//! single matrix representation used across the workspace: workloads,
//! strategies, gram matrices and factors are all `Matrix` values.  The type is
//! deliberately simple — indexing, slicing by row, iteration, and elementwise
//! arithmetic — with the heavier algorithms living in [`crate::ops`] and
//! [`crate::decomp`].

use crate::error::{LinalgError, Result};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// A dense, row-major matrix of `f64` values.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of the given shape filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix of the given shape filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a square diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// Returns an error when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidArgument(format!(
                "expected {} entries for a {}x{} matrix, got {}",
                rows * cols,
                rows,
                cols,
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of rows.
    ///
    /// Returns an error when rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        if rows.is_empty() {
            return Ok(Matrix::zeros(0, 0));
        }
        let cols = rows[0].len();
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::InvalidArgument(format!(
                    "row {i} has length {}, expected {cols}",
                    r.len()
                )));
            }
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True when the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// True when the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable access to the underlying row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the underlying row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the row-major data vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Gets entry `(i, j)`; returns `None` when out of bounds.
    pub fn get(&self, i: usize, j: usize) -> Option<f64> {
        if i < self.rows && j < self.cols {
            Some(self.data[i * self.cols + j])
        } else {
            None
        }
    }

    /// Sets entry `(i, j)`. Panics when out of bounds.
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        self.data[i * self.cols + j] = value;
    }

    /// Returns row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Returns column `j` as an owned vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Iterator over rows (as slices).
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks(self.cols.max(1)).take(self.rows)
    }

    /// Returns the transpose of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            let row = self.row(i);
            for (j, &v) in row.iter().enumerate() {
                t.data[j * self.rows + i] = v;
            }
        }
        t
    }

    /// Returns the main diagonal as a vector.
    pub fn diag(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self[(i, i)]).collect()
    }

    /// Sum of the diagonal entries.
    pub fn trace(&self) -> f64 {
        crate::ops::sum(&self.diag())
    }

    /// Applies `f` to every entry, returning a new matrix.
    pub fn map<F: FnMut(f64) -> f64>(&self, mut f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Scales every entry by `s` in place.
    pub fn scale_mut(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Returns the matrix scaled by `s`.
    pub fn scaled(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// Frobenius norm: square root of the sum of squared entries.
    pub fn frobenius_norm(&self) -> f64 {
        self.sum_of_squares().sqrt()
    }

    /// Sum of squared entries (squared Frobenius norm), accumulated through
    /// the fixed-lane [`crate::ops::dot`] kernel.
    pub fn sum_of_squares(&self) -> f64 {
        crate::ops::dot(&self.data, &self.data)
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// L2 norm of column `j`.
    pub fn col_norm_l2(&self, j: usize) -> f64 {
        (0..self.rows)
            .map(|i| {
                let v = self[(i, j)];
                v * v
            })
            // mm-lint: allow(blessed-reduction): strided column access cannot use the slice kernel without gathering; the row-ascending fold is order-fixed
            .sum::<f64>()
            .sqrt()
    }

    /// L1 norm of column `j`.
    pub fn col_norm_l1(&self, j: usize) -> f64 {
        // mm-lint: allow(blessed-reduction): strided column access cannot use the slice kernel without gathering; the row-ascending fold is order-fixed
        (0..self.rows).map(|i| self[(i, j)].abs()).sum::<f64>()
    }

    /// Vector of L2 norms of all columns.
    pub fn col_norms_l2(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for i in 0..self.rows {
            let row = self.row(i);
            for (j, &v) in row.iter().enumerate() {
                sums[j] += v * v;
            }
        }
        sums.into_iter().map(f64::sqrt).collect()
    }

    /// Vector of L1 norms of all columns.
    pub fn col_norms_l1(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for i in 0..self.rows {
            let row = self.row(i);
            for (j, &v) in row.iter().enumerate() {
                sums[j] += v.abs();
            }
        }
        sums
    }

    /// Maximum L2 column norm (the L2 sensitivity of a query matrix, Prop. 1).
    pub fn max_col_norm_l2(&self) -> f64 {
        self.col_norms_l2().into_iter().fold(0.0_f64, f64::max)
    }

    /// Maximum L1 column norm (the L1 sensitivity of a query matrix).
    pub fn max_col_norm_l1(&self) -> f64 {
        self.col_norms_l1().into_iter().fold(0.0_f64, f64::max)
    }

    /// True when the matrix is symmetric up to tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Symmetrises the matrix in place: `A <- (A + Aᵀ)/2`. Panics if not square.
    pub fn symmetrize_mut(&mut self) {
        assert!(self.is_square(), "symmetrize requires a square matrix");
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let avg = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = avg;
                self[(j, i)] = avg;
            }
        }
    }

    /// Horizontally stacks `self` and `other` (same number of rows).
    pub fn hstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "hstack",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(other.row(i));
        }
        Ok(out)
    }

    /// Vertically stacks `self` on top of `other` (same number of columns).
    pub fn vstack(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "vstack",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Ok(Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Returns the submatrix of the given row and column ranges.
    pub fn submatrix(
        &self,
        row_start: usize,
        row_end: usize,
        col_start: usize,
        col_end: usize,
    ) -> Result<Matrix> {
        if row_end > self.rows || col_end > self.cols || row_start > row_end || col_start > col_end
        {
            return Err(LinalgError::InvalidArgument(format!(
                "submatrix range ({row_start}..{row_end}, {col_start}..{col_end}) out of bounds for {}x{}",
                self.rows, self.cols
            )));
        }
        let mut out = Matrix::zeros(row_end - row_start, col_end - col_start);
        for i in row_start..row_end {
            out.row_mut(i - row_start)
                .copy_from_slice(&self.row(i)[col_start..col_end]);
        }
        Ok(out)
    }

    /// Returns a matrix with only the selected rows (in the given order).
    pub fn select_rows(&self, indices: &[usize]) -> Result<Matrix> {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (k, &i) in indices.iter().enumerate() {
            if i >= self.rows {
                return Err(LinalgError::InvalidArgument(format!(
                    "row index {i} out of bounds for {} rows",
                    self.rows
                )));
            }
            out.row_mut(k).copy_from_slice(self.row(i));
        }
        Ok(out)
    }

    /// Returns a matrix with columns permuted so that new column `j` is old
    /// column `perm[j]`.
    pub fn permute_cols(&self, perm: &[usize]) -> Result<Matrix> {
        if perm.len() != self.cols {
            return Err(LinalgError::InvalidArgument(format!(
                "permutation has length {}, expected {}",
                perm.len(),
                self.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            let src = self.row(i);
            let dst = out.row_mut(i);
            for (j, &p) in perm.iter().enumerate() {
                dst[j] = src[p];
            }
        }
        Ok(out)
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                op: "hadamard",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Multiplies the matrix by a column vector, returning `A x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec",
                left: self.shape(),
                right: (x.len(), 1),
            });
        }
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            let row = self.row(i);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(x.iter()) {
                acc += a * b;
            }
            *o = acc;
        }
        Ok(out)
    }

    /// Computes the matrix product `self * other` with the blocked mat-mat
    /// kernel (see [`crate::ops::matmul`]).
    ///
    /// A multi-RHS product `A · X` answers every column of `X` in one blocked
    /// sweep over `A` — the batch hot path of the serving engine — and each
    /// column of the result is bit-identical to `A.matmul(x_k)` on that
    /// column alone.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        crate::ops::matmul(self, other)
    }

    /// Computes `selfᵀ * other` without materialising the transpose, with the
    /// blocked mat-mat kernel (see [`crate::ops::matmul_transpose_left`]).
    pub fn matmul_transpose_left(&self, other: &Matrix) -> Result<Matrix> {
        crate::ops::matmul_transpose_left(self, other)
    }

    /// Multiplies the transpose by a vector, returning `Aᵀ y` without forming `Aᵀ`.
    pub fn matvec_transposed(&self, y: &[f64]) -> Result<Vec<f64>> {
        if y.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                op: "matvec_transposed",
                left: (self.cols, self.rows),
                right: (y.len(), 1),
            });
        }
        let mut out = vec![0.0; self.cols];
        for (i, &yi) in y.iter().enumerate() {
            let row = self.row(i);
            if yi == 0.0 {
                continue;
            }
            for (j, &v) in row.iter().enumerate() {
                out[j] += v * yi;
            }
        }
        Ok(out)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8;
        for i in 0..self.rows.min(max_rows) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(12) {
                write!(f, "{:9.4}", self[(i, j)])?;
                if j + 1 < self.cols.min(12) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 12 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix addition shape mismatch");
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "matrix subtraction shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape(), "matrix addition shape mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }
}

impl SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, rhs: &Matrix) {
        assert_eq!(
            self.shape(),
            rhs.shape(),
            "matrix subtraction shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a -= b;
        }
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.map(|x| -x)
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: f64) -> Matrix {
        self.scaled(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&x| x == 0.0));

        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(1, 2)], 0.0);
        assert_eq!(i.trace(), 3.0);
    }

    #[test]
    fn from_vec_shape_check() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn from_rows_ragged_rejected() {
        assert!(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).is_err());
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.shape(), (2, 2));
    }

    #[test]
    fn from_fn_builds_expected_entries() {
        let m = Matrix::from_fn(3, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(m[(2, 1)], 21.0);
        assert_eq!(m[(0, 0)], 0.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_fn(3, 4, |i, j| (i + 2 * j) as f64);
        let t = m.transpose();
        assert_eq!(t.shape(), (4, 3));
        assert_eq!(t[(3, 2)], m[(2, 3)]);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn diag_and_trace() {
        let m = Matrix::from_diag(&[1.0, 2.0, 3.0]);
        assert_eq!(m.diag(), vec![1.0, 2.0, 3.0]);
        assert_eq!(m.trace(), 6.0);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[vec![3.0, 0.0], vec![4.0, 1.0]]).unwrap();
        assert!(approx_eq(m.col_norm_l2(0), 5.0, 1e-12));
        assert!(approx_eq(m.col_norm_l1(0), 7.0, 1e-12));
        assert!(approx_eq(m.max_col_norm_l2(), 5.0, 1e-12));
        assert!(approx_eq(m.max_col_norm_l1(), 7.0, 1e-12));
        assert!(approx_eq(m.frobenius_norm(), (26.0_f64).sqrt(), 1e-12));
        assert!(approx_eq(m.sum_of_squares(), 26.0, 1e-12));
        assert_eq!(m.max_abs(), 4.0);
    }

    #[test]
    fn col_norms_match_individual() {
        let m = Matrix::from_fn(4, 3, |i, j| (i as f64) - (j as f64) * 0.5);
        let norms = m.col_norms_l2();
        for (j, &norm) in norms.iter().enumerate() {
            assert!(approx_eq(norm, m.col_norm_l2(j), 1e-12));
        }
        let l1 = m.col_norms_l1();
        for (j, &norm) in l1.iter().enumerate() {
            assert!(approx_eq(norm, m.col_norm_l1(j), 1e-12));
        }
    }

    #[test]
    fn paper_workload_sensitivity_is_sqrt5() {
        // The workload of Fig. 1(b) has L2 sensitivity sqrt(5).
        let w = Matrix::from_rows(&[
            vec![1., 1., 1., 1., 1., 1., 1., 1.],
            vec![1., 1., 1., 1., 0., 0., 0., 0.],
            vec![0., 0., 0., 0., 1., 1., 1., 1.],
            vec![1., 1., 0., 0., 1., 1., 0., 0.],
            vec![0., 0., 1., 1., 0., 0., 1., 1.],
            vec![0., 0., 0., 0., 0., 0., 1., 1.],
            vec![1., 1., 0., 0., 0., 0., 0., 0.],
            vec![1., 1., 1., 1., -1., -1., -1., -1.],
        ])
        .unwrap();
        assert!(approx_eq(w.max_col_norm_l2(), 5.0_f64.sqrt(), 1e-12));
    }

    #[test]
    fn symmetric_check_and_symmetrize() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0 + 1e-12, 3.0]]).unwrap();
        assert!(m.is_symmetric(1e-9));
        m[(0, 1)] = 5.0;
        assert!(!m.is_symmetric(1e-9));
        m.symmetrize_mut();
        assert!(m.is_symmetric(1e-15));
    }

    #[test]
    fn stack_operations() {
        let a = Matrix::identity(2);
        let b = Matrix::filled(2, 2, 3.0);
        let h = a.hstack(&b).unwrap();
        assert_eq!(h.shape(), (2, 4));
        assert_eq!(h[(0, 2)], 3.0);
        let v = a.vstack(&b).unwrap();
        assert_eq!(v.shape(), (4, 2));
        assert_eq!(v[(3, 1)], 3.0);
        assert!(a.hstack(&Matrix::zeros(3, 1)).is_err());
        assert!(a.vstack(&Matrix::zeros(1, 3)).is_err());
    }

    #[test]
    fn submatrix_and_select_rows() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let s = m.submatrix(1, 3, 2, 4).unwrap();
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s[(0, 0)], 6.0);
        assert_eq!(s[(1, 1)], 11.0);
        assert!(m.submatrix(0, 5, 0, 2).is_err());

        let r = m.select_rows(&[3, 0]).unwrap();
        assert_eq!(r[(0, 0)], 12.0);
        assert_eq!(r[(1, 0)], 0.0);
        assert!(m.select_rows(&[9]).is_err());
    }

    #[test]
    fn permute_cols_applies_permutation() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0]]).unwrap();
        let p = m.permute_cols(&[2, 0, 1]).unwrap();
        assert_eq!(p.row(0), &[3.0, 1.0, 2.0]);
        assert!(m.permute_cols(&[0, 1]).is_err());
    }

    #[test]
    fn hadamard_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let h = a.hadamard(&b).unwrap();
        assert_eq!(h[(1, 1)], 32.0);
        assert!(a.hadamard(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn matvec_and_transposed() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let y = m.matvec(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(y, vec![6.0, 15.0]);
        let z = m.matvec_transposed(&[1.0, 1.0]).unwrap();
        assert_eq!(z, vec![5.0, 7.0, 9.0]);
        assert!(m.matvec(&[1.0]).is_err());
        assert!(m.matvec_transposed(&[1.0]).is_err());
    }

    #[test]
    fn matmul_methods_delegate_to_ops() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(1, 1)], 50.0);
        let t = a.matmul_transpose_left(&b).unwrap();
        let explicit = a.transpose().matmul(&b).unwrap();
        assert_eq!(t, explicit);
        assert!(a.matmul(&Matrix::zeros(3, 2)).is_err());
        assert!(a.matmul_transpose_left(&Matrix::zeros(3, 2)).is_err());
    }

    #[test]
    fn matmul_columns_match_matvec_bitwise() {
        // The batch invariant: column k of A·X equals A·x_k exactly (not just
        // approximately), for shapes spanning the blocked kernel's tiles.
        for &(m, n, k) in &[(3usize, 4usize, 1usize), (7, 5, 8), (150, 130, 3)] {
            let a = Matrix::from_fn(m, n, |i, j| ((i * 31 + j * 17) % 13) as f64 / 3.0 - 2.0);
            let x = Matrix::from_fn(n, k, |i, j| ((i * 7 + j * 11) % 9) as f64 - 4.0);
            let y = a.matmul(&x).unwrap();
            for c in 0..k {
                let col = x.col(c);
                let single = a.matvec(&col).unwrap();
                for i in 0..m {
                    assert_eq!(y[(i, c)].to_bits(), single[i].to_bits(), "({i},{c})");
                }
            }
        }
    }

    #[test]
    fn arithmetic_operators() {
        let a = Matrix::identity(2);
        let b = Matrix::filled(2, 2, 2.0);
        let s = &a + &b;
        assert_eq!(s[(0, 0)], 3.0);
        let d = &s - &b;
        assert_eq!(d, a);
        let n = -&a;
        assert_eq!(n[(0, 0)], -1.0);
        let m = &a * 4.0;
        assert_eq!(m[(1, 1)], 4.0);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c[(0, 1)], 2.0);
        c -= &b;
        assert_eq!(c, a);
    }

    #[test]
    fn map_and_scale() {
        let m = Matrix::filled(2, 2, 2.0);
        let sq = m.map(|x| x * x);
        assert_eq!(sq[(0, 0)], 4.0);
        let mut s = m.clone();
        s.scale_mut(0.5);
        assert_eq!(s[(1, 1)], 1.0);
    }

    #[test]
    fn rows_iter_yields_all_rows() {
        let m = Matrix::from_fn(3, 2, |i, _| i as f64);
        let rows: Vec<&[f64]> = m.rows_iter().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], &[2.0, 2.0]);
    }

    #[test]
    fn debug_format_is_bounded() {
        let m = Matrix::zeros(100, 100);
        let s = format!("{m:?}");
        assert!(s.len() < 5000);
    }

    #[test]
    fn get_and_set_bounds() {
        let mut m = Matrix::zeros(2, 2);
        assert!(m.get(2, 0).is_none());
        assert_eq!(m.get(1, 1), Some(0.0));
        m.set(1, 1, 7.0);
        assert_eq!(m[(1, 1)], 7.0);
    }

    #[test]
    fn empty_matrix_properties() {
        let m = Matrix::zeros(0, 5);
        assert!(m.is_empty());
        assert_eq!(m.rows_iter().count(), 0);
        let t = m.transpose();
        assert_eq!(t.shape(), (5, 0));
    }
}
