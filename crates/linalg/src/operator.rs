//! Matrix-free linear operators: apply `A` and `Aᵀ` without materialising `A`.
//!
//! Everything else in this crate stores matrices densely, which caps the
//! served domain near n ≈ 1024 (O(n²) memory, O(n³) factorizations).  The
//! matrix mechanism's core workloads and strategies are *structured*,
//! though: range/prefix workloads are O(n) prefix sums, the Haar wavelet
//! strategy is an O(n log n) transform, hierarchical strategies are sparse
//! row sets.  [`LinearOperator`] abstracts exactly what the serving stack
//! needs from such a family — `y = A·x`, `x = Aᵀ·y`, the gram diagonal for
//! diagnostics, and an optional dense materialization for small-n
//! cross-validation — so selection and answering can run via applies and a
//! conjugate-gradient solve instead of dense factorizations.
//!
//! # Bitwise contract
//!
//! Structured implementations are required to be **bit-identical** to the
//! dense kernels they replace: `apply` must produce the same bits as the
//! width-1 fast path of [`ops::matmul`] on the materialized matrix
//! (sequential ascending-index accumulation, skipping exactly-zero
//! coefficients), and `apply_transpose` the same bits as the width-1 path of
//! [`ops::matmul_transpose_left`] (ascending row-major scatter, skipping
//! zeros).  [`ExplicitOperator`] routes through those very kernels, making
//! it the oracle: for every structured operator in the workspace,
//! `op.apply(x)` equals `ExplicitOperator::new(op.materialize().unwrap())
//! .apply(x)` bit for bit (`tests/structured.rs` enforces this).  Skipping
//! an exactly-zero coefficient never changes a sum's bits because adding
//! `±0.0` to a finite accumulator is an identity in IEEE 754 round-to-
//! nearest unless the accumulator is `-0.0`, which an ascending sum of
//! products starting from `0.0` only produces via a `-0.0` product — and
//! those are exactly the skipped terms.

use crate::matrix::Matrix;
use crate::ops;

/// A linear map `A : ℝⁿ → ℝᵐ` given by its action rather than its entries.
///
/// Implementations must be consistent: `apply_transpose` must be the exact
/// adjoint of `apply` (same conceptual matrix), and `materialize`, when it
/// returns a matrix, must return that matrix.  Both apply methods panic on
/// dimension mismatch (like [`crate::Matrix::matvec`] callers, the serving
/// engine validates lengths before calling).
pub trait LinearOperator: std::fmt::Debug + Send + Sync {
    /// The shape `(m, n)` of the conceptual matrix: `apply` maps length-`n`
    /// vectors to length-`m` vectors.
    fn dims(&self) -> (usize, usize);

    /// Computes `A·x`.  Panics when `x.len() != dims().1`.
    fn apply(&self, x: &[f64]) -> Vec<f64>;

    /// Computes `Aᵀ·y`.  Panics when `y.len() != dims().0`.
    fn apply_transpose(&self, y: &[f64]) -> Vec<f64>;

    /// The diagonal of the gram matrix `AᵀA` (the squared column norms),
    /// when the operator can produce it cheaply.  The default returns
    /// `None`.
    fn gram_diag(&self) -> Option<Vec<f64>> {
        None
    }

    /// The dense matrix of this operator, when it is reasonable to
    /// materialise (small-n cross-validation; the default returns `None`).
    fn materialize(&self) -> Option<Matrix> {
        None
    }
}

/// Dense adapter: wraps an explicit [`Matrix`] as a [`LinearOperator`].
///
/// Applies route through the same width-1 [`ops::matmul`] /
/// [`ops::matmul_transpose_left`] kernels the dense engine path uses for
/// `K = 1` batches, so this adapter *is* the canonical bitwise semantics
/// structured operators are validated against.
#[derive(Debug, Clone)]
pub struct ExplicitOperator {
    matrix: Matrix,
}

impl ExplicitOperator {
    /// Wraps a dense matrix.  Panics when the matrix is empty.
    pub fn new(matrix: Matrix) -> Self {
        assert!(
            matrix.rows() > 0 && matrix.cols() > 0,
            "operator must be non-empty"
        );
        ExplicitOperator { matrix }
    }

    /// The wrapped matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }
}

impl LinearOperator for ExplicitOperator {
    fn dims(&self) -> (usize, usize) {
        (self.matrix.rows(), self.matrix.cols())
    }

    fn apply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.matrix.cols(), "apply: dimension mismatch");
        let xm = Matrix::from_vec(x.len(), 1, x.to_vec()).expect("length checked above");
        let y = ops::matmul(&self.matrix, &xm).expect("dimensions checked above");
        y.as_slice().to_vec()
    }

    fn apply_transpose(&self, y: &[f64]) -> Vec<f64> {
        assert_eq!(
            y.len(),
            self.matrix.rows(),
            "apply_transpose: dimension mismatch"
        );
        let ym = Matrix::from_vec(y.len(), 1, y.to_vec()).expect("length checked above");
        let x = ops::matmul_transpose_left(&self.matrix, &ym).expect("dimensions checked above");
        x.as_slice().to_vec()
    }

    fn gram_diag(&self) -> Option<Vec<f64>> {
        // Ascending-row sequential accumulation per column, skipping
        // exactly-zero entries: the canonical order structured operators
        // reproduce (their coefficients are ±1, so the sums are exact
        // integer counts either way).
        let mut diag = vec![0.0; self.matrix.cols()];
        for i in 0..self.matrix.rows() {
            for (d, &aij) in diag.iter_mut().zip(self.matrix.row(i).iter()) {
                if aij == 0.0 {
                    continue;
                }
                *d += aij * aij;
            }
        }
        Some(diag)
    }

    fn materialize(&self) -> Option<Matrix> {
        Some(self.matrix.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix() -> Matrix {
        Matrix::from_rows(&[
            vec![1.0, 0.0, -2.0, 0.5],
            vec![0.0, 3.0, 0.0, 0.0],
            vec![-1.5, 2.0, 4.0, -0.25],
        ])
        .unwrap()
    }

    #[test]
    fn explicit_apply_matches_matmul_bitwise() {
        let m = sample_matrix();
        let op = ExplicitOperator::new(m.clone());
        assert_eq!(op.dims(), (3, 4));
        let x = vec![0.1, -0.2, 0.3, 0.7];
        let xm = Matrix::from_vec(4, 1, x.clone()).unwrap();
        let expect = m.matmul(&xm).unwrap();
        let got = op.apply(&x);
        for (g, e) in got.iter().zip(expect.as_slice().iter()) {
            assert_eq!(g.to_bits(), e.to_bits());
        }
    }

    #[test]
    fn explicit_transpose_matches_kernel_bitwise() {
        let m = sample_matrix();
        let op = ExplicitOperator::new(m.clone());
        let y = vec![1.25, -0.5, 2.0];
        let ym = Matrix::from_vec(3, 1, y.clone()).unwrap();
        let expect = m.matmul_transpose_left(&ym).unwrap();
        let got = op.apply_transpose(&y);
        for (g, e) in got.iter().zip(expect.as_slice().iter()) {
            assert_eq!(g.to_bits(), e.to_bits());
        }
    }

    #[test]
    fn gram_diag_is_squared_column_norms() {
        let m = sample_matrix();
        let op = ExplicitOperator::new(m.clone());
        let diag = op.gram_diag().unwrap();
        let norms = m.col_norms_l2();
        for (d, n) in diag.iter().zip(norms.iter()) {
            assert!(crate::approx_eq(*d, n * n, 1e-12));
        }
    }

    #[test]
    fn materialize_round_trips() {
        let m = sample_matrix();
        let op = ExplicitOperator::new(m.clone());
        assert_eq!(op.materialize().unwrap(), m);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn apply_rejects_wrong_length() {
        ExplicitOperator::new(Matrix::identity(3)).apply(&[1.0, 2.0]);
    }
}
