//! Matrix-level operations: products, gram matrices, Kronecker products.
//!
//! The inner loops are written in the cache-friendly `i-k-j` order so the
//! innermost traversal is over contiguous rows of the right operand.  The
//! mat-mat kernels ([`matmul`], [`matmul_transpose_left`]) are additionally
//! *blocked*: the loop nest is tiled over row blocks and depth panels sized so
//! the streamed panel of the right operand stays cache-resident while a block
//! of output rows accumulates — the difference between answering a K-vector
//! batch with one product versus K cache-cold matvecs.  Larger products are
//! parallelised over blocks of output rows with `std::thread::scope` (no
//! external dependencies).
//!
//! Every kernel accumulates each output entry in ascending depth order
//! regardless of blocking or operand width, so the column `k` of a multi-RHS
//! product is *bit-identical* to the same product computed on that column
//! alone — the property the serving engine's vectorised batch path relies on.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::parallel;

/// Row count above which products are parallelised across threads.
const PARALLEL_THRESHOLD: usize = 96;

/// Rows of the left operand (resp. output) accumulated per block: one block
/// of output rows stays hot while a depth panel of the right operand streams
/// through it.
const BLOCK_ROWS: usize = 128;

/// Depth (inner-dimension) panel width: `BLOCK_DEPTH * b.cols() * 8` bytes of
/// the right operand are re-read per output row block, so the panel should
/// fit mid-level cache for the row-count/width shapes this workspace serves.
const BLOCK_DEPTH: usize = 128;

/// Dot product with a fixed 8-lane accumulation scheme.
///
/// Eight independent accumulators let the compiler keep several
/// multiply-adds in flight (a plain sequential fold is latency-bound on the
/// add chain); the lanes and the remainder are combined in a fixed order, so
/// the result depends only on the inputs — never on blocking, threading or
/// call context.  This is the inner kernel of the blocked Cholesky, the
/// restructured eigensolver and the weighting solver's constraint products.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f64; 8];
    let mut chunks_a = a.chunks_exact(8);
    let mut chunks_b = b.chunks_exact(8);
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        for l in 0..8 {
            lanes[l] += ca[l] * cb[l];
        }
    }
    // Fixed pairwise lane reduction, then the remainder in order.
    let mut acc = ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6]))
        + ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]));
    for (&x, &y) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        acc += x * y;
    }
    acc
}

/// Slice sum with the same fixed 8-lane accumulation scheme as [`dot`].
///
/// This is the blessed reduction primitive for plain `f64` totals in the
/// numeric crates: the lanes and the remainder combine in a fixed order, so
/// the result depends only on the input slice — never on call context.  The
/// workspace lint (`blessed-reduction`) keeps ad-hoc `.sum()` folds out of
/// the kernels so every total flows through here or [`dot`].
#[inline]
pub fn sum(values: &[f64]) -> f64 {
    let mut lanes = [0.0f64; 8];
    let mut chunks = values.chunks_exact(8);
    for c in &mut chunks {
        for l in 0..8 {
            lanes[l] += c[l];
        }
    }
    // Fixed pairwise lane reduction, then the remainder in order.
    let mut acc = ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6]))
        + ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]));
    for &x in chunks.remainder() {
        acc += x;
    }
    acc
}

/// Computes the matrix product `A * B` with the blocked kernel.
pub fn matmul(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.cols() != b.rows() {
        return Err(LinalgError::ShapeMismatch {
            op: "matmul",
            left: a.shape(),
            right: b.shape(),
        });
    }
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    if m == 0 || n == 0 || k == 0 {
        return Ok(out);
    }
    let work = m.saturating_mul(n).saturating_mul(k);
    if m >= PARALLEL_THRESHOLD && work > 1_000_000 {
        matmul_parallel(a, b, &mut out);
    } else {
        matmul_serial_range(a, b, out.as_mut_slice(), 0, m);
    }
    Ok(out)
}

fn matmul_serial_range(a: &Matrix, b: &Matrix, out: &mut [f64], row_start: usize, row_end: usize) {
    let n = b.cols();
    let depth = a.cols();
    // Width-1 fast path: a register-accumulating dot product per output row.
    // The addition sequence (k ascending, zero terms skipped) is exactly the
    // blocked kernel's, so `A·x` stays bit-identical to a width-1 `A·X` —
    // only the per-k slicing overhead goes away.
    if n == 1 {
        let b_col = b.as_slice();
        for (i, o) in (row_start..row_end).zip(out.iter_mut()) {
            let mut acc = 0.0;
            for (&aik, &bk) in a.row(i).iter().zip(b_col.iter()) {
                if aik == 0.0 {
                    continue;
                }
                acc += aik * bk;
            }
            *o = acc;
        }
        return;
    }
    // Blocked i0-k0-i-k-j nest: for each block of output rows, stream the
    // depth panels of B in ascending order.  Per (i, j) the accumulation
    // visits k strictly ascending (panels ascend, k ascends within a panel),
    // so blocking never changes the floating-point result.
    for i0 in (row_start..row_end).step_by(BLOCK_ROWS) {
        let i1 = (i0 + BLOCK_ROWS).min(row_end);
        for k0 in (0..depth).step_by(BLOCK_DEPTH) {
            let k1 = (k0 + BLOCK_DEPTH).min(depth);
            for i in i0..i1 {
                let a_panel = &a.row(i)[k0..k1];
                let out_row = &mut out[(i - row_start) * n..(i - row_start + 1) * n];
                for (dk, &aik) in a_panel.iter().enumerate() {
                    if aik == 0.0 {
                        continue;
                    }
                    let b_row = b.row(k0 + dk);
                    for (o, &bkj) in out_row.iter_mut().zip(b_row.iter()) {
                        *o += aik * bkj;
                    }
                }
            }
        }
    }
}

fn matmul_parallel(a: &Matrix, b: &Matrix, out: &mut Matrix) {
    let m = a.rows();
    let n = b.cols();
    let threads = parallel::threads_for(m);
    let chunk = m.div_ceil(threads);
    let out_data = out.as_mut_slice();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (t, out_chunk) in out_data.chunks_mut(chunk * n).enumerate() {
            let row_start = t * chunk;
            let row_end = (row_start + chunk).min(m);
            if row_start >= row_end {
                break;
            }
            handles.push(scope.spawn(move || {
                matmul_serial_range(a, b, out_chunk, row_start, row_end);
            }));
        }
        for h in handles {
            h.join().expect("matmul worker thread panicked");
        }
    });
}

/// Computes `Aᵀ * B` without materialising `Aᵀ`, with the blocked kernel.
///
/// This is the `AᵀY` half of the matrix mechanism's inference step `x̂ =
/// (AᵀA)⁻¹ Aᵀ Y`, batched over the columns of `Y`.
pub fn matmul_transpose_left(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.rows() != b.rows() {
        return Err(LinalgError::ShapeMismatch {
            op: "matmul_transpose_left",
            left: (a.cols(), a.rows()),
            right: b.shape(),
        });
    }
    let (k, m, n) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(m, n);
    if m == 0 || n == 0 || k == 0 {
        return Ok(out);
    }
    let work = m.saturating_mul(n).saturating_mul(k);
    if m >= PARALLEL_THRESHOLD && work > 1_000_000 {
        let threads = parallel::threads_for(m);
        let chunk = m.div_ceil(threads);
        let out_data = out.as_mut_slice();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (t, out_chunk) in out_data.chunks_mut(chunk * n).enumerate() {
                let row_start = t * chunk;
                let row_end = (row_start + chunk).min(m);
                if row_start >= row_end {
                    break;
                }
                handles.push(scope.spawn(move || {
                    matmul_transpose_left_range(a, b, out_chunk, row_start, row_end);
                }));
            }
            for h in handles {
                h.join()
                    .expect("matmul_transpose_left worker thread panicked");
            }
        });
    } else {
        matmul_transpose_left_range(a, b, out.as_mut_slice(), 0, m);
    }
    Ok(out)
}

/// Serial `AᵀB` over output rows `[row_start, row_end)` (columns of `A`).
fn matmul_transpose_left_range(
    a: &Matrix,
    b: &Matrix,
    out: &mut [f64],
    row_start: usize,
    row_end: usize,
) {
    let n = b.cols();
    let depth = a.rows();
    // Width-1 fast path: stream A row-wise once, accumulating into the
    // (cache-resident) output column.  Per output row the depth index r
    // ascends and the same zero terms are skipped as in the blocked kernel
    // below, so `Aᵀy` stays bit-identical to a width-1 `AᵀY`.
    if n == 1 {
        let b_col = b.as_slice();
        for (r, &br) in b_col.iter().enumerate() {
            let a_panel = &a.row(r)[row_start..row_end];
            for (o, &ari) in out.iter_mut().zip(a_panel.iter()) {
                if ari == 0.0 {
                    continue;
                }
                *o += ari * br;
            }
        }
        return;
    }
    // The depth axis runs over rows of A and B.  Tiling output rows first
    // keeps the accumulating block hot while a depth panel of B streams
    // through it; per (i, j) the depth index r ascends across and within
    // panels, so the result is blocking-invariant bit for bit.
    for i0 in (row_start..row_end).step_by(BLOCK_ROWS) {
        let i1 = (i0 + BLOCK_ROWS).min(row_end);
        for r0 in (0..depth).step_by(BLOCK_DEPTH) {
            let r1 = (r0 + BLOCK_DEPTH).min(depth);
            for r in r0..r1 {
                let a_row = a.row(r);
                let b_row = b.row(r);
                for i in i0..i1 {
                    let ari = a_row[i];
                    if ari == 0.0 {
                        continue;
                    }
                    let out_row = &mut out[(i - row_start) * n..(i - row_start + 1) * n];
                    for (o, &brj) in out_row.iter_mut().zip(b_row.iter()) {
                        *o += ari * brj;
                    }
                }
            }
        }
    }
}

/// Computes `A * Bᵀ` without materialising `Bᵀ`.
pub fn matmul_a_bt(a: &Matrix, b: &Matrix) -> Result<Matrix> {
    if a.cols() != b.cols() {
        return Err(LinalgError::ShapeMismatch {
            op: "matmul_a_bt",
            left: a.shape(),
            right: (b.cols(), b.rows()),
        });
    }
    let (m, n) = (a.rows(), b.rows());
    let mut out = Matrix::zeros(m, n);
    for i in 0..m {
        let a_row = a.row(i);
        let out_row = out.row_mut(i);
        for (j, o) in out_row.iter_mut().enumerate().take(n) {
            let b_row = b.row(j);
            let mut acc = 0.0;
            for (x, y) in a_row.iter().zip(b_row.iter()) {
                acc += x * y;
            }
            *o = acc;
        }
    }
    Ok(out)
}

/// Computes the gram matrix `Aᵀ A` (always symmetric positive semidefinite).
///
/// Only the upper triangle is computed and then mirrored, which roughly halves
/// the work compared to a general product.
pub fn gram(a: &Matrix) -> Matrix {
    let n = a.cols();
    let mut g = Matrix::zeros(n, n);
    for r in 0..a.rows() {
        let row = a.row(r);
        for i in 0..n {
            let ri = row[i];
            if ri == 0.0 {
                continue;
            }
            let g_row = g.row_mut(i);
            for (j, &rj) in row.iter().enumerate().skip(i) {
                g_row[j] += ri * rj;
            }
        }
    }
    // Mirror the upper triangle.
    for i in 0..n {
        for j in (i + 1)..n {
            let v = g[(i, j)];
            g[(j, i)] = v;
        }
    }
    g
}

/// Computes the outer gram `A Aᵀ`.
pub fn outer_gram(a: &Matrix) -> Matrix {
    matmul_a_bt(a, a).expect("A * Aᵀ shapes always agree")
}

/// Kronecker product `A ⊗ B`.
///
/// Multi-dimensional workloads and strategies in the matrix mechanism are
/// Kronecker products of their one-dimensional building blocks, so this is a
/// core primitive for the workload crate.
pub fn kron(a: &Matrix, b: &Matrix) -> Matrix {
    let (ar, ac) = a.shape();
    let (br, bc) = b.shape();
    let mut out = Matrix::zeros(ar * br, ac * bc);
    for i in 0..ar {
        for j in 0..ac {
            let aij = a[(i, j)];
            if aij == 0.0 {
                continue;
            }
            for p in 0..br {
                let b_row = b.row(p);
                let out_row = out.row_mut(i * br + p);
                for (q, &bpq) in b_row.iter().enumerate() {
                    out_row[j * bc + q] = aij * bpq;
                }
            }
        }
    }
    out
}

/// Kronecker product of a sequence of matrices, `A₁ ⊗ A₂ ⊗ … ⊗ Aₖ`.
///
/// Returns the `1x1` identity for an empty sequence.
pub fn kron_all(factors: &[Matrix]) -> Matrix {
    let mut acc = Matrix::identity(1);
    for f in factors {
        acc = kron(&acc, f);
    }
    acc
}

/// Computes `trace(A * B)` without forming the product.
///
/// Both matrices must be square of the same size; the trace of a product is
/// the sum of the elementwise products of `A` and `Bᵀ`.
pub fn trace_of_product(a: &Matrix, b: &Matrix) -> Result<f64> {
    if a.cols() != b.rows() || a.rows() != b.cols() {
        return Err(LinalgError::ShapeMismatch {
            op: "trace_of_product",
            left: a.shape(),
            right: b.shape(),
        });
    }
    let mut acc = 0.0;
    for i in 0..a.rows() {
        let a_row = a.row(i);
        for (j, &aij) in a_row.iter().enumerate() {
            acc += aij * b[(j, i)];
        }
    }
    Ok(acc)
}

/// Computes `diag(d) * A` (scales row `i` of `A` by `d[i]`).
pub fn scale_rows(d: &[f64], a: &Matrix) -> Result<Matrix> {
    if d.len() != a.rows() {
        return Err(LinalgError::ShapeMismatch {
            op: "scale_rows",
            left: (d.len(), d.len()),
            right: a.shape(),
        });
    }
    let mut out = a.clone();
    for (i, &di) in d.iter().enumerate() {
        for v in out.row_mut(i) {
            *v *= di;
        }
    }
    Ok(out)
}

/// Computes `A * diag(d)` (scales column `j` of `A` by `d[j]`).
pub fn scale_cols(a: &Matrix, d: &[f64]) -> Result<Matrix> {
    if d.len() != a.cols() {
        return Err(LinalgError::ShapeMismatch {
            op: "scale_cols",
            left: a.shape(),
            right: (d.len(), d.len()),
        });
    }
    let mut out = a.clone();
    for i in 0..out.rows() {
        let row = out.row_mut(i);
        for (v, &dj) in row.iter_mut().zip(d.iter()) {
            *v *= dj;
        }
    }
    Ok(out)
}

/// Minimum number of updated entries before [`syrk_sub_lower`] and
/// [`trsm_right_transpose_lower`] spawn worker threads.
const SYRK_PARALLEL_WORK: usize = 32_768;

/// Symmetric rank-k update: subtracts `A Aᵀ` from the **lower triangle**
/// (diagonal included) of the square block of `c` anchored at
/// `(offset, offset)`, where row `i` of `a` corresponds to row `offset + i`
/// of `c`.  Entries outside that lower triangle are untouched.
///
/// This is the trailing update of the blocked right-looking Cholesky
/// ([`crate::decomp::Cholesky::new`]): after a panel of columns is factored,
/// the remaining block shrinks by `P Pᵀ` of the panel rows.  Each output
/// entry is one [`dot`] over the corresponding rows of `a` — self-contained
/// and order-fixed — so the update is parallelised over row blocks with
/// bit-identical results for every thread count (see [`crate::parallel`]).
pub fn syrk_sub_lower(c: &mut Matrix, a: &Matrix, offset: usize) -> Result<()> {
    let k = a.rows();
    if offset + k > c.rows() || c.rows() != c.cols() {
        return Err(LinalgError::ShapeMismatch {
            op: "syrk_sub_lower",
            left: c.shape(),
            right: (offset + k, offset + k),
        });
    }
    if k == 0 || a.cols() == 0 {
        return Ok(());
    }
    let n = c.cols();
    let work = k * (k + 1) / 2 * a.cols();
    let threads = if work >= SYRK_PARALLEL_WORK {
        parallel::threads_for(k)
    } else {
        1
    };
    // Skip the first `offset` rows of `c`; the updated block starts there.
    let c_data = &mut c.as_mut_slice()[offset * n..(offset + k) * n];
    parallel::for_rows(c_data, n, k, threads, &|i, c_row: &mut [f64]| {
        let a_i = a.row(i);
        for (j, c_ij) in c_row[offset..=offset + i].iter_mut().enumerate() {
            *c_ij -= dot(a_i, a.row(j));
        }
    });
    Ok(())
}

/// Triangular solve `X Lᵀ = B` in place (`b` becomes `X`) for a
/// lower-triangular `L`, i.e. `X = B L⁻ᵀ`.
///
/// Only the lower triangle of `l` is read.  Each row of `b` is an
/// independent forward substitution (`x_j = (b_j − Σ_{t<j} x_t L_{jt}) /
/// L_{jj}`, `j` ascending), so the solve is parallelised over row blocks
/// with bit-identical results for every thread count.  In the blocked
/// Cholesky this computes the panel's sub-diagonal block `L₂₁ = A₂₁ L₁₁⁻ᵀ`.
///
/// Returns [`LinalgError::Singular`] when a diagonal entry of `l` is zero.
pub fn trsm_right_transpose_lower(b: &mut Matrix, l: &Matrix) -> Result<()> {
    let k = l.rows();
    if !l.is_square() || b.cols() != k {
        return Err(LinalgError::ShapeMismatch {
            op: "trsm_right_transpose_lower",
            left: b.shape(),
            right: l.shape(),
        });
    }
    for (j, &d) in l.diag().iter().enumerate() {
        if d == 0.0 {
            return Err(LinalgError::Singular { pivot: j });
        }
    }
    let m = b.rows();
    if m == 0 || k == 0 {
        return Ok(());
    }
    let work = m * k * (k + 1) / 2;
    let threads = if work >= SYRK_PARALLEL_WORK {
        parallel::threads_for(m)
    } else {
        1
    };
    parallel::for_rows(b.as_mut_slice(), k, m, threads, &|_, x: &mut [f64]| {
        for j in 0..k {
            let l_j = l.row(j);
            let s = dot(&x[..j], &l_j[..j]);
            x[j] = (x[j] - s) / l_j[j];
        }
    });
    Ok(())
}

/// Computes the congruence `Qᵀ * D * Q` where `D = diag(d)` — the form of
/// `AᵀA` for a strategy built from weighted design queries `A = diag(λ) Q`
/// with `d = λ²`.
pub fn congruence_diag(q: &Matrix, d: &[f64]) -> Result<Matrix> {
    if d.len() != q.rows() {
        return Err(LinalgError::ShapeMismatch {
            op: "congruence_diag",
            left: (d.len(), d.len()),
            right: q.shape(),
        });
    }
    let n = q.cols();
    let mut out = Matrix::zeros(n, n);
    for (r, &dr) in d.iter().enumerate() {
        if dr == 0.0 {
            continue;
        }
        let row = q.row(r);
        for i in 0..n {
            let s = dr * row[i];
            if s == 0.0 {
                continue;
            }
            let out_row = out.row_mut(i);
            for (j, &rj) in row.iter().enumerate().skip(i) {
                out_row[j] += s * rj;
            }
        }
    }
    for i in 0..n {
        for j in (i + 1)..n {
            let v = out[(i, j)];
            out[(j, i)] = v;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn assert_matrix_eq(a: &Matrix, b: &Matrix, tol: f64) {
        assert_eq!(a.shape(), b.shape());
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                assert!(
                    approx_eq(a[(i, j)], b[(i, j)], tol),
                    "mismatch at ({i},{j}): {} vs {}",
                    a[(i, j)],
                    b[(i, j)]
                );
            }
        }
    }

    #[test]
    fn matmul_small_known() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]).unwrap();
        let c = matmul(&a, &b).unwrap();
        let expected = Matrix::from_rows(&[vec![19.0, 22.0], vec![43.0, 50.0]]).unwrap();
        assert_matrix_eq(&c, &expected, 1e-12);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_fn(5, 5, |i, j| (i * j) as f64 + 1.0);
        let c = matmul(&a, &Matrix::identity(5)).unwrap();
        assert_matrix_eq(&c, &a, 1e-12);
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn matmul_parallel_agrees_with_serial() {
        let n = 150;
        let a = Matrix::from_fn(n, n, |i, j| ((i * 31 + j * 17) % 13) as f64 - 6.0);
        let b = Matrix::from_fn(n, n, |i, j| ((i * 7 + j * 3) % 11) as f64 - 5.0);
        let par = matmul(&a, &b).unwrap();
        // Serial reference.
        let mut serial = Matrix::zeros(n, n);
        for i in 0..n {
            for k in 0..n {
                for j in 0..n {
                    serial[(i, j)] += a[(i, k)] * b[(k, j)];
                }
            }
        }
        assert_matrix_eq(&par, &serial, 1e-9);
    }

    #[test]
    fn transposed_products_agree_with_explicit() {
        let a = Matrix::from_fn(4, 3, |i, j| (i + j) as f64);
        let b = Matrix::from_fn(4, 2, |i, j| (i as f64) - (j as f64));
        let atb = matmul_transpose_left(&a, &b).unwrap();
        let explicit = matmul(&a.transpose(), &b).unwrap();
        assert_matrix_eq(&atb, &explicit, 1e-12);

        let c = Matrix::from_fn(5, 3, |i, j| (2 * i + j) as f64);
        let abt = matmul_a_bt(&a, &c).unwrap();
        let explicit2 = matmul(&a, &c.transpose()).unwrap();
        assert_matrix_eq(&abt, &explicit2, 1e-12);
    }

    #[test]
    fn gram_matches_explicit_product() {
        let a = Matrix::from_fn(6, 4, |i, j| ((i * 5 + j * 3) % 7) as f64 - 3.0);
        let g = gram(&a);
        let explicit = matmul(&a.transpose(), &a).unwrap();
        assert_matrix_eq(&g, &explicit, 1e-12);
        assert!(g.is_symmetric(1e-12));
    }

    #[test]
    fn outer_gram_matches_explicit() {
        let a = Matrix::from_fn(3, 5, |i, j| (i as f64) * 0.5 + (j as f64));
        let g = outer_gram(&a);
        let explicit = matmul(&a, &a.transpose()).unwrap();
        assert_matrix_eq(&g, &explicit, 1e-12);
    }

    #[test]
    fn kron_small_known() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![3.0], vec![4.0]]).unwrap();
        let k = kron(&a, &b);
        assert_eq!(k.shape(), (2, 2));
        assert_eq!(k[(0, 0)], 3.0);
        assert_eq!(k[(0, 1)], 6.0);
        assert_eq!(k[(1, 0)], 4.0);
        assert_eq!(k[(1, 1)], 8.0);
    }

    #[test]
    fn kron_identity_sizes() {
        let a = Matrix::identity(2);
        let b = Matrix::identity(3);
        let k = kron(&a, &b);
        assert_matrix_eq(&k, &Matrix::identity(6), 1e-15);
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A ⊗ B)(C ⊗ D) = (AC) ⊗ (BD)
        let a = Matrix::from_fn(2, 2, |i, j| (i + 2 * j) as f64);
        let b = Matrix::from_fn(3, 3, |i, j| (i as f64) - (j as f64));
        let c = Matrix::from_fn(2, 2, |i, j| (i * j) as f64 + 1.0);
        let d = Matrix::from_fn(3, 3, |i, j| ((i + j) % 3) as f64);
        let lhs = matmul(&kron(&a, &b), &kron(&c, &d)).unwrap();
        let rhs = kron(&matmul(&a, &c).unwrap(), &matmul(&b, &d).unwrap());
        assert_matrix_eq(&lhs, &rhs, 1e-9);
    }

    #[test]
    fn kron_all_of_empty_is_identity1() {
        let k = kron_all(&[]);
        assert_eq!(k.shape(), (1, 1));
        assert_eq!(k[(0, 0)], 1.0);
    }

    #[test]
    fn trace_of_product_matches_explicit() {
        let a = Matrix::from_fn(4, 4, |i, j| (i + j) as f64);
        let b = Matrix::from_fn(4, 4, |i, j| (i as f64) * 2.0 - (j as f64));
        let t = trace_of_product(&a, &b).unwrap();
        let explicit = matmul(&a, &b).unwrap().trace();
        assert!(approx_eq(t, explicit, 1e-12));
        assert!(trace_of_product(&a, &Matrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn scale_rows_and_cols() {
        let a = Matrix::filled(2, 3, 1.0);
        let r = scale_rows(&[2.0, 3.0], &a).unwrap();
        assert_eq!(r[(0, 0)], 2.0);
        assert_eq!(r[(1, 2)], 3.0);
        let c = scale_cols(&a, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(c[(1, 2)], 3.0);
        assert!(scale_rows(&[1.0], &a).is_err());
        assert!(scale_cols(&a, &[1.0]).is_err());
    }

    #[test]
    fn dot_matches_sequential_for_all_lengths() {
        // The 8-lane kernel must agree with a plain fold across every
        // remainder length (0..=17 covers full chunks, empty, and partials).
        for len in 0..=17usize {
            let a: Vec<f64> = (0..len).map(|i| (i as f64) * 0.7 - 3.0).collect();
            let b: Vec<f64> = (0..len).map(|i| 1.0 / (i as f64 + 1.0)).collect();
            let reference: f64 = a.iter().zip(b.iter()).map(|(x, y)| x * y).sum();
            assert!(
                approx_eq(dot(&a, &b), reference, 1e-12),
                "len {len}: {} vs {reference}",
                dot(&a, &b)
            );
        }
    }

    #[test]
    fn syrk_sub_lower_matches_explicit_product() {
        // C -= A·Aᵀ on the lower triangle, anchored at an offset; entries
        // outside the block's lower triangle are untouched.
        for &(rows, depth, offset) in &[
            (3usize, 2usize, 0usize),
            (5, 4, 2),
            (40, 17, 3),
            (130, 64, 6),
        ] {
            let n = rows + offset;
            let a = Matrix::from_fn(rows, depth, |i, j| ((i * 5 + j * 11) % 13) as f64 - 6.0);
            let mut c = Matrix::from_fn(n, n, |i, j| ((i * 3 + j * 7) % 17) as f64);
            let before = c.clone();
            syrk_sub_lower(&mut c, &a, offset).unwrap();
            let aat = matmul_a_bt(&a, &a).unwrap();
            for i in 0..n {
                for j in 0..n {
                    let expected = if i >= offset && j >= offset && j <= i {
                        before[(i, j)] - aat[(i - offset, j - offset)]
                    } else {
                        before[(i, j)]
                    };
                    assert!(
                        approx_eq(c[(i, j)], expected, 1e-9),
                        "rows={rows} offset={offset} ({i},{j})"
                    );
                }
            }
        }
        // Shape errors and the empty update.
        let mut c = Matrix::zeros(4, 4);
        assert!(syrk_sub_lower(&mut c, &Matrix::zeros(3, 2), 2).is_err());
        assert!(syrk_sub_lower(&mut c, &Matrix::zeros(0, 2), 4).is_ok());
        let mut rect = Matrix::zeros(4, 5);
        assert!(syrk_sub_lower(&mut rect, &Matrix::zeros(2, 2), 0).is_err());
    }

    #[test]
    fn trsm_right_solves_against_transposed_lower_factor() {
        // X Lᵀ = B  ⇒  X·Lᵀ reconstructs B.
        for &(m, k) in &[(1usize, 1usize), (4, 3), (33, 8), (150, 64)] {
            let l = Matrix::from_fn(k, k, |i, j| {
                if j < i {
                    ((i * 7 + j * 5) % 9) as f64 / 4.0 - 1.0
                } else if j == i {
                    2.0 + (i % 3) as f64
                } else {
                    0.0
                }
            });
            let b = Matrix::from_fn(m, k, |i, j| ((i * 13 + j * 3) % 11) as f64 - 5.0);
            let mut x = b.clone();
            trsm_right_transpose_lower(&mut x, &l).unwrap();
            let rec = matmul_a_bt(&x, &l).unwrap();
            for i in 0..m {
                for j in 0..k {
                    assert!(
                        approx_eq(rec[(i, j)], b[(i, j)], 1e-9),
                        "m={m} k={k} ({i},{j}): {} vs {}",
                        rec[(i, j)],
                        b[(i, j)]
                    );
                }
            }
        }
        // Singular diagonal and shape mismatches are rejected.
        let mut b = Matrix::zeros(2, 2);
        assert!(matches!(
            trsm_right_transpose_lower(&mut b, &Matrix::zeros(2, 2)),
            Err(LinalgError::Singular { pivot: 0 })
        ));
        assert!(trsm_right_transpose_lower(&mut b, &Matrix::identity(3)).is_err());
        assert!(trsm_right_transpose_lower(&mut b, &Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn congruence_diag_matches_explicit() {
        let q = Matrix::from_fn(4, 3, |i, j| ((i * 3 + j) % 5) as f64 - 2.0);
        let d = vec![0.5, 2.0, 0.0, 1.5];
        let c = congruence_diag(&q, &d).unwrap();
        let explicit =
            matmul(&matmul(&q.transpose(), &Matrix::from_diag(&d)).unwrap(), &q).unwrap();
        assert_matrix_eq(&c, &explicit, 1e-12);
        assert!(congruence_diag(&q, &[1.0]).is_err());
    }
}
