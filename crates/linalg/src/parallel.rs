//! Thread-count policy for the parallel kernels in this crate.
//!
//! Every threaded kernel (`ops::matmul`, `ops::syrk_sub_lower`,
//! `ops::trsm_right_transpose_lower`, the blocked Cholesky and the symmetric
//! eigensolver) asks this module how many worker threads to use instead of
//! querying the machine ad hoc.  The policy, in precedence order:
//!
//! 1. a programmatic override set with [`set_max_threads`] (what the
//!    determinism tests and embedding applications use),
//! 2. the `MM_LINALG_THREADS` environment variable (read once, at first use),
//! 3. [`std::thread::available_parallelism`].
//!
//! # Determinism contract
//!
//! The thread count never changes *what* is computed — only who computes it.
//! Every parallel kernel in this crate partitions its work over **fixed block
//! boundaries** (block sizes are compile-time constants, independent of the
//! thread count) and accumulates each output entry, or each per-block partial,
//! in a fixed sequential order; per-block partials are always combined in
//! ascending block order.  Results are therefore deterministic for a fixed
//! input and **bit-identical across thread counts** — `MM_LINALG_THREADS=1`
//! and `MM_LINALG_THREADS=64` produce the same bytes.  The regression test
//! `tests/determinism.rs` (workspace root) enforces this end to end, from the
//! raw kernels up through `Engine::answer`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Programmatic override; 0 means "not set".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// `MM_LINALG_THREADS`, parsed once at first use.
static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();

fn env_threads() -> Option<usize> {
    *ENV_THREADS.get_or_init(|| {
        std::env::var("MM_LINALG_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

/// Sets (or with `None` clears) the process-wide thread-count override.
///
/// Takes precedence over `MM_LINALG_THREADS` and the detected parallelism.
/// Values are clamped to at least 1.  Thanks to the determinism contract this
/// knob only affects wall-clock time, never results.
pub fn set_max_threads(threads: Option<usize>) {
    OVERRIDE.store(threads.map_or(0, |n| n.max(1)), Ordering::Relaxed);
}

/// The maximum number of worker threads a kernel may use right now.
pub fn max_threads() -> usize {
    let forced = OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Some(n) = env_threads() {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Thread count for a kernel with `items` independent work items: at most
/// [`max_threads`], at most one thread per item, at least 1.
pub fn threads_for(items: usize) -> usize {
    max_threads().min(items).max(1)
}

/// Runs `f(row_index, row)` over the first `rows` rows of a row-major slab
/// on `threads` workers — the shared harness for kernels whose output rows
/// are independent (the SYRK trailing update, TRSM row solves and the
/// eigensolver's rank-1/2 row updates).
///
/// Each worker owns a contiguous chunk of `ceil(rows / threads)` rows and
/// every row's update order is fixed by `f` alone, so the partitioning obeys
/// the determinism contract above: results are bit-identical for any thread
/// count.
pub fn for_rows<F>(data: &mut [f64], row_len: usize, rows: usize, threads: usize, f: &F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    let data = &mut data[..rows * row_len];
    if threads <= 1 {
        for (i, row) in data.chunks_mut(row_len).enumerate() {
            f(i, row);
        }
        return;
    }
    let chunk = rows.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, slab) in data.chunks_mut(chunk * row_len).enumerate() {
            scope.spawn(move || {
                for (di, row) in slab.chunks_mut(row_len).enumerate() {
                    f(t * chunk + di, row);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_for_clamps() {
        // Regardless of the machine, the invariants hold.
        assert!(threads_for(0) == 1);
        assert!(threads_for(1) == 1);
        assert!(threads_for(usize::MAX) >= 1);
        assert!(threads_for(3) <= 3);
    }

    #[test]
    fn override_wins_and_clears() {
        set_max_threads(Some(3));
        assert_eq!(max_threads(), 3);
        assert_eq!(threads_for(8), 3);
        assert_eq!(threads_for(2), 2);
        set_max_threads(None);
        assert!(max_threads() >= 1);
    }
}
