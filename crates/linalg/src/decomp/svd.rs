//! Singular value decomposition via the gram-matrix eigendecomposition.
//!
//! The matrix mechanism only needs singular values (for the singular value
//! bound of Thm. 2 they are the square roots of the eigenvalues of `WᵀW`) and
//! occasionally right singular vectors; both are obtained from the symmetric
//! eigendecomposition of `AᵀA`, which is accurate enough for the
//! well-conditioned gram matrices arising from counting-query workloads.

use crate::decomp::eigen::SymmetricEigen;
use crate::error::Result;
use crate::matrix::Matrix;
use crate::ops;

/// Singular value decomposition `A = U diag(σ) Vᵀ` (thin form).
#[derive(Debug, Clone)]
pub struct Svd {
    singular_values: Vec<f64>,
    /// Right singular vectors as columns (`n x n`).
    v: Matrix,
}

impl Svd {
    /// Computes singular values and right singular vectors of `A` from the
    /// eigendecomposition of `AᵀA`.
    pub fn new(a: &Matrix) -> Result<Self> {
        let g = ops::gram(a);
        Self::from_gram(&g)
    }

    /// Computes the SVD data directly from a precomputed gram matrix `AᵀA`.
    ///
    /// This is the entry point used by workloads that provide `WᵀW` in closed
    /// form without materialising `W`.
    pub fn from_gram(g: &Matrix) -> Result<Self> {
        let eig = SymmetricEigen::new(g)?;
        let singular_values = eig
            .eigenvalues()
            .iter()
            .map(|&l| if l > 0.0 { l.sqrt() } else { 0.0 })
            .collect();
        Ok(Svd {
            singular_values,
            v: eig.eigenvectors().clone(),
        })
    }

    /// Singular values in descending order.
    pub fn singular_values(&self) -> &[f64] {
        &self.singular_values
    }

    /// Right singular vectors as columns.
    pub fn v(&self) -> &Matrix {
        &self.v
    }

    /// Numerical rank: singular values above `tol * σ_max`.
    pub fn rank(&self, tol: f64) -> usize {
        let max = self.singular_values.first().copied().unwrap_or(0.0);
        if max == 0.0 {
            return 0;
        }
        self.singular_values
            .iter()
            .filter(|&&s| s > tol * max)
            .count()
    }

    /// Largest singular value (the spectral norm of `A`).
    pub fn spectral_norm(&self) -> f64 {
        self.singular_values.first().copied().unwrap_or(0.0)
    }

    /// Condition number σ_max / σ_min (infinite for singular matrices).
    pub fn condition_number(&self) -> f64 {
        let max = self.spectral_norm();
        let min = self.singular_values.last().copied().unwrap_or(0.0);
        if min <= 0.0 {
            f64::INFINITY
        } else {
            max / min
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn diagonal_matrix_singular_values() {
        let a = Matrix::from_diag(&[-3.0, 2.0, 1.0]);
        let svd = Svd::new(&a).unwrap();
        let s = svd.singular_values();
        assert!(approx_eq(s[0], 3.0, 1e-9));
        assert!(approx_eq(s[1], 2.0, 1e-9));
        assert!(approx_eq(s[2], 1.0, 1e-9));
        assert_eq!(svd.rank(1e-9), 3);
    }

    #[test]
    fn rank_deficient() {
        let a = Matrix::from_fn(4, 3, |i, j| ((i + 1) * (j + 1)) as f64);
        let svd = Svd::new(&a).unwrap();
        assert_eq!(svd.rank(1e-7), 1);
        assert!(svd.condition_number().is_infinite());
    }

    #[test]
    fn spectral_norm_of_orthogonal_is_one() {
        // 2x2 rotation matrix.
        let theta = 0.7_f64;
        let a = Matrix::from_rows(&[
            vec![theta.cos(), -theta.sin()],
            vec![theta.sin(), theta.cos()],
        ])
        .unwrap();
        let svd = Svd::new(&a).unwrap();
        assert!(approx_eq(svd.spectral_norm(), 1.0, 1e-9));
        assert!(approx_eq(svd.condition_number(), 1.0, 1e-9));
    }

    #[test]
    fn frobenius_identity() {
        let a = Matrix::from_fn(5, 4, |i, j| ((i * 3 + j) % 7) as f64 - 3.0);
        let svd = Svd::new(&a).unwrap();
        let sq: f64 = svd.singular_values().iter().map(|s| s * s).sum();
        assert!(approx_eq(sq, a.sum_of_squares(), 1e-7));
    }

    #[test]
    fn from_gram_matches_new() {
        let a = Matrix::from_fn(6, 4, |i, j| ((i * 5 + j * 2) % 9) as f64 / 3.0);
        let s1 = Svd::new(&a).unwrap();
        let s2 = Svd::from_gram(&crate::ops::gram(&a)).unwrap();
        for (x, y) in s1.singular_values().iter().zip(s2.singular_values().iter()) {
            assert!(approx_eq(*x, *y, 1e-10));
        }
    }

    #[test]
    fn empty_and_nonsquare_gram_rejected() {
        assert!(Svd::from_gram(&Matrix::zeros(0, 0)).is_err());
        assert!(Svd::from_gram(&Matrix::zeros(2, 3)).is_err());
    }
}
