//! Householder QR factorization and least-squares solves.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::ops;

/// QR factorization `A = Q R` computed with Householder reflections.
///
/// `A` is `m x n` with `m >= n`; `Q` is `m x n` with orthonormal columns
/// (thin QR) and `R` is `n x n` upper triangular.
#[derive(Debug, Clone)]
pub struct Qr {
    q: Matrix,
    r: Matrix,
}

impl Qr {
    /// Factors the matrix. Requires `rows >= cols` and a non-empty matrix.
    pub fn new(a: &Matrix) -> Result<Self> {
        let (m, n) = a.shape();
        if m == 0 || n == 0 {
            return Err(LinalgError::Empty);
        }
        if m < n {
            return Err(LinalgError::InvalidArgument(format!(
                "QR requires rows >= cols, got {m}x{n}"
            )));
        }
        let mut r = a.clone();
        // Accumulate Q as a product of Householder reflectors applied to I.
        let mut q_full = Matrix::identity(m);

        let mut v = vec![0.0; m];
        for k in 0..n {
            // Build the Householder vector for column k.
            let mut norm = 0.0;
            for i in k..m {
                let x = r[(i, k)];
                norm += x * x;
            }
            let norm = norm.sqrt();
            if norm < f64::EPSILON {
                continue;
            }
            let alpha = if r[(k, k)] >= 0.0 { -norm } else { norm };
            let mut vnorm2 = 0.0;
            for i in k..m {
                let x = if i == k { r[(i, k)] - alpha } else { r[(i, k)] };
                v[i] = x;
                vnorm2 += x * x;
            }
            if vnorm2 < f64::EPSILON * f64::EPSILON {
                continue;
            }
            let beta = 2.0 / vnorm2;
            // Apply the reflector to R: R <- (I - beta v vᵀ) R on rows k..m.
            for j in k..n {
                let mut dot = 0.0;
                for i in k..m {
                    dot += v[i] * r[(i, j)];
                }
                let s = beta * dot;
                for i in k..m {
                    r[(i, j)] -= s * v[i];
                }
            }
            // Apply the reflector to Q_full from the right: Q <- Q (I - beta v vᵀ).
            for row in 0..m {
                let mut dot = 0.0;
                for i in k..m {
                    dot += q_full[(row, i)] * v[i];
                }
                let s = beta * dot;
                for i in k..m {
                    q_full[(row, i)] -= s * v[i];
                }
            }
        }
        // Thin factors.
        let q = q_full.submatrix(0, m, 0, n)?;
        let r_thin = r.submatrix(0, n, 0, n)?;
        Ok(Qr { q, r: r_thin })
    }

    /// The thin orthonormal factor `Q` (`m x n`).
    pub fn q(&self) -> &Matrix {
        &self.q
    }

    /// The upper-triangular factor `R` (`n x n`).
    pub fn r(&self) -> &Matrix {
        &self.r
    }

    /// Solves the least-squares problem `min_x ||A x - b||₂`.
    ///
    /// Returns [`LinalgError::Singular`] when `A` is (numerically) rank
    /// deficient.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>> {
        let m = self.q.rows();
        let n = self.q.cols();
        if b.len() != m {
            return Err(LinalgError::ShapeMismatch {
                op: "qr least squares",
                left: (m, n),
                right: (b.len(), 1),
            });
        }
        // y = Qᵀ b
        let y = self.q.matvec_transposed(b)?;
        // Back-substitute R x = y.
        let mut x = y;
        for i in (0..n).rev() {
            let s = ops::dot(&self.r.row(i)[(i + 1)..], &x[(i + 1)..]);
            let d = self.r[(i, i)];
            if d.abs() < 1e-12 {
                return Err(LinalgError::Singular { pivot: i });
            }
            x[i] = (x[i] - s) / d;
        }
        Ok(x)
    }

    /// Numerical rank of `A` estimated from the diagonal of `R`.
    pub fn rank(&self, tol: f64) -> usize {
        let max_diag = self.r.diag().iter().fold(0.0_f64, |m, &d| m.max(d.abs()));
        if max_diag == 0.0 {
            return 0;
        }
        self.r
            .diag()
            .iter()
            .filter(|d| d.abs() > tol * max_diag)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::ops::{gram, matmul};

    #[test]
    fn qr_reconstructs_matrix() {
        let a = Matrix::from_fn(5, 3, |i, j| ((i * 3 + j * 5) % 7) as f64 - 3.0);
        let qr = Qr::new(&a).unwrap();
        let rec = matmul(qr.q(), qr.r()).unwrap();
        for i in 0..5 {
            for j in 0..3 {
                assert!(approx_eq(rec[(i, j)], a[(i, j)], 1e-9), "({i},{j})");
            }
        }
    }

    #[test]
    fn q_has_orthonormal_columns() {
        let a = Matrix::from_fn(6, 4, |i, j| (i as f64 + 1.0) / (j as f64 + 1.0));
        let qr = Qr::new(&a).unwrap();
        let qtq = gram(qr.q());
        for i in 0..4 {
            for j in 0..4 {
                let e = if i == j { 1.0 } else { 0.0 };
                assert!(
                    approx_eq(qtq[(i, j)], e, 1e-9),
                    "({i},{j}) = {}",
                    qtq[(i, j)]
                );
            }
        }
    }

    #[test]
    fn least_squares_matches_normal_equations() {
        let a = Matrix::from_rows(&[
            vec![1.0, 1.0],
            vec![1.0, 2.0],
            vec![1.0, 3.0],
            vec![1.0, 4.0],
        ])
        .unwrap();
        let b = vec![6.0, 5.0, 7.0, 10.0];
        let qr = Qr::new(&a).unwrap();
        let x = qr.solve_least_squares(&b).unwrap();
        // Known OLS solution: intercept 3.5, slope 1.4.
        assert!(approx_eq(x[0], 3.5, 1e-9));
        assert!(approx_eq(x[1], 1.4, 1e-9));
    }

    #[test]
    fn exact_system_solved_exactly() {
        let a = Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 4.0], vec![0.0, 0.0]]).unwrap();
        let qr = Qr::new(&a).unwrap();
        let x = qr.solve_least_squares(&[2.0, 8.0, 0.0]).unwrap();
        assert!(approx_eq(x[0], 1.0, 1e-10));
        assert!(approx_eq(x[1], 2.0, 1e-10));
    }

    #[test]
    fn rank_detection() {
        let full = Matrix::from_fn(4, 3, |i, j| if i == j { 1.0 } else { 0.1 * (i + j) as f64 });
        assert_eq!(Qr::new(&full).unwrap().rank(1e-10), 3);

        // Rank-1 matrix.
        let rank1 = Matrix::from_fn(4, 3, |i, j| ((i + 1) * (j + 1)) as f64);
        assert_eq!(Qr::new(&rank1).unwrap().rank(1e-8), 1);
    }

    #[test]
    fn rank_deficient_solve_rejected() {
        let rank1 = Matrix::from_fn(4, 3, |i, j| ((i + 1) * (j + 1)) as f64);
        let qr = Qr::new(&rank1).unwrap();
        assert!(qr.solve_least_squares(&[1.0, 2.0, 3.0, 4.0]).is_err());
    }

    #[test]
    fn shape_errors() {
        assert!(Qr::new(&Matrix::zeros(0, 0)).is_err());
        assert!(Qr::new(&Matrix::zeros(2, 3)).is_err());
        let qr = Qr::new(&Matrix::identity(3)).unwrap();
        assert!(qr.solve_least_squares(&[1.0]).is_err());
    }
}
