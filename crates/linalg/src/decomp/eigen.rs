//! Symmetric eigendecomposition.
//!
//! The Eigen-Design algorithm (Program 2 of the paper) diagonalises the
//! workload gram matrix `WᵀW = Qᵀ D Q`; the rows of `Q` (the eigenvectors of
//! `WᵀW`) become the *design queries* and the eigenvalues become the costs of
//! the weighting program.  This module provides that decomposition via the
//! classical two-phase algorithm:
//!
//! 1. Householder reduction to tridiagonal form (`tred2`),
//! 2. implicit-shift QL iteration on the tridiagonal matrix with accumulation
//!    of the transformations (`tql2`).
//!
//! A cyclic Jacobi implementation is also provided; it is slower but
//! independent, and the test-suite uses it to cross-validate the QL results.
//!
//! # Performance and determinism
//!
//! The production kernels behind [`SymmetricEigen::new`] are restructured for
//! locality and parallelism: `tred2`'s symmetric matvec and its rank-2 /
//! rank-1 updates run row-wise (the textbook formulation walks columns of a
//! row-major matrix), and `tql2` records each implicit-shift sweep's Givens
//! rotations and applies the whole sweep in one row-parallel pass — every
//! matrix row replays the rotation sequence on its own contiguous entries, so
//! the accumulation matrix is streamed once per sweep instead of once per
//! rotation.  Work is partitioned over fixed block boundaries with per-block
//! sequential accumulation (the [`crate::parallel`] contract), so results are
//! bit-identical across thread counts.  The textbook scalar kernels are kept
//! as [`SymmetricEigen::new_scalar`] for cross-validation and benchmarking,
//! exactly as `jacobi` is kept as an independent reference.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::ops;
use crate::parallel;

/// Maximum QL iterations per eigenvalue before reporting non-convergence.
const MAX_QL_ITER: usize = 100;

/// Rows per partial in blocked vector reductions.  A compile-time constant so
/// partial boundaries — and therefore results — never depend on the thread
/// count.
const REDUCE_BLOCK: usize = 128;

/// Minimum number of updated entries before a phase spawns worker threads.
const EIG_PARALLEL_WORK: usize = 16_384;

/// Eigendecomposition of a real symmetric matrix `A = V diag(λ) Vᵀ`.
///
/// Eigenvalues are sorted in descending order and `V`'s columns are the
/// corresponding orthonormal eigenvectors.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    eigenvalues: Vec<f64>,
    /// Matrix whose columns are eigenvectors (same order as `eigenvalues`).
    eigenvectors: Matrix,
}

impl SymmetricEigen {
    /// Computes the decomposition of a symmetric matrix using
    /// Householder tridiagonalisation + implicit QL.
    ///
    /// The matrix is symmetrised (`(A+Aᵀ)/2`) first, so small asymmetries from
    /// accumulated floating point error in gram computations are tolerated.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let mut z = a.clone();
        z.symmetrize_mut();
        let mut d = vec![0.0; n];
        let mut e = vec![0.0; n];
        tred2(&mut z, &mut d, &mut e);
        tql2(&mut z, &mut d, &mut e)?;
        // Sort eigenvalues (descending) and reorder eigenvector columns.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| d[j].partial_cmp(&d[i]).unwrap_or(std::cmp::Ordering::Equal));
        let eigenvalues: Vec<f64> = order.iter().map(|&i| d[i]).collect();
        let mut eigenvectors = Matrix::zeros(n, n);
        for (new_j, &old_j) in order.iter().enumerate() {
            for i in 0..n {
                eigenvectors[(i, new_j)] = z[(i, old_j)];
            }
        }
        Ok(SymmetricEigen {
            eigenvalues,
            eigenvectors,
        })
    }

    /// Computes the decomposition with the textbook scalar kernels
    /// (`tred2_scalar` + `tql2_scalar`).
    ///
    /// This is the **reference implementation** the restructured
    /// [`SymmetricEigen::new`] is cross-validated against in tests and
    /// benchmarked against in `selection_latency`; production callers should
    /// use [`SymmetricEigen::new`].
    pub fn new_scalar(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let mut z = a.clone();
        z.symmetrize_mut();
        let mut d = vec![0.0; n];
        let mut e = vec![0.0; n];
        tred2_scalar(&mut z, &mut d, &mut e);
        tql2_scalar(&mut z, &mut d, &mut e)?;
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| d[j].partial_cmp(&d[i]).unwrap_or(std::cmp::Ordering::Equal));
        let eigenvalues: Vec<f64> = order.iter().map(|&i| d[i]).collect();
        let mut eigenvectors = Matrix::zeros(n, n);
        for (new_j, &old_j) in order.iter().enumerate() {
            for i in 0..n {
                eigenvectors[(i, new_j)] = z[(i, old_j)];
            }
        }
        Ok(SymmetricEigen {
            eigenvalues,
            eigenvectors,
        })
    }

    /// Computes the decomposition with the cyclic Jacobi method.
    ///
    /// O(n³) per sweep with a larger constant than [`SymmetricEigen::new`];
    /// intended for small matrices and cross-validation.
    pub fn jacobi(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let mut m = a.clone();
        m.symmetrize_mut();
        let mut v = Matrix::identity(n);
        let max_sweeps = 64;
        for _sweep in 0..max_sweeps {
            // Sum of off-diagonal magnitudes.
            let mut off = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    off += m[(i, j)].abs();
                }
            }
            if off < 1e-14 * (1.0 + m.max_abs()) {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = m[(p, q)];
                    if apq.abs() < 1e-300 {
                        continue;
                    }
                    let app = m[(p, p)];
                    let aqq = m[(q, q)];
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = if theta >= 0.0 {
                        1.0 / (theta + (1.0 + theta * theta).sqrt())
                    } else {
                        -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;
                    // Apply the rotation to M on both sides.
                    for k in 0..n {
                        let mkp = m[(k, p)];
                        let mkq = m[(k, q)];
                        m[(k, p)] = c * mkp - s * mkq;
                        m[(k, q)] = s * mkp + c * mkq;
                    }
                    for k in 0..n {
                        let mpk = m[(p, k)];
                        let mqk = m[(q, k)];
                        m[(p, k)] = c * mpk - s * mqk;
                        m[(q, k)] = s * mpk + c * mqk;
                    }
                    // Accumulate eigenvectors.
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }
        let mut d: Vec<f64> = m.diag();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| d[j].partial_cmp(&d[i]).unwrap_or(std::cmp::Ordering::Equal));
        let mut eigenvectors = Matrix::zeros(n, n);
        for (new_j, &old_j) in order.iter().enumerate() {
            for i in 0..n {
                eigenvectors[(i, new_j)] = v[(i, old_j)];
            }
        }
        d = order.iter().map(|&i| m[(i, i)]).collect();
        Ok(SymmetricEigen {
            eigenvalues: d,
            eigenvectors,
        })
    }

    /// Eigenvalues in descending order.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Matrix whose columns are the eigenvectors (ordered like the eigenvalues).
    pub fn eigenvectors(&self) -> &Matrix {
        &self.eigenvectors
    }

    /// Returns the matrix `Q` whose **rows** are the eigenvectors, matching
    /// the paper's convention `WᵀW = Qᵀ D Q`.
    pub fn eigenvector_rows(&self) -> Matrix {
        self.eigenvectors.transpose()
    }

    /// Dimension of the decomposed matrix.
    pub fn dim(&self) -> usize {
        self.eigenvalues.len()
    }

    /// Number of eigenvalues larger than `tol * max(|λ|)` — the numerical rank.
    pub fn rank(&self, tol: f64) -> usize {
        let max = self
            .eigenvalues
            .iter()
            .fold(0.0_f64, |m, &x| m.max(x.abs()));
        if max == 0.0 {
            return 0;
        }
        self.eigenvalues
            .iter()
            .filter(|&&x| x.abs() > tol * max)
            .count()
    }

    /// Reconstructs `V diag(λ) Vᵀ` (used by tests).
    pub fn reconstruct(&self) -> Matrix {
        let n = self.dim();
        let mut out = Matrix::zeros(n, n);
        for k in 0..n {
            let lam = self.eigenvalues[k];
            if lam == 0.0 {
                continue;
            }
            for i in 0..n {
                let vik = self.eigenvectors[(i, k)];
                if vik == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[(i, j)] += lam * vik * self.eigenvectors[(j, k)];
                }
            }
        }
        out
    }
}

/// Blocked vector reduction: `rows` items produce one `len`-vector.  Each
/// fixed [`REDUCE_BLOCK`]-row block accumulates its own partial sequentially
/// (ascending rows); blocks are distributed over threads and the partials are
/// merged in ascending block order, so the result is bit-identical for any
/// thread count.
fn block_reduce<F>(rows: usize, len: usize, fill: &F) -> Vec<f64>
where
    F: Fn(usize, usize, &mut [f64]) + Sync,
{
    let nblocks = rows.div_ceil(REDUCE_BLOCK).max(1);
    let threads = if rows * len >= EIG_PARALLEL_WORK {
        parallel::threads_for(nblocks)
    } else {
        1
    };
    let mut partials = vec![0.0f64; nblocks * len];
    if threads <= 1 {
        for (b, partial) in partials.chunks_mut(len).enumerate() {
            let start = b * REDUCE_BLOCK;
            fill(start, (start + REDUCE_BLOCK).min(rows), partial);
        }
    } else {
        let bpt = nblocks.div_ceil(threads);
        std::thread::scope(|scope| {
            for (t, chunk) in partials.chunks_mut(bpt * len).enumerate() {
                scope.spawn(move || {
                    for (bi, partial) in chunk.chunks_mut(len).enumerate() {
                        let start = (t * bpt + bi) * REDUCE_BLOCK;
                        if start >= rows {
                            break;
                        }
                        fill(start, (start + REDUCE_BLOCK).min(rows), partial);
                    }
                });
            }
        });
    }
    let mut out = vec![0.0f64; len];
    for partial in partials.chunks(len) {
        for (o, &p) in out.iter_mut().zip(partial) {
            *o += p;
        }
    }
    out
}

/// Householder reduction of the symmetric matrix stored in `z` to tridiagonal
/// form, accumulating the orthogonal transformation in `z`.
///
/// On exit `d` holds the diagonal and `e[1..]` the sub-diagonal.  Same
/// algorithm as [`tred2_scalar`], restructured row-wise: the symmetric matvec
/// `Z·u` is a blocked row reduction (dot for the lower part, axpy for the
/// mirrored part), and the rank-2 / rank-1 updates run over disjoint rows in
/// parallel.
fn tred2(z: &mut Matrix, d: &mut [f64], e: &mut [f64]) {
    let n = z.rows();
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let mut scale = 0.0;
            for &v in &z.row(i)[..=l] {
                scale += v.abs();
            }
            if scale == 0.0 {
                e[i] = z[(i, l)];
            } else {
                for v in &mut z.row_mut(i)[..=l] {
                    *v /= scale;
                    h += *v * *v;
                }
                let f = z[(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[(i, l)] = f - g;
                // The Householder vector u is the (scaled) row i; stable for
                // the rest of the iteration (only rows 0..=l are updated).
                let u: Vec<f64> = z.row(i)[..=l].to_vec();
                for (j, &uj) in u.iter().enumerate() {
                    z[(j, i)] = uj / h;
                }
                // e0 = Z u over the leading (l+1)² block stored in the lower
                // triangle: per row j, a dot for Σ_{k≤j} Z_{jk} u_k plus an
                // axpy scattering Z_{jk} u_j into e0[k], k < j.
                let z_ro: &Matrix = z;
                let e0 = block_reduce(l + 1, l + 1, &|start, end, partial: &mut [f64]| {
                    for j in start..end {
                        let row = &z_ro.row(j)[..=j];
                        partial[j] += ops::dot(row, &u[..=j]);
                        let uj = u[j];
                        if uj != 0.0 {
                            for (p, &v) in partial[..j].iter_mut().zip(&row[..j]) {
                                *p += uj * v;
                            }
                        }
                    }
                });
                let mut f_acc = 0.0;
                for j in 0..=l {
                    e[j] = e0[j] / h;
                    f_acc += e[j] * u[j];
                }
                let hh = f_acc / (h + h);
                for (ej, &uj) in e[..=l].iter_mut().zip(u.iter()) {
                    *ej -= hh * uj;
                }
                // Symmetric rank-2 update A ← A − u eᵀ − e uᵀ on the lower
                // triangle: disjoint rows, fixed per-entry order.
                let e_ro: &[f64] = &e[..=l];
                let threads = if (l + 1) * (l + 1) / 2 >= EIG_PARALLEL_WORK {
                    parallel::threads_for(l + 1)
                } else {
                    1
                };
                let n_cols = z.cols();
                parallel::for_rows(
                    z.as_mut_slice(),
                    n_cols,
                    l + 1,
                    threads,
                    &|j, row: &mut [f64]| {
                        let fj = u[j];
                        let gj = e_ro[j];
                        for ((v, &ek), &uk) in row[..=j].iter_mut().zip(&e_ro[..=j]).zip(&u[..=j]) {
                            *v -= fj * ek + gj * uk;
                        }
                    },
                );
            }
        } else {
            e[i] = z[(i, l)];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;
    // Accumulate the transformations: each stored Householder vector applies
    // a rank-1 update `Z ← Z − w gᵀ` to the leading i×i block, with
    // `g = Zᵀ u` computed as a blocked row reduction.
    for i in 0..n {
        if d[i] != 0.0 {
            let u: Vec<f64> = z.row(i)[..i].to_vec();
            let z_ro: &Matrix = z;
            let g_vec = block_reduce(i, i, &|start, end, partial: &mut [f64]| {
                for (k, &uk) in u.iter().enumerate().take(end).skip(start) {
                    if uk == 0.0 {
                        continue;
                    }
                    for (p, &v) in partial.iter_mut().zip(&z_ro.row(k)[..i]) {
                        *p += uk * v;
                    }
                }
            });
            let w: Vec<f64> = (0..i).map(|k| z[(k, i)]).collect();
            let threads = if i * i >= EIG_PARALLEL_WORK {
                parallel::threads_for(i)
            } else {
                1
            };
            let n_cols = z.cols();
            parallel::for_rows(
                z.as_mut_slice(),
                n_cols,
                i,
                threads,
                &|k, row: &mut [f64]| {
                    let wk = w[k];
                    if wk == 0.0 {
                        return;
                    }
                    for (v, &gj) in row[..i].iter_mut().zip(&g_vec) {
                        *v -= wk * gj;
                    }
                },
            );
        }
        d[i] = z[(i, i)];
        z[(i, i)] = 1.0;
        for j in 0..i {
            z[(j, i)] = 0.0;
            z[(i, j)] = 0.0;
        }
    }
}

/// The textbook (EISPACK-style) scalar Householder reduction — the
/// **reference kernel** [`tred2`] is cross-validated and benchmarked against.
fn tred2_scalar(z: &mut Matrix, d: &mut [f64], e: &mut [f64]) {
    let n = z.rows();
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let mut scale = 0.0;
            for k in 0..=l {
                scale += z[(i, k)].abs();
            }
            if scale == 0.0 {
                e[i] = z[(i, l)];
            } else {
                for k in 0..=l {
                    let v = z[(i, k)] / scale;
                    z[(i, k)] = v;
                    h += v * v;
                }
                let f = z[(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[(i, l)] = f - g;
                let mut f_acc = 0.0;
                for j in 0..=l {
                    z[(j, i)] = z[(i, j)] / h;
                    let mut g_acc = 0.0;
                    for k in 0..=j {
                        g_acc += z[(j, k)] * z[(i, k)];
                    }
                    for k in (j + 1)..=l {
                        g_acc += z[(k, j)] * z[(i, k)];
                    }
                    e[j] = g_acc / h;
                    f_acc += e[j] * z[(i, j)];
                }
                let hh = f_acc / (h + h);
                for j in 0..=l {
                    let fj = z[(i, j)];
                    let gj = e[j] - hh * fj;
                    e[j] = gj;
                    for k in 0..=j {
                        let delta = fj * e[k] + gj * z[(i, k)];
                        z[(j, k)] -= delta;
                    }
                }
            }
        } else {
            e[i] = z[(i, l)];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;
    for i in 0..n {
        if d[i] != 0.0 {
            for j in 0..i {
                let mut g = 0.0;
                for k in 0..i {
                    g += z[(i, k)] * z[(k, j)];
                }
                for k in 0..i {
                    let delta = g * z[(k, i)];
                    z[(k, j)] -= delta;
                }
            }
        }
        d[i] = z[(i, i)];
        z[(i, i)] = 1.0;
        for j in 0..i {
            z[(j, i)] = 0.0;
            z[(i, j)] = 0.0;
        }
    }
}

fn hypot(a: f64, b: f64) -> f64 {
    a.hypot(b)
}

fn sign_of(a: f64, b: f64) -> f64 {
    if b >= 0.0 {
        a.abs()
    } else {
        -a.abs()
    }
}

/// Applies one sweep of recorded adjacent-column Givens rotations to the
/// eigenvector accumulation matrix.
///
/// Each matrix row replays the whole rotation sequence on its own contiguous
/// entries, so a sweep streams the matrix once (the rotation-at-a-time
/// formulation walks two stride-`n` columns per rotation — a cache miss per
/// element at selection sizes).  Rows are disjoint and each element's update
/// order is the recorded order, so the result is bit-identical to the scalar
/// formulation and across thread counts.
fn apply_rotation_sweep(z: &mut Matrix, rotations: &[(usize, f64, f64)]) {
    if rotations.is_empty() {
        return;
    }
    let n = z.rows();
    let threads = if n * rotations.len() >= EIG_PARALLEL_WORK {
        parallel::threads_for(n)
    } else {
        1
    };
    // Replay the sweep on four rows at a time: each row's replay is a serial
    // dependency chain (rotation i reads what rotation i+1 wrote), so
    // interleaving four independent chains keeps the multiply-add units fed.
    // Row count and order per element are unchanged — grouping affects
    // instruction scheduling only, never results.
    let apply_quad = |rows: &mut [f64]| {
        debug_assert_eq!(rows.len(), 4 * n);
        let (r0, rest) = rows.split_at_mut(n);
        let (r1, rest) = rest.split_at_mut(n);
        let (r2, r3) = rest.split_at_mut(n);
        for &(i, c, s) in rotations {
            let f0 = r0[i + 1];
            let f1 = r1[i + 1];
            let f2 = r2[i + 1];
            let f3 = r3[i + 1];
            r0[i + 1] = s * r0[i] + c * f0;
            r1[i + 1] = s * r1[i] + c * f1;
            r2[i + 1] = s * r2[i] + c * f2;
            r3[i + 1] = s * r3[i] + c * f3;
            r0[i] = c * r0[i] - s * f0;
            r1[i] = c * r1[i] - s * f1;
            r2[i] = c * r2[i] - s * f2;
            r3[i] = c * r3[i] - s * f3;
        }
    };
    let apply_single = |row: &mut [f64]| {
        for &(i, c, s) in rotations {
            let f = row[i + 1];
            row[i + 1] = s * row[i] + c * f;
            row[i] = c * row[i] - s * f;
        }
    };
    let apply_slab = |slab: &mut [f64]| {
        let mut quads = slab.chunks_exact_mut(4 * n);
        for quad in &mut quads {
            apply_quad(quad);
        }
        for row in quads.into_remainder().chunks_mut(n) {
            apply_single(row);
        }
    };
    let data = z.as_mut_slice();
    if threads <= 1 {
        apply_slab(data);
        return;
    }
    // Chunk boundaries are multiples of four rows so the quad grouping — and
    // with it the thread count — can never influence which rows share a
    // chunk's remainder handling (results are identical either way; this
    // just keeps every thread on the fast quad path).
    let chunk = n.div_ceil(threads).next_multiple_of(4);
    std::thread::scope(|scope| {
        for slab in data.chunks_mut(chunk * n) {
            let apply_slab = &apply_slab;
            scope.spawn(move || apply_slab(slab));
        }
    });
}

/// Implicit-shift QL iteration on a tridiagonal matrix (`d` diagonal, `e`
/// sub-diagonal), accumulating eigenvectors into `z` (which must hold the
/// orthogonal matrix produced by [`tred2`]).  Identical arithmetic to
/// [`tql2_scalar`]; each sweep's rotations are recorded and applied in one
/// row-parallel pass ([`apply_rotation_sweep`]).
fn tql2(z: &mut Matrix, d: &mut [f64], e: &mut [f64]) -> Result<()> {
    let n = d.len();
    if n == 1 {
        return Ok(());
    }
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;
    // Absolute deflation floor: off-diagonals this small relative to the
    // overall matrix scale are treated as zero even next to (numerically)
    // zero eigenvalues, which otherwise stall the iteration on the highly
    // degenerate spectra of structured workload gram matrices.
    let scale = d
        .iter()
        .chain(e.iter())
        .fold(0.0_f64, |m, &v| m.max(v.abs()));
    let floor = f64::EPSILON * scale;
    let mut rotations: Vec<(usize, f64, f64)> = Vec::with_capacity(n);
    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small sub-diagonal element to split the matrix.
            let mut m = l;
            while m < n - 1 {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd + floor {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > MAX_QL_ITER {
                return Err(LinalgError::NonConvergence {
                    algorithm: "tql2",
                    iterations: iter,
                });
            }
            // Form the implicit shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = hypot(g, 1.0);
            g = d[m] - d[l] + e[l] / (g + sign_of(r, g));
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            let mut underflow = false;
            rotations.clear();
            let mut i = m;
            while i > l {
                i -= 1;
                let f = s * e[i];
                let b = c * e[i];
                r = hypot(f, g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Record the rotation; the sweep is applied to the
                // eigenvector matrix in one pass below.
                rotations.push((i, c, s));
            }
            apply_rotation_sweep(z, &rotations);
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

/// The textbook scalar QL iteration (rotation-at-a-time accumulation) — the
/// **reference kernel** [`tql2`] is cross-validated and benchmarked against.
fn tql2_scalar(z: &mut Matrix, d: &mut [f64], e: &mut [f64]) -> Result<()> {
    let n = d.len();
    if n == 1 {
        return Ok(());
    }
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;
    let scale = d
        .iter()
        .chain(e.iter())
        .fold(0.0_f64, |m, &v| m.max(v.abs()));
    let floor = f64::EPSILON * scale;
    for l in 0..n {
        let mut iter = 0;
        loop {
            let mut m = l;
            while m < n - 1 {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd + floor {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > MAX_QL_ITER {
                return Err(LinalgError::NonConvergence {
                    algorithm: "tql2",
                    iterations: iter,
                });
            }
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = hypot(g, 1.0);
            g = d[m] - d[l] + e[l] / (g + sign_of(r, g));
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            let mut underflow = false;
            let mut i = m;
            while i > l {
                i -= 1;
                let f = s * e[i];
                let b = c * e[i];
                r = hypot(f, g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                for k in 0..n {
                    let fk = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * fk;
                    z[(k, i)] = c * z[(k, i)] - s * fk;
                }
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::ops::gram;

    fn symmetric_test_matrix(n: usize, seed: u64) -> Matrix {
        let b = Matrix::from_fn(n, n, |i, j| {
            let v = (i as u64)
                .wrapping_mul(2654435761)
                .wrapping_add((j as u64).wrapping_mul(40503))
                .wrapping_add(seed);
            ((v % 1000) as f64) / 500.0 - 1.0
        });
        gram(&b)
    }

    fn check_decomposition(a: &Matrix, eig: &SymmetricEigen, tol: f64) {
        let rec = eig.reconstruct();
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                assert!(
                    approx_eq(rec[(i, j)], a[(i, j)], tol),
                    "reconstruction mismatch at ({i},{j}): {} vs {}",
                    rec[(i, j)],
                    a[(i, j)]
                );
            }
        }
        // Orthonormality of eigenvectors.
        let v = eig.eigenvectors();
        let vtv = gram(v);
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                let e = if i == j { 1.0 } else { 0.0 };
                assert!(
                    approx_eq(vtv[(i, j)], e, 1e-8),
                    "eigenvectors not orthonormal at ({i},{j})"
                );
            }
        }
        // Descending order.
        for w in eig.eigenvalues().windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Matrix::from_diag(&[3.0, 1.0, 2.0]);
        let eig = SymmetricEigen::new(&a).unwrap();
        let vals = eig.eigenvalues();
        assert!(approx_eq(vals[0], 3.0, 1e-12));
        assert!(approx_eq(vals[1], 2.0, 1e-12));
        assert!(approx_eq(vals[2], 1.0, 1e-12));
        check_decomposition(&a, &eig, 1e-10);
    }

    #[test]
    fn two_by_two_known() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        assert!(approx_eq(eig.eigenvalues()[0], 3.0, 1e-12));
        assert!(approx_eq(eig.eigenvalues()[1], 1.0, 1e-12));
        check_decomposition(&a, &eig, 1e-12);
    }

    #[test]
    fn one_by_one() {
        let a = Matrix::from_diag(&[5.0]);
        let eig = SymmetricEigen::new(&a).unwrap();
        assert_eq!(eig.eigenvalues(), &[5.0]);
        assert_eq!(eig.eigenvectors()[(0, 0)].abs(), 1.0);
    }

    #[test]
    fn random_symmetric_matrices_decompose() {
        for &n in &[3usize, 5, 8, 16, 33] {
            let a = symmetric_test_matrix(n, n as u64);
            let eig = SymmetricEigen::new(&a).unwrap();
            check_decomposition(&a, &eig, 1e-7 * (1.0 + a.max_abs()));
        }
    }

    #[test]
    fn psd_gram_has_nonnegative_eigenvalues() {
        let a = symmetric_test_matrix(12, 7);
        let eig = SymmetricEigen::new(&a).unwrap();
        for &l in eig.eigenvalues() {
            assert!(l > -1e-8, "gram eigenvalue should be >= 0, got {l}");
        }
    }

    #[test]
    fn trace_and_frobenius_preserved() {
        let a = symmetric_test_matrix(10, 3);
        let eig = SymmetricEigen::new(&a).unwrap();
        let sum: f64 = eig.eigenvalues().iter().sum();
        assert!(approx_eq(sum, a.trace(), 1e-7));
        let sq: f64 = eig.eigenvalues().iter().map(|x| x * x).sum();
        assert!(approx_eq(sq, a.sum_of_squares(), 1e-6));
    }

    #[test]
    fn restructured_kernels_cross_validate_against_scalar_reference() {
        // The row-wise tred2 and the sweep-batched tql2 must agree with the
        // textbook scalar kernels on eigenvalues and on the reconstructed
        // matrix (eigenvector signs/order may legitimately differ within a
        // degenerate eigenspace, the reconstruction may not).
        for &n in &[2usize, 7, 16, 33, 64, 97] {
            let a = symmetric_test_matrix(n, 1000 + n as u64);
            let fast = SymmetricEigen::new(&a).unwrap();
            let scalar = SymmetricEigen::new_scalar(&a).unwrap();
            let tol = 1e-8 * (1.0 + a.max_abs());
            for (x, y) in fast.eigenvalues().iter().zip(scalar.eigenvalues()) {
                assert!(approx_eq(*x, *y, tol), "n={n}: eigenvalue {x} vs {y}");
            }
            check_decomposition(&a, &fast, tol);
            check_decomposition(&a, &scalar, tol);
        }
        // Degenerate spectra (the structured-workload case) too.
        let g = Matrix::from_diag(&[5.0, 5.0, 5.0, 1.0, 0.0, 0.0]);
        let fast = SymmetricEigen::new(&g).unwrap();
        let scalar = SymmetricEigen::new_scalar(&g).unwrap();
        for (x, y) in fast.eigenvalues().iter().zip(scalar.eigenvalues()) {
            assert!(approx_eq(*x, *y, 1e-12));
        }
        assert!(SymmetricEigen::new_scalar(&Matrix::zeros(2, 3)).is_err());
        assert!(SymmetricEigen::new_scalar(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn ql_matches_jacobi() {
        let a = symmetric_test_matrix(9, 42);
        let ql = SymmetricEigen::new(&a).unwrap();
        let ja = SymmetricEigen::jacobi(&a).unwrap();
        for (x, y) in ql.eigenvalues().iter().zip(ja.eigenvalues().iter()) {
            assert!(approx_eq(*x, *y, 1e-7), "{x} vs {y}");
        }
        check_decomposition(&a, &ja, 1e-7 * (1.0 + a.max_abs()));
    }

    #[test]
    fn rank_of_rank_deficient_matrix() {
        // Rank-2 PSD matrix in dimension 5.
        let b = Matrix::from_fn(2, 5, |i, j| ((i + 1) * (j + 2)) as f64 % 7.0);
        let g = gram(&b);
        let eig = SymmetricEigen::new(&g).unwrap();
        assert_eq!(eig.rank(1e-9), 2);
    }

    #[test]
    fn eigenvector_rows_matches_transpose() {
        let a = symmetric_test_matrix(6, 11);
        let eig = SymmetricEigen::new(&a).unwrap();
        let q = eig.eigenvector_rows();
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(q[(i, j)], eig.eigenvectors()[(j, i)]);
            }
        }
    }

    #[test]
    fn shape_errors() {
        assert!(SymmetricEigen::new(&Matrix::zeros(2, 3)).is_err());
        assert!(SymmetricEigen::new(&Matrix::zeros(0, 0)).is_err());
        assert!(SymmetricEigen::jacobi(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn all_range_gram_eigen_structure() {
        // Gram of the 1D all-range workload on 8 cells: G[i][j] = (min+1)(n-max).
        let n = 8;
        let g = Matrix::from_fn(n, n, |i, j| {
            let lo = i.min(j) as f64;
            let hi = i.max(j) as f64;
            (lo + 1.0) * (n as f64 - hi)
        });
        let eig = SymmetricEigen::new(&g).unwrap();
        check_decomposition(&g, &eig, 1e-8);
        // All eigenvalues strictly positive (the workload has full rank).
        assert!(eig.eigenvalues().iter().all(|&l| l > 1e-9));
    }
}
