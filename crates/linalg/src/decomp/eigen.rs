//! Symmetric eigendecomposition.
//!
//! The Eigen-Design algorithm (Program 2 of the paper) diagonalises the
//! workload gram matrix `WᵀW = Qᵀ D Q`; the rows of `Q` (the eigenvectors of
//! `WᵀW`) become the *design queries* and the eigenvalues become the costs of
//! the weighting program.  This module provides that decomposition via the
//! classical two-phase algorithm:
//!
//! 1. Householder reduction to tridiagonal form (`tred2`),
//! 2. implicit-shift QL iteration on the tridiagonal matrix with accumulation
//!    of the transformations (`tql2`).
//!
//! A cyclic Jacobi implementation is also provided; it is slower but
//! independent, and the test-suite uses it to cross-validate the QL results.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;

/// Maximum QL iterations per eigenvalue before reporting non-convergence.
const MAX_QL_ITER: usize = 100;

/// Eigendecomposition of a real symmetric matrix `A = V diag(λ) Vᵀ`.
///
/// Eigenvalues are sorted in descending order and `V`'s columns are the
/// corresponding orthonormal eigenvectors.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    eigenvalues: Vec<f64>,
    /// Matrix whose columns are eigenvectors (same order as `eigenvalues`).
    eigenvectors: Matrix,
}

impl SymmetricEigen {
    /// Computes the decomposition of a symmetric matrix using
    /// Householder tridiagonalisation + implicit QL.
    ///
    /// The matrix is symmetrised (`(A+Aᵀ)/2`) first, so small asymmetries from
    /// accumulated floating point error in gram computations are tolerated.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let mut z = a.clone();
        z.symmetrize_mut();
        let mut d = vec![0.0; n];
        let mut e = vec![0.0; n];
        tred2(&mut z, &mut d, &mut e);
        tql2(&mut z, &mut d, &mut e)?;
        // Sort eigenvalues (descending) and reorder eigenvector columns.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| d[j].partial_cmp(&d[i]).unwrap_or(std::cmp::Ordering::Equal));
        let eigenvalues: Vec<f64> = order.iter().map(|&i| d[i]).collect();
        let mut eigenvectors = Matrix::zeros(n, n);
        for (new_j, &old_j) in order.iter().enumerate() {
            for i in 0..n {
                eigenvectors[(i, new_j)] = z[(i, old_j)];
            }
        }
        Ok(SymmetricEigen {
            eigenvalues,
            eigenvectors,
        })
    }

    /// Computes the decomposition with the cyclic Jacobi method.
    ///
    /// O(n³) per sweep with a larger constant than [`SymmetricEigen::new`];
    /// intended for small matrices and cross-validation.
    pub fn jacobi(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let mut m = a.clone();
        m.symmetrize_mut();
        let mut v = Matrix::identity(n);
        let max_sweeps = 64;
        for _sweep in 0..max_sweeps {
            // Sum of off-diagonal magnitudes.
            let mut off = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    off += m[(i, j)].abs();
                }
            }
            if off < 1e-14 * (1.0 + m.max_abs()) {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = m[(p, q)];
                    if apq.abs() < 1e-300 {
                        continue;
                    }
                    let app = m[(p, p)];
                    let aqq = m[(q, q)];
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = if theta >= 0.0 {
                        1.0 / (theta + (1.0 + theta * theta).sqrt())
                    } else {
                        -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;
                    // Apply the rotation to M on both sides.
                    for k in 0..n {
                        let mkp = m[(k, p)];
                        let mkq = m[(k, q)];
                        m[(k, p)] = c * mkp - s * mkq;
                        m[(k, q)] = s * mkp + c * mkq;
                    }
                    for k in 0..n {
                        let mpk = m[(p, k)];
                        let mqk = m[(q, k)];
                        m[(p, k)] = c * mpk - s * mqk;
                        m[(q, k)] = s * mpk + c * mqk;
                    }
                    // Accumulate eigenvectors.
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }
        let mut d: Vec<f64> = m.diag();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&i, &j| d[j].partial_cmp(&d[i]).unwrap_or(std::cmp::Ordering::Equal));
        let mut eigenvectors = Matrix::zeros(n, n);
        for (new_j, &old_j) in order.iter().enumerate() {
            for i in 0..n {
                eigenvectors[(i, new_j)] = v[(i, old_j)];
            }
        }
        d = order.iter().map(|&i| m[(i, i)]).collect();
        Ok(SymmetricEigen {
            eigenvalues: d,
            eigenvectors,
        })
    }

    /// Eigenvalues in descending order.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Matrix whose columns are the eigenvectors (ordered like the eigenvalues).
    pub fn eigenvectors(&self) -> &Matrix {
        &self.eigenvectors
    }

    /// Returns the matrix `Q` whose **rows** are the eigenvectors, matching
    /// the paper's convention `WᵀW = Qᵀ D Q`.
    pub fn eigenvector_rows(&self) -> Matrix {
        self.eigenvectors.transpose()
    }

    /// Dimension of the decomposed matrix.
    pub fn dim(&self) -> usize {
        self.eigenvalues.len()
    }

    /// Number of eigenvalues larger than `tol * max(|λ|)` — the numerical rank.
    pub fn rank(&self, tol: f64) -> usize {
        let max = self
            .eigenvalues
            .iter()
            .fold(0.0_f64, |m, &x| m.max(x.abs()));
        if max == 0.0 {
            return 0;
        }
        self.eigenvalues
            .iter()
            .filter(|&&x| x.abs() > tol * max)
            .count()
    }

    /// Reconstructs `V diag(λ) Vᵀ` (used by tests).
    pub fn reconstruct(&self) -> Matrix {
        let n = self.dim();
        let mut out = Matrix::zeros(n, n);
        for k in 0..n {
            let lam = self.eigenvalues[k];
            if lam == 0.0 {
                continue;
            }
            for i in 0..n {
                let vik = self.eigenvectors[(i, k)];
                if vik == 0.0 {
                    continue;
                }
                for j in 0..n {
                    out[(i, j)] += lam * vik * self.eigenvectors[(j, k)];
                }
            }
        }
        out
    }
}

/// Householder reduction of the symmetric matrix stored in `z` to tridiagonal
/// form, accumulating the orthogonal transformation in `z`.
///
/// On exit `d` holds the diagonal and `e[1..]` the sub-diagonal.
fn tred2(z: &mut Matrix, d: &mut [f64], e: &mut [f64]) {
    let n = z.rows();
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let mut scale = 0.0;
            for k in 0..=l {
                scale += z[(i, k)].abs();
            }
            if scale == 0.0 {
                e[i] = z[(i, l)];
            } else {
                for k in 0..=l {
                    let v = z[(i, k)] / scale;
                    z[(i, k)] = v;
                    h += v * v;
                }
                let f = z[(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[(i, l)] = f - g;
                let mut f_acc = 0.0;
                for j in 0..=l {
                    z[(j, i)] = z[(i, j)] / h;
                    let mut g_acc = 0.0;
                    for k in 0..=j {
                        g_acc += z[(j, k)] * z[(i, k)];
                    }
                    for k in (j + 1)..=l {
                        g_acc += z[(k, j)] * z[(i, k)];
                    }
                    e[j] = g_acc / h;
                    f_acc += e[j] * z[(i, j)];
                }
                let hh = f_acc / (h + h);
                for j in 0..=l {
                    let fj = z[(i, j)];
                    let gj = e[j] - hh * fj;
                    e[j] = gj;
                    for k in 0..=j {
                        let delta = fj * e[k] + gj * z[(i, k)];
                        z[(j, k)] -= delta;
                    }
                }
            }
        } else {
            e[i] = z[(i, l)];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;
    for i in 0..n {
        if d[i] != 0.0 {
            for j in 0..i {
                let mut g = 0.0;
                for k in 0..i {
                    g += z[(i, k)] * z[(k, j)];
                }
                for k in 0..i {
                    let delta = g * z[(k, i)];
                    z[(k, j)] -= delta;
                }
            }
        }
        d[i] = z[(i, i)];
        z[(i, i)] = 1.0;
        for j in 0..i {
            z[(j, i)] = 0.0;
            z[(i, j)] = 0.0;
        }
    }
}

fn hypot(a: f64, b: f64) -> f64 {
    a.hypot(b)
}

fn sign_of(a: f64, b: f64) -> f64 {
    if b >= 0.0 {
        a.abs()
    } else {
        -a.abs()
    }
}

/// Implicit-shift QL iteration on a tridiagonal matrix (`d` diagonal, `e`
/// sub-diagonal), accumulating eigenvectors into `z` (which must hold the
/// orthogonal matrix produced by [`tred2`]).
fn tql2(z: &mut Matrix, d: &mut [f64], e: &mut [f64]) -> Result<()> {
    let n = d.len();
    if n == 1 {
        return Ok(());
    }
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;
    // Absolute deflation floor: off-diagonals this small relative to the
    // overall matrix scale are treated as zero even next to (numerically)
    // zero eigenvalues, which otherwise stall the iteration on the highly
    // degenerate spectra of structured workload gram matrices.
    let scale = d
        .iter()
        .chain(e.iter())
        .fold(0.0_f64, |m, &v| m.max(v.abs()));
    let floor = f64::EPSILON * scale;
    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small sub-diagonal element to split the matrix.
            let mut m = l;
            while m < n - 1 {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd + floor {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            if iter > MAX_QL_ITER {
                return Err(LinalgError::NonConvergence {
                    algorithm: "tql2",
                    iterations: iter,
                });
            }
            // Form the implicit shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = hypot(g, 1.0);
            g = d[m] - d[l] + e[l] / (g + sign_of(r, g));
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            let mut underflow = false;
            let mut i = m;
            while i > l {
                i -= 1;
                let f = s * e[i];
                let b = c * e[i];
                r = hypot(f, g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate the rotation into the eigenvector matrix.
                for k in 0..n {
                    let fk = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * fk;
                    z[(k, i)] = c * z[(k, i)] - s * fk;
                }
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::ops::gram;

    fn symmetric_test_matrix(n: usize, seed: u64) -> Matrix {
        let b = Matrix::from_fn(n, n, |i, j| {
            let v = (i as u64)
                .wrapping_mul(2654435761)
                .wrapping_add((j as u64).wrapping_mul(40503))
                .wrapping_add(seed);
            ((v % 1000) as f64) / 500.0 - 1.0
        });
        gram(&b)
    }

    fn check_decomposition(a: &Matrix, eig: &SymmetricEigen, tol: f64) {
        let rec = eig.reconstruct();
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                assert!(
                    approx_eq(rec[(i, j)], a[(i, j)], tol),
                    "reconstruction mismatch at ({i},{j}): {} vs {}",
                    rec[(i, j)],
                    a[(i, j)]
                );
            }
        }
        // Orthonormality of eigenvectors.
        let v = eig.eigenvectors();
        let vtv = gram(v);
        for i in 0..a.rows() {
            for j in 0..a.cols() {
                let e = if i == j { 1.0 } else { 0.0 };
                assert!(
                    approx_eq(vtv[(i, j)], e, 1e-8),
                    "eigenvectors not orthonormal at ({i},{j})"
                );
            }
        }
        // Descending order.
        for w in eig.eigenvalues().windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Matrix::from_diag(&[3.0, 1.0, 2.0]);
        let eig = SymmetricEigen::new(&a).unwrap();
        let vals = eig.eigenvalues();
        assert!(approx_eq(vals[0], 3.0, 1e-12));
        assert!(approx_eq(vals[1], 2.0, 1e-12));
        assert!(approx_eq(vals[2], 1.0, 1e-12));
        check_decomposition(&a, &eig, 1e-10);
    }

    #[test]
    fn two_by_two_known() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let eig = SymmetricEigen::new(&a).unwrap();
        assert!(approx_eq(eig.eigenvalues()[0], 3.0, 1e-12));
        assert!(approx_eq(eig.eigenvalues()[1], 1.0, 1e-12));
        check_decomposition(&a, &eig, 1e-12);
    }

    #[test]
    fn one_by_one() {
        let a = Matrix::from_diag(&[5.0]);
        let eig = SymmetricEigen::new(&a).unwrap();
        assert_eq!(eig.eigenvalues(), &[5.0]);
        assert_eq!(eig.eigenvectors()[(0, 0)].abs(), 1.0);
    }

    #[test]
    fn random_symmetric_matrices_decompose() {
        for &n in &[3usize, 5, 8, 16, 33] {
            let a = symmetric_test_matrix(n, n as u64);
            let eig = SymmetricEigen::new(&a).unwrap();
            check_decomposition(&a, &eig, 1e-7 * (1.0 + a.max_abs()));
        }
    }

    #[test]
    fn psd_gram_has_nonnegative_eigenvalues() {
        let a = symmetric_test_matrix(12, 7);
        let eig = SymmetricEigen::new(&a).unwrap();
        for &l in eig.eigenvalues() {
            assert!(l > -1e-8, "gram eigenvalue should be >= 0, got {l}");
        }
    }

    #[test]
    fn trace_and_frobenius_preserved() {
        let a = symmetric_test_matrix(10, 3);
        let eig = SymmetricEigen::new(&a).unwrap();
        let sum: f64 = eig.eigenvalues().iter().sum();
        assert!(approx_eq(sum, a.trace(), 1e-7));
        let sq: f64 = eig.eigenvalues().iter().map(|x| x * x).sum();
        assert!(approx_eq(sq, a.sum_of_squares(), 1e-6));
    }

    #[test]
    fn ql_matches_jacobi() {
        let a = symmetric_test_matrix(9, 42);
        let ql = SymmetricEigen::new(&a).unwrap();
        let ja = SymmetricEigen::jacobi(&a).unwrap();
        for (x, y) in ql.eigenvalues().iter().zip(ja.eigenvalues().iter()) {
            assert!(approx_eq(*x, *y, 1e-7), "{x} vs {y}");
        }
        check_decomposition(&a, &ja, 1e-7 * (1.0 + a.max_abs()));
    }

    #[test]
    fn rank_of_rank_deficient_matrix() {
        // Rank-2 PSD matrix in dimension 5.
        let b = Matrix::from_fn(2, 5, |i, j| ((i + 1) * (j + 2)) as f64 % 7.0);
        let g = gram(&b);
        let eig = SymmetricEigen::new(&g).unwrap();
        assert_eq!(eig.rank(1e-9), 2);
    }

    #[test]
    fn eigenvector_rows_matches_transpose() {
        let a = symmetric_test_matrix(6, 11);
        let eig = SymmetricEigen::new(&a).unwrap();
        let q = eig.eigenvector_rows();
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(q[(i, j)], eig.eigenvectors()[(j, i)]);
            }
        }
    }

    #[test]
    fn shape_errors() {
        assert!(SymmetricEigen::new(&Matrix::zeros(2, 3)).is_err());
        assert!(SymmetricEigen::new(&Matrix::zeros(0, 0)).is_err());
        assert!(SymmetricEigen::jacobi(&Matrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn all_range_gram_eigen_structure() {
        // Gram of the 1D all-range workload on 8 cells: G[i][j] = (min+1)(n-max).
        let n = 8;
        let g = Matrix::from_fn(n, n, |i, j| {
            let lo = i.min(j) as f64;
            let hi = i.max(j) as f64;
            (lo + 1.0) * (n as f64 - hi)
        });
        let eig = SymmetricEigen::new(&g).unwrap();
        check_decomposition(&g, &eig, 1e-8);
        // All eigenvalues strictly positive (the workload has full rank).
        assert!(eig.eigenvalues().iter().all(|&l| l > 1e-9));
    }
}
