//! Matrix factorizations.
//!
//! * [`cholesky`] — `A = L Lᵀ` for symmetric positive definite matrices; the
//!   workhorse for inverting strategy gram matrices `AᵀA`.
//! * [`lu`] — LU with partial pivoting, for general square solves.
//! * [`qr`] — Householder QR, used for least squares and orthonormalisation.
//! * [`eigen`] — symmetric eigendecomposition (Householder tridiagonalisation
//!   followed by the implicit-shift QL iteration), the heart of the
//!   Eigen-Design algorithm which diagonalises `WᵀW`.
//! * [`svd`] — singular values/vectors obtained through the eigendecomposition
//!   of the gram matrix, sufficient for the singular value bound of Thm. 2.
//! * [`subspace`] — truncated symmetric eigendecomposition by block subspace
//!   iteration with Rayleigh–Ritz extraction, the `O(n²r)` kernel behind the
//!   Low-Rank Mechanism's subspace selection.

pub mod cholesky;
pub mod eigen;
pub mod lu;
pub mod qr;
pub mod subspace;
pub mod svd;

pub use cholesky::Cholesky;
pub use eigen::SymmetricEigen;
pub use lu::Lu;
pub use qr::Qr;
pub use subspace::TruncatedEigen;
pub use svd::Svd;
