//! LU factorization with partial pivoting for general square matrices.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::ops;

/// LU factorization `P A = L U` with partial (row) pivoting.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined storage: strictly lower part holds `L` (unit diagonal
    /// implied), upper part holds `U`.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (+1 or -1), used for the determinant.
    sign: f64,
}

impl Lu {
    /// Factors a square matrix. Returns [`LinalgError::Singular`] when a pivot
    /// is (numerically) zero.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for k in 0..n {
            // Find pivot.
            let mut p = k;
            let mut max = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > max {
                    max = v;
                    p = i;
                }
            }
            if max < f64::EPSILON * (n as f64) {
                return Err(LinalgError::Singular { pivot: k });
            }
            if p != k {
                // Swap rows k and p.
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                perm.swap(k, p);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                if factor == 0.0 {
                    continue;
                }
                for j in (k + 1)..n {
                    let ukj = lu[(k, j)];
                    lu[(i, j)] -= factor * ukj;
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b`.
    pub fn solve_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Apply permutation.
        let mut y: Vec<f64> = self.perm.iter().map(|&i| b[i]).collect();
        // Forward substitution with unit lower triangle (row-contiguous
        // partial inner products through the fixed-lane kernel).
        for i in 0..n {
            let s = ops::dot(&self.lu.row(i)[..i], &y[..i]);
            y[i] -= s;
        }
        // Backward substitution with U.
        for i in (0..n).rev() {
            let s = ops::dot(&self.lu.row(i)[(i + 1)..], &y[(i + 1)..]);
            y[i] = (y[i] - s) / self.lu[(i, i)];
        }
        Ok(y)
    }

    /// Solves `A X = B` for a matrix right-hand side.
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "lu solve",
                left: (n, n),
                right: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let x = self.solve_vec(&b.col(j))?;
            for (i, v) in x.into_iter().enumerate() {
                out[(i, j)] = v;
            }
        }
        Ok(out)
    }

    /// Inverse of the factored matrix.
    pub fn inverse(&self) -> Matrix {
        self.solve_matrix(&Matrix::identity(self.dim()))
            .expect("identity has matching shape")
    }

    /// Determinant of the factored matrix.
    pub fn det(&self) -> f64 {
        self.sign * self.lu.diag().iter().product::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::ops::matmul;

    #[test]
    fn solve_known_system() {
        let a = Matrix::from_rows(&[
            vec![2.0, 1.0, -1.0],
            vec![-3.0, -1.0, 2.0],
            vec![-2.0, 1.0, 2.0],
        ])
        .unwrap();
        let lu = Lu::new(&a).unwrap();
        let x = lu.solve_vec(&[8.0, -11.0, -3.0]).unwrap();
        // Known solution x = (2, 3, -1).
        assert!(approx_eq(x[0], 2.0, 1e-10));
        assert!(approx_eq(x[1], 3.0, 1e-10));
        assert!(approx_eq(x[2], -1.0, 1e-10));
    }

    #[test]
    fn determinant_with_pivoting() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let lu = Lu::new(&a).unwrap();
        assert!(approx_eq(lu.det(), -1.0, 1e-12));

        let b = Matrix::from_rows(&[vec![3.0, 8.0], vec![4.0, 6.0]]).unwrap();
        assert!(approx_eq(Lu::new(&b).unwrap().det(), -14.0, 1e-10));
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Matrix::from_fn(5, 5, |i, j| {
            if i == j {
                3.0
            } else {
                1.0 / ((i + j + 1) as f64)
            }
        });
        let inv = Lu::new(&a).unwrap().inverse();
        let prod = matmul(&a, &inv).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                let e = if i == j { 1.0 } else { 0.0 };
                assert!(approx_eq(prod[(i, j)], e, 1e-9));
            }
        }
    }

    #[test]
    fn singular_matrix_rejected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(matches!(Lu::new(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn shape_errors() {
        assert!(Lu::new(&Matrix::zeros(2, 3)).is_err());
        assert!(Lu::new(&Matrix::zeros(0, 0)).is_err());
        let lu = Lu::new(&Matrix::identity(2)).unwrap();
        assert!(lu.solve_vec(&[1.0]).is_err());
        assert!(lu.solve_matrix(&Matrix::zeros(3, 1)).is_err());
    }

    #[test]
    fn solve_matrix_multiple_rhs() {
        let a = Matrix::from_rows(&[vec![4.0, 3.0], vec![6.0, 3.0]]).unwrap();
        let lu = Lu::new(&a).unwrap();
        let b = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        let x = lu.solve_matrix(&b).unwrap();
        let prod = matmul(&a, &x).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                let e = if i == j { 1.0 } else { 0.0 };
                assert!(approx_eq(prod[(i, j)], e, 1e-10));
            }
        }
    }
}
