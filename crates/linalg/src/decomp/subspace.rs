//! Truncated symmetric eigendecomposition by block subspace iteration.
//!
//! The Low-Rank Mechanism selects a strategy in an `r`-dimensional invariant
//! subspace of the workload gram matrix `G = WᵀW` with `r ≪ n`, so it needs
//! the *top* `r` eigenpairs of `G` without paying the dense `O(n³)`
//! tridiagonalisation of [`super::SymmetricEigen`].  This module provides
//! them via classical block subspace (simultaneous) iteration with a
//! Rayleigh–Ritz extraction:
//!
//! 1. start from the deterministic block `V₀ = G[:, 0..r] + E_r` (the first
//!    `r` columns of `G` plus the matching identity columns, so the block is
//!    full rank even when `G` is badly scaled),
//! 2. repeat a fixed number of times: `V ← orth(G · V)`,
//! 3. Rayleigh–Ritz: diagonalise the small projection `R = Vᵀ G V` (`r × r`)
//!    with the exact symmetric eigensolver and rotate `Q = V · U`.
//!
//! The cost is `O(n² r)` per iteration plus `O(r³)` for the projected
//! eigenproblem — for `r ≪ n` this is orders of magnitude below the dense
//! decomposition.  The returned Ritz pairs are *approximations* of the top
//! eigenpairs; downstream consumers (the low-rank selector) are constructed
//! so that privacy and unbiasedness within the captured subspace hold for
//! any orthonormal basis, converged or not.
//!
//! # Determinism
//!
//! The start block, the iteration count, and the Gram–Schmidt
//! re-orthogonalisation are all fixed and data-independent; every heavy
//! product goes through the blocked [`crate::ops`] kernels.  Results are
//! therefore bit-identical across thread counts, like every other kernel in
//! this crate.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::ops;

use super::SymmetricEigen;

/// Fixed number of `V ← orth(G·V)` power steps.  Eight steps contract the
/// unwanted spectrum by `(λ_{r+1}/λ_r)⁸`, ample for the well-separated
/// spectra of range/marginal workload grams; the constant is part of the
/// determinism contract (never adapt it to observed residuals).
pub const DEFAULT_SUBSPACE_ITERATIONS: usize = 8;

/// Column whose norm falls below this after orthogonalisation against the
/// block is treated as numerically dependent and re-seeded.
const DEPENDENT_COL_TOL: f64 = 1e-12;

/// Rayleigh–Ritz approximation of the top-`r` eigenpairs of a symmetric
/// matrix: `G ≈ basisᵀ · diag(ritz_values) · basis` restricted to the
/// captured subspace.
#[derive(Debug, Clone)]
pub struct TruncatedEigen {
    ritz_values: Vec<f64>,
    basis: Matrix,
}

impl TruncatedEigen {
    /// Computes the top-`rank` Ritz pairs of the symmetric matrix `g` with
    /// [`DEFAULT_SUBSPACE_ITERATIONS`] power steps.  `rank` is clamped to
    /// the dimension of `g`.
    pub fn new(g: &Matrix, rank: usize) -> Result<Self> {
        Self::with_iterations(g, rank, DEFAULT_SUBSPACE_ITERATIONS)
    }

    /// [`TruncatedEigen::new`] with an explicit iteration count (0 performs
    /// only the Rayleigh–Ritz extraction on the start block).
    pub fn with_iterations(g: &Matrix, rank: usize, iterations: usize) -> Result<Self> {
        if !g.is_square() {
            return Err(LinalgError::NotSquare {
                rows: g.rows(),
                cols: g.cols(),
            });
        }
        let n = g.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        if rank == 0 {
            return Err(LinalgError::InvalidArgument(
                "subspace iteration requires rank >= 1".into(),
            ));
        }
        let r = rank.min(n);

        // Deterministic start block: the first r columns of G plus the
        // matching identity columns.  The identity part keeps the block full
        // rank even when G's leading columns are dependent or zero.
        let mut v = Matrix::from_fn(n, r, |i, j| g[(i, j)] + if i == j { 1.0 } else { 0.0 });
        orthonormalize_columns(&mut v);

        for _ in 0..iterations {
            v = ops::matmul(g, &v)?;
            orthonormalize_columns(&mut v);
        }

        // Rayleigh–Ritz: diagonalise the r x r projection exactly, then
        // rotate the basis so its columns are the Ritz vectors.
        let gv = ops::matmul(g, &v)?;
        let mut projected = ops::matmul_transpose_left(&v, &gv)?;
        projected.symmetrize_mut();
        let eig = SymmetricEigen::new(&projected)?;
        let rotated = ops::matmul(&v, eig.eigenvectors())?;

        Ok(TruncatedEigen {
            ritz_values: eig.eigenvalues().to_vec(),
            basis: rotated.transpose(),
        })
    }

    /// Ritz values in descending order (approximations of the top
    /// eigenvalues of `g`).
    pub fn ritz_values(&self) -> &[f64] {
        &self.ritz_values
    }

    /// Orthonormal basis of the captured subspace, one Ritz vector per
    /// **row** (`r x n`), ordered to match [`TruncatedEigen::ritz_values`].
    pub fn basis(&self) -> &Matrix {
        &self.basis
    }

    /// Consumes the decomposition, returning `(ritz_values, basis)`.
    pub fn into_parts(self) -> (Vec<f64>, Matrix) {
        (self.ritz_values, self.basis)
    }
}

/// In-place modified Gram–Schmidt with one re-orthogonalisation pass.
///
/// Columns that collapse (numerically dependent on their predecessors, which
/// happens as soon as `rank(G) < r` contracts the block) are re-seeded with
/// the first canonical basis vector that has a non-trivial component in the
/// orthogonal complement — a deterministic choice, so the completed block is
/// always full column rank.
fn orthonormalize_columns(v: &mut Matrix) {
    let (n, r) = v.shape();
    for k in 0..r {
        // Two MGS passes: the second removes the O(eps * condition) residual
        // the first leaves on nearly-dependent columns.
        for _ in 0..2 {
            for j in 0..k {
                let mut dot = 0.0;
                for i in 0..n {
                    dot += v[(i, j)] * v[(i, k)];
                }
                for i in 0..n {
                    v[(i, k)] -= dot * v[(i, j)];
                }
            }
        }
        let mut norm_sq = 0.0;
        for i in 0..n {
            norm_sq += v[(i, k)] * v[(i, k)];
        }
        if norm_sq.sqrt() <= DEPENDENT_COL_TOL {
            reseed_column(v, k);
        } else {
            let inv = 1.0 / norm_sq.sqrt();
            for i in 0..n {
                v[(i, k)] *= inv;
            }
        }
    }
}

/// Replaces column `k` with the first canonical basis vector whose residual
/// against columns `0..k` is non-trivial, orthogonalised and normalised.
fn reseed_column(v: &mut Matrix, k: usize) {
    let n = v.rows();
    for seed in 0..n {
        for i in 0..n {
            v[(i, k)] = if i == seed { 1.0 } else { 0.0 };
        }
        for _ in 0..2 {
            for j in 0..k {
                let mut dot = 0.0;
                for i in 0..n {
                    dot += v[(i, j)] * v[(i, k)];
                }
                for i in 0..n {
                    v[(i, k)] -= dot * v[(i, j)];
                }
            }
        }
        let mut norm_sq = 0.0;
        for i in 0..n {
            norm_sq += v[(i, k)] * v[(i, k)];
        }
        // Some canonical vector always has residual norm² >= (n-k)/n, so
        // this branch is taken within the first few seeds.
        if norm_sq.sqrt() > 1e-6 {
            let inv = 1.0 / norm_sq.sqrt();
            for i in 0..n {
                v[(i, k)] *= inv;
            }
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    /// A symmetric matrix with a known spectrum: Qᵀ diag(d) Q for a
    /// Householder Q.
    fn spectrum_matrix(n: usize, d: &[f64]) -> Matrix {
        let mut u = vec![0.0; n];
        for (i, x) in u.iter_mut().enumerate() {
            *x = (i as f64 + 1.0).sqrt();
        }
        let norm_sq: f64 = u.iter().map(|x| x * x).sum();
        let q = Matrix::from_fn(n, n, |i, j| {
            let delta = if i == j { 1.0 } else { 0.0 };
            delta - 2.0 * u[i] * u[j] / norm_sq
        });
        let dq = ops::scale_rows(d, &q).unwrap();
        ops::matmul_transpose_left(&q, &dq).unwrap()
    }

    #[test]
    fn recovers_top_eigenpairs_of_a_separated_spectrum() {
        let n = 24;
        let d: Vec<f64> = (0..n).map(|i| 10.0_f64.powi(-(i as i32))).collect();
        let g = spectrum_matrix(n, &d);
        let r = 6;
        let trunc = TruncatedEigen::new(&g, r).unwrap();
        assert_eq!(trunc.ritz_values().len(), r);
        assert_eq!(trunc.basis().shape(), (r, n));
        for (k, &ritz) in trunc.ritz_values().iter().enumerate() {
            assert!(
                approx_eq(ritz, d[k], 1e-8 * d[0]),
                "ritz value {k}: {ritz} vs eigenvalue {}",
                d[k]
            );
        }
        // Residual check: ||G q - λ q|| small for each Ritz pair.
        for k in 0..r {
            let q: Vec<f64> = (0..n).map(|i| trunc.basis()[(k, i)]).collect();
            let gq = g.matvec(&q).unwrap();
            let mut resid = 0.0_f64;
            for i in 0..n {
                let diff = gq[i] - trunc.ritz_values()[k] * q[i];
                resid += diff * diff;
            }
            assert!(resid.sqrt() < 1e-7 * d[0], "residual for pair {k}: {resid}");
        }
    }

    #[test]
    fn basis_rows_are_orthonormal() {
        let n = 16;
        let d: Vec<f64> = (0..n).map(|i| (n - i) as f64).collect();
        let g = spectrum_matrix(n, &d);
        let trunc = TruncatedEigen::new(&g, 5).unwrap();
        let b = trunc.basis();
        let bbt = ops::matmul_a_bt(b, b).unwrap();
        for i in 0..5 {
            for j in 0..5 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!(approx_eq(bbt[(i, j)], want, 1e-12), "BBᵀ[{i},{j}]");
            }
        }
    }

    #[test]
    fn rank_deficient_matrix_yields_zero_tail_ritz_values() {
        // rank(G) = 3 but we ask for r = 6: the tail Ritz values must be
        // (numerically) zero and the basis still full rank / orthonormal.
        let n = 12;
        let mut d = vec![0.0; n];
        d[0] = 5.0;
        d[1] = 3.0;
        d[2] = 1.0;
        let g = spectrum_matrix(n, &d);
        let trunc = TruncatedEigen::new(&g, 6).unwrap();
        for (k, &dk) in d.iter().enumerate().take(3) {
            assert!(approx_eq(trunc.ritz_values()[k], dk, 1e-8));
        }
        for k in 3..6 {
            assert!(trunc.ritz_values()[k].abs() < 1e-8);
        }
        let b = trunc.basis();
        let bbt = ops::matmul_a_bt(b, b).unwrap();
        for i in 0..6 {
            assert!(approx_eq(bbt[(i, i)], 1.0, 1e-10), "row {i} not unit");
        }
    }

    #[test]
    fn full_rank_request_matches_dense_eigensolver() {
        let n = 10;
        let d: Vec<f64> = (0..n).map(|i| (2 * n - i) as f64).collect();
        let g = spectrum_matrix(n, &d);
        let trunc = TruncatedEigen::new(&g, n).unwrap();
        let dense = SymmetricEigen::new(&g).unwrap();
        for k in 0..n {
            assert!(
                approx_eq(trunc.ritz_values()[k], dense.eigenvalues()[k], 1e-8),
                "value {k}"
            );
        }
    }

    #[test]
    fn rank_is_clamped_and_zero_rank_rejected() {
        let g = spectrum_matrix(4, &[4.0, 3.0, 2.0, 1.0]);
        let trunc = TruncatedEigen::new(&g, 99).unwrap();
        assert_eq!(trunc.ritz_values().len(), 4);
        assert!(TruncatedEigen::new(&g, 0).is_err());
        assert!(TruncatedEigen::new(&Matrix::zeros(3, 4), 2).is_err());
    }

    #[test]
    fn deterministic_across_calls() {
        let n = 20;
        let d: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let g = spectrum_matrix(n, &d);
        let a = TruncatedEigen::new(&g, 7).unwrap();
        let b = TruncatedEigen::new(&g, 7).unwrap();
        assert_eq!(
            a.ritz_values()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            b.ritz_values()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
        assert_eq!(
            a.basis()
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            b.basis()
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
    }
}
