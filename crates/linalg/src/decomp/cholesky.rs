//! Cholesky factorization `A = L Lᵀ` of symmetric positive definite matrices.
//!
//! [`Cholesky::new`] is a *blocked right-looking* factorization: the matrix
//! is processed in panels of [`CHOLESKY_BLOCK`] columns — factor the panel's
//! diagonal block, solve the rows below it against that block
//! ([`ops::trsm_right_transpose_lower`]), then shrink the trailing block by
//! the panel's symmetric rank-k product ([`ops::syrk_sub_lower`], the O(n³)
//! bulk of the work, parallelised over row blocks).  All inner products use
//! the fixed 8-lane accumulation of the shared `dot` kernel, so results are
//! deterministic and bit-identical across thread counts (the
//! [`crate::parallel`] contract) — they differ from the scalar reference
//! [`Cholesky::new_scalar`] only by floating-point reassociation, which the
//! test-suite cross-validates the same way `jacobi` cross-validates the
//! symmetric eigensolver.

use crate::error::{LinalgError, Result};
use crate::matrix::Matrix;
use crate::ops;

/// Panel width of the blocked factorization: two panel rows (the operands of
/// every trailing-update dot product) occupy 2 KiB, so a block of them stays
/// L1-resident while the trailing rows stream through.
pub const CHOLESKY_BLOCK: usize = 64;

/// A Cholesky factorization holding the lower-triangular factor `L`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive definite matrix with the blocked
    /// right-looking algorithm (see the module docs).
    ///
    /// Only the lower triangle of `a` is read. Returns
    /// [`LinalgError::NotPositiveDefinite`] when a pivot is not strictly
    /// positive.
    pub fn new(a: &Matrix) -> Result<Self> {
        Self::new_with_shift(a, 0.0)
    }

    /// Factors `A + shift * I` with the blocked right-looking algorithm.
    ///
    /// A small positive `shift` regularises nearly-singular gram matrices
    /// (e.g. for rank-deficient workloads); callers decide the amount.
    pub fn new_with_shift(a: &Matrix, shift: f64) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        // Working factor: the lower triangle of `a` (plus the shift), zeros
        // above.  Panels update it in place.
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            l.row_mut(i)[..=i].copy_from_slice(&a.row(i)[..=i]);
            l[(i, i)] += shift;
        }
        for k0 in (0..n).step_by(CHOLESKY_BLOCK) {
            let k1 = (k0 + CHOLESKY_BLOCK).min(n);
            let w = k1 - k0;
            // Factor the w×w diagonal block in place (left-looking over the
            // panel columns; contributions of earlier panels were already
            // subtracted by their trailing updates).
            factor_diag_block(&mut l, k0, w)?;
            if k1 == n {
                break;
            }
            // Copy the sub-diagonal panel rows into a compact (n−k1)×w
            // buffer: contiguous rows for the triangular solve and the
            // rank-k update, and a clean borrow against the trailing block.
            let d_block =
                Matrix::from_fn(w, w, |i, j| if j <= i { l[(k0 + i, k0 + j)] } else { 0.0 });
            let mut panel = Matrix::from_fn(n - k1, w, |i, j| l[(k1 + i, k0 + j)]);
            // L₂₁ = A₂₁ L₁₁⁻ᵀ, one independent forward substitution per row.
            ops::trsm_right_transpose_lower(&mut panel, &d_block)
                .expect("diagonal block pivots are strictly positive");
            for i in 0..(n - k1) {
                l.row_mut(k1 + i)[k0..k1].copy_from_slice(panel.row(i));
            }
            // Trailing update: A₂₂ ← A₂₂ − L₂₁ L₂₁ᵀ (lower triangle only).
            ops::syrk_sub_lower(&mut l, &panel, k1).expect("panel shape matches trailing block");
        }
        Ok(Cholesky { l })
    }

    /// Factors a symmetric positive definite matrix with the textbook
    /// unblocked scalar loop.
    ///
    /// This is the **reference kernel** the blocked [`Cholesky::new`] is
    /// cross-validated against (tests) and benchmarked against
    /// (`selection_latency`); production callers should use [`Cholesky::new`].
    pub fn new_scalar(a: &Matrix) -> Result<Self> {
        Self::new_scalar_with_shift(a, 0.0)
    }

    /// Scalar-reference variant of [`Cholesky::new_with_shift`]; see
    /// [`Cholesky::new_scalar`].
    pub fn new_scalar_with_shift(a: &Matrix, shift: f64) -> Result<Self> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            // Diagonal entry.
            let mut d = a[(j, j)] + shift;
            for k in 0..j {
                let v = l[(j, k)];
                d -= v * v;
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: j, value: d });
            }
            let dj = d.sqrt();
            l[(j, j)] = dj;
            // Column below the diagonal.
            for i in (j + 1)..n {
                let mut s = a[(i, j)];
                for k in 0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / dj;
            }
        }
        Ok(Cholesky { l })
    }

    /// Reassembles a factorization from a previously computed
    /// lower-triangular factor `L` (e.g. one deserialised from a persistent
    /// strategy store), without refactorizing.
    ///
    /// The factor must be square with strictly positive, finite diagonal
    /// entries and an all-zero strict upper triangle — exactly the shape
    /// [`Cholesky::l`] returns.  Re-wrapping a stored factor instead of
    /// refactorizing keeps solves bit-identical to the run that produced it.
    pub fn from_factor(l: Matrix) -> Result<Self> {
        if !l.is_square() {
            return Err(LinalgError::NotSquare {
                rows: l.rows(),
                cols: l.cols(),
            });
        }
        let n = l.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        for i in 0..n {
            let d = l[(i, i)];
            if d <= 0.0 || !d.is_finite() {
                return Err(LinalgError::NotPositiveDefinite { pivot: i, value: d });
            }
            for j in (i + 1)..n {
                if l[(i, j)] != 0.0 {
                    return Err(LinalgError::ShapeMismatch {
                        op: "cholesky from_factor (upper triangle must be zero)",
                        left: (n, n),
                        right: (i, j),
                    });
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Returns the lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solves `A x = b` for a single right-hand side.
    pub fn solve_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Forward substitution: L y = b (row `i` of L is contiguous, so the
        // partial inner product runs through the fixed-lane kernel).
        let mut y = b.to_vec();
        for i in 0..n {
            let s = ops::dot(&self.l.row(i)[..i], &y[..i]);
            y[i] = (y[i] - s) / self.l[(i, i)];
        }
        // Backward substitution: Lᵀ x = y.
        for i in (0..n).rev() {
            // mm-lint: allow(blessed-reduction): strided column-of-L access cannot use the slice kernel; the k-ascending fold is order-fixed
            let s: f64 = ((i + 1)..n).map(|k| self.l[(k, i)] * y[k]).sum();
            y[i] = (y[i] - s) / self.l[(i, i)];
        }
        Ok(y)
    }

    /// Solves `L Y = B` (forward substitution) for a multi-column right-hand
    /// side in one blocked sweep over the factor.
    ///
    /// The update of row `i` is a sequence of contiguous row-axpys `Y[i] -=
    /// L[i,k] · Y[k]`, so all `K` right-hand sides advance together through
    /// one traversal of `L` — the multi-RHS half of the engine's batched
    /// inference `L⁻ᵀ(L⁻¹(AᵀY))`.  Column `c` of the result is bit-identical
    /// to `solve_lower_multi` on that column alone: per entry the
    /// eliminations apply in the same ascending order for every width.
    pub fn solve_lower_multi(&self, b: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky solve_lower_multi",
                left: (n, n),
                right: b.shape(),
            });
        }
        let k = b.cols();
        let mut x = b.clone();
        if k == 0 {
            return Ok(x);
        }
        let data = x.as_mut_slice();
        // Width-1 fast path: the same sequential eliminations (j ascending,
        // zero factors skipped) in a register, without per-j slicing — so a
        // single right-hand side stays bit-identical to a width-1 solve.
        if k == 1 {
            for i in 0..n {
                let l_row = self.l.row(i);
                let mut v = data[i];
                for (j, &lij) in l_row[..i].iter().enumerate() {
                    if lij == 0.0 {
                        continue;
                    }
                    v -= lij * data[j];
                }
                data[i] = v / l_row[i];
            }
            return Ok(x);
        }
        for i in 0..n {
            let (done, rest) = data.split_at_mut(i * k);
            let xi = &mut rest[..k];
            let l_row = self.l.row(i);
            for (j, &lij) in l_row[..i].iter().enumerate() {
                if lij == 0.0 {
                    continue;
                }
                let xj = &done[j * k..(j + 1) * k];
                for (a, &b) in xi.iter_mut().zip(xj.iter()) {
                    *a -= lij * b;
                }
            }
            let d = l_row[i];
            for a in xi.iter_mut() {
                *a /= d;
            }
        }
        Ok(x)
    }

    /// Solves `Lᵀ X = Y` (backward substitution) for a multi-column
    /// right-hand side; the transposed counterpart of
    /// [`Cholesky::solve_lower_multi`], with the same column-wise
    /// bit-identity across widths.
    pub fn solve_upper_multi(&self, y: &Matrix) -> Result<Matrix> {
        let n = self.dim();
        if y.rows() != n {
            return Err(LinalgError::ShapeMismatch {
                op: "cholesky solve_upper_multi",
                left: (n, n),
                right: y.shape(),
            });
        }
        let k = y.cols();
        let mut x = y.clone();
        if k == 0 {
            return Ok(x);
        }
        let data = x.as_mut_slice();
        // Width-1 fast path (see `solve_lower_multi`): identical elimination
        // sequence, register accumulation.
        if k == 1 {
            for i in (0..n).rev() {
                let mut v = data[i];
                for (j, &xj) in data.iter().enumerate().skip(i + 1) {
                    let lji = self.l[(j, i)];
                    if lji == 0.0 {
                        continue;
                    }
                    v -= lji * xj;
                }
                data[i] = v / self.l[(i, i)];
            }
            return Ok(x);
        }
        for i in (0..n).rev() {
            let (head, tail) = data.split_at_mut((i + 1) * k);
            let xi = &mut head[i * k..];
            // Row i of Lᵀ is column i of L below the diagonal.
            for j in (i + 1)..n {
                let lji = self.l[(j, i)];
                if lji == 0.0 {
                    continue;
                }
                let xj = &tail[(j - i - 1) * k..(j - i) * k];
                for (a, &b) in xi.iter_mut().zip(xj.iter()) {
                    *a -= lji * b;
                }
            }
            let d = self.l[(i, i)];
            for a in xi.iter_mut() {
                *a /= d;
            }
        }
        Ok(x)
    }

    /// Solves `A X = B` for a matrix right-hand side through the two
    /// multi-RHS triangular sweeps (`A = L Lᵀ`).
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix> {
        let y = self.solve_lower_multi(b)?;
        self.solve_upper_multi(&y)
    }

    /// Computes the inverse `A⁻¹`.
    pub fn inverse(&self) -> Matrix {
        let n = self.dim();
        self.solve_matrix(&Matrix::identity(n))
            .expect("identity has matching shape")
    }

    /// Log-determinant of `A` (twice the sum of log diagonal entries of `L`).
    pub fn log_det(&self) -> f64 {
        let logs: Vec<f64> = self.l.diag().iter().map(|d| d.ln()).collect();
        2.0 * ops::sum(&logs)
    }

    /// Determinant of `A`.
    pub fn det(&self) -> f64 {
        let p: f64 = self.l.diag().iter().product();
        p * p
    }

    /// Computes `trace(G * A⁻¹)` where `A` is the factored matrix, without
    /// forming the inverse explicitly.
    ///
    /// This is the Prop. 4 error expression `trace(WᵀW (AᵀA)⁻¹)` with
    /// `G = WᵀW`.  With `A = L Lᵀ` the cyclic property gives
    /// `trace(G L⁻ᵀ L⁻¹) = trace(L⁻¹ G L⁻ᵀ) = trace(L⁻¹ (L⁻¹ G)ᵀ)`, so the
    /// whole trace is two blocked multi-RHS forward sweeps
    /// ([`Cholesky::solve_lower_multi`]) and a diagonal sum — the n
    /// column-by-column scalar solves this replaces were the last unblocked
    /// O(n³) step on the engine's selection-miss path.  (The sweeps evaluate
    /// `trace(Gᵀ A⁻¹)`, which equals `trace(G A⁻¹)` for *any* square `G` —
    /// symmetric or not — because `A⁻¹` is symmetric.)
    pub fn trace_of_gram_times_inverse(&self, g: &Matrix) -> Result<f64> {
        let n = self.dim();
        if g.shape() != (n, n) {
            return Err(LinalgError::ShapeMismatch {
                op: "trace_of_gram_times_inverse",
                left: (n, n),
                right: g.shape(),
            });
        }
        let y = self.solve_lower_multi(g)?;
        let z = self.solve_lower_multi(&y.transpose())?;
        Ok(ops::sum(&z.diag()))
    }
}

/// Factors the `w`×`w` diagonal block anchored at `(k0, k0)` of `l` in place
/// (plain left-looking loop over the panel columns, `dot`-kernel inner
/// products).  Reports failed pivots at their global index.
fn factor_diag_block(l: &mut Matrix, k0: usize, w: usize) -> Result<()> {
    let n = l.cols();
    // The block lives in rows k0..k0+w; work on that contiguous slab.
    let data = &mut l.as_mut_slice()[k0 * n..(k0 + w) * n];
    for j in 0..w {
        let row_j = &data[j * n + k0..j * n + k0 + j];
        let d = data[j * n + k0 + j] - ops::dot(row_j, row_j);
        if d <= 0.0 || !d.is_finite() {
            return Err(LinalgError::NotPositiveDefinite {
                pivot: k0 + j,
                value: d,
            });
        }
        let dj = d.sqrt();
        data[j * n + k0 + j] = dj;
        for i in (j + 1)..w {
            let (head, tail) = data.split_at_mut(i * n);
            let row_j = &head[j * n + k0..j * n + k0 + j];
            let row_i = &mut tail[k0..k0 + j + 1];
            let s = ops::dot(&row_i[..j], row_j);
            row_i[j] = (row_i[j] - s) / dj;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::ops::{gram, matmul};

    fn spd_matrix(n: usize) -> Matrix {
        // Build a random-ish SPD matrix as BᵀB + I.
        let b = Matrix::from_fn(n + 2, n, |i, j| ((i * 7 + j * 13) % 9) as f64 / 4.0 - 1.0);
        let mut g = gram(&b);
        for i in 0..n {
            g[(i, i)] += 1.0;
        }
        g
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd_matrix(6);
        let ch = Cholesky::new(&a).unwrap();
        let rec = matmul(ch.l(), &ch.l().transpose()).unwrap();
        for i in 0..6 {
            for j in 0..6 {
                assert!(approx_eq(rec[(i, j)], a[(i, j)], 1e-9));
            }
        }
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd_matrix(5);
        let ch = Cholesky::new(&a).unwrap();
        let x_true = vec![1.0, -2.0, 3.0, 0.5, -1.5];
        let b = a.matvec(&x_true).unwrap();
        let x = ch.solve_vec(&b).unwrap();
        for (xi, ti) in x.iter().zip(x_true.iter()) {
            assert!(approx_eq(*xi, *ti, 1e-8));
        }
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd_matrix(4);
        let inv = Cholesky::new(&a).unwrap().inverse();
        let prod = matmul(&a, &inv).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(approx_eq(prod[(i, j)], expect, 1e-8), "({i},{j})");
            }
        }
    }

    #[test]
    fn rejects_non_positive_definite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap(); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square_and_empty() {
        assert!(Cholesky::new(&Matrix::zeros(2, 3)).is_err());
        assert!(Cholesky::new(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn shift_regularises_singular_matrix() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]).unwrap(); // rank 1
        assert!(Cholesky::new(&a).is_err());
        assert!(Cholesky::new_with_shift(&a, 1e-6).is_ok());
    }

    #[test]
    fn determinants() {
        let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]]).unwrap();
        let ch = Cholesky::new(&a).unwrap();
        assert!(approx_eq(ch.det(), 8.0, 1e-10));
        assert!(approx_eq(ch.log_det(), 8.0_f64.ln(), 1e-10));
    }

    #[test]
    fn solve_matrix_rhs() {
        let a = spd_matrix(4);
        let ch = Cholesky::new(&a).unwrap();
        let b = Matrix::from_fn(4, 2, |i, j| (i + j) as f64);
        let x = ch.solve_matrix(&b).unwrap();
        let rec = matmul(&a, &x).unwrap();
        for i in 0..4 {
            for j in 0..2 {
                assert!(approx_eq(rec[(i, j)], b[(i, j)], 1e-8));
            }
        }
        assert!(ch.solve_matrix(&Matrix::zeros(3, 1)).is_err());
        assert!(ch.solve_vec(&[0.0; 3]).is_err());
    }

    #[test]
    fn solve_lower_multi_matches_per_column_reference() {
        // Property: for every column k, solve_lower_multi(L, X)[:, k] equals
        // a scalar forward substitution L y = x_k to 1e-12, and is
        // bit-identical to the K = 1 solve on that column alone.
        for &(n, k) in &[(1usize, 1usize), (5, 3), (24, 8), (40, 17)] {
            let a = spd_matrix(n);
            let ch = Cholesky::new(&a).unwrap();
            let l = ch.l();
            let b = Matrix::from_fn(n, k, |i, j| ((i * 13 + j * 7) % 11) as f64 - 5.0);
            let multi = ch.solve_lower_multi(&b).unwrap();
            assert_eq!(multi.shape(), (n, k));
            for c in 0..k {
                // Scalar reference: plain forward substitution.
                let mut y = b.col(c);
                for i in 0..n {
                    let s: f64 = (0..i).map(|j| l[(i, j)] * y[j]).sum();
                    y[i] = (y[i] - s) / l[(i, i)];
                }
                for i in 0..n {
                    assert!(
                        approx_eq(multi[(i, c)], y[i], 1e-12),
                        "({i},{c}): {} vs {}",
                        multi[(i, c)],
                        y[i]
                    );
                }
                // Bitwise K-invariance.
                let single_rhs = Matrix::from_fn(n, 1, |i, _| b[(i, c)]);
                let single = ch.solve_lower_multi(&single_rhs).unwrap();
                for i in 0..n {
                    assert_eq!(multi[(i, c)].to_bits(), single[(i, 0)].to_bits());
                }
            }
        }
    }

    #[test]
    fn solve_upper_multi_matches_per_column_reference() {
        for &(n, k) in &[(1usize, 2usize), (6, 4), (24, 9)] {
            let a = spd_matrix(n);
            let ch = Cholesky::new(&a).unwrap();
            let l = ch.l();
            let b = Matrix::from_fn(n, k, |i, j| ((i * 5 + j * 3) % 7) as f64 - 3.0);
            let multi = ch.solve_upper_multi(&b).unwrap();
            for c in 0..k {
                // Scalar reference: plain backward substitution on Lᵀ.
                let mut y = b.col(c);
                for i in (0..n).rev() {
                    let s: f64 = ((i + 1)..n).map(|j| l[(j, i)] * y[j]).sum();
                    y[i] = (y[i] - s) / l[(i, i)];
                }
                for i in 0..n {
                    assert!(
                        approx_eq(multi[(i, c)], y[i], 1e-12),
                        "({i},{c}): {} vs {}",
                        multi[(i, c)],
                        y[i]
                    );
                }
                let single_rhs = Matrix::from_fn(n, 1, |i, _| b[(i, c)]);
                let single = ch.solve_upper_multi(&single_rhs).unwrap();
                for i in 0..n {
                    assert_eq!(multi[(i, c)].to_bits(), single[(i, 0)].to_bits());
                }
            }
        }
    }

    #[test]
    fn triangular_multi_solves_compose_to_full_solve() {
        // L⁻ᵀ(L⁻¹ B) must reconstruct A X = B, and zero-width / mismatched
        // right-hand sides are handled.
        let a = spd_matrix(6);
        let ch = Cholesky::new(&a).unwrap();
        let b = Matrix::from_fn(6, 3, |i, j| (i as f64) - 2.0 * (j as f64));
        let x = ch
            .solve_upper_multi(&ch.solve_lower_multi(&b).unwrap())
            .unwrap();
        let rec = matmul(&a, &x).unwrap();
        for i in 0..6 {
            for j in 0..3 {
                assert!(approx_eq(rec[(i, j)], b[(i, j)], 1e-8));
            }
        }
        let empty = ch.solve_lower_multi(&Matrix::zeros(6, 0)).unwrap();
        assert_eq!(empty.shape(), (6, 0));
        assert!(ch.solve_lower_multi(&Matrix::zeros(5, 2)).is_err());
        assert!(ch.solve_upper_multi(&Matrix::zeros(5, 2)).is_err());
    }

    #[test]
    fn blocked_factor_cross_validates_against_scalar_reference() {
        // The blocked right-looking factorization must agree with the
        // textbook scalar loop everywhere, including sizes that are not a
        // multiple of the panel width and sizes spanning several panels.
        for &n in &[1usize, 5, 63, 64, 65, 130, 200] {
            let a = spd_matrix(n);
            let blocked = Cholesky::new(&a).unwrap();
            let scalar = Cholesky::new_scalar(&a).unwrap();
            for i in 0..n {
                for j in 0..=i {
                    assert!(
                        approx_eq(blocked.l()[(i, j)], scalar.l()[(i, j)], 1e-9),
                        "n={n} ({i},{j}): {} vs {}",
                        blocked.l()[(i, j)],
                        scalar.l()[(i, j)]
                    );
                }
                for j in (i + 1)..n {
                    assert_eq!(blocked.l()[(i, j)], 0.0, "upper triangle stays zero");
                }
            }
        }
    }

    #[test]
    fn blocked_factor_reports_the_same_failing_pivot() {
        // An indefinite matrix whose leading principal minors stay positive
        // until deep into the second panel: the blocked path must report the
        // same pivot index as the scalar reference.
        let n = 100;
        let mut a = spd_matrix(n);
        a[(80, 80)] = -1e6;
        let blocked = Cholesky::new(&a);
        let scalar = Cholesky::new_scalar(&a);
        let Err(LinalgError::NotPositiveDefinite { pivot: pb, .. }) = blocked else {
            panic!("blocked factorization must fail");
        };
        let Err(LinalgError::NotPositiveDefinite { pivot: ps, .. }) = scalar else {
            panic!("scalar factorization must fail");
        };
        assert_eq!(pb, ps);
        assert_eq!(pb, 80);
        // The shifted variants agree as well.
        assert!(Cholesky::new_scalar_with_shift(&spd_matrix(8), 0.5).is_ok());
        assert!(Cholesky::new_scalar(&Matrix::zeros(2, 3)).is_err());
        assert!(Cholesky::new_scalar(&Matrix::zeros(0, 0)).is_err());
    }

    #[test]
    fn trace_of_gram_times_inverse_matches_explicit() {
        let a = spd_matrix(5);
        let g = spd_matrix(5);
        let ch = Cholesky::new(&a).unwrap();
        let t = ch.trace_of_gram_times_inverse(&g).unwrap();
        let explicit = matmul(&g, &ch.inverse()).unwrap().trace();
        assert!(approx_eq(t, explicit, 1e-8));
        assert!(ch
            .trace_of_gram_times_inverse(&Matrix::zeros(2, 2))
            .is_err());
    }

    #[test]
    fn from_factor_round_trips_bit_identically() {
        let a = spd_matrix(7);
        let ch = Cholesky::new(&a).unwrap();
        let rebuilt = Cholesky::from_factor(ch.l().clone()).unwrap();
        assert_eq!(rebuilt.l().as_slice(), ch.l().as_slice());
        let b: Vec<f64> = (0..7).map(|i| (i as f64) - 3.0).collect();
        let x1 = ch.solve_vec(&b).unwrap();
        let x2 = rebuilt.solve_vec(&b).unwrap();
        // Bit-identical, not merely approximately equal: a stored factor must
        // reproduce the original run's answers exactly.
        for (u, v) in x1.iter().zip(&x2) {
            assert_eq!(u.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn from_factor_rejects_malformed_factors() {
        assert!(Cholesky::from_factor(Matrix::zeros(2, 3)).is_err());
        assert!(Cholesky::from_factor(Matrix::zeros(0, 0)).is_err());
        // Non-positive diagonal.
        let mut bad = Matrix::identity(3);
        bad[(1, 1)] = -2.0;
        assert!(Cholesky::from_factor(bad).is_err());
        // Non-finite diagonal.
        let mut inf = Matrix::identity(3);
        inf[(2, 2)] = f64::INFINITY;
        assert!(Cholesky::from_factor(inf).is_err());
        // Nonzero strict upper triangle.
        let mut upper = Matrix::identity(3);
        upper[(0, 2)] = 1.0;
        assert!(Cholesky::from_factor(upper).is_err());
        // A genuine lower-triangular factor is accepted.
        let l = Cholesky::new(&spd_matrix(4)).unwrap().l().clone();
        assert!(Cholesky::from_factor(l).is_ok());
    }
}
