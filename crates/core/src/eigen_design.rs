//! The Eigen-Design algorithm (Program 2).
//!
//! 1. Diagonalise the workload gram matrix `WᵀW = Qᵀ D Q`.
//! 2. Use the eigenvectors (rows of `Q`) as the design queries and the
//!    eigenvalues as the costs of the optimal query weighting program
//!    (Program 1), dropping zero eigenvalues — they carry no workload mass.
//! 3. Assemble the strategy `A' = diag(λ) Q` from the optimal weights
//!    `λᵢ = √uᵢ` and pad low-norm columns with single-cell queries
//!    (the completion step, which cannot increase sensitivity).
//!
//! The output is representation independent (Props. 5–6): permuting the cell
//! conditions or replacing `W` by `PW` for orthogonal `P` leaves `WᵀW` — and
//! hence the selected strategy's error — unchanged.

use crate::design_set::{weighted_design_strategy_with_costs, DesignWeightingOptions};
use mm_linalg::decomp::SymmetricEigen;
use mm_linalg::Matrix;
use mm_opt::GdOptions;
use mm_strategies::Strategy;

/// Options for the Eigen-Design algorithm.
#[derive(Debug, Clone)]
pub struct EigenDesignOptions {
    /// Options for the convex weighting solver.
    pub solver: GdOptions,
    /// Whether to apply the column-completion step (Program 2, steps 4–5).
    pub completion: bool,
    /// Eigenvalues below `rank_tol · σ₁` are treated as zero and their
    /// eigenvectors are excluded from the design set.
    pub rank_tol: f64,
}

impl Default for EigenDesignOptions {
    fn default() -> Self {
        EigenDesignOptions {
            solver: GdOptions::default(),
            completion: true,
            rank_tol: 1e-10,
        }
    }
}

impl EigenDesignOptions {
    /// Cheaper solver settings (used by the Sec. 4 performance optimizations
    /// and by callers that trade a little accuracy for speed).
    pub fn fast() -> Self {
        EigenDesignOptions {
            solver: GdOptions::fast(),
            ..Default::default()
        }
    }
}

/// Output of the Eigen-Design algorithm.
#[derive(Debug, Clone)]
pub struct EigenDesignResult {
    /// The selected strategy.
    pub strategy: Strategy,
    /// Eigenvalues of the workload gram matrix (descending, including zeros).
    pub eigenvalues: Vec<f64>,
    /// The squared weights assigned to the retained eigen-queries.
    pub weights_squared: Vec<f64>,
    /// The solver objective `Σ σᵢ/uᵢ` = `trace(WᵀW (A'ᵀA')⁻¹)` before completion.
    pub objective: f64,
    /// Number of retained (nonzero-eigenvalue) eigen-queries.
    pub rank: usize,
}

/// Eigendecomposition of a workload gram matrix restricted to its nonzero
/// eigenvalues: returns `(eigenvalues_all, retained_eigenvalues, Q_retained)`
/// with `Q_retained` holding the retained eigenvectors as rows.
pub fn workload_eigensystem(
    workload_gram: &Matrix,
    rank_tol: f64,
) -> crate::Result<(Vec<f64>, Vec<f64>, Matrix)> {
    let eig = SymmetricEigen::new(workload_gram)?;
    let eigenvalues: Vec<f64> = eig
        .eigenvalues()
        .iter()
        .map(|&l| if l > 0.0 { l } else { 0.0 })
        .collect();
    let sigma1 = eigenvalues.first().copied().unwrap_or(0.0);
    if sigma1 <= 0.0 {
        return Err(crate::MechanismError::InvalidArgument(
            "workload gram matrix is zero".into(),
        ));
    }
    let retained: Vec<usize> = eigenvalues
        .iter()
        .enumerate()
        .filter(|(_, &l)| l > rank_tol * sigma1)
        .map(|(i, _)| i)
        .collect();
    let n = workload_gram.rows();
    let mut q = Matrix::zeros(retained.len(), n);
    for (r, &idx) in retained.iter().enumerate() {
        for c in 0..n {
            q[(r, c)] = eig.eigenvectors()[(c, idx)];
        }
    }
    let retained_values: Vec<f64> = retained.iter().map(|&i| eigenvalues[i]).collect();
    Ok((eigenvalues, retained_values, q))
}

/// Runs the Eigen-Design algorithm on a workload gram matrix.
pub fn eigen_design(
    workload_gram: &Matrix,
    opts: &EigenDesignOptions,
) -> crate::Result<EigenDesignResult> {
    let (eigenvalues, retained, q) = workload_eigensystem(workload_gram, opts.rank_tol)?;
    let design_opts = DesignWeightingOptions {
        solver: opts.solver.clone(),
        completion: opts.completion,
    };
    let rank = retained.len();
    let result = weighted_design_strategy_with_costs(
        format!("eigen-design (rank {rank})"),
        &q,
        retained,
        &design_opts,
    )?;
    Ok(EigenDesignResult {
        strategy: result.strategy,
        eigenvalues,
        weights_squared: result.weights_squared,
        objective: result.objective,
        rank,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::{rms_error_bound, workload_eigenvalues};
    use crate::error::rms_workload_error;
    use crate::privacy::PrivacyParams;
    use mm_linalg::approx_eq;
    use mm_strategies::hierarchical::binary_hierarchical_1d;
    use mm_strategies::identity::identity_strategy;
    use mm_strategies::wavelet::wavelet_1d;
    use mm_workload::example::fig1_workload;
    use mm_workload::marginal::{MarginalKind, MarginalWorkload};
    use mm_workload::prefix::PrefixWorkload;
    use mm_workload::range::AllRangeWorkload;
    use mm_workload::transform::{seeded_permutation, PermutedWorkload};
    use mm_workload::{Domain, IdentityWorkload, Workload};

    fn paper_privacy() -> PrivacyParams {
        PrivacyParams::paper_default()
    }

    fn eigen_error<W: Workload>(w: &W) -> (f64, f64) {
        let g = w.gram();
        let p = paper_privacy();
        let res = eigen_design(&g, &EigenDesignOptions::default()).unwrap();
        let err = rms_workload_error(&g, w.query_count(), &res.strategy, &p).unwrap();
        let bound = rms_error_bound(&workload_eigenvalues(&g).unwrap(), w.query_count(), &p);
        (err, bound)
    }

    #[test]
    fn identity_workload_is_solved_optimally() {
        let w = IdentityWorkload::new(16);
        let (err, bound) = eigen_error(&w);
        assert!(err <= bound * 1.01, "err {err} vs bound {bound}");
    }

    #[test]
    fn fig1_example_matches_paper_example4() {
        // Example 4: the adaptive strategy error (29.79) is ~1.02x the lower
        // bound (29.18) and clearly below wavelet (34.62) and identity (45.36).
        let w = fig1_workload();
        let g = w.gram();
        let p = paper_privacy();
        let res = eigen_design(&g, &EigenDesignOptions::default()).unwrap();
        let adaptive = rms_workload_error(&g, 8, &res.strategy, &p).unwrap();
        let wavelet = rms_workload_error(&g, 8, &wavelet_1d(8), &p).unwrap();
        let identity = rms_workload_error(&g, 8, &identity_strategy(8), &p).unwrap();
        let bound = rms_error_bound(&workload_eigenvalues(&g).unwrap(), 8, &p);
        assert!(
            adaptive < wavelet,
            "adaptive {adaptive} < wavelet {wavelet}"
        );
        assert!(wavelet < identity);
        assert!(adaptive >= bound * 0.999);
        // The paper observes a ratio of 29.79/29.18 ≈ 1.021 to the bound.
        assert!(
            adaptive / bound < 1.05,
            "adaptive/bound = {} should be close to the paper's 1.02",
            adaptive / bound
        );
    }

    #[test]
    fn range_workload_beats_wavelet_and_hierarchical() {
        let domain = Domain::new(&[32]);
        let w = AllRangeWorkload::new(domain);
        let g = w.gram();
        let p = paper_privacy();
        let res = eigen_design(&g, &EigenDesignOptions::default()).unwrap();
        let eigen = rms_workload_error(&g, w.query_count(), &res.strategy, &p).unwrap();
        let wavelet = rms_workload_error(&g, w.query_count(), &wavelet_1d(32), &p).unwrap();
        let hier =
            rms_workload_error(&g, w.query_count(), &binary_hierarchical_1d(32), &p).unwrap();
        assert!(
            eigen <= wavelet * 1.001,
            "eigen {eigen} vs wavelet {wavelet}"
        );
        assert!(
            eigen <= hier * 1.001,
            "eigen {eigen} vs hierarchical {hier}"
        );
        // Theorem-3 sanity: within 1.3x of the lower bound, as observed in the paper.
        let bound = rms_error_bound(&workload_eigenvalues(&g).unwrap(), w.query_count(), &p);
        assert!(
            eigen / bound <= 1.3,
            "approximation ratio {}",
            eigen / bound
        );
    }

    #[test]
    fn marginal_workload_reaches_the_bound() {
        // The paper reports that for marginal workloads the eigen-design error
        // matches the lower bound.
        let d = Domain::new(&[4, 4, 2]);
        let w = MarginalWorkload::all_k_way(d, 2, MarginalKind::Point);
        let (err, bound) = eigen_error(&w);
        assert!(err / bound <= 1.05, "ratio {}", err / bound);
    }

    #[test]
    fn permutation_invariance() {
        // Prop. 5: the eigen-design error is identical for semantically
        // equivalent (cell-permuted) workloads.
        let base = AllRangeWorkload::new(Domain::new(&[16]));
        let g = base.gram();
        let p = paper_privacy();
        let res = eigen_design(&g, &EigenDesignOptions::default()).unwrap();
        let err = rms_workload_error(&g, base.query_count(), &res.strategy, &p).unwrap();

        let perm = seeded_permutation(16, 99);
        let permuted = PermutedWorkload::new(AllRangeWorkload::new(Domain::new(&[16])), perm);
        let gp = permuted.gram();
        let resp = eigen_design(&gp, &EigenDesignOptions::default()).unwrap();
        let errp = rms_workload_error(&gp, permuted.query_count(), &resp.strategy, &p).unwrap();
        assert!(
            (err - errp).abs() / err < 5e-3,
            "permuted {errp} vs original {err}"
        );
    }

    #[test]
    fn rank_deficient_workload_handled() {
        // 1-way marginals over [4,4]: rank 7 < 16 cells.
        let d = Domain::new(&[4, 4]);
        let w = MarginalWorkload::all_k_way(d, 1, MarginalKind::Point);
        let g = w.gram();
        let res = eigen_design(&g, &EigenDesignOptions::default()).unwrap();
        assert!(res.rank < 16);
        let p = paper_privacy();
        let err = rms_workload_error(&g, w.query_count(), &res.strategy, &p).unwrap();
        assert!(err.is_finite() && err > 0.0);
    }

    #[test]
    fn objective_matches_trace_identity() {
        // For the pre-completion strategy the solver objective equals
        // Σ σᵢ/uᵢ; check it is consistent with the reported weights.
        let w = PrefixWorkload::new(12);
        let g = w.gram();
        let res = eigen_design(
            &g,
            &EigenDesignOptions {
                completion: false,
                ..Default::default()
            },
        )
        .unwrap();
        let (_, retained, _) = workload_eigensystem(&g, 1e-10).unwrap();
        let manual: f64 = retained
            .iter()
            .zip(res.weights_squared.iter())
            .filter(|(_, &u)| u > 0.0)
            .map(|(&s, &u)| s / u)
            .sum();
        assert!(approx_eq(manual, res.objective, 1e-6));
    }

    #[test]
    fn fast_options_stay_close_to_default() {
        let w = AllRangeWorkload::new(Domain::new(&[16]));
        let g = w.gram();
        let p = paper_privacy();
        let slow = eigen_design(&g, &EigenDesignOptions::default()).unwrap();
        let fast = eigen_design(&g, &EigenDesignOptions::fast()).unwrap();
        let e_slow = rms_workload_error(&g, w.query_count(), &slow.strategy, &p).unwrap();
        let e_fast = rms_workload_error(&g, w.query_count(), &fast.strategy, &p).unwrap();
        assert!(e_fast <= e_slow * 1.10, "fast {e_fast} vs default {e_slow}");
    }

    #[test]
    fn zero_gram_rejected() {
        let g = Matrix::zeros(4, 4);
        assert!(eigen_design(&g, &EigenDesignOptions::default()).is_err());
    }
}
