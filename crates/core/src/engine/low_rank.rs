//! The Low-Rank Mechanism's selection pipeline (PAPERS.md arXiv:1208.0094 /
//! 1212.2309), built on the unified [`SelectionPlan`](super::SelectionPlan).
//!
//! Dense eigen-design selection diagonalises the full `n × n` workload gram
//! in O(n³).  For workloads whose gram has rank `r ≪ n` (marginals, small
//! families of range queries over huge domains), almost all of that work
//! computes eigenpairs carrying no workload mass.  The low-rank pipeline
//! instead:
//!
//! 1. extracts the top-`r` Ritz pairs `(λ, L̃)` of `G = WᵀW` with the
//!    truncated block subspace iteration
//!    ([`TruncatedEigen`](mm_linalg::decomp::TruncatedEigen), O(n²r)),
//! 2. runs eigen-design *inside* the subspace: the design set is the
//!    identity of the `r'`-dimensional coordinate space and the costs are
//!    the retained Ritz values — exactly Program 2, but on an `r' × r'`
//!    problem (O(nr² + r³) end to end instead of O(n³)),
//! 3. re-calibrates privacy to the end-to-end map: the mechanism observes
//!    `y = A_sub·(L̃x)`, so its sensitivity is the maximum column norm of
//!    `A_sub·L̃`, computed by streaming one basis column at a time (O(npr')),
//!    never materialising the `p × n` product,
//! 4. materialises the Cholesky factor of `A_subᵀA_sub` and the Prop. 4
//!    trace term against the projected gram `L̃ G L̃ᵀ` eagerly, so the plan
//!    can always be persisted and the answer path never re-pays the cubic
//!    (in `r'`) work.
//!
//! Requesting `rank ≥ n` is handled one level up: the engine falls back to
//! the dense selector, which keeps full-rank answers bit-identical to a
//! plain dense engine (the subspace iteration would converge to the same
//! eigensystem only approximately, not bitwise).

use super::cache::CachedSelection;
use super::plan::LowRankPlan;
use crate::design_set::{weighted_design_strategy_with_costs, DesignWeightingOptions};
use crate::eigen_design::EigenDesignOptions;
use crate::MechanismError;
use mm_linalg::decomp::TruncatedEigen;
use mm_linalg::{ops, Matrix};
use mm_strategies::Strategy;
use std::sync::Arc;

/// Runs the low-rank selection pipeline on a workload gram matrix.
///
/// `rank` is the requested subspace dimension (callers guarantee
/// `1 ≤ rank < n`); Ritz values at or below `opts.rank_tol · σ₁` are dropped,
/// so the retained rank can be smaller on rank-deficient workloads.
pub(crate) fn select_low_rank(
    gram: &Matrix,
    rank: usize,
    opts: &EigenDesignOptions,
) -> crate::Result<LowRankPlan> {
    // Selection wall-time is metadata for cost-aware eviction, never an
    // input to any numeric result.
    // mm-lint: allow(determinism-hygiene): measured cost is cache metadata only
    let started = std::time::Instant::now();

    let n = gram.rows();
    let trunc = TruncatedEigen::new(gram, rank)?;
    let (ritz_raw, basis_full) = trunc.into_parts();
    let ritz: Vec<f64> = ritz_raw
        .iter()
        .map(|&l| if l > 0.0 { l } else { 0.0 })
        .collect();
    let sigma1 = ritz.first().copied().unwrap_or(0.0);
    if sigma1 <= 0.0 {
        return Err(MechanismError::InvalidArgument(
            "workload gram matrix is zero".into(),
        ));
    }
    let retained: Vec<usize> = ritz
        .iter()
        .enumerate()
        .filter(|(_, &l)| l > opts.rank_tol * sigma1)
        .map(|(i, _)| i)
        .collect();
    let retained_ritz: Vec<f64> = retained.iter().map(|&i| ritz[i]).collect();
    let basis = if retained.len() < basis_full.rows() {
        basis_full.select_rows(&retained)?
    } else {
        basis_full
    };
    let r = basis.rows();

    // Program 2 in the subspace: in the coordinates z = L̃x the projected
    // gram is (approximately) diag(ritz), so the design set is the identity
    // and the costs are the Ritz values — an r' x r' weighting problem.
    let design_opts = DesignWeightingOptions {
        solver: opts.solver.clone(),
        completion: opts.completion,
    };
    let designed = weighted_design_strategy_with_costs(
        format!("low-rank eigen-design (rank {r})"),
        &Matrix::identity(r),
        retained_ritz,
        &design_opts,
    )?;
    let a_sub = designed
        .strategy
        .matrix()
        .ok_or_else(|| {
            MechanismError::StrategyNotMaterialized(designed.strategy.name().to_string())
        })?
        .clone();

    // Privacy re-calibration: the mechanism applies A_sub·L̃ to the data, so
    // the sensitivities are the maximum column norms of that product.  One
    // basis column at a time keeps this O(n·p·r') in time and O(p) in space.
    let mut l2_eff = 0.0_f64;
    let mut l1_eff = 0.0_f64;
    for j in 0..n {
        let v = a_sub.matvec(&basis.col(j))?;
        let mut l1 = 0.0;
        let mut l2_sq = 0.0;
        for &x in &v {
            l1 += x.abs();
            l2_sq += x * x;
        }
        l2_eff = l2_eff.max(l2_sq.sqrt());
        l1_eff = l1_eff.max(l1);
    }

    // The exact projected workload gram L̃ G L̃ᵀ (not diag(ritz): the Ritz
    // values are approximations, the projection is exact), the gram the
    // Prop. 4 trace term is taken against.
    let bg = basis.matmul(gram)?;
    let mut subspace_gram = ops::matmul_a_bt(&bg, &basis)?;
    subspace_gram.symmetrize_mut();

    let strategy = Strategy::from_parts(
        designed.strategy.name().to_string(),
        Some(a_sub),
        designed.strategy.gram().clone(),
        l2_eff,
        l1_eff,
        designed.strategy.rows(),
    );

    let cost_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let selection = CachedSelection::with_cost(Arc::new(strategy), cost_ns);
    // Materialise the factor and trace term now: the answer path and the
    // store both need them, and failing here (singular subspace design)
    // surfaces as a selection error instead of a late store/answer error.
    selection.factor()?;
    selection.trace_term(&subspace_gram)?;

    let total_gram_trace = gram.trace();
    // The exact captured spectral mass of the chosen subspace is
    // trace(L̃ G L̃ᵀ), not the sum of the (approximate) Ritz values: when the
    // subspace spans the workload's full column space the two differ by the
    // iteration's convergence residual, and the trace form makes the dropped
    // mass exactly zero up to rounding.
    let captured_mass = subspace_gram.trace();
    Ok(LowRankPlan::from_parts(
        basis,
        selection,
        subspace_gram,
        rank,
        total_gram_trace,
        captured_mass,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::privacy::PrivacyParams;
    use mm_linalg::approx_eq;
    use mm_workload::marginal::{MarginalKind, MarginalWorkload};
    use mm_workload::prefix::PrefixWorkload;
    use mm_workload::{Domain, Workload};

    #[test]
    fn rank_deficient_workload_retains_only_the_true_rank() {
        // 1-way marginals over [4,4]: gram rank 7 < 16 cells.
        let w = MarginalWorkload::all_k_way(Domain::new(&[4, 4]), 1, MarginalKind::Point);
        let g = w.gram();
        let plan = select_low_rank(&g, 12, &EigenDesignOptions::default()).unwrap();
        assert_eq!(plan.requested_rank(), 12);
        assert_eq!(plan.retained_rank(), 7);
        assert_eq!(plan.dim(), 16);
        // The full spectrum is captured: dropped mass is numerically zero.
        assert!(
            plan.dropped_mass() < 1e-8 * plan.total_gram_trace(),
            "dropped {} of {}",
            plan.dropped_mass(),
            plan.total_gram_trace()
        );
    }

    #[test]
    fn truncation_drops_spectral_mass_monotonically() {
        let w = PrefixWorkload::new(24);
        let g = w.gram();
        let mut last = f64::INFINITY;
        for r in [2, 4, 8, 16] {
            let plan = select_low_rank(&g, r, &EigenDesignOptions::default()).unwrap();
            assert!(
                plan.dropped_mass() <= last + 1e-9,
                "rank {r} dropped {} > previous {last}",
                plan.dropped_mass()
            );
            last = plan.dropped_mass();
        }
    }

    #[test]
    fn effective_sensitivity_matches_materialised_product() {
        let w = PrefixWorkload::new(12);
        let g = w.gram();
        let plan = select_low_rank(&g, 4, &EigenDesignOptions::default()).unwrap();
        let a_sub = plan.selection().strategy().matrix().unwrap().clone();
        let full = a_sub.matmul(plan.basis()).unwrap();
        assert!(approx_eq(
            plan.selection().strategy().l2_sensitivity(),
            full.max_col_norm_l2(),
            1e-12
        ));
        assert!(approx_eq(
            plan.selection().strategy().l1_sensitivity(),
            full.max_col_norm_l1(),
            1e-12
        ));
    }

    #[test]
    fn predicted_error_is_exact_noise_error_at_zero_dropped_mass() {
        let w = MarginalWorkload::all_k_way(Domain::new(&[4, 4]), 1, MarginalKind::Point);
        let g = w.gram();
        // Requested 12 > true rank 7: the oversampled iteration resolves the
        // degenerate spectrum fully, so the dropped mass is ~0 (the sibling
        // test pins that) and the bias term must be invisible at any scale.
        let plan = select_low_rank(&g, 12, &EigenDesignOptions::default()).unwrap();
        let p = PrivacyParams::paper_default();
        let ec = p.gaussian_error_constant();
        let sens = plan.selection().strategy().l2_sensitivity();
        let m = w.query_count();
        let with_bias = plan.predicted_rms_error(m, ec, sens, 1_000.0).unwrap();
        let noise_only = plan.predicted_rms_error(m, ec, sens, 0.0).unwrap();
        // dropped mass ~ 0, so the data scale must not matter.
        assert!(
            approx_eq(with_bias, noise_only, 1e-6 * noise_only.max(1.0)),
            "with_bias {with_bias} vs noise_only {noise_only}, dropped {} of {}",
            plan.dropped_mass(),
            plan.total_gram_trace()
        );
        assert!(plan.predicted_rms_error(0, ec, sens, 0.0).is_err());
    }

    #[test]
    fn zero_gram_rejected() {
        let g = Matrix::zeros(6, 6);
        assert!(select_low_rank(&g, 3, &EigenDesignOptions::default()).is_err());
    }
}
