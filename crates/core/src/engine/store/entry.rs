//! Shared on-disk entry plumbing for every plan kind: FNV-1a integrity
//! checksums, the little-endian payload codec, the framed entry layout, and
//! the atomic tmp+rename publish.
//!
//! The dense `.mmsel` and structured `.mmop` writers used to each carry a
//! private copy of this logic; the unified `.mmplan` store and both legacy
//! read paths now all frame and verify entries through this one module, so a
//! framing fix (or a fuzz finding) lands everywhere at once.
//!
//! # Frame layout (shared by all three formats)
//!
//! ```text
//! magic    8 bytes   format tag
//! version  u32 LE    format version
//! fp       u64 LE    fingerprint (must match the filename)
//! len      u64 LE    payload length in bytes
//! payload  len bytes format specific
//! checksum u64 LE    FNV-1a 64 over every preceding byte
//! ```
//!
//! The version field always sits at bytes `[8..12]`, a stability guarantee
//! the corruption tests (and any external tooling poking at entries) rely
//! on.

use mm_linalg::Matrix;
use mm_workload::Fingerprint;
use std::path::Path;

/// FNV-1a 64-bit, the store's integrity checksum: not cryptographic, but it
/// reliably catches the failure modes a strategy store actually sees
/// (truncation, torn writes, bit rot).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

pub(crate) fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn push_f64(out: &mut Vec<u8>, v: f64) {
    push_u64(out, v.to_bits());
}

pub(crate) fn push_matrix(out: &mut Vec<u8>, m: &Matrix) {
    push_u64(out, m.rows() as u64);
    push_u64(out, m.cols() as u64);
    for &v in m.as_slice() {
        push_f64(out, v);
    }
}

/// A bounds-checked little-endian reader over a decoded payload; every
/// accessor returns `None` past the end, so corrupt length fields inside a
/// checksum-valid payload degrade to a failed parse, never a panic.
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Some(s)
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }

    pub(crate) fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    pub(crate) fn matrix(&mut self) -> Option<Matrix> {
        let rows = usize::try_from(self.u64()?).ok()?;
        let cols = usize::try_from(self.u64()?).ok()?;
        let n = rows.checked_mul(cols)?;
        // The entries must actually be present: bounding the allocation by
        // the remaining payload keeps a corrupt length from allocating GiBs.
        if n.checked_mul(8)? > self.bytes.len() - self.pos {
            return None;
        }
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(self.f64()?);
        }
        Matrix::from_vec(rows, cols, data).ok()
    }

    /// The not-yet-consumed remainder of the payload, consuming it.
    pub(crate) fn rest(&mut self) -> &'a [u8] {
        let s = &self.bytes[self.pos..];
        self.pos = self.bytes.len();
        s
    }

    pub(crate) fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// Frames a payload: magic, version, fingerprint, length, payload, FNV-1a
/// checksum over every preceding byte.
pub(crate) fn encode_framed(
    magic: &[u8; 8],
    version: u32,
    fp: Fingerprint,
    payload: &[u8],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 4 + 8 + 8 + payload.len() + 8);
    out.extend_from_slice(magic);
    push_u32(&mut out, version);
    push_u64(&mut out, fp.0);
    push_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(payload);
    let checksum = fnv1a(&out);
    push_u64(&mut out, checksum);
    out
}

/// Verifies an entry's frame and returns its payload: checks size, checksum,
/// magic, version, fingerprint and exact length.  `None` on any mismatch —
/// the caller treats the entry as corrupt.
pub(crate) fn decode_framed<'a>(
    magic: &[u8; 8],
    version: u32,
    fp: Fingerprint,
    bytes: &'a [u8],
) -> Option<&'a [u8]> {
    // Header + checksum around an empty payload is the minimum size.
    let header = 8 + 4 + 8 + 8;
    if bytes.len() < header + 8 {
        return None; // truncated
    }
    let (body, checksum_bytes) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(checksum_bytes.try_into().expect("8 bytes"));
    if fnv1a(body) != stored {
        return None; // bit flip / torn write
    }
    let mut c = Cursor::new(body);
    if c.take(8)? != magic {
        return None;
    }
    if c.u32()? != version {
        return None; // wrong version: recompute rather than misparse
    }
    if c.u64()? != fp.0 {
        return None; // renamed/misplaced entry
    }
    let len = usize::try_from(c.u64()?).ok()?;
    let payload = c.take(len)?;
    if !c.done() {
        return None;
    }
    Some(payload)
}

/// Atomic publish: writes `bytes` to a temporary file in `dir` and renames
/// it over `path`, so readers never observe a partial entry under a crashed
/// writer.  Returns whether the entry is in place.
pub(crate) fn atomic_write(dir: &Path, tmp_name: &str, path: &Path, bytes: &[u8]) -> bool {
    let tmp = dir.join(tmp_name);
    if std::fs::write(&tmp, bytes).is_err() {
        let _ = std::fs::remove_file(&tmp);
        return false;
    }
    if std::fs::rename(&tmp, path).is_err() {
        let _ = std::fs::remove_file(&tmp);
        return false;
    }
    true
}

/// Fault-injection hook for torn/short writes: lands a *truncated prefix*
/// of `bytes` directly at `path` — deliberately skipping the
/// [`atomic_write`] tmp+rename protocol — to simulate a writer that crashed
/// mid-write on a filesystem without atomic rename.  Best effort; the
/// half-entry (cut inside the payload, past the header) is exactly what the
/// checksum/truncation read path must detect and drop.
pub(crate) fn torn_write(path: &Path, bytes: &[u8]) {
    let keep = bytes.len() / 2;
    let _ = std::fs::write(path, &bytes[..keep]);
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: [u8; 8] = *b"MMTESTS\n";

    #[test]
    fn framed_round_trip_and_rejections() {
        let fp = Fingerprint(0x1234_5678_9ABC_DEF0);
        let payload = b"hello payload".to_vec();
        let bytes = encode_framed(&MAGIC, 3, fp, &payload);
        assert_eq!(
            decode_framed(&MAGIC, 3, fp, &bytes),
            Some(payload.as_slice())
        );
        // Version sits at bytes [8..12], a layout guarantee.
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 3);

        // Truncation, bit flip, wrong magic/version/fp all fail closed.
        assert!(decode_framed(&MAGIC, 3, fp, &bytes[..bytes.len() / 2]).is_none());
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        assert!(decode_framed(&MAGIC, 3, fp, &flipped).is_none());
        assert!(decode_framed(b"WRONGMAG", 3, fp, &bytes).is_none());
        assert!(decode_framed(&MAGIC, 4, fp, &bytes).is_none());
        assert!(decode_framed(&MAGIC, 3, Fingerprint(1), &bytes).is_none());
    }

    #[test]
    fn cursor_is_bounds_checked() {
        let mut out = Vec::new();
        push_u32(&mut out, 7);
        push_f64(&mut out, 1.5);
        let mut c = Cursor::new(&out);
        assert_eq!(c.u32(), Some(7));
        assert_eq!(c.f64(), Some(1.5));
        assert!(c.done());
        assert!(c.u8().is_none());

        // A matrix whose advertised size exceeds the remaining bytes parses
        // as None without allocating.
        let mut bad = Vec::new();
        push_u64(&mut bad, u64::MAX);
        push_u64(&mut bad, u64::MAX);
        assert!(Cursor::new(&bad).matrix().is_none());
    }

    #[test]
    fn matrix_round_trips_bitwise() {
        let m = Matrix::from_fn(3, 2, |i, j| (i * 2 + j) as f64 * 0.1 - 0.05);
        let mut out = Vec::new();
        push_matrix(&mut out, &m);
        let mut c = Cursor::new(&out);
        let back = c.matrix().unwrap();
        assert!(c.done());
        assert_eq!(back.shape(), (3, 2));
        for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn rest_consumes_the_tail() {
        let bytes = [1u8, 2, 3, 4, 5];
        let mut c = Cursor::new(&bytes);
        assert_eq!(c.u8(), Some(1));
        assert_eq!(c.rest(), &[2, 3, 4, 5]);
        assert!(c.done());
        assert!(c.rest().is_empty());
    }
}
