//! Persistent plan store: spills [`SelectionPlan`]s to disk so engine
//! restarts (and independent processes sharing a directory) skip selection
//! entirely — O(n³) dense selections, O(nr² + r³) low-rank selections, and
//! structured selections alike.
//!
//! Strategy selection is data independent and keyed by the workload's
//! [`Fingerprint`] (gram-entry bits for the dense/low-rank paths, the
//! structured descriptor hash for the matrix-free path) — valid across
//! processes and machines.  Each store entry records everything the answer
//! path derives from a selection, pre-seeded on load (Cholesky factor,
//! Prop. 4 trace term, low-rank basis, selection cost), so a warm restart
//! answers bit-identically to the run that produced the entry — nothing is
//! refactorized or re-derived.
//!
//! # File format (`.mmplan`, version 1)
//!
//! One file per fingerprint, named `<fingerprint as 16 hex digits>.mmplan`,
//! framed by the `entry` module (magic, version, fingerprint, length, payload,
//! FNV-1a checksum).  The payload starts with one *kind* byte:
//!
//! * `0` **dense** — strategy name, row count, dimension, L2/L1
//!   sensitivities, optional explicit matrix, strategy gram, Cholesky
//!   factor `L`, trace term, selection cost (f64 via `to_bits`, all LE).
//! * `1` **structured** — the encoded
//!   [`StrategyDescriptor`] (a few bytes; the operator is
//!   re-instantiated on load).
//! * `2` **low-rank** — requested rank, total gram trace, captured
//!   spectral mass, the subspace basis `L̃`, the projected gram `L̃GL̃ᵀ`,
//!   then the subspace selection in the dense field layout.
//!
//! # Migration
//!
//! Stores written before the unification hold dense `.mmsel`
//! (`b"MMSTRAT\n"`) and structured `.mmop` (`b"MMOPDSC\n"`) entries.  Both
//! stay readable: [`StrategyStore::load`] probes `.mmplan` first, then each
//! legacy format, and [`StrategyStore::warm`] scans all three extensions.
//! New entries are only ever written as `.mmplan`; an existing legacy entry
//! for a fingerprint blocks a rewrite (write-once is per fingerprint, not
//! per format).
//!
//! # Durability and concurrency
//!
//! * **Atomic writes.** Entries are written to a temporary file in the same
//!   directory and `rename`d into place, so readers never observe a partial
//!   entry under a crashed writer.
//! * **Write-once.** A fingerprint identifies its selection input exactly,
//!   and selection is deterministic, so the first process to write an entry
//!   wins; later saves for the same fingerprint are skipped.  Concurrent
//!   writers racing on one fingerprint each rename a complete,
//!   identical-content file — the last rename wins and every reader sees a
//!   whole entry.
//! * **Corruption falls back to recompute.** A truncated file, a checksum
//!   mismatch (bit flip), a wrong version or a mismatched fingerprint makes
//!   [`StrategyStore::load`] delete the entry and return `None`: the caller
//!   runs a fresh selection and rewrites a valid entry.  A corrupt store can
//!   cost time, never correctness.

pub(crate) mod entry;

use super::cache::{CachedSelection, StrategyCache};
use super::plan::{LowRankPlan, SelectionPlan};
use crate::faults::{Fault, FaultInjector, FaultSite, NoFaults};
use crate::MechanismError;
use entry::Cursor;
use mm_linalg::decomp::Cholesky;
use mm_linalg::Matrix;
use mm_strategies::{Strategy, StrategyDescriptor};
use mm_workload::Fingerprint;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Current unified store format version (bumped on any encoding change;
/// entries with any other version are treated as corrupt and recomputed).
pub const PLAN_STORE_VERSION: u32 = 1;

/// File extension of unified store entries.
pub const PLAN_STORE_EXTENSION: &str = "mmplan";

const PLAN_MAGIC: [u8; 8] = *b"MMPLAN0\n";

/// Format version of legacy dense `.mmsel` entries (read-only migration
/// path; new entries are written as `.mmplan`).
pub const STORE_VERSION: u32 = 1;

/// File extension of legacy dense store entries.
pub const STORE_EXTENSION: &str = "mmsel";

const LEGACY_DENSE_MAGIC: [u8; 8] = *b"MMSTRAT\n";

/// Format version of legacy structured `.mmop` entries (read-only migration
/// path; new entries are written as `.mmplan`).
pub const OPERATOR_STORE_VERSION: u32 = 1;

/// File extension of legacy structured store entries.
pub const OPERATOR_STORE_EXTENSION: &str = "mmop";

const LEGACY_OPERATOR_MAGIC: [u8; 8] = *b"MMOPDSC\n";

const KIND_DENSE: u8 = 0;
const KIND_STRUCTURED: u8 = 1;
const KIND_LOW_RANK: u8 = 2;

fn encode_dense_fields(out: &mut Vec<u8>, e: &CachedSelection, factor: &Cholesky, trace: f64) {
    let strategy = e.strategy();
    let name = strategy.name().as_bytes();
    entry::push_u32(out, name.len() as u32);
    out.extend_from_slice(name);
    entry::push_u64(out, strategy.rows() as u64);
    entry::push_u64(out, strategy.dim() as u64);
    entry::push_f64(out, strategy.l2_sensitivity());
    entry::push_f64(out, strategy.l1_sensitivity());
    match strategy.matrix() {
        Some(m) => {
            out.push(1);
            entry::push_matrix(out, m);
        }
        None => out.push(0),
    }
    entry::push_matrix(out, strategy.gram());
    entry::push_matrix(out, factor.l());
    entry::push_f64(out, trace);
    entry::push_u64(out, e.selection_cost_ns());
}

fn decode_dense_fields(c: &mut Cursor<'_>) -> Option<CachedSelection> {
    let name_len = usize::try_from(c.u32()?).ok()?;
    let name = String::from_utf8(c.take(name_len)?.to_vec()).ok()?;
    let rows = usize::try_from(c.u64()?).ok()?;
    let dim = usize::try_from(c.u64()?).ok()?;
    let l2 = c.f64()?;
    let l1 = c.f64()?;
    let matrix = match c.u8()? {
        0 => None,
        1 => Some(c.matrix()?),
        _ => return None,
    };
    let gram = c.matrix()?;
    let factor_l = c.matrix()?;
    let trace = c.f64()?;
    let cost_ns = c.u64()?;
    // Validate shapes before `Strategy::from_parts`, whose contract
    // violations are asserts (panics), not parse failures.
    if gram.rows() != dim || !gram.is_square() || dim == 0 {
        return None;
    }
    if let Some(m) = &matrix {
        if m.cols() != dim || m.rows() != rows {
            return None;
        }
    }
    if factor_l.rows() != dim {
        return None;
    }
    if !(l2.is_finite() && l1.is_finite() && trace.is_finite()) {
        return None;
    }
    let factor = Cholesky::from_factor(factor_l).ok()?;
    let strategy = Arc::new(Strategy::from_parts(name, matrix, gram, l2, l1, rows));
    Some(CachedSelection::with_parts(
        strategy,
        cost_ns,
        Arc::new(factor),
        trace,
    ))
}

fn decode_plan_file(fp: Fingerprint, bytes: &[u8]) -> Option<SelectionPlan> {
    let payload = entry::decode_framed(&PLAN_MAGIC, PLAN_STORE_VERSION, fp, bytes)?;
    let mut c = Cursor::new(payload);
    match c.u8()? {
        KIND_DENSE => {
            let e = decode_dense_fields(&mut c)?;
            if !c.done() {
                return None; // trailing garbage
            }
            Some(SelectionPlan::Dense(Arc::new(e)))
        }
        KIND_STRUCTURED => {
            let descriptor = StrategyDescriptor::decode(c.rest())?;
            Some(SelectionPlan::Structured(Arc::new(
                descriptor.instantiate(),
            )))
        }
        KIND_LOW_RANK => {
            let rank = usize::try_from(c.u64()?).ok()?;
            let total_gram_trace = c.f64()?;
            let captured_mass = c.f64()?;
            let basis = c.matrix()?;
            let subspace_gram = c.matrix()?;
            let selection = decode_dense_fields(&mut c)?;
            if !c.done() {
                return None;
            }
            if rank == 0 || basis.rows() == 0 || basis.cols() == 0 {
                return None;
            }
            if !subspace_gram.is_square() || subspace_gram.rows() != basis.rows() {
                return None;
            }
            if selection.strategy().dim() != basis.rows() {
                return None;
            }
            if !(total_gram_trace.is_finite() && captured_mass.is_finite()) {
                return None;
            }
            Some(SelectionPlan::LowRank(Arc::new(LowRankPlan::from_parts(
                basis,
                selection,
                subspace_gram,
                rank,
                total_gram_trace,
                captured_mass,
            ))))
        }
        _ => None,
    }
}

fn decode_legacy_dense_file(fp: Fingerprint, bytes: &[u8]) -> Option<CachedSelection> {
    let payload = entry::decode_framed(&LEGACY_DENSE_MAGIC, STORE_VERSION, fp, bytes)?;
    let mut c = Cursor::new(payload);
    let e = decode_dense_fields(&mut c)?;
    if !c.done() {
        return None;
    }
    Some(e)
}

fn decode_legacy_operator_file(fp: Fingerprint, bytes: &[u8]) -> Option<StrategyDescriptor> {
    let payload = entry::decode_framed(&LEGACY_OPERATOR_MAGIC, OPERATOR_STORE_VERSION, fp, bytes)?;
    StrategyDescriptor::decode(payload)
}

/// Outcome of a [`StrategyStore::try_save`] attempt.  The tri-state matters
/// to the engine's circuit breaker: an existing entry is *not* a
/// persistence failure, and a failed write is *not* a write-once skip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaveOutcome {
    /// This call wrote the entry.
    Written,
    /// An entry for the fingerprint already existed (any format) — the
    /// write-once contract skipped the write.  Also returned for plans the
    /// store cannot derive a complete entry for (e.g. a dense plan without
    /// its workload gram), which stay memory-only by design.
    Skipped,
    /// The write was attempted and failed (I/O error, torn write).
    Failed,
}

/// A directory of persisted selection plans, shared by any number of engines
/// and processes (see the module docs for format, migration and concurrency
/// semantics).
#[derive(Debug)]
pub struct StrategyStore {
    dir: PathBuf,
    /// Fault-injection seam for reads and writes (default: [`NoFaults`]).
    injector: Arc<dyn FaultInjector>,
    /// Corrupt entries silently dropped (deleted so a fresh selection can
    /// rewrite them) since this store handle was opened.
    corrupt_dropped: AtomicU64,
}

impl StrategyStore {
    /// Opens (creating if needed) a store directory.
    pub fn open(dir: impl Into<PathBuf>) -> crate::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| {
            MechanismError::Store(format!(
                "cannot create store directory {}: {e}",
                dir.display()
            ))
        })?;
        Ok(StrategyStore {
            dir,
            injector: Arc::new(NoFaults),
            corrupt_dropped: AtomicU64::new(0),
        })
    }

    /// Routes this store's reads and writes through a
    /// [`FaultInjector`] (see [`crate::faults`]); used by the engine
    /// builder to thread one injector through the whole stack.
    pub fn with_injector(mut self, injector: Arc<dyn FaultInjector>) -> Self {
        self.injector = injector;
        self
    }

    /// Corrupt entries dropped (deleted for recompute) by this store handle
    /// — truncated files, checksum mismatches, wrong versions, mismatched
    /// fingerprints, malformed payloads.  Unreadable files (I/O errors,
    /// including injected read faults) are not counted: nothing was
    /// inspected, so nothing was judged corrupt.
    pub fn corrupt_dropped(&self) -> u64 {
        self.corrupt_dropped.load(Ordering::Relaxed)
    }

    /// Reads and decodes one entry file; a corrupt entry is counted and
    /// deleted (best effort — a failed delete only means the next load
    /// re-detects the corruption) so a fresh selection can rewrite it.
    fn load_file<T>(&self, path: &Path, decode: impl FnOnce(&[u8]) -> Option<T>) -> Option<T> {
        let bytes = std::fs::read(path).ok()?;
        match decode(&bytes) {
            Some(v) => Some(v),
            None => {
                self.corrupt_dropped.fetch_add(1, Ordering::Relaxed);
                let _ = std::fs::remove_file(path);
                None
            }
        }
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The on-disk path of a fingerprint's unified entry.
    pub fn entry_path(&self, fp: Fingerprint) -> PathBuf {
        self.dir.join(format!("{fp}.{PLAN_STORE_EXTENSION}"))
    }

    /// The on-disk path a pre-unification dense entry would occupy.
    pub fn legacy_dense_path(&self, fp: Fingerprint) -> PathBuf {
        self.dir.join(format!("{fp}.{STORE_EXTENSION}"))
    }

    /// The on-disk path a pre-unification structured entry would occupy.
    pub fn legacy_operator_path(&self, fp: Fingerprint) -> PathBuf {
        self.dir.join(format!("{fp}.{OPERATOR_STORE_EXTENSION}"))
    }

    /// Loads a fingerprint's plan, pre-seeded with every persisted derived
    /// quantity.  Probes the unified format first, then each legacy format.
    /// Any corruption (truncation, checksum mismatch, wrong version,
    /// mismatched fingerprint, malformed payload) deletes the offending
    /// entry and falls through, so the caller recomputes and rewrites it.
    pub fn load(&self, fp: Fingerprint) -> Option<Arc<SelectionPlan>> {
        // Fault-injection seam, consulted once per load (not per probed
        // format): a read fault behaves exactly like an unreadable file —
        // the caller recomputes; nothing is deleted or counted corrupt.
        match self.injector.inject(FaultSite::StoreRead) {
            Some(Fault::Fail | Fault::Torn) => return None,
            Some(Fault::LatencyMs(ms)) => std::thread::sleep(std::time::Duration::from_millis(ms)),
            _ => {}
        }
        if let Some(plan) = self.load_file(&self.entry_path(fp), |b| decode_plan_file(fp, b)) {
            return Some(Arc::new(plan));
        }
        if let Some(e) = self.load_file(&self.legacy_dense_path(fp), |b| {
            decode_legacy_dense_file(fp, b)
        }) {
            return Some(Arc::new(SelectionPlan::Dense(Arc::new(e))));
        }
        if let Some(d) = self.load_file(&self.legacy_operator_path(fp), |b| {
            decode_legacy_operator_file(fp, b)
        }) {
            return Some(Arc::new(SelectionPlan::Structured(Arc::new(
                d.instantiate(),
            ))));
        }
        None
    }

    /// Persists a plan (write-once per fingerprint, across formats): returns
    /// `true` when this call wrote the entry, `false` when any entry already
    /// existed or the write failed.  [`StrategyStore::try_save`] exposes
    /// which of the two it was.
    pub fn save(
        &self,
        fp: Fingerprint,
        plan: &SelectionPlan,
        workload_gram: Option<&Matrix>,
    ) -> bool {
        self.try_save(fp, plan, workload_gram) == SaveOutcome::Written
    }

    /// Persists a plan (write-once per fingerprint, across formats),
    /// distinguishing a skipped write from a failed one — the signal the
    /// engine's store circuit breaker runs on.
    ///
    /// Dense plans need the `workload_gram` they were selected for to derive
    /// their trace term (if not already materialised); structured and
    /// low-rank plans ignore it — a low-rank plan carries its own subspace
    /// gram.  Underivable entries (e.g. a singular strategy gram) stay
    /// memory-only and report [`SaveOutcome::Skipped`].
    pub fn try_save(
        &self,
        fp: Fingerprint,
        plan: &SelectionPlan,
        workload_gram: Option<&Matrix>,
    ) -> SaveOutcome {
        let path = self.entry_path(fp);
        if path.exists()
            || self.legacy_dense_path(fp).exists()
            || self.legacy_operator_path(fp).exists()
        {
            return SaveOutcome::Skipped; // write-once per fingerprint
        }
        let payload = match plan {
            SelectionPlan::Dense(e) => {
                let Some(gram) = workload_gram else {
                    return SaveOutcome::Skipped;
                };
                let (Ok(factor), Ok(trace)) = (e.factor(), e.trace_term(gram)) else {
                    return SaveOutcome::Skipped;
                };
                let mut out = vec![KIND_DENSE];
                encode_dense_fields(&mut out, e, &factor, trace);
                out
            }
            SelectionPlan::Structured(s) => {
                let mut out = vec![KIND_STRUCTURED];
                out.extend_from_slice(&s.descriptor().encode());
                out
            }
            SelectionPlan::LowRank(p) => {
                let sel = p.selection();
                let (Ok(factor), Ok(trace)) = (sel.factor(), sel.trace_term(p.subspace_gram()))
                else {
                    return SaveOutcome::Skipped;
                };
                let mut out = vec![KIND_LOW_RANK];
                entry::push_u64(&mut out, p.requested_rank() as u64);
                entry::push_f64(&mut out, p.total_gram_trace());
                entry::push_f64(&mut out, p.captured_mass());
                entry::push_matrix(&mut out, p.basis());
                entry::push_matrix(&mut out, p.subspace_gram());
                encode_dense_fields(&mut out, sel, &factor, trace);
                out
            }
        };
        let bytes = entry::encode_framed(&PLAN_MAGIC, PLAN_STORE_VERSION, fp, &payload);
        // Fault-injection seam: a `Fail` is a clean I/O error (no bytes
        // land); a `Torn` write lands a truncated entry at the final path —
        // the mid-crash case the checksumming read path must catch.
        match self.injector.inject(FaultSite::StoreWrite) {
            Some(Fault::Fail) => return SaveOutcome::Failed,
            Some(Fault::Torn) => {
                entry::torn_write(&path, &bytes);
                return SaveOutcome::Failed;
            }
            Some(Fault::LatencyMs(ms)) => std::thread::sleep(std::time::Duration::from_millis(ms)),
            _ => {}
        }
        let tmp_name = format!(".{fp}.tmp.{}", std::process::id());
        if entry::atomic_write(&self.dir, &tmp_name, &path, &bytes) {
            SaveOutcome::Written
        } else {
            SaveOutcome::Failed
        }
    }

    /// Loads up to `limit` plans into a [`StrategyCache`] (deterministic
    /// ascending-fingerprint order, all formats), returning how many were
    /// inserted.  Corrupt entries are skipped (and deleted) exactly as in
    /// [`StrategyStore::load`].
    pub fn warm(&self, cache: &StrategyCache, limit: usize) -> usize {
        // Collect into an ordered set: directory order is arbitrary and a
        // fingerprint can appear under several extensions, but which entries
        // warm under a `limit` must be a pure function of the store's
        // contents.
        // mm-lint: allow(determinism-hygiene): directory order is discarded — fingerprints are deduplicated and re-sorted numerically below before any are loaded
        let Ok(dir) = std::fs::read_dir(&self.dir) else {
            return 0;
        };
        let mut fps: BTreeSet<u64> = BTreeSet::new();
        for entry in dir.flatten() {
            let path = entry.path();
            let Some(ext) = path.extension().and_then(|e| e.to_str()) else {
                continue;
            };
            if ext != PLAN_STORE_EXTENSION
                && ext != STORE_EXTENSION
                && ext != OPERATOR_STORE_EXTENSION
            {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            let Ok(raw) = u64::from_str_radix(stem, 16) else {
                continue;
            };
            fps.insert(raw);
        }
        let mut inserted = 0;
        for raw in fps.into_iter().take(limit) {
            let fp = Fingerprint(raw);
            if let Some(plan) = self.load(fp) {
                cache.insert(fp, plan);
                inserted += 1;
            }
        }
        inserted
    }

    /// Number of distinct fingerprints with (undamaged or not-yet-inspected)
    /// entries on disk, across all formats.
    pub fn len(&self) -> usize {
        // mm-lint: allow(determinism-hygiene): the count is order-independent and diagnostic only — no serving decision keys on directory iteration order
        let Ok(dir) = std::fs::read_dir(&self.dir) else {
            return 0;
        };
        let mut fps: BTreeSet<u64> = BTreeSet::new();
        for entry in dir.flatten() {
            let path = entry.path();
            let Some(ext) = path.extension().and_then(|e| e.to_str()) else {
                continue;
            };
            if ext != PLAN_STORE_EXTENSION
                && ext != STORE_EXTENSION
                && ext != OPERATOR_STORE_EXTENSION
            {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            let Ok(raw) = u64::from_str_radix(stem, 16) else {
                continue;
            };
            fps.insert(raw);
        }
        fps.len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Legacy dense `.mmsel` encoder, kept (test-only) so the migration read
/// path has a byte-exact regression oracle.
#[cfg(test)]
pub(crate) fn encode_legacy_dense_file(
    fp: Fingerprint,
    e: &CachedSelection,
    workload_gram: &Matrix,
) -> Option<Vec<u8>> {
    let factor = e.factor().ok()?;
    let trace = e.trace_term(workload_gram).ok()?;
    let mut payload = Vec::new();
    encode_dense_fields(&mut payload, e, &factor, trace);
    Some(entry::encode_framed(
        &LEGACY_DENSE_MAGIC,
        STORE_VERSION,
        fp,
        &payload,
    ))
}

/// Legacy structured `.mmop` encoder, kept (test-only) so the migration
/// read path has a byte-exact regression oracle.
#[cfg(test)]
pub(crate) fn encode_legacy_operator_file(fp: Fingerprint, d: &StrategyDescriptor) -> Vec<u8> {
    entry::encode_framed(
        &LEGACY_OPERATOR_MAGIC,
        OPERATOR_STORE_VERSION,
        fp,
        &d.encode(),
    )
}

#[cfg(test)]
mod tests {
    use super::entry::fnv1a;
    use super::*;
    use crate::eigen_design::EigenDesignOptions;
    use crate::engine::low_rank::select_low_rank;
    use mm_strategies::identity::identity_strategy;
    use mm_workload::prefix::PrefixWorkload;
    use mm_workload::Workload;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mm-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn dense_entry(n: usize) -> CachedSelection {
        CachedSelection::with_cost(Arc::new(identity_strategy(n)), 42_000)
    }

    fn dense_plan(n: usize) -> SelectionPlan {
        SelectionPlan::Dense(Arc::new(dense_entry(n)))
    }

    #[test]
    fn dense_round_trip_is_bit_identical() {
        let dir = tmp_dir("roundtrip");
        let store = StrategyStore::open(&dir).unwrap();
        let fp = Fingerprint(0xDEAD_BEEF_0BAD_F00D);
        let e = dense_entry(6);
        let gram = Matrix::identity(6);
        // Force the derived quantities so we can compare them bit-for-bit.
        let factor = e.factor().unwrap();
        let trace = e.trace_term(&gram).unwrap();
        let plan = SelectionPlan::Dense(Arc::new(e));
        assert!(store.save(fp, &plan, Some(&gram)), "first save writes");
        assert!(
            !store.save(fp, &plan, Some(&gram)),
            "second save is write-once"
        );
        assert_eq!(store.len(), 1);

        let loaded = store.load(fp).expect("entry loads");
        let loaded = loaded.as_dense().expect("dense plan kind");
        let s0 = plan.as_dense().unwrap().strategy();
        let s1 = loaded.strategy();
        assert_eq!(s0.name(), s1.name());
        assert_eq!(s0.rows(), s1.rows());
        assert_eq!(s0.dim(), s1.dim());
        assert_eq!(s0.l2_sensitivity().to_bits(), s1.l2_sensitivity().to_bits());
        assert_eq!(s0.l1_sensitivity().to_bits(), s1.l1_sensitivity().to_bits());
        for (a, b) in s0
            .matrix()
            .unwrap()
            .as_slice()
            .iter()
            .zip(s1.matrix().unwrap().as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in s0.gram().as_slice().iter().zip(s1.gram().as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let loaded_factor = loaded.factor().unwrap();
        for (a, b) in factor
            .l()
            .as_slice()
            .iter()
            .zip(loaded_factor.l().as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(trace.to_bits(), loaded.trace_term(&gram).unwrap().to_bits());
        assert_eq!(loaded.selection_cost_ns(), 42_000);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn matrixless_strategy_round_trips() {
        let dir = tmp_dir("gramonly");
        let store = StrategyStore::open(&dir).unwrap();
        let fp = Fingerprint(7);
        let gram = Matrix::identity(4);
        let strategy = Arc::new(Strategy::from_parts(
            "implicit",
            None,
            gram.clone(),
            1.0,
            1.0,
            4,
        ));
        let plan = SelectionPlan::Dense(Arc::new(CachedSelection::new(strategy)));
        assert!(store.save(fp, &plan, Some(&gram)));
        let loaded = store.load(fp).unwrap();
        let loaded = loaded.as_dense().unwrap();
        assert!(loaded.strategy().matrix().is_none());
        assert_eq!(loaded.strategy().dim(), 4);
        // A dense plan cannot be saved without its workload gram.
        assert!(!store.save(Fingerprint(8), &dense_plan(4), None));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn structured_plan_round_trips() {
        let dir = tmp_dir("structured");
        let store = StrategyStore::open(&dir).unwrap();
        let fp = Fingerprint(0xFEED_F00D);
        let d = StrategyDescriptor::Haar { n: 64 };
        let plan = SelectionPlan::Structured(Arc::new(d.instantiate()));
        assert!(store.save(fp, &plan, None), "first save writes");
        assert!(!store.save(fp, &plan, None), "second save is write-once");
        assert_eq!(store.len(), 1);
        let loaded = store.load(fp).expect("entry loads");
        let loaded = loaded.as_structured().expect("structured plan kind");
        assert_eq!(loaded.descriptor(), d);
        assert_eq!(loaded.dim(), 64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn low_rank_plan_round_trips_bit_identically() {
        let dir = tmp_dir("lowrank");
        let store = StrategyStore::open(&dir).unwrap();
        let fp = Fingerprint(0x10_CA1);
        let g = PrefixWorkload::new(16).gram();
        let plan = select_low_rank(&g, 4, &EigenDesignOptions::default()).unwrap();
        let plan = SelectionPlan::LowRank(Arc::new(plan));
        assert!(store.save(fp, &plan, None));
        let loaded = store.load(fp).expect("entry loads");
        let (orig, back) = (plan.as_low_rank().unwrap(), loaded.as_low_rank().unwrap());
        assert_eq!(orig.requested_rank(), back.requested_rank());
        assert_eq!(orig.retained_rank(), back.retained_rank());
        assert_eq!(
            orig.total_gram_trace().to_bits(),
            back.total_gram_trace().to_bits()
        );
        assert_eq!(
            orig.captured_mass().to_bits(),
            back.captured_mass().to_bits()
        );
        for (a, b) in orig.basis().as_slice().iter().zip(back.basis().as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in orig
            .subspace_gram()
            .as_slice()
            .iter()
            .zip(back.subspace_gram().as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let (f0, f1) = (
            orig.selection().factor().unwrap(),
            back.selection().factor().unwrap(),
        );
        for (a, b) in f0.l().as_slice().iter().zip(f1.l().as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(
            orig.selection()
                .trace_term(orig.subspace_gram())
                .unwrap()
                .to_bits(),
            back.selection()
                .trace_term(back.subspace_gram())
                .unwrap()
                .to_bits()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_checksum_flip_and_wrong_version_all_fall_back() {
        let fp = Fingerprint(0xABCD);
        for (tag, corrupt) in [
            (
                "truncate",
                Box::new(|bytes: &mut Vec<u8>| bytes.truncate(bytes.len() / 2))
                    as Box<dyn Fn(&mut Vec<u8>)>,
            ),
            (
                "bitflip",
                Box::new(|bytes: &mut Vec<u8>| {
                    let mid = bytes.len() / 2;
                    bytes[mid] ^= 0x40;
                }),
            ),
            (
                "version",
                Box::new(|bytes: &mut Vec<u8>| {
                    // Rewrite the version field and re-checksum so *only* the
                    // version check can reject it.
                    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
                    let body_len = bytes.len() - 8;
                    let sum = fnv1a(&bytes[..body_len]);
                    let at = bytes.len() - 8;
                    bytes[at..].copy_from_slice(&sum.to_le_bytes());
                }),
            ),
        ] {
            let dir = tmp_dir(tag);
            let store = StrategyStore::open(&dir).unwrap();
            let gram = Matrix::identity(5);
            assert!(store.save(fp, &dense_plan(5), Some(&gram)));
            let path = store.entry_path(fp);
            let mut bytes = std::fs::read(&path).unwrap();
            corrupt(&mut bytes);
            std::fs::write(&path, &bytes).unwrap();

            assert!(store.load(fp).is_none(), "{tag}: corrupt entry rejected");
            assert!(!path.exists(), "{tag}: corrupt entry deleted");
            // The slot is clear: a fresh save rewrites a valid entry.
            assert!(
                store.save(fp, &dense_plan(5), Some(&gram)),
                "{tag}: rewrite succeeds"
            );
            assert!(store.load(fp).is_some(), "{tag}: rewritten entry loads");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn mismatched_fingerprint_is_rejected() {
        let dir = tmp_dir("fpmismatch");
        let store = StrategyStore::open(&dir).unwrap();
        let gram = Matrix::identity(3);
        assert!(store.save(Fingerprint(1), &dense_plan(3), Some(&gram)));
        // Copy the entry under another fingerprint's filename.
        std::fs::copy(
            store.entry_path(Fingerprint(1)),
            store.entry_path(Fingerprint(2)),
        )
        .unwrap();
        assert!(store.load(Fingerprint(2)).is_none());
        assert!(store.load(Fingerprint(1)).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_dense_entries_stay_readable() {
        let dir = tmp_dir("legacy-dense");
        let store = StrategyStore::open(&dir).unwrap();
        let fp = Fingerprint(0xBEEF);
        let e = dense_entry(5);
        let gram = Matrix::identity(5);
        let factor = e.factor().unwrap();
        let trace = e.trace_term(&gram).unwrap();
        let bytes = encode_legacy_dense_file(fp, &e, &gram).unwrap();
        std::fs::write(store.legacy_dense_path(fp), &bytes).unwrap();
        assert_eq!(store.len(), 1);

        let loaded = store.load(fp).expect("legacy entry loads");
        let loaded = loaded.as_dense().expect("dense plan kind");
        for (a, b) in factor
            .l()
            .as_slice()
            .iter()
            .zip(loaded.factor().unwrap().l().as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits(), "legacy factor bit-identical");
        }
        assert_eq!(trace.to_bits(), loaded.trace_term(&gram).unwrap().to_bits());
        assert_eq!(loaded.selection_cost_ns(), 42_000);

        // A live legacy entry blocks a unified rewrite (write-once spans
        // formats), and a corrupted one is deleted and falls through.
        assert!(!store.save(fp, &dense_plan(5), Some(&gram)));
        let mut corrupted = bytes.clone();
        let mid = corrupted.len() / 2;
        corrupted[mid] ^= 0x08;
        std::fs::write(store.legacy_dense_path(fp), &corrupted).unwrap();
        assert!(store.load(fp).is_none());
        assert!(
            !store.legacy_dense_path(fp).exists(),
            "corrupt legacy deleted"
        );
        assert!(
            store.save(fp, &dense_plan(5), Some(&gram)),
            "slot clear again"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_operator_entries_stay_readable() {
        let dir = tmp_dir("legacy-op");
        let store = StrategyStore::open(&dir).unwrap();
        let fp = Fingerprint(0xF00D);
        let d = StrategyDescriptor::Hierarchical {
            n: 10,
            branching: 2,
        };
        let bytes = encode_legacy_operator_file(fp, &d);
        std::fs::write(store.legacy_operator_path(fp), &bytes).unwrap();
        assert_eq!(store.len(), 1);

        let loaded = store.load(fp).expect("legacy entry loads");
        let loaded = loaded.as_structured().expect("structured plan kind");
        assert_eq!(loaded.descriptor(), d);

        assert!(
            !store.save(
                fp,
                &SelectionPlan::Structured(Arc::new(d.instantiate())),
                None
            ),
            "live legacy entry blocks a rewrite"
        );
        let mut corrupted = bytes.clone();
        corrupted.truncate(corrupted.len() / 2);
        std::fs::write(store.legacy_operator_path(fp), &corrupted).unwrap();
        assert!(store.load(fp).is_none());
        assert!(!store.legacy_operator_path(fp).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_fills_a_cache_across_formats_in_deterministic_order() {
        let dir = tmp_dir("warm");
        let store = StrategyStore::open(&dir).unwrap();
        let gram = Matrix::identity(4);
        // fp 1: unified dense, fp 2: legacy dense, fp 3: legacy structured.
        assert!(store.save(Fingerprint(1), &dense_plan(4), Some(&gram)));
        let legacy = encode_legacy_dense_file(Fingerprint(2), &dense_entry(4), &gram).unwrap();
        std::fs::write(store.legacy_dense_path(Fingerprint(2)), &legacy).unwrap();
        let op = encode_legacy_operator_file(Fingerprint(3), &StrategyDescriptor::Haar { n: 8 });
        std::fs::write(store.legacy_operator_path(Fingerprint(3)), &op).unwrap();
        assert_eq!(store.len(), 3);

        let cache = StrategyCache::new(8);
        assert_eq!(store.warm(&cache, 8), 3);
        assert_eq!(cache.len(), 3);
        for v in 1..=3u64 {
            assert!(cache.get(Fingerprint(v)).is_some());
        }
        assert!(cache.get(Fingerprint(3)).unwrap().as_structured().is_some());
        // The limit caps how much is loaded, lowest fingerprints first.
        let small = StrategyCache::new(8);
        assert_eq!(store.warm(&small, 2), 2);
        assert!(small.get(Fingerprint(1)).is_some());
        assert!(small.get(Fingerprint(2)).is_some());
        assert!(small.get(Fingerprint(3)).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_drops_are_counted_per_store_handle() {
        let dir = tmp_dir("corrupt-count");
        let store = StrategyStore::open(&dir).unwrap();
        let gram = Matrix::identity(4);
        assert!(store.save(Fingerprint(1), &dense_plan(4), Some(&gram)));
        assert_eq!(store.corrupt_dropped(), 0);
        // Bit-flip the entry: the next load drops it and counts the drop.
        let path = store.entry_path(Fingerprint(1));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        assert!(store.load(Fingerprint(1)).is_none());
        assert_eq!(store.corrupt_dropped(), 1);
        // A load of a simply-absent fingerprint is not a corruption.
        assert!(store.load(Fingerprint(2)).is_none());
        assert_eq!(store.corrupt_dropped(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_write_fault_fails_without_landing_bytes() {
        use crate::faults::{Fault, FaultSchedule, FaultSite};
        let dir = tmp_dir("inject-write");
        let store = StrategyStore::open(&dir).unwrap().with_injector(Arc::new(
            FaultSchedule::new().inject_at(FaultSite::StoreWrite, 0, Fault::Fail),
        ));
        let gram = Matrix::identity(4);
        let fp = Fingerprint(9);
        assert_eq!(
            store.try_save(fp, &dense_plan(4), Some(&gram)),
            SaveOutcome::Failed
        );
        assert!(!store.entry_path(fp).exists(), "clean failure: no bytes");
        // The schedule only faulted op 0: the retry writes.
        assert_eq!(
            store.try_save(fp, &dense_plan(4), Some(&gram)),
            SaveOutcome::Written
        );
        assert_eq!(
            store.try_save(fp, &dense_plan(4), Some(&gram)),
            SaveOutcome::Skipped,
            "write-once skip is not a failure"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_torn_write_lands_a_half_entry_the_reader_drops() {
        use crate::faults::{Fault, FaultSchedule, FaultSite};
        let dir = tmp_dir("inject-torn");
        let store = StrategyStore::open(&dir).unwrap().with_injector(Arc::new(
            FaultSchedule::new().inject_at(FaultSite::StoreWrite, 0, Fault::Torn),
        ));
        let gram = Matrix::identity(4);
        let fp = Fingerprint(11);
        assert_eq!(
            store.try_save(fp, &dense_plan(4), Some(&gram)),
            SaveOutcome::Failed
        );
        assert!(
            store.entry_path(fp).exists(),
            "torn write left a half-entry"
        );
        // The reader detects the truncation, counts and deletes it …
        assert!(store.load(fp).is_none());
        assert_eq!(store.corrupt_dropped(), 1);
        assert!(!store.entry_path(fp).exists());
        // … and the slot is clear for a clean rewrite.
        assert_eq!(
            store.try_save(fp, &dense_plan(4), Some(&gram)),
            SaveOutcome::Written
        );
        assert!(store.load(fp).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_read_fault_skips_without_judging_the_entry() {
        use crate::faults::{Fault, FaultSchedule, FaultSite};
        let dir = tmp_dir("inject-read");
        let store = StrategyStore::open(&dir).unwrap().with_injector(Arc::new(
            FaultSchedule::new().inject_at(FaultSite::StoreRead, 0, Fault::Fail),
        ));
        let gram = Matrix::identity(4);
        let fp = Fingerprint(13);
        assert!(store.save(fp, &dense_plan(4), Some(&gram)));
        assert!(store.load(fp).is_none(), "injected read error");
        assert_eq!(store.corrupt_dropped(), 0, "nothing was judged corrupt");
        assert!(store.entry_path(fp).exists(), "entry untouched");
        assert!(store.load(fp).is_some(), "next read succeeds");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_rejects_unwritable_path() {
        // A path under a regular file cannot be a directory.
        let dir = tmp_dir("notadir");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("plain");
        std::fs::write(&file, b"x").unwrap();
        let err = StrategyStore::open(file.join("sub")).unwrap_err();
        assert!(matches!(err, MechanismError::Store(_)));
        assert!(err.to_string().contains("store"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
