//! The engine's internal strategy cache: sharded, recency-aware, and
//! single-flight.
//!
//! Strategy selection is data independent, so a selected strategy is valid
//! for every database and every privacy level (the strategy scales out of the
//! error expression; only the noise calibration changes).  The cache maps a
//! workload [`Fingerprint`] (gram-matrix hash, or structured descriptor
//! hash) to the selected [`SelectionPlan`] — dense, structured and low-rank
//! plans share one cache — letting repeated `answer` calls on the same
//! workload skip selection, by far the dominant cost, entirely.
//!
//! # Concurrency
//!
//! The cache is built for contended multi-threaded serving:
//!
//! * **Sharding.** Entries are spread over N independently locked shards
//!   (fingerprints are avalanched 64-bit hashes, so the low bits pick a shard
//!   uniformly).  Lookups on different workloads never contend on one global
//!   lock; the per-shard critical sections are a hash-map probe plus a
//!   recency-stamp update.
//! * **Single-flight selection.** When several threads miss on the *same*
//!   fingerprint concurrently, exactly one (the *leader*, handed a
//!   [`SelectionGuard`]) runs the O(n³) selector; the others block on the
//!   flight and receive the leader's published entry.  If the leader fails
//!   (error or panic), waiters wake and race to become the next leader, so an
//!   error is returned per caller and never cached.
//!
//! # Eviction
//!
//! Eviction is per shard and governed by an [`EvictionPolicy`]:
//!
//! * [`EvictionPolicy::Lru`] (default) — every `get` refreshes the entry's
//!   recency stamp, and an insert into a full shard evicts the entry with
//!   the oldest stamp.  A frequently served workload therefore stays
//!   resident under a churning stream of cold workloads (the FIFO policy
//!   this replaces evicted hot and cold entries alike).
//! * [`EvictionPolicy::CostAware`] — selection wall-time is very non-uniform
//!   across workloads (an eigen-design selection at n = 1024 costs seconds;
//!   a tiny workload selects in microseconds), so each entry carries its
//!   measured selection cost and the shard evicts the entry with the lowest
//!   recency×cost score `cost / (age + 1)`: cheap-to-rebuild entries churn
//!   first, and an expensive entry survives a stream of cheap insertions
//!   even once its recency has decayed.
//!
//! The configured capacity is a total across shards: the per-shard bounds
//! sum to exactly the total, so the cache never holds more entries than
//! configured, but with more than one shard the split is approximate in use
//! — a skewed fingerprint distribution can evict from a full shard while
//! another has room.  Size the capacity to the working set, the shard count
//! to the expected parallelism, and the policy to the workload mix (all
//! [`EngineBuilder`](crate::engine::EngineBuilder) knobs).

use super::plan::SelectionPlan;
use mm_linalg::decomp::Cholesky;
use mm_linalg::Matrix;
use mm_strategies::Strategy;
use mm_workload::Fingerprint;
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};

/// Default number of independently locked cache shards.
pub const DEFAULT_SHARD_COUNT: usize = 8;

/// How a full cache shard picks its eviction victim (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Evict the least recently used entry.
    #[default]
    Lru,
    /// Evict the entry with the lowest recency×cost score
    /// `selection_cost_ns / (age + 1)`, protecting entries that were
    /// expensive to select.
    CostAware,
}

/// A cached selection: the strategy plus two lazily computed, data- and
/// privacy-independent derived quantities — the Cholesky factor of the
/// strategy gram (used by least-squares inference) and the Prop. 4 trace term
/// `trace(WᵀW (AᵀA)⁻¹)` against the workload the entry was selected for.
/// Both are O(n³); caching them makes a cache-hit `answer` skip *all*
/// repeated cubic work and pay only the O(n²) mechanism run.
///
/// The entry also records the measured wall-time of the selection that
/// produced it, which the [`EvictionPolicy::CostAware`] policy uses to
/// protect expensive entries.
#[derive(Debug)]
pub struct CachedSelection {
    strategy: Arc<Strategy>,
    /// Measured wall-time of the selection that produced this entry, in
    /// nanoseconds (0 when unknown, e.g. caller-provided strategies).
    selection_cost_ns: u64,
    factor: OnceLock<Arc<Cholesky>>,
    trace: OnceLock<f64>,
}

impl CachedSelection {
    /// Wraps a selected strategy (derived quantities are computed on first
    /// use).
    pub fn new(strategy: Arc<Strategy>) -> Self {
        Self::with_cost(strategy, 0)
    }

    /// Wraps a selected strategy together with the measured wall-time of the
    /// selection that produced it.
    pub fn with_cost(strategy: Arc<Strategy>, selection_cost_ns: u64) -> Self {
        CachedSelection {
            strategy,
            selection_cost_ns,
            factor: OnceLock::new(),
            trace: OnceLock::new(),
        }
    }

    /// Rebuilds an entry whose derived quantities were computed in an earlier
    /// run (e.g. loaded from a persistent strategy store): the Cholesky
    /// factor and Prop. 4 trace term are pre-seeded rather than recomputed,
    /// keeping answers bit-identical to the run that produced them.
    pub fn with_parts(
        strategy: Arc<Strategy>,
        selection_cost_ns: u64,
        factor: Arc<Cholesky>,
        trace: f64,
    ) -> Self {
        let entry = CachedSelection::with_cost(strategy, selection_cost_ns);
        // Freshly constructed above: the OnceLock cells are necessarily
        // empty, so these sets cannot fail.
        let _ = entry.factor.set(factor);
        let _ = entry.trace.set(trace);
        entry
    }

    /// The measured selection wall-time in nanoseconds (0 when unknown).
    pub fn selection_cost_ns(&self) -> u64 {
        self.selection_cost_ns
    }

    /// The selected strategy.
    pub fn strategy(&self) -> &Arc<Strategy> {
        &self.strategy
    }

    /// The Cholesky factor of the strategy gram (ridge-regularised when rank
    /// deficient), computed on first call and shared afterwards.
    pub fn factor(&self) -> crate::Result<Arc<Cholesky>> {
        if let Some(f) = self.factor.get() {
            return Ok(f.clone());
        }
        let computed = Arc::new(crate::error::strategy_factor(&self.strategy)?);
        Ok(self.factor.get_or_init(|| computed).clone())
    }

    /// The trace term `trace(WᵀW (AᵀA)⁻¹)` of the error formula, computed on
    /// first call and reused afterwards.
    ///
    /// The entry is keyed by the workload's gram fingerprint, so callers must
    /// pass the gram of *that* workload — the value is cached on the
    /// assumption that it never varies across calls, which holds for every
    /// engine path.
    pub fn trace_term(&self, workload_gram: &Matrix) -> crate::Result<f64> {
        if let Some(t) = self.trace.get() {
            return Ok(*t);
        }
        let factor = self.factor()?;
        let t = crate::error::trace_term_with_factor(workload_gram, &factor)?;
        Ok(*self.trace.get_or_init(|| t))
    }
}

/// Why a single-flight selection leader failed to publish an entry.
///
/// Waiters that observed a poisoned flight race to become the next leader;
/// the winning retry's [`Lookup::Miss`] guard carries the poison (see
/// [`SelectionGuard::recovered_poison`]) so callers can report *why* the
/// previous attempt died instead of retrying blind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlightPoison {
    /// The leader's selector returned an error (the message is the error's
    /// display form; the typed error was returned to the leader itself).
    Error(String),
    /// The leader was torn down without reporting an error — it panicked, or
    /// its guard was dropped without publishing.
    Abandoned,
}

impl std::fmt::Display for FlightPoison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlightPoison::Error(msg) => write!(f, "selection leader failed: {msg}"),
            FlightPoison::Abandoned => {
                write!(f, "selection leader panicked or abandoned the flight")
            }
        }
    }
}

/// One in-flight selection: waiters block on the condvar until the leader
/// publishes an entry (`Done`) or gives up (`Poisoned`, upon which waiters
/// wake with the poison and race to become the next leader).
#[derive(Debug)]
struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

#[derive(Debug)]
enum FlightState {
    Pending,
    Done(Arc<SelectionPlan>),
    Poisoned(FlightPoison),
}

impl Flight {
    fn new() -> Arc<Self> {
        Arc::new(Flight {
            state: Mutex::new(FlightState::Pending),
            cv: Condvar::new(),
        })
    }

    /// Blocks until the flight resolves; `Err` carries why the leader failed.
    ///
    /// Lock poisoning is *recovered* throughout this module
    /// (`unwrap_or_else(PoisonError::into_inner)`): flight state and shard
    /// maps are only ever written whole, so a panicking leader leaves no
    /// torn data — and the flight machinery itself converts that panic into
    /// [`FlightPoison::Abandoned`] for every waiter.  Panicking on the
    /// poison flag instead would take down every thread that ever touches
    /// the same shard.
    fn wait(&self) -> Result<Arc<SelectionPlan>, FlightPoison> {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            match &*state {
                FlightState::Pending => {
                    state = self.cv.wait(state).unwrap_or_else(PoisonError::into_inner)
                }
                FlightState::Done(entry) => return Ok(entry.clone()),
                FlightState::Poisoned(poison) => return Err(poison.clone()),
            }
        }
    }

    fn resolve(&self, outcome: Result<Arc<SelectionPlan>, FlightPoison>) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        *state = match outcome {
            Ok(entry) => FlightState::Done(entry),
            Err(poison) => FlightState::Poisoned(poison),
        };
        self.cv.notify_all();
    }
}

#[derive(Debug)]
struct CacheEntry {
    selection: Arc<SelectionPlan>,
    /// Recency stamp: the shard tick at the entry's last `get` or insert.
    last_used: u64,
}

#[derive(Debug, Default)]
struct ShardInner {
    map: HashMap<Fingerprint, CacheEntry>,
    in_flight: HashMap<Fingerprint, Arc<Flight>>,
    tick: u64,
}

impl ShardInner {
    fn touch(&mut self, fp: Fingerprint) -> Option<Arc<SelectionPlan>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&fp).map(|e| {
            e.last_used = tick;
            e.selection.clone()
        })
    }

    /// Inserts, evicting entries per the shard's policy to stay within
    /// `capacity`, and returns the entry now cached for the fingerprint: an
    /// earlier insert wins a race between two concurrent selections, keeping
    /// results stable.
    fn insert(
        &mut self,
        fp: Fingerprint,
        selection: Arc<SelectionPlan>,
        capacity: usize,
        policy: EvictionPolicy,
    ) -> Arc<SelectionPlan> {
        if let Some(existing) = self.map.get(&fp) {
            return existing.selection.clone();
        }
        while self.map.len() >= capacity {
            // Pick the victim by policy (shard capacities are small, so the
            // linear scan is cheaper than an intrusive list).
            let tick = self.tick;
            // Both scans impose a *total* order — stamp resp. score, with
            // the fingerprint as tie-break — so the chosen victim is a pure
            // function of the entries, not of HashMap iteration order.
            // (Regression: cost-aware scores can collide across different
            // (cost, age) pairs, and with ties left to hash order the
            // warm-restart eviction state diverged between processes.)
            let victim = match policy {
                // Least recently used.
                EvictionPolicy::Lru => self
                    .map
                    // mm-lint: allow(determinism-hygiene): full scan under a total order (stamp, then fingerprint) — result independent of hash iteration order
                    .iter()
                    .min_by_key(|(fp, e)| (e.last_used, fp.0))
                    .map(|(fp, _)| *fp),
                // Lowest recency×cost score: `cost / (age + 1)` decays with
                // the entry's idle time, so a cheap recent entry outranks a
                // cheap old one, while a genuinely expensive entry keeps a
                // high score long after its last use.
                EvictionPolicy::CostAware => self
                    .map
                    // mm-lint: allow(determinism-hygiene): full scan under a total order (score, then fingerprint) — result independent of hash iteration order
                    .iter()
                    .min_by(|(fp_a, a), (fp_b, b)| {
                        let score = |e: &CacheEntry| {
                            let age = tick.saturating_sub(e.last_used) as f64;
                            // +1 in f64: the cost may be the u64::MAX
                            // "unmeasurable" sentinel, which must not wrap.
                            (e.selection.selection_cost_ns() as f64 + 1.0) / (age + 1.0)
                        };
                        score(a)
                            .partial_cmp(&score(b))
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then_with(|| fp_a.0.cmp(&fp_b.0))
                    })
                    .map(|(fp, _)| *fp),
            };
            let Some(victim) = victim else {
                break;
            };
            self.map.remove(&victim);
        }
        self.tick += 1;
        self.map.insert(
            fp,
            CacheEntry {
                selection: selection.clone(),
                last_used: self.tick,
            },
        );
        selection
    }
}

#[derive(Debug, Default)]
struct Shard {
    /// Maximum entries this shard holds (shards share the total capacity;
    /// the first `capacity % shard_count` shards hold one extra entry).
    capacity: usize,
    inner: Mutex<ShardInner>,
}

/// Outcome of [`StrategyCache::begin`].
#[derive(Debug)]
pub enum Lookup<'c> {
    /// The fingerprint was resident; the entry's recency was refreshed.
    Hit(Arc<SelectionPlan>),
    /// Another thread was already selecting this fingerprint; the caller
    /// blocked and received the leader's entry without doing any work.
    Shared(Arc<SelectionPlan>),
    /// The caller is the selection leader: it must run the selector and
    /// [`SelectionGuard::publish`] the result (dropping the guard without
    /// publishing marks the flight failed and wakes any waiters).
    Miss(SelectionGuard<'c>),
}

/// Held by the single selection leader for a fingerprint; see [`Lookup`].
#[derive(Debug)]
pub struct SelectionGuard<'c> {
    cache: &'c StrategyCache,
    fp: Fingerprint,
    /// `None` when the cache is disabled (capacity 0): no flight to resolve,
    /// nothing to publish into.
    flight: Option<Arc<Flight>>,
    /// The poison of the flight this leader replaced, when the caller became
    /// leader only because an earlier leader failed.
    recovered_poison: Option<FlightPoison>,
}

impl SelectionGuard<'_> {
    /// Publishes a completed selection: inserts it into the cache and hands
    /// it to every waiter.  Returns the entry now cached for the fingerprint
    /// — if a concurrent `insert` won the race for this fingerprint, that
    /// earlier entry is what waiters receive and what is returned, keeping
    /// every caller on one strategy per fingerprint.
    pub fn publish(mut self, selection: Arc<SelectionPlan>) -> Arc<SelectionPlan> {
        let Some(flight) = self.flight.take() else {
            return selection; // caching disabled
        };
        let shard = self.cache.shard(self.fp);
        let winner = {
            let mut inner = shard.inner.lock().unwrap_or_else(PoisonError::into_inner);
            let winner = inner.insert(self.fp, selection, shard.capacity, self.cache.policy);
            inner.in_flight.remove(&self.fp);
            winner
        };
        flight.resolve(Ok(winner.clone()));
        winner
    }

    /// Fails the flight with a typed reason so waiters learn *why* selection
    /// died (dropping the guard instead reports [`FlightPoison::Abandoned`]).
    /// Errors are never cached; waiters race to become the next leader.
    pub fn fail(mut self, reason: String) {
        self.resolve_failed(FlightPoison::Error(reason));
    }

    /// The poison left by the failed leader this caller replaced, when the
    /// caller became leader via the waiter-retry path rather than on a plain
    /// miss.
    pub fn recovered_poison(&self) -> Option<&FlightPoison> {
        self.recovered_poison.as_ref()
    }

    fn resolve_failed(&mut self, poison: FlightPoison) {
        if let Some(flight) = self.flight.take() {
            let shard = self.cache.shard(self.fp);
            shard
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .in_flight
                .remove(&self.fp);
            flight.resolve(Err(poison));
        }
    }
}

impl Drop for SelectionGuard<'_> {
    fn drop(&mut self) {
        // Leader gave up without calling `fail` (selector panic, or an error
        // path that predates typed poisoning): poison the flight so waiters
        // wake and retry instead of deadlocking; errors are never cached.
        self.resolve_failed(FlightPoison::Abandoned);
    }
}

/// A bounded, sharded map from workload fingerprints to selected
/// [`SelectionPlan`]s with single-flight selection and a pluggable eviction
/// policy (see the module docs).
#[derive(Debug)]
pub struct StrategyCache {
    capacity: usize,
    policy: EvictionPolicy,
    shards: Box<[Shard]>,
    shard_mask: usize,
}

impl StrategyCache {
    /// Creates a cache holding up to `capacity` strategies total (0 disables
    /// caching) over [`DEFAULT_SHARD_COUNT`] shards with LRU eviction.
    pub fn new(capacity: usize) -> Self {
        StrategyCache::with_shards(capacity, DEFAULT_SHARD_COUNT)
    }

    /// Creates a cache with an explicit shard count and LRU eviction; see
    /// [`StrategyCache::with_shards_and_policy`].
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        StrategyCache::with_shards_and_policy(capacity, shards, EvictionPolicy::Lru)
    }

    /// Creates a cache with an explicit shard count (rounded up to a power
    /// of two, then halved until it does not exceed the capacity, so every
    /// shard holds at least one entry) and eviction policy.  The capacity is
    /// split across shards with the remainder spread one-per-shard, so the
    /// shard capacities sum to exactly the configured total.
    pub fn with_shards_and_policy(capacity: usize, shards: usize, policy: EvictionPolicy) -> Self {
        let mut count = shards.max(1).next_power_of_two();
        while count > 1 && count > capacity {
            count /= 2;
        }
        let (base, remainder) = (capacity / count, capacity % count);
        StrategyCache {
            capacity,
            policy,
            shards: (0..count)
                .map(|i| Shard {
                    capacity: base + usize::from(i < remainder),
                    inner: Mutex::default(),
                })
                .collect(),
            shard_mask: count - 1,
        }
    }

    /// The configured total capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The configured eviction policy.
    pub fn eviction_policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// The number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, fp: Fingerprint) -> &Shard {
        // Fingerprints are avalanched, so the low bits are uniform.
        // mm-lint: allow(serve-panic-freedom): shard_mask = len - 1 with len a power of two, so the masked index is in bounds by construction
        &self.shards[(fp.0 as usize) & self.shard_mask]
    }

    /// Looks up a fingerprint, joining or founding an in-flight selection on
    /// a miss.  May block while another thread selects the same fingerprint.
    pub fn begin(&self, fp: Fingerprint) -> Lookup<'_> {
        if self.capacity == 0 {
            return Lookup::Miss(SelectionGuard {
                cache: self,
                fp,
                flight: None,
                recovered_poison: None,
            });
        }
        let shard = self.shard(fp);
        let mut recovered_poison = None;
        loop {
            let flight = {
                let mut inner = shard.inner.lock().unwrap_or_else(PoisonError::into_inner);
                if let Some(selection) = inner.touch(fp) {
                    return Lookup::Hit(selection);
                }
                match inner.in_flight.get(&fp) {
                    Some(flight) => flight.clone(),
                    None => {
                        let flight = Flight::new();
                        inner.in_flight.insert(fp, flight.clone());
                        return Lookup::Miss(SelectionGuard {
                            cache: self,
                            fp,
                            flight: Some(flight),
                            recovered_poison,
                        });
                    }
                }
            };
            // Another thread is selecting: wait off-lock.  A poisoned flight
            // loops back so this caller can (race to) become the new leader,
            // carrying the poison into its guard so the retry can report it.
            match flight.wait() {
                Ok(selection) => return Lookup::Shared(selection),
                Err(poison) => recovered_poison = Some(poison),
            }
        }
    }

    /// Looks up the selection cached for a fingerprint, refreshing its
    /// recency (no single-flight; see [`StrategyCache::begin`]).
    pub fn get(&self, fp: Fingerprint) -> Option<Arc<SelectionPlan>> {
        if self.capacity == 0 {
            return None;
        }
        self.shard(fp)
            .inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .touch(fp)
    }

    /// Inserts a selection, evicting the shard's least-recently-used entry
    /// when full.  Returns the selection now cached for the fingerprint (an
    /// earlier entry wins a race between two concurrent selections, keeping
    /// results stable).
    pub fn insert(&self, fp: Fingerprint, selection: Arc<SelectionPlan>) -> Arc<SelectionPlan> {
        if self.capacity == 0 {
            return selection;
        }
        let shard = self.shard(fp);
        let mut inner = shard.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.insert(fp, selection, shard.capacity, self.policy)
    }

    /// Number of cached strategies (across all shards).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.inner
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .map
                    .len()
            })
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached strategy (in-flight selections are unaffected and
    /// will publish into the emptied cache).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            shard
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .map
                .clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_strategies::identity::identity_strategy;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn fp(v: u64) -> Fingerprint {
        Fingerprint(v)
    }

    fn dense_entry(n: usize) -> Arc<CachedSelection> {
        Arc::new(CachedSelection::new(Arc::new(identity_strategy(n))))
    }

    fn entry(n: usize) -> Arc<SelectionPlan> {
        Arc::new(SelectionPlan::Dense(dense_entry(n)))
    }

    /// A one-shard cache so eviction order is deterministic.
    fn single_shard(capacity: usize) -> StrategyCache {
        StrategyCache::with_shards(capacity, 1)
    }

    #[test]
    fn insert_get_roundtrip() {
        let cache = StrategyCache::new(4);
        assert!(cache.get(fp(1)).is_none());
        let s = entry(4);
        cache.insert(fp(1), s.clone());
        let got = cache.get(fp(1)).unwrap();
        assert!(Arc::ptr_eq(&got, &s));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_eviction_evicts_the_coldest() {
        let cache = single_shard(2);
        cache.insert(fp(1), entry(4));
        cache.insert(fp(2), entry(4));
        // Touch 1 so 2 is now the least recently used.
        assert!(cache.get(fp(1)).is_some());
        cache.insert(fp(3), entry(4));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(fp(1)).is_some(), "recently used entry survives");
        assert!(cache.get(fp(2)).is_none(), "LRU entry evicted");
        assert!(cache.get(fp(3)).is_some());
    }

    #[test]
    fn hot_entry_survives_churning_cold_stream() {
        // The regression FIFO failed: a hot workload served between cold
        // insertions stays resident under LRU, while FIFO (insertion order)
        // would have evicted it once `capacity` cold entries passed through.
        let cache = single_shard(4);
        let hot = entry(4);
        cache.insert(fp(0), hot.clone());
        for cold in 1..=100u64 {
            assert!(
                cache.get(fp(0)).is_some(),
                "hot entry evicted after {cold} cold insertions"
            );
            cache.insert(fp(cold), entry(4));
        }
        assert!(Arc::ptr_eq(&cache.get(fp(0)).unwrap(), &hot));
    }

    fn costed(n: usize, cost_ns: u64) -> Arc<SelectionPlan> {
        Arc::new(SelectionPlan::Dense(Arc::new(CachedSelection::with_cost(
            Arc::new(identity_strategy(n)),
            cost_ns,
        ))))
    }

    #[test]
    fn cost_aware_eviction_protects_expensive_entries() {
        // An entry that took 50 ms to select must survive a churning stream
        // of microsecond-cheap selections that overflows the shard many
        // times over, even though it is never touched again — exactly the
        // scenario recency-only LRU gets wrong.
        let cache = StrategyCache::with_shards_and_policy(4, 1, EvictionPolicy::CostAware);
        assert_eq!(cache.eviction_policy(), EvictionPolicy::CostAware);
        let expensive = costed(4, 50_000_000);
        cache.insert(fp(0), expensive.clone());
        for cold in 1..=100u64 {
            cache.insert(fp(cold), costed(4, 5_000));
            assert!(
                cache.len() <= cache.capacity(),
                "capacity respected under cost-aware eviction"
            );
        }
        let got = cache.get(fp(0)).expect("expensive entry survived churn");
        assert!(Arc::ptr_eq(&got, &expensive));

        // Under plain LRU the same stream evicts the expensive entry.
        let lru = single_shard(4);
        lru.insert(fp(0), costed(4, 50_000_000));
        for cold in 1..=100u64 {
            lru.insert(fp(cold), costed(4, 5_000));
        }
        assert!(lru.get(fp(0)).is_none(), "LRU evicts by recency alone");
    }

    #[test]
    fn cost_aware_eviction_still_churns_cheap_entries_by_recency() {
        // Among equal costs the policy degrades to recency: the untouched
        // cheap entry goes first, the refreshed one stays.
        let cache = StrategyCache::with_shards_and_policy(2, 1, EvictionPolicy::CostAware);
        cache.insert(fp(1), costed(4, 1_000));
        cache.insert(fp(2), costed(4, 1_000));
        assert!(cache.get(fp(2)).is_some()); // refresh 2; 1 is now older
        cache.insert(fp(3), costed(4, 1_000));
        assert!(cache.get(fp(1)).is_none(), "older equal-cost entry evicted");
        assert!(cache.get(fp(2)).is_some());
        assert!(cache.get(fp(3)).is_some());
    }

    #[test]
    fn selection_cost_defaults_to_zero() {
        let e = entry(4);
        assert_eq!(e.selection_cost_ns(), 0);
        assert_eq!(costed(4, 7).selection_cost_ns(), 7);
    }

    #[test]
    fn first_insert_wins_races() {
        let cache = StrategyCache::new(2);
        let a = entry(4);
        let b = entry(4);
        let kept = cache.insert(fp(9), a.clone());
        assert!(Arc::ptr_eq(&kept, &a));
        let kept = cache.insert(fp(9), b);
        assert!(Arc::ptr_eq(&kept, &a), "earlier entry is kept");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = StrategyCache::new(0);
        cache.insert(fp(5), entry(4));
        assert!(cache.get(fp(5)).is_none());
        assert!(cache.is_empty());
        // begin() always hands out a leader guard; publish is a no-op.
        let Lookup::Miss(guard) = cache.begin(fp(5)) else {
            panic!("disabled cache must miss");
        };
        guard.publish(entry(4));
        assert!(cache.is_empty());
    }

    #[test]
    fn clear_empties() {
        let cache = StrategyCache::new(4);
        cache.insert(fp(1), entry(4));
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn shard_split_covers_capacity() {
        let cache = StrategyCache::new(32);
        assert_eq!(cache.shard_count(), DEFAULT_SHARD_COUNT);
        // Every fingerprint is insertable regardless of which shard it maps
        // to (per-shard capacity is total/shards).
        for v in 0..32u64 {
            cache.insert(fp(v), entry(2));
        }
        assert!(cache.len() >= 32 / DEFAULT_SHARD_COUNT);
        // Shard counts round up to powers of two and never exceed capacity.
        assert_eq!(StrategyCache::with_shards(4, 64).shard_count(), 4);
        assert_eq!(StrategyCache::with_shards(8, 3).shard_count(), 4);
    }

    #[test]
    fn total_capacity_is_never_exceeded() {
        // Regression: a non-power-of-two capacity below the default shard
        // count used to keep 8 one-entry shards, holding up to 8 entries
        // while capacity() reported 5.
        for capacity in [1usize, 2, 3, 5, 7, 12, 33] {
            let cache = StrategyCache::new(capacity);
            assert!(cache.shard_count() <= capacity);
            // The per-shard bounds sum to exactly the configured total (the
            // remainder is spread one-per-shard, not floored away).
            let shard_total: usize = cache.shards.iter().map(|s| s.capacity).sum();
            assert_eq!(shard_total, capacity);
            for v in 0..200u64 {
                cache.insert(fp(v), entry(2));
                assert!(
                    cache.len() <= capacity,
                    "len {} > capacity {capacity} after {v} inserts",
                    cache.len()
                );
            }
        }
    }

    #[test]
    fn publish_defers_to_an_insert_that_won_the_race() {
        // A direct `insert` racing ahead of a leader's `publish` must win for
        // every observer: the flight's waiters, the leader's return value,
        // and later lookups all see the earlier entry.
        let cache = StrategyCache::new(4);
        let Lookup::Miss(guard) = cache.begin(fp(7)) else {
            panic!("empty cache must miss");
        };
        let raced = cache.insert(fp(7), entry(4));
        let published = guard.publish(entry(4));
        assert!(Arc::ptr_eq(&published, &raced), "earlier insert wins");
        match cache.begin(fp(7)) {
            Lookup::Hit(got) => assert!(Arc::ptr_eq(&got, &raced)),
            other => panic!("expected hit, got {other:?}"),
        };
    }

    #[test]
    fn begin_hit_and_miss_paths() {
        let cache = StrategyCache::new(4);
        let Lookup::Miss(guard) = cache.begin(fp(7)) else {
            panic!("empty cache must miss");
        };
        let published = guard.publish(entry(4));
        match cache.begin(fp(7)) {
            Lookup::Hit(got) => assert!(Arc::ptr_eq(&got, &published)),
            other => panic!("expected hit, got {other:?}"),
        };
    }

    #[test]
    fn dropped_guard_fails_the_flight_and_allows_retry() {
        let cache = StrategyCache::new(4);
        {
            let Lookup::Miss(_guard) = cache.begin(fp(3)) else {
                panic!("must miss");
            };
            // _guard dropped without publishing (selector error).
        }
        // The flight is gone; the next caller becomes a fresh leader rather
        // than deadlocking on the failed flight.
        let Lookup::Miss(guard) = cache.begin(fp(3)) else {
            panic!("failed flight must not leave a stale entry");
        };
        guard.publish(entry(4));
        assert!(matches!(cache.begin(fp(3)), Lookup::Hit(_)));
    }

    #[test]
    fn single_flight_runs_one_selection_across_threads() {
        let cache = Arc::new(StrategyCache::new(8));
        let selections = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let cache = cache.clone();
                let selections = selections.clone();
                std::thread::spawn(move || match cache.begin(fp(42)) {
                    Lookup::Hit(e) | Lookup::Shared(e) => e,
                    Lookup::Miss(guard) => {
                        selections.fetch_add(1, Ordering::SeqCst);
                        // Give the other threads time to pile onto the flight.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        guard.publish(entry(4))
                    }
                })
            })
            .collect();
        let entries: Vec<_> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        assert_eq!(
            selections.load(Ordering::SeqCst),
            1,
            "exactly one leader selected"
        );
        for e in &entries[1..] {
            assert!(
                Arc::ptr_eq(e, &entries[0]),
                "all threads share the one published entry"
            );
        }
    }

    #[test]
    fn failed_flight_reports_typed_poison_to_waiters() {
        // A leader that fails with a reason hands that reason to the retry
        // leader via `recovered_poison`; an abandoned (dropped) guard reports
        // `Abandoned` instead.
        let cache = Arc::new(StrategyCache::new(4));
        for (fail_with_reason, expected) in [
            (true, FlightPoison::Error("selector exploded".to_string())),
            (false, FlightPoison::Abandoned),
        ] {
            let Lookup::Miss(leader) = cache.begin(fp(11)) else {
                panic!("must miss");
            };
            assert!(leader.recovered_poison().is_none(), "plain miss: no poison");
            let waiter = {
                let cache = cache.clone();
                std::thread::spawn(move || match cache.begin(fp(11)) {
                    Lookup::Miss(retry) => {
                        let poison = retry.recovered_poison().cloned();
                        retry.publish(entry(4));
                        poison
                    }
                    other => panic!("waiter must become the new leader, got {other:?}"),
                })
            };
            // Give the waiter time to pile onto the flight, then fail it.
            std::thread::sleep(std::time::Duration::from_millis(30));
            if fail_with_reason {
                leader.fail("selector exploded".to_string());
            } else {
                drop(leader);
            }
            let recovered = waiter.join().unwrap();
            assert_eq!(recovered, Some(expected.clone()));
            assert!(expected.to_string().contains(match expected {
                FlightPoison::Error(_) => "failed",
                FlightPoison::Abandoned => "abandoned",
            }));
            // The retry leader published successfully and the entry is good.
            assert!(matches!(cache.begin(fp(11)), Lookup::Hit(_)));
            cache.clear();
        }
    }

    #[test]
    fn with_parts_preseeds_derived_quantities() {
        let fresh = dense_entry(5);
        let factor = fresh.factor().unwrap();
        let gram = mm_linalg::Matrix::identity(5);
        let trace = fresh.trace_term(&gram).unwrap();
        let rebuilt =
            CachedSelection::with_parts(fresh.strategy().clone(), 123, factor.clone(), trace);
        assert_eq!(rebuilt.selection_cost_ns(), 123);
        // Pre-seeded: the very same factor Arc comes back, no recompute.
        assert!(Arc::ptr_eq(&rebuilt.factor().unwrap(), &factor));
        assert_eq!(
            rebuilt.trace_term(&gram).unwrap().to_bits(),
            trace.to_bits()
        );
    }

    #[test]
    fn factor_is_computed_once_and_shared() {
        let e = dense_entry(6);
        let f1 = e.factor().unwrap();
        let f2 = e.factor().unwrap();
        assert!(Arc::ptr_eq(&f1, &f2));
        assert_eq!(f1.dim(), 6);
        // Solving through the cached factor matches the direct solve.
        let rhs = vec![1.0; 6];
        let x = f1.solve_vec(&rhs).unwrap();
        for (a, b) in x.iter().zip(rhs.iter()) {
            assert!((a - b).abs() < 1e-12, "identity gram solves to rhs");
        }
    }
}
