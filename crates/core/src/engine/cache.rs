//! The engine's internal strategy cache.
//!
//! Strategy selection is data independent, so a selected strategy is valid
//! for every database and every privacy level (the strategy scales out of the
//! error expression; only the noise calibration changes).  The cache maps a
//! workload [`Fingerprint`] (gram-matrix hash) to the selected strategy,
//! letting repeated `answer` calls on the same workload skip selection — by
//! far the dominant cost — entirely.
//!
//! Eviction is FIFO over distinct workloads by insertion order — lookups do
//! not refresh an entry's position, so a frequently served workload is
//! evicted as readily as a cold one once capacity is exceeded (recency-aware
//! eviction is a ROADMAP item).  Size the capacity to the working set.  The
//! cache is internally synchronised so an [`Engine`](crate::engine::Engine)
//! can be shared across threads behind an `Arc`.

use mm_linalg::decomp::Cholesky;
use mm_linalg::Matrix;
use mm_strategies::Strategy;
use mm_workload::Fingerprint;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, OnceLock};

/// A cached selection: the strategy plus two lazily computed, data- and
/// privacy-independent derived quantities — the Cholesky factor of the
/// strategy gram (used by least-squares inference) and the Prop. 4 trace term
/// `trace(WᵀW (AᵀA)⁻¹)` against the workload the entry was selected for.
/// Both are O(n³); caching them makes a cache-hit `answer` skip *all*
/// repeated cubic work and pay only the O(n²) mechanism run.
#[derive(Debug)]
pub struct CachedSelection {
    strategy: Arc<Strategy>,
    factor: OnceLock<Arc<Cholesky>>,
    trace: OnceLock<f64>,
}

impl CachedSelection {
    /// Wraps a selected strategy (derived quantities are computed on first
    /// use).
    pub fn new(strategy: Arc<Strategy>) -> Self {
        CachedSelection {
            strategy,
            factor: OnceLock::new(),
            trace: OnceLock::new(),
        }
    }

    /// The selected strategy.
    pub fn strategy(&self) -> &Arc<Strategy> {
        &self.strategy
    }

    /// The Cholesky factor of the strategy gram (ridge-regularised when rank
    /// deficient), computed on first call and shared afterwards.
    pub fn factor(&self) -> crate::Result<Arc<Cholesky>> {
        if let Some(f) = self.factor.get() {
            return Ok(f.clone());
        }
        let computed = Arc::new(crate::error::strategy_factor(&self.strategy)?);
        Ok(self.factor.get_or_init(|| computed).clone())
    }

    /// The trace term `trace(WᵀW (AᵀA)⁻¹)` of the error formula, computed on
    /// first call and reused afterwards.
    ///
    /// The entry is keyed by the workload's gram fingerprint, so callers must
    /// pass the gram of *that* workload — the value is cached on the
    /// assumption that it never varies across calls, which holds for every
    /// engine path.
    pub fn trace_term(&self, workload_gram: &Matrix) -> crate::Result<f64> {
        if let Some(t) = self.trace.get() {
            return Ok(*t);
        }
        let factor = self.factor()?;
        let t = crate::error::trace_term_with_factor(workload_gram, &factor)?;
        Ok(*self.trace.get_or_init(|| t))
    }
}

/// A bounded FIFO map from workload fingerprints to selected strategies.
#[derive(Debug)]
pub struct StrategyCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<Fingerprint, Arc<CachedSelection>>,
    order: VecDeque<Fingerprint>,
}

impl StrategyCache {
    /// Creates a cache holding up to `capacity` strategies (0 disables
    /// caching).
    pub fn new(capacity: usize) -> Self {
        StrategyCache {
            capacity,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up the selection cached for a fingerprint.
    pub fn get(&self, fp: Fingerprint) -> Option<Arc<CachedSelection>> {
        self.inner.lock().expect("cache lock").map.get(&fp).cloned()
    }

    /// Inserts a selection, evicting the oldest entry when full.  Returns the
    /// selection that is now cached for the fingerprint (an earlier entry wins
    /// a race between two concurrent selections, keeping results stable).
    pub fn insert(&self, fp: Fingerprint, selection: Arc<CachedSelection>) -> Arc<CachedSelection> {
        if self.capacity == 0 {
            return selection;
        }
        let mut inner = self.inner.lock().expect("cache lock");
        if let Some(existing) = inner.map.get(&fp) {
            return existing.clone();
        }
        while inner.order.len() >= self.capacity {
            if let Some(old) = inner.order.pop_front() {
                inner.map.remove(&old);
            }
        }
        inner.map.insert(fp, selection.clone());
        inner.order.push_back(fp);
        selection
    }

    /// Number of cached strategies.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached strategy.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("cache lock");
        inner.map.clear();
        inner.order.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_strategies::identity::identity_strategy;

    fn fp(v: u64) -> Fingerprint {
        Fingerprint(v)
    }

    fn entry(n: usize) -> Arc<CachedSelection> {
        Arc::new(CachedSelection::new(Arc::new(identity_strategy(n))))
    }

    #[test]
    fn insert_get_roundtrip() {
        let cache = StrategyCache::new(4);
        assert!(cache.get(fp(1)).is_none());
        let s = entry(4);
        cache.insert(fp(1), s.clone());
        let got = cache.get(fp(1)).unwrap();
        assert!(Arc::ptr_eq(&got, &s));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn fifo_eviction() {
        let cache = StrategyCache::new(2);
        for v in 1..=3 {
            cache.insert(fp(v), entry(4));
        }
        assert_eq!(cache.len(), 2);
        assert!(cache.get(fp(1)).is_none(), "oldest entry evicted");
        assert!(cache.get(fp(2)).is_some());
        assert!(cache.get(fp(3)).is_some());
    }

    #[test]
    fn first_insert_wins_races() {
        let cache = StrategyCache::new(2);
        let a = entry(4);
        let b = entry(4);
        let kept = cache.insert(fp(9), a.clone());
        assert!(Arc::ptr_eq(&kept, &a));
        let kept = cache.insert(fp(9), b);
        assert!(Arc::ptr_eq(&kept, &a), "earlier entry is kept");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = StrategyCache::new(0);
        cache.insert(fp(5), entry(4));
        assert!(cache.get(fp(5)).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn clear_empties() {
        let cache = StrategyCache::new(4);
        cache.insert(fp(1), entry(4));
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn factor_is_computed_once_and_shared() {
        let e = entry(6);
        let f1 = e.factor().unwrap();
        let f2 = e.factor().unwrap();
        assert!(Arc::ptr_eq(&f1, &f2));
        assert_eq!(f1.dim(), 6);
        // Solving through the cached factor matches the direct solve.
        let rhs = vec![1.0; 6];
        let x = f1.solve_vec(&rhs).unwrap();
        for (a, b) in x.iter().zip(rhs.iter()) {
            assert!((a - b).abs() < 1e-12, "identity gram solves to rhs");
        }
    }
}
