//! Pluggable strategy selection.
//!
//! A [`StrategySelector`] turns a workload (presented as a
//! [`SelectionContext`]) into a [`Strategy`].  The paper's Eigen-Design
//! algorithm is one implementation; the Fig. 5 alternatives (Program 1 over
//! the wavelet, Fourier or identity design sets, or over the workload's own
//! rows) and the Sec. 3.5 pure-DP L1 weighting are others.  Because the
//! [`Engine`](crate::engine::Engine) holds its selector as a trait object,
//! reproducing the Fig. 5 comparison is a one-line selector swap.
//!
//! Selection is data independent (Sec. 1): selectors see only the workload's
//! gram matrix (and, for [`DesignBasis::WorkloadRows`], its explicit query
//! matrix) — never the data vector — so selected strategies can be cached and
//! reused across databases.

use crate::design_set::{weighted_design_strategy, DesignWeightingOptions};
use crate::eigen_design::{eigen_design, EigenDesignOptions};
use crate::pure_dp::{l1_weighted_design_strategy, PureDpOptions};
use crate::MechanismError;
use mm_linalg::Matrix;
use mm_strategies::fourier::attribute_basis;
use mm_strategies::wavelet::haar_matrix;
use mm_strategies::Strategy;
use mm_workload::Workload;

/// Everything a selector may inspect: the workload's gram matrix, plus the
/// explicit query matrix when the selector asked for it and the workload can
/// materialise one.
#[derive(Debug, Clone)]
pub struct SelectionContext {
    gram: Matrix,
    workload_rows: Option<Matrix>,
}

impl SelectionContext {
    /// Context from a bare gram matrix (no explicit workload rows available).
    pub fn from_gram(gram: Matrix) -> Self {
        SelectionContext {
            gram,
            workload_rows: None,
        }
    }

    /// Context from a precomputed gram matrix plus optional workload rows.
    pub fn from_gram_and_rows(gram: Matrix, workload_rows: Option<Matrix>) -> Self {
        SelectionContext {
            gram,
            workload_rows,
        }
    }

    /// Context from a workload; materialises the explicit query matrix only
    /// when `want_rows` is set (it can be large).
    pub fn from_workload<W: Workload + ?Sized>(workload: &W, want_rows: bool) -> Self {
        SelectionContext {
            gram: workload.gram(),
            workload_rows: if want_rows {
                workload.to_matrix()
            } else {
                None
            },
        }
    }

    /// The workload gram matrix `WᵀW`.
    pub fn gram(&self) -> &Matrix {
        &self.gram
    }

    /// The explicit workload matrix, when requested and available.
    pub fn workload_rows(&self) -> Option<&Matrix> {
        self.workload_rows.as_ref()
    }

    /// Number of cells the workload covers.
    pub fn dim(&self) -> usize {
        self.gram.rows()
    }
}

/// A strategy-selection algorithm.  Object safe; engines hold
/// `Arc<dyn StrategySelector>`.
pub trait StrategySelector: std::fmt::Debug + Send + Sync {
    /// Selector name for reports, errors and comparison tables.
    fn name(&self) -> String;

    /// Whether [`StrategySelector::select`] needs the explicit workload
    /// matrix in its context (only [`DesignBasis::WorkloadRows`] does).
    fn needs_workload_matrix(&self) -> bool {
        false
    }

    /// Selects a strategy for the workload described by `ctx`.
    fn select(&self, ctx: &SelectionContext) -> crate::Result<Strategy>;
}

/// The paper's Eigen-Design algorithm (Program 2): eigenvectors of `WᵀW` as
/// the design set, eigenvalues as the costs.
#[derive(Debug, Clone, Default)]
pub struct EigenDesignSelector {
    /// Options forwarded to [`eigen_design`].
    pub options: EigenDesignOptions,
}

impl EigenDesignSelector {
    /// Selector with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selector with the cheaper "fast" solver settings.
    pub fn fast() -> Self {
        EigenDesignSelector {
            options: EigenDesignOptions::fast(),
        }
    }
}

impl StrategySelector for EigenDesignSelector {
    fn name(&self) -> String {
        "eigen-design".into()
    }

    fn select(&self, ctx: &SelectionContext) -> crate::Result<Strategy> {
        Ok(eigen_design(ctx.gram(), &self.options)?.strategy)
    }
}

/// A fixed design set for Program 1 (the Fig. 5 alternatives).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DesignBasis {
    /// Single-cell queries (the identity matrix): weighting recovers per-cell
    /// noise tuned to the workload's column masses.
    Identity,
    /// The Haar wavelet matrix (requires a power-of-two domain).
    Haar,
    /// The orthonormal DCT-II ("generalised Fourier") basis.
    Fourier,
    /// The workload's own rows (requires an explicit, full-row-rank workload
    /// matrix).
    WorkloadRows,
}

impl DesignBasis {
    fn label(&self) -> &'static str {
        match self {
            DesignBasis::Identity => "identity",
            DesignBasis::Haar => "wavelet",
            DesignBasis::Fourier => "fourier",
            DesignBasis::WorkloadRows => "workload-rows",
        }
    }

    /// Materialises the design matrix for an `n`-cell domain.
    fn matrix(&self, ctx: &SelectionContext) -> crate::Result<Matrix> {
        let n = ctx.dim();
        match self {
            DesignBasis::Identity => Ok(Matrix::identity(n)),
            DesignBasis::Haar => {
                if !n.is_power_of_two() {
                    return Err(MechanismError::InvalidArgument(format!(
                        "the Haar design set requires a power-of-two domain, got {n} cells"
                    )));
                }
                Ok(haar_matrix(n))
            }
            DesignBasis::Fourier => Ok(attribute_basis(n)),
            DesignBasis::WorkloadRows => ctx.workload_rows().cloned().ok_or_else(|| {
                MechanismError::StrategyNotMaterialized(
                    "workload-rows design set needs an explicit workload matrix".into(),
                )
            }),
        }
    }
}

/// Program 1 over a fixed design set under the (ε,δ) L2 objective.
#[derive(Debug, Clone)]
pub struct DesignSetSelector {
    /// Which design set to weight.
    pub basis: DesignBasis,
    /// Options for the weighting program.
    pub options: DesignWeightingOptions,
}

impl DesignSetSelector {
    /// Selector over the given basis with default weighting options.
    pub fn new(basis: DesignBasis) -> Self {
        DesignSetSelector {
            basis,
            options: DesignWeightingOptions::default(),
        }
    }

    /// The weighted Haar wavelet design set.
    pub fn wavelet() -> Self {
        Self::new(DesignBasis::Haar)
    }

    /// The weighted generalised-Fourier design set.
    pub fn fourier() -> Self {
        Self::new(DesignBasis::Fourier)
    }

    /// The weighted identity design set.
    pub fn identity() -> Self {
        Self::new(DesignBasis::Identity)
    }

    /// The workload's own rows as the design set.
    pub fn workload_rows() -> Self {
        Self::new(DesignBasis::WorkloadRows)
    }
}

impl StrategySelector for DesignSetSelector {
    fn name(&self) -> String {
        format!("design-set ({})", self.basis.label())
    }

    fn needs_workload_matrix(&self) -> bool {
        self.basis == DesignBasis::WorkloadRows
    }

    fn select(&self, ctx: &SelectionContext) -> crate::Result<Strategy> {
        let design = self.basis.matrix(ctx)?;
        let result = weighted_design_strategy(self.name(), ctx.gram(), &design, &self.options)?;
        Ok(result.strategy)
    }
}

/// Program 1 over an arbitrary caller-provided design matrix (e.g. a
/// Kronecker-product wavelet for a multi-attribute domain, or the retained
/// rows of a Fourier strategy).  The general form behind the Fig. 5
/// comparison when the built-in [`DesignBasis`] choices do not fit.
#[derive(Debug, Clone)]
pub struct MatrixDesignSelector {
    label: String,
    design: Matrix,
    /// Options for the weighting program.
    pub options: DesignWeightingOptions,
}

impl MatrixDesignSelector {
    /// Selector weighting the given design matrix (rows = design queries).
    pub fn new(label: impl Into<String>, design: Matrix) -> Self {
        MatrixDesignSelector {
            label: label.into(),
            design,
            options: DesignWeightingOptions::default(),
        }
    }
}

impl StrategySelector for MatrixDesignSelector {
    fn name(&self) -> String {
        format!("design-set ({})", self.label)
    }

    fn select(&self, ctx: &SelectionContext) -> crate::Result<Strategy> {
        if self.design.cols() != ctx.dim() {
            return Err(MechanismError::InvalidArgument(format!(
                "design matrix covers {} cells but the workload covers {}",
                self.design.cols(),
                ctx.dim()
            )));
        }
        let result =
            weighted_design_strategy(self.name(), ctx.gram(), &self.design, &self.options)?;
        Ok(result.strategy)
    }
}

/// Sec. 3.5: L1 (pure ε-DP) weighting of a fixed design set, for use with the
/// Laplace backend.
#[derive(Debug, Clone)]
pub struct PureDpSelector {
    /// Which design set to weight.
    pub basis: DesignBasis,
    /// Options for the L1 weighting solver.
    pub options: PureDpOptions,
}

impl PureDpSelector {
    /// Selector over the given basis with default solver options.
    pub fn new(basis: DesignBasis) -> Self {
        PureDpSelector {
            basis,
            options: PureDpOptions::default(),
        }
    }

    /// The L1-weighted Haar wavelet design set (the paper's range-query
    /// recommendation under pure DP).
    pub fn wavelet() -> Self {
        Self::new(DesignBasis::Haar)
    }

    /// The L1-weighted generalised-Fourier design set.
    pub fn fourier() -> Self {
        Self::new(DesignBasis::Fourier)
    }
}

impl StrategySelector for PureDpSelector {
    fn name(&self) -> String {
        format!("pure-dp l1 ({})", self.basis.label())
    }

    fn needs_workload_matrix(&self) -> bool {
        self.basis == DesignBasis::WorkloadRows
    }

    fn select(&self, ctx: &SelectionContext) -> crate::Result<Strategy> {
        let design = self.basis.matrix(ctx)?;
        let result = l1_weighted_design_strategy(self.name(), ctx.gram(), &design, &self.options)?;
        Ok(result.strategy)
    }
}

/// A selector that always returns a fixed, caller-provided strategy
/// (hierarchical, plain wavelet, identity, …).  Used to run prior-work
/// baselines through the same engine plumbing as the adaptive selectors.
#[derive(Debug, Clone)]
pub struct FixedStrategySelector {
    strategy: Strategy,
}

impl FixedStrategySelector {
    /// Wraps a precomputed strategy.
    pub fn new(strategy: Strategy) -> Self {
        FixedStrategySelector { strategy }
    }
}

impl StrategySelector for FixedStrategySelector {
    fn name(&self) -> String {
        format!("fixed ({})", self.strategy.name())
    }

    fn select(&self, ctx: &SelectionContext) -> crate::Result<Strategy> {
        if self.strategy.dim() != ctx.dim() {
            return Err(MechanismError::InvalidArgument(format!(
                "fixed strategy covers {} cells but the workload covers {}",
                self.strategy.dim(),
                ctx.dim()
            )));
        }
        Ok(self.strategy.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::rms_workload_error;
    use crate::privacy::PrivacyParams;
    use mm_strategies::hierarchical::binary_hierarchical_1d;
    use mm_workload::prefix::PrefixWorkload;
    use mm_workload::range::AllRangeWorkload;
    use mm_workload::{Domain, Workload};

    #[test]
    fn eigen_selector_matches_direct_call() {
        let w = AllRangeWorkload::new(Domain::one_dim(16));
        let ctx = SelectionContext::from_workload(&w, false);
        let sel = EigenDesignSelector::new();
        let s = sel.select(&ctx).unwrap();
        let direct = eigen_design(&w.gram(), &EigenDesignOptions::default())
            .unwrap()
            .strategy;
        let p = PrivacyParams::paper_default();
        let e1 = rms_workload_error(&w.gram(), w.query_count(), &s, &p).unwrap();
        let e2 = rms_workload_error(&w.gram(), w.query_count(), &direct, &p).unwrap();
        assert!((e1 - e2).abs() / e2 < 1e-9);
    }

    #[test]
    fn design_set_selectors_produce_usable_strategies() {
        let w = AllRangeWorkload::new(Domain::one_dim(16));
        let ctx = SelectionContext::from_workload(&w, false);
        let p = PrivacyParams::paper_default();
        for sel in [
            DesignSetSelector::wavelet(),
            DesignSetSelector::fourier(),
            DesignSetSelector::identity(),
        ] {
            let s = sel.select(&ctx).unwrap();
            let err = rms_workload_error(&w.gram(), w.query_count(), &s, &p).unwrap();
            assert!(err.is_finite() && err > 0.0, "{}: {err}", sel.name());
        }
    }

    #[test]
    fn workload_rows_selector_on_full_rank_workload() {
        // The prefix (CDF) workload is lower-triangular: full row rank, so its
        // own rows form a valid design set.
        let w = PrefixWorkload::new(8);
        let sel = DesignSetSelector::workload_rows();
        assert!(sel.needs_workload_matrix());
        let ctx = SelectionContext::from_workload(&w, sel.needs_workload_matrix());
        let s = sel.select(&ctx).unwrap();
        let p = PrivacyParams::paper_default();
        let err = rms_workload_error(&w.gram(), w.query_count(), &s, &p).unwrap();
        assert!(err.is_finite() && err > 0.0);
        // Without the workload matrix in the context, selection fails cleanly.
        let bare = SelectionContext::from_gram(w.gram());
        assert!(sel.select(&bare).is_err());
    }

    #[test]
    fn haar_basis_rejects_non_power_of_two() {
        let w = PrefixWorkload::new(12);
        let ctx = SelectionContext::from_workload(&w, false);
        assert!(DesignSetSelector::wavelet().select(&ctx).is_err());
        // Fourier handles any n.
        assert!(DesignSetSelector::fourier().select(&ctx).is_ok());
    }

    #[test]
    fn pure_dp_selector_normalises_l1_sensitivity() {
        let w = AllRangeWorkload::new(Domain::one_dim(16));
        let ctx = SelectionContext::from_workload(&w, false);
        let s = PureDpSelector::wavelet().select(&ctx).unwrap();
        assert!((s.l1_sensitivity() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fixed_selector_checks_dimensions() {
        let sel = FixedStrategySelector::new(binary_hierarchical_1d(8));
        let w8 = AllRangeWorkload::new(Domain::one_dim(8));
        let w16 = AllRangeWorkload::new(Domain::one_dim(16));
        assert!(sel
            .select(&SelectionContext::from_workload(&w8, false))
            .is_ok());
        assert!(sel
            .select(&SelectionContext::from_workload(&w16, false))
            .is_err());
    }
}
