//! The unified strategy artifact: one [`SelectionPlan`] per workload
//! fingerprint, whatever the selection pipeline that produced it.
//!
//! The engine historically carried two parallel strategy representations —
//! dense [`CachedSelection`]s (matrix + Cholesky factor + Prop. 4 trace term)
//! and matrix-free [`StructuredStrategy`] descriptors — each with its own
//! cache, persistence and serving plumbing.  The paper's adaptive-mechanism
//! framing treats every one of these as the same object: *a strategy plus the
//! metadata needed to answer and account for it*.  [`SelectionPlan`] is that
//! object.  The cache stores plans, the store persists plans, and the answer
//! paths dispatch on the plan kind, so adding a pipeline (the Low-Rank
//! Mechanism was the third) no longer adds a parallel stack.
//!
//! # Plan kinds
//!
//! * [`SelectionPlan::Dense`] — the classic pipeline: an explicit strategy
//!   matrix with its factor and trace term, selected in O(n³).
//! * [`SelectionPlan::Structured`] — a matrix-free operator strategy rebuilt
//!   from a few-byte descriptor in O(n log n).
//! * [`SelectionPlan::LowRank`] — the Low-Rank Mechanism (arXiv:1208.0094 /
//!   1212.2309): the workload gram is truncated to its top-`r` eigen-subspace
//!   `L̃` (`r × n`), eigen-design selection runs *inside* the subspace in
//!   O(nr² + r³), and answers recombine through the basis.  The plan carries
//!   the basis, the subspace selection (an ordinary [`CachedSelection`] over
//!   the `r`-dimensional design) and the truncation bookkeeping needed to
//!   predict the rank/error trade-off.
//!
//! # Eviction cost
//!
//! [`SelectionPlan::selection_cost_ns`] is the plan-kind-aware cost the
//! [`EvictionPolicy::CostAware`](super::EvictionPolicy::CostAware) policy
//! scores: dense and low-rank plans report their measured selection
//! wall-time, while structured plans report 0 — they rebuild in O(n log n),
//! so under cost-aware eviction they churn first, exactly as they should.

use super::cache::CachedSelection;
use mm_linalg::Matrix;
use mm_strategies::StructuredStrategy;
use std::sync::Arc;

/// Discriminant of a [`SelectionPlan`], for stats and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanKind {
    /// Dense pipeline (explicit matrix, factor, trace term).
    Dense,
    /// Matrix-free structured pipeline (operator + descriptor).
    Structured,
    /// Low-Rank Mechanism (subspace selection recombined through a basis).
    LowRank,
}

impl std::fmt::Display for PlanKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            PlanKind::Dense => "dense",
            PlanKind::Structured => "structured",
            PlanKind::LowRank => "low-rank",
        })
    }
}

/// The Low-Rank Mechanism's plan: select in the top-`r` eigen-subspace of
/// the workload gram, answer by recombining through the basis.
///
/// With `G = WᵀW ≈ L̃ᵀ diag(λ) L̃` (Ritz pairs from
/// [`TruncatedEigen`](mm_linalg::decomp::TruncatedEigen)), the mechanism
/// observes `y = A_sub·(L̃x) + noise` for a strategy `A_sub` eigen-designed in
/// the subspace, recovers `ẑ` by least squares, and answers `W·(L̃ᵀẑ)`.  The
/// embedded [`CachedSelection`] holds `A_sub` with its sensitivities
/// **overridden to those of the end-to-end map `A_sub·L̃`** — the privacy
/// guarantee is calibrated to the columns of the matrix actually applied to
/// the data, not to the subspace design alone.
///
/// The Cholesky factor of `A_subᵀA_sub` and the Prop. 4 trace term against
/// the subspace gram `L̃ G L̃ᵀ` are materialised eagerly at construction, so
/// persisting the plan never has to run cubic work (and cannot fail late).
#[derive(Debug)]
pub struct LowRankPlan {
    /// Orthonormal subspace basis `L̃`, one Ritz vector per row (`r' × n`
    /// after dropping numerically zero Ritz values).
    basis: Matrix,
    /// The subspace selection: strategy `A_sub` (with end-to-end
    /// sensitivities), factor and trace term, plus the measured selection
    /// cost for cost-aware eviction.
    selection: CachedSelection,
    /// The workload gram projected into the subspace, `L̃ G L̃ᵀ` (`r' × r'`)
    /// — the gram the trace term is taken against.
    subspace_gram: Matrix,
    /// The rank requested through the builder knob (the retained rank
    /// `basis.rows()` can be smaller when the spectrum is deficient).
    rank: usize,
    /// `trace(G)`: the workload's total spectral mass.
    total_gram_trace: f64,
    /// Spectral mass captured by the retained subspace,
    /// `trace(L̃ G L̃ᵀ)`.
    captured_mass: f64,
}

impl LowRankPlan {
    /// Assembles a plan from parts the low-rank selector (or the store's
    /// decoder) already derived.  `selection` must carry its factor and
    /// trace term against `subspace_gram` pre-seeded.
    pub(crate) fn from_parts(
        basis: Matrix,
        selection: CachedSelection,
        subspace_gram: Matrix,
        rank: usize,
        total_gram_trace: f64,
        captured_mass: f64,
    ) -> Self {
        LowRankPlan {
            basis,
            selection,
            subspace_gram,
            rank,
            total_gram_trace,
            captured_mass,
        }
    }

    /// The subspace basis `L̃` (`r' × n`, rows orthonormal).
    pub fn basis(&self) -> &Matrix {
        &self.basis
    }

    /// The subspace selection (strategy, factor, trace term).
    pub fn selection(&self) -> &CachedSelection {
        &self.selection
    }

    /// The projected workload gram `L̃ G L̃ᵀ`.
    pub fn subspace_gram(&self) -> &Matrix {
        &self.subspace_gram
    }

    /// The rank requested through `Engine::builder().low_rank(...)`.
    pub fn requested_rank(&self) -> usize {
        self.rank
    }

    /// The retained rank `r'` (rows of the basis; at most the requested
    /// rank, smaller when the workload spectrum is deficient).
    pub fn retained_rank(&self) -> usize {
        self.basis.rows()
    }

    /// Number of cells the plan covers (columns of the basis).
    pub fn dim(&self) -> usize {
        self.basis.cols()
    }

    /// `trace(WᵀW)`: the workload's total spectral mass.
    pub fn total_gram_trace(&self) -> f64 {
        self.total_gram_trace
    }

    /// Spectral mass captured by the retained subspace.
    pub fn captured_mass(&self) -> f64 {
        self.captured_mass
    }

    /// Spectral mass the truncation dropped (clamped at 0: Ritz values are
    /// approximations, so the difference can be a hair negative).
    pub fn dropped_mass(&self) -> f64 {
        (self.total_gram_trace - self.captured_mass).max(0.0)
    }

    /// Predicted RMS workload error *including the truncation bias*, the
    /// quantity behind the rank/error trade-off:
    ///
    /// ```text
    /// sqrt( (error_constant · sens² · trace(G_sub (A_subᵀA_sub)⁻¹)
    ///        + dropped_mass · data_scale²) / m )
    /// ```
    ///
    /// The first term is the Prop. 4 noise error of the subspace mechanism;
    /// the second charges every dropped eigendirection as if the data had a
    /// component of magnitude `data_scale` along it — a proxy (the true bias
    /// depends on the data), but one that is exact at full rank (dropped
    /// mass 0) and non-increasing in the rank on any fixed workload, which
    /// is what makes the knob monotone.
    pub fn predicted_rms_error(
        &self,
        query_count: usize,
        error_constant: f64,
        sensitivity: f64,
        data_scale: f64,
    ) -> crate::Result<f64> {
        if query_count == 0 {
            return Err(crate::MechanismError::InvalidArgument(
                "workload has no queries".into(),
            ));
        }
        let noise_tse = error_constant
            * sensitivity
            * sensitivity
            * self.selection.trace_term(&self.subspace_gram)?;
        let bias_tse = self.dropped_mass() * data_scale * data_scale;
        Ok(((noise_tse + bias_tse) / query_count as f64).sqrt())
    }
}

/// One selected strategy artifact, whatever pipeline produced it — the
/// single currency of the engine's cache, store and answer paths (see the
/// module docs).
#[derive(Debug, Clone)]
pub enum SelectionPlan {
    /// A dense selection (explicit matrix, factor, trace term).
    Dense(Arc<CachedSelection>),
    /// A matrix-free structured strategy.
    Structured(Arc<StructuredStrategy>),
    /// A Low-Rank Mechanism plan.
    LowRank(Arc<LowRankPlan>),
}

impl SelectionPlan {
    /// The plan's kind.
    pub fn kind(&self) -> PlanKind {
        match self {
            SelectionPlan::Dense(_) => PlanKind::Dense,
            SelectionPlan::Structured(_) => PlanKind::Structured,
            SelectionPlan::LowRank(_) => PlanKind::LowRank,
        }
    }

    /// Number of cells the plan covers.
    pub fn dim(&self) -> usize {
        match self {
            SelectionPlan::Dense(entry) => entry.strategy().dim(),
            SelectionPlan::Structured(strategy) => strategy.dim(),
            SelectionPlan::LowRank(plan) => plan.dim(),
        }
    }

    /// The plan-kind-aware rebuild cost the cost-aware eviction policy
    /// scores: measured selection wall-time for dense and low-rank plans, 0
    /// for structured plans (an O(n log n) rebuild — cheap entries churn
    /// first, by design).
    pub fn selection_cost_ns(&self) -> u64 {
        match self {
            SelectionPlan::Dense(entry) => entry.selection_cost_ns(),
            SelectionPlan::Structured(_) => 0,
            SelectionPlan::LowRank(plan) => plan.selection.selection_cost_ns(),
        }
    }

    /// The dense selection, when this is a dense plan.
    pub fn as_dense(&self) -> Option<&Arc<CachedSelection>> {
        match self {
            SelectionPlan::Dense(entry) => Some(entry),
            _ => None,
        }
    }

    /// The structured strategy, when this is a structured plan.
    pub fn as_structured(&self) -> Option<&Arc<StructuredStrategy>> {
        match self {
            SelectionPlan::Structured(strategy) => Some(strategy),
            _ => None,
        }
    }

    /// The low-rank plan, when this is one.
    pub fn as_low_rank(&self) -> Option<&Arc<LowRankPlan>> {
        match self {
            SelectionPlan::LowRank(plan) => Some(plan),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_strategies::haar_strategy;
    use mm_strategies::identity::identity_strategy;

    #[test]
    fn kinds_and_accessors_dispatch() {
        let dense = SelectionPlan::Dense(Arc::new(CachedSelection::with_cost(
            Arc::new(identity_strategy(4)),
            7_000,
        )));
        assert_eq!(dense.kind(), PlanKind::Dense);
        assert_eq!(dense.dim(), 4);
        assert_eq!(dense.selection_cost_ns(), 7_000);
        assert!(dense.as_dense().is_some());
        assert!(dense.as_structured().is_none() && dense.as_low_rank().is_none());

        let structured = SelectionPlan::Structured(Arc::new(haar_strategy(8)));
        assert_eq!(structured.kind(), PlanKind::Structured);
        assert_eq!(structured.dim(), 8);
        assert_eq!(
            structured.selection_cost_ns(),
            0,
            "structured plans are cheap to rebuild and must churn first"
        );
        assert!(structured.as_structured().is_some());
        assert!(structured.as_dense().is_none());

        assert_eq!(PlanKind::LowRank.to_string(), "low-rank");
        assert_eq!(PlanKind::Dense.to_string(), "dense");
        assert_eq!(PlanKind::Structured.to_string(), "structured");
    }
}
