//! Persistent strategy store: spills [`CachedSelection`]s to disk so engine
//! restarts (and independent processes sharing a directory) skip the O(n³)
//! selection entirely.
//!
//! Strategy selection is data independent and keyed by the workload's gram
//! [`Fingerprint`], which is a stable function of the gram's exact entry bits
//! — valid across processes and machines.  Each store entry therefore records
//! everything the answer path derives from a selection: the strategy (name,
//! matrix, gram, sensitivities), the Cholesky factor of the strategy gram,
//! the Prop. 4 trace term against the workload it was selected for, and the
//! measured selection wall-time (for cost-aware eviction).  Loading an entry
//! rebuilds the [`CachedSelection`] with those quantities *pre-seeded*, so a
//! warm restart answers bit-identically to the run that produced the entry —
//! nothing is refactorized or re-derived.
//!
//! # File format (version 1)
//!
//! One file per fingerprint, named `<fingerprint as 16 hex digits>.mmsel`:
//!
//! ```text
//! magic    8 bytes   b"MMSTRAT\n"
//! version  u32 LE    1
//! fp       u64 LE    fingerprint (must match the filename)
//! len      u64 LE    payload length in bytes
//! payload  len bytes see below
//! checksum u64 LE    FNV-1a 64 over every preceding byte
//! ```
//!
//! The payload is a flat little-endian encoding (f64 via `to_bits`): strategy
//! name (u32 length + UTF-8), row count, dimension, L2/L1 sensitivities, an
//! optional explicit matrix, the strategy gram, the Cholesky factor `L`, the
//! trace term, and the selection cost.
//!
//! # Durability and concurrency
//!
//! * **Atomic writes.** Entries are written to a temporary file in the same
//!   directory and `rename`d into place, so readers never observe a partial
//!   entry under a crashed writer.
//! * **Write-once.** A fingerprint identifies its gram exactly, and selection
//!   is deterministic, so the first process to write an entry wins; later
//!   saves for the same fingerprint are skipped.  Concurrent writers racing
//!   on one fingerprint each rename a complete, identical-content file — the
//!   last rename wins and every reader sees a whole entry.
//! * **Corruption falls back to recompute.** A truncated file, a checksum
//!   mismatch (bit flip), a wrong version or a mismatched fingerprint makes
//!   [`StrategyStore::load`] delete the entry and return `None`: the caller
//!   runs a fresh selection and rewrites a valid entry.  A corrupt store can
//!   cost time, never correctness.

use super::cache::{CachedSelection, StrategyCache};
use crate::MechanismError;
use mm_linalg::decomp::Cholesky;
use mm_linalg::Matrix;
use mm_strategies::Strategy;
use mm_workload::Fingerprint;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Current store format version (bumped on any encoding change; entries with
/// any other version are treated as corrupt and recomputed).
pub const STORE_VERSION: u32 = 1;

/// File extension of store entries.
pub const STORE_EXTENSION: &str = "mmsel";

const MAGIC: [u8; 8] = *b"MMSTRAT\n";

/// FNV-1a 64-bit, the store's integrity checksum: not cryptographic, but it
/// reliably catches the failure modes a strategy store actually sees
/// (truncation, torn writes, bit rot).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    push_u64(out, v.to_bits());
}

fn push_matrix(out: &mut Vec<u8>, m: &Matrix) {
    push_u64(out, m.rows() as u64);
    push_u64(out, m.cols() as u64);
    for &v in m.as_slice() {
        push_f64(out, v);
    }
}

/// A bounds-checked little-endian reader over a decoded payload; every
/// accessor returns `None` past the end, so corrupt length fields inside a
/// checksum-valid payload degrade to a failed parse, never a panic.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    fn matrix(&mut self) -> Option<Matrix> {
        let rows = usize::try_from(self.u64()?).ok()?;
        let cols = usize::try_from(self.u64()?).ok()?;
        let n = rows.checked_mul(cols)?;
        // The entries must actually be present: bounding the allocation by
        // the remaining payload keeps a corrupt length from allocating GiBs.
        if n.checked_mul(8)? > self.bytes.len() - self.pos {
            return None;
        }
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(self.f64()?);
        }
        Matrix::from_vec(rows, cols, data).ok()
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

fn encode_payload(entry: &CachedSelection, factor: &Cholesky, trace: f64) -> Vec<u8> {
    let strategy = entry.strategy();
    let mut out = Vec::new();
    let name = strategy.name().as_bytes();
    push_u32(&mut out, name.len() as u32);
    out.extend_from_slice(name);
    push_u64(&mut out, strategy.rows() as u64);
    push_u64(&mut out, strategy.dim() as u64);
    push_f64(&mut out, strategy.l2_sensitivity());
    push_f64(&mut out, strategy.l1_sensitivity());
    match strategy.matrix() {
        Some(m) => {
            out.push(1);
            push_matrix(&mut out, m);
        }
        None => out.push(0),
    }
    push_matrix(&mut out, strategy.gram());
    push_matrix(&mut out, factor.l());
    push_f64(&mut out, trace);
    push_u64(&mut out, entry.selection_cost_ns());
    out
}

fn decode_payload(payload: &[u8]) -> Option<CachedSelection> {
    let mut c = Cursor::new(payload);
    let name_len = usize::try_from(c.u32()?).ok()?;
    let name = String::from_utf8(c.take(name_len)?.to_vec()).ok()?;
    let rows = usize::try_from(c.u64()?).ok()?;
    let dim = usize::try_from(c.u64()?).ok()?;
    let l2 = c.f64()?;
    let l1 = c.f64()?;
    let matrix = match c.u8()? {
        0 => None,
        1 => Some(c.matrix()?),
        _ => return None,
    };
    let gram = c.matrix()?;
    let factor_l = c.matrix()?;
    let trace = c.f64()?;
    let cost_ns = c.u64()?;
    if !c.done() {
        return None; // trailing garbage
    }
    // Validate shapes before `Strategy::from_parts`, whose contract
    // violations are asserts (panics), not parse failures.
    if gram.rows() != dim || !gram.is_square() || dim == 0 {
        return None;
    }
    if let Some(m) = &matrix {
        if m.cols() != dim || m.rows() != rows {
            return None;
        }
    }
    if factor_l.rows() != dim {
        return None;
    }
    if !(l2.is_finite() && l1.is_finite() && trace.is_finite()) {
        return None;
    }
    let factor = Cholesky::from_factor(factor_l).ok()?;
    let strategy = Arc::new(Strategy::from_parts(name, matrix, gram, l2, l1, rows));
    Some(CachedSelection::with_parts(
        strategy,
        cost_ns,
        Arc::new(factor),
        trace,
    ))
}

fn encode_file(fp: Fingerprint, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 4 + 8 + 8 + payload.len() + 8);
    out.extend_from_slice(&MAGIC);
    push_u32(&mut out, STORE_VERSION);
    push_u64(&mut out, fp.0);
    push_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(payload);
    let checksum = fnv1a(&out);
    push_u64(&mut out, checksum);
    out
}

fn decode_file(fp: Fingerprint, bytes: &[u8]) -> Option<CachedSelection> {
    // Header + checksum around an empty payload is the minimum size.
    let header = 8 + 4 + 8 + 8;
    if bytes.len() < header + 8 {
        return None; // truncated
    }
    let (body, checksum_bytes) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(checksum_bytes.try_into().expect("8 bytes"));
    if fnv1a(body) != stored {
        return None; // bit flip / torn write
    }
    let mut c = Cursor::new(body);
    if c.take(8)? != MAGIC {
        return None;
    }
    if c.u32()? != STORE_VERSION {
        return None; // wrong version: recompute rather than misparse
    }
    if c.u64()? != fp.0 {
        return None; // renamed/misplaced entry
    }
    let len = usize::try_from(c.u64()?).ok()?;
    let payload = c.take(len)?;
    if !c.done() {
        return None;
    }
    decode_payload(payload)
}

/// A directory of persisted selections, shared by any number of engines and
/// processes (see the module docs for format and concurrency semantics).
#[derive(Debug)]
pub struct StrategyStore {
    dir: PathBuf,
}

impl StrategyStore {
    /// Opens (creating if needed) a store directory.
    pub fn open(dir: impl Into<PathBuf>) -> crate::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| {
            MechanismError::Store(format!(
                "cannot create store directory {}: {e}",
                dir.display()
            ))
        })?;
        Ok(StrategyStore { dir })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The on-disk path of a fingerprint's entry.
    pub fn entry_path(&self, fp: Fingerprint) -> PathBuf {
        self.dir.join(format!("{fp}.{STORE_EXTENSION}"))
    }

    /// Loads a fingerprint's entry, pre-seeded with its persisted factor and
    /// trace term.  Any corruption (truncation, checksum mismatch, wrong
    /// version, mismatched fingerprint, malformed payload) deletes the entry
    /// and returns `None`, so the caller recomputes and rewrites it.
    pub fn load(&self, fp: Fingerprint) -> Option<Arc<CachedSelection>> {
        let path = self.entry_path(fp);
        let bytes = std::fs::read(&path).ok()?;
        match decode_file(fp, &bytes) {
            Some(entry) => Some(Arc::new(entry)),
            None => {
                // Corrupt: clear the slot so a fresh selection can rewrite a
                // valid entry (best effort — a failed delete only means the
                // next load re-detects the corruption).
                let _ = std::fs::remove_file(&path);
                None
            }
        }
    }

    /// Persists a selection (write-once): returns `true` when this call wrote
    /// the entry, `false` when an entry already existed or the write failed.
    /// The entry's Cholesky factor and trace term against `workload_gram` are
    /// materialised if not already computed, so a later [`StrategyStore::load`]
    /// restores them without any cubic work.
    pub fn save(&self, fp: Fingerprint, entry: &CachedSelection, workload_gram: &Matrix) -> bool {
        let path = self.entry_path(fp);
        if path.exists() {
            return false; // write-once per fingerprint
        }
        let (Ok(factor), Ok(trace)) = (entry.factor(), entry.trace_term(workload_gram)) else {
            return false; // underived entries (e.g. singular gram) stay memory-only
        };
        let bytes = encode_file(fp, &encode_payload(entry, &factor, trace));
        // Atomic publish: temp file in the same directory, then rename.
        let tmp = self.dir.join(format!(".{fp}.tmp.{}", std::process::id()));
        if std::fs::write(&tmp, &bytes).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return false;
        }
        if std::fs::rename(&tmp, &path).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return false;
        }
        true
    }

    /// Loads up to `limit` entries into a [`StrategyCache`] (deterministic
    /// ascending-fingerprint order), returning how many were inserted.
    /// Corrupt entries are skipped (and deleted) exactly as in
    /// [`StrategyStore::load`].
    pub fn warm(&self, cache: &StrategyCache, limit: usize) -> usize {
        let mut names: Vec<(Fingerprint, PathBuf)> = Vec::new();
        // mm-lint: allow(determinism-hygiene): directory order is discarded — entries are re-sorted by numeric fingerprint below before any are loaded
        let Ok(dir) = std::fs::read_dir(&self.dir) else {
            return 0;
        };
        for entry in dir.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some(STORE_EXTENSION) {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            let Ok(raw) = u64::from_str_radix(stem, 16) else {
                continue;
            };
            names.push((Fingerprint(raw), path));
        }
        // Sort by the *numeric* fingerprint, not the path: OS directory
        // order is arbitrary, and a path sort would silently diverge from
        // fingerprint order if the filename scheme ever lost its fixed-width
        // zero padding.  Under a `limit`, which entries warm must be a pure
        // function of the store's contents.
        names.sort_by_key(|(fp, _)| fp.0);
        let mut inserted = 0;
        for (fp, _) in names.into_iter().take(limit) {
            if let Some(entry) = self.load(fp) {
                cache.insert(fp, entry);
                inserted += 1;
            }
        }
        inserted
    }

    /// Number of (undamaged or not-yet-inspected) entries on disk.
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|dir| {
                dir.flatten()
                    .filter(|e| {
                        e.path().extension().and_then(|x| x.to_str()) == Some(STORE_EXTENSION)
                    })
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_strategies::identity::identity_strategy;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mm-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn entry(n: usize) -> CachedSelection {
        CachedSelection::with_cost(Arc::new(identity_strategy(n)), 42_000)
    }

    #[test]
    fn round_trip_is_bit_identical() {
        let dir = tmp_dir("roundtrip");
        let store = StrategyStore::open(&dir).unwrap();
        let fp = Fingerprint(0xDEAD_BEEF_0BAD_F00D);
        let e = entry(6);
        let gram = Matrix::identity(6);
        // Force the derived quantities so we can compare them bit-for-bit.
        let factor = e.factor().unwrap();
        let trace = e.trace_term(&gram).unwrap();
        assert!(store.save(fp, &e, &gram), "first save writes");
        assert!(!store.save(fp, &e, &gram), "second save is write-once");
        assert_eq!(store.len(), 1);

        let loaded = store.load(fp).expect("entry loads");
        let (s0, s1) = (e.strategy(), loaded.strategy());
        assert_eq!(s0.name(), s1.name());
        assert_eq!(s0.rows(), s1.rows());
        assert_eq!(s0.dim(), s1.dim());
        assert_eq!(s0.l2_sensitivity().to_bits(), s1.l2_sensitivity().to_bits());
        assert_eq!(s0.l1_sensitivity().to_bits(), s1.l1_sensitivity().to_bits());
        for (a, b) in s0
            .matrix()
            .unwrap()
            .as_slice()
            .iter()
            .zip(s1.matrix().unwrap().as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in s0.gram().as_slice().iter().zip(s1.gram().as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let loaded_factor = loaded.factor().unwrap();
        for (a, b) in factor
            .l()
            .as_slice()
            .iter()
            .zip(loaded_factor.l().as_slice())
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(trace.to_bits(), loaded.trace_term(&gram).unwrap().to_bits());
        assert_eq!(loaded.selection_cost_ns(), 42_000);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn matrixless_strategy_round_trips() {
        let dir = tmp_dir("gramonly");
        let store = StrategyStore::open(&dir).unwrap();
        let fp = Fingerprint(7);
        let gram = Matrix::identity(4);
        let strategy = Arc::new(Strategy::from_parts(
            "implicit",
            None,
            gram.clone(),
            1.0,
            1.0,
            4,
        ));
        let e = CachedSelection::new(strategy);
        assert!(store.save(fp, &e, &gram));
        let loaded = store.load(fp).unwrap();
        assert!(loaded.strategy().matrix().is_none());
        assert_eq!(loaded.strategy().dim(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_checksum_flip_and_wrong_version_all_fall_back() {
        let fp = Fingerprint(0xABCD);
        for (tag, corrupt) in [
            (
                "truncate",
                Box::new(|bytes: &mut Vec<u8>| bytes.truncate(bytes.len() / 2))
                    as Box<dyn Fn(&mut Vec<u8>)>,
            ),
            (
                "bitflip",
                Box::new(|bytes: &mut Vec<u8>| {
                    let mid = bytes.len() / 2;
                    bytes[mid] ^= 0x40;
                }),
            ),
            (
                "version",
                Box::new(|bytes: &mut Vec<u8>| {
                    // Rewrite the version field and re-checksum so *only* the
                    // version check can reject it.
                    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
                    let body_len = bytes.len() - 8;
                    let sum = fnv1a(&bytes[..body_len]);
                    let at = bytes.len() - 8;
                    bytes[at..].copy_from_slice(&sum.to_le_bytes());
                }),
            ),
        ] {
            let dir = tmp_dir(tag);
            let store = StrategyStore::open(&dir).unwrap();
            let gram = Matrix::identity(5);
            assert!(store.save(fp, &entry(5), &gram));
            let path = store.entry_path(fp);
            let mut bytes = std::fs::read(&path).unwrap();
            corrupt(&mut bytes);
            std::fs::write(&path, &bytes).unwrap();

            assert!(store.load(fp).is_none(), "{tag}: corrupt entry rejected");
            assert!(!path.exists(), "{tag}: corrupt entry deleted");
            // The slot is clear: a fresh save rewrites a valid entry.
            assert!(store.save(fp, &entry(5), &gram), "{tag}: rewrite succeeds");
            assert!(store.load(fp).is_some(), "{tag}: rewritten entry loads");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn mismatched_fingerprint_is_rejected() {
        let dir = tmp_dir("fpmismatch");
        let store = StrategyStore::open(&dir).unwrap();
        let gram = Matrix::identity(3);
        assert!(store.save(Fingerprint(1), &entry(3), &gram));
        // Copy the entry under another fingerprint's filename.
        std::fs::copy(
            store.entry_path(Fingerprint(1)),
            store.entry_path(Fingerprint(2)),
        )
        .unwrap();
        assert!(store.load(Fingerprint(2)).is_none());
        assert!(store.load(Fingerprint(1)).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn warm_fills_a_cache_in_deterministic_order() {
        let dir = tmp_dir("warm");
        let store = StrategyStore::open(&dir).unwrap();
        let gram = Matrix::identity(4);
        for v in 1..=3u64 {
            assert!(store.save(Fingerprint(v), &entry(4), &gram));
        }
        let cache = StrategyCache::new(8);
        assert_eq!(store.warm(&cache, 8), 3);
        assert_eq!(cache.len(), 3);
        for v in 1..=3u64 {
            assert!(cache.get(Fingerprint(v)).is_some());
        }
        // The limit caps how much is loaded.
        let small = StrategyCache::new(8);
        assert_eq!(store.warm(&small, 2), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_rejects_unwritable_path() {
        // A path under a regular file cannot be a directory.
        let dir = tmp_dir("notadir");
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("plain");
        std::fs::write(&file, b"x").unwrap();
        let err = StrategyStore::open(file.join("sub")).unwrap_err();
        assert!(matches!(err, MechanismError::Store(_)));
        assert!(err.to_string().contains("store"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
