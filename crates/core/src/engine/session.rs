//! Sessions and privacy-budget accounting.
//!
//! A [`Session`] wraps an [`Engine`](crate::engine::Engine) with a
//! [`BudgetLedger`] that accounts *sequential composition*: a sequence of
//! mechanisms satisfying (ε₁,δ₁)-, (ε₂,δ₂)-, … differential privacy on the
//! same database satisfies (Σεᵢ, Σδᵢ)-differential privacy.  Every successful
//! `answer` call charges its (ε, δ) to the ledger; a call whose charge does
//! not fit in the remaining budget fails with
//! [`MechanismError::BudgetExhausted`] *before* any noise is drawn or data
//! touched, so a failed call spends nothing.

use crate::engine::{Engine, EngineAnswer};
use crate::privacy::PrivacyParams;
use crate::MechanismError;
use mm_workload::Workload;
use rand::Rng;

/// A total privacy budget (ε, δ) available to a session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivacyBudget {
    /// Total ε available.
    pub epsilon: f64,
    /// Total δ available.
    pub delta: f64,
}

impl PrivacyBudget {
    /// Creates a budget; panics on negative or non-finite values.
    pub fn new(epsilon: f64, delta: f64) -> Self {
        assert!(
            epsilon >= 0.0 && epsilon.is_finite(),
            "epsilon budget must be finite and >= 0"
        );
        assert!(
            (0.0..1.0).contains(&delta),
            "delta budget must lie in [0, 1)"
        );
        PrivacyBudget { epsilon, delta }
    }

    /// A pure-DP budget (δ = 0).
    pub fn pure(epsilon: f64) -> Self {
        PrivacyBudget::new(epsilon, 0.0)
    }
}

/// Absolute slack absorbing floating-point drift in repeated budget
/// arithmetic (e.g. ten charges of ε/10 must exactly exhaust ε).
const BUDGET_SLACK: f64 = 1e-9;

/// Sequential-composition ledger: total budget, spend so far, and the history
/// of charges.
#[derive(Debug, Clone)]
pub struct BudgetLedger {
    total: PrivacyBudget,
    spent_epsilon: f64,
    spent_delta: f64,
    charges: Vec<PrivacyParams>,
}

impl BudgetLedger {
    /// A fresh ledger over the given total budget.
    pub fn new(total: PrivacyBudget) -> Self {
        BudgetLedger {
            total,
            spent_epsilon: 0.0,
            spent_delta: 0.0,
            charges: Vec::new(),
        }
    }

    /// The total budget the ledger was created with.
    pub fn total(&self) -> PrivacyBudget {
        self.total
    }

    /// Budget spent so far (sums of the charged ε's and δ's).
    pub fn spent(&self) -> PrivacyBudget {
        PrivacyBudget {
            epsilon: self.spent_epsilon,
            delta: self.spent_delta,
        }
    }

    /// Budget still available (clamped at zero).
    pub fn remaining(&self) -> PrivacyBudget {
        PrivacyBudget {
            epsilon: (self.total.epsilon - self.spent_epsilon).max(0.0),
            delta: (self.total.delta - self.spent_delta).max(0.0),
        }
    }

    /// Every charge accepted so far, in order.
    pub fn charges(&self) -> &[PrivacyParams] {
        &self.charges
    }

    /// Whether a charge of `params` would fit in the remaining budget.
    pub fn can_afford(&self, params: &PrivacyParams) -> bool {
        let slack_e = BUDGET_SLACK * self.total.epsilon.max(1.0);
        let slack_d = BUDGET_SLACK * self.total.delta.max(f64::MIN_POSITIVE);
        self.spent_epsilon + params.epsilon <= self.total.epsilon + slack_e
            && self.spent_delta + params.delta <= self.total.delta + slack_d
    }

    /// Checks that a charge of `params` fits, failing with
    /// [`MechanismError::BudgetExhausted`] (and changing no state) otherwise.
    pub fn check(&self, params: &PrivacyParams) -> crate::Result<()> {
        if !self.can_afford(params) {
            let remaining = self.remaining();
            return Err(MechanismError::BudgetExhausted {
                requested_epsilon: params.epsilon,
                requested_delta: params.delta,
                remaining_epsilon: remaining.epsilon,
                remaining_delta: remaining.delta,
            });
        }
        Ok(())
    }

    /// Charges `params` to the ledger, or fails with
    /// [`MechanismError::BudgetExhausted`] without changing any state.
    pub fn try_charge(&mut self, params: &PrivacyParams) -> crate::Result<()> {
        self.check(params)?;
        self.spent_epsilon += params.epsilon;
        self.spent_delta += params.delta;
        self.charges.push(*params);
        Ok(())
    }
}

/// A serving session: an engine plus a privacy-budget ledger.
///
/// Created with [`Engine::session`].  The session borrows the engine, so the
/// (shared, data-independent) strategy cache keeps working across sessions —
/// only the budget is per-session state.
#[derive(Debug)]
pub struct Session<'e> {
    engine: &'e Engine,
    ledger: BudgetLedger,
}

impl<'e> Session<'e> {
    pub(crate) fn new(engine: &'e Engine, budget: PrivacyBudget) -> Self {
        Session {
            engine,
            ledger: BudgetLedger::new(budget),
        }
    }

    /// The engine this session serves through.
    pub fn engine(&self) -> &Engine {
        self.engine
    }

    /// The session's ledger (totals, spend, charge history).
    pub fn ledger(&self) -> &BudgetLedger {
        &self.ledger
    }

    /// Budget still available.
    pub fn remaining(&self) -> PrivacyBudget {
        self.ledger.remaining()
    }

    /// Answers a workload at the engine's per-answer privacy parameters,
    /// charging them to the ledger.  Fails with
    /// [`MechanismError::BudgetExhausted`] — before touching the data — when
    /// the charge does not fit.
    pub fn answer<W: Workload + ?Sized, R: Rng>(
        &mut self,
        workload: &W,
        x: &[f64],
        rng: &mut R,
    ) -> crate::Result<EngineAnswer> {
        self.answer_with_privacy(workload, *self.engine.privacy(), x, rng)
    }

    /// Answers a workload at explicit per-call privacy parameters (spending
    /// less of the budget on less important queries, say), charging them to
    /// the ledger.
    pub fn answer_with_privacy<W: Workload + ?Sized, R: Rng>(
        &mut self,
        workload: &W,
        privacy: PrivacyParams,
        x: &[f64],
        rng: &mut R,
    ) -> crate::Result<EngineAnswer> {
        self.ledger.check(&privacy)?;
        let answer = self.engine.answer_with_privacy(workload, privacy, x, rng)?;
        self.ledger
            .try_charge(&privacy)
            .expect("affordability was checked before answering");
        Ok(answer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_linalg::approx_eq;

    #[test]
    fn ledger_arithmetic() {
        let mut ledger = BudgetLedger::new(PrivacyBudget::new(1.0, 1e-3));
        let step = PrivacyParams::new(0.25, 1e-4);
        for i in 1..=4 {
            ledger.try_charge(&step).unwrap();
            assert!(approx_eq(ledger.spent().epsilon, 0.25 * i as f64, 1e-12));
        }
        assert!(approx_eq(ledger.remaining().epsilon, 0.0, 1e-9));
        assert!(approx_eq(ledger.remaining().delta, 1e-3 - 4e-4, 1e-12));
        assert_eq!(ledger.charges().len(), 4);
        let err = ledger.try_charge(&step).unwrap_err();
        assert!(matches!(err, MechanismError::BudgetExhausted { .. }));
        // The failed charge spent nothing.
        assert_eq!(ledger.charges().len(), 4);
        assert!(approx_eq(ledger.spent().epsilon, 1.0, 1e-12));
    }

    #[test]
    fn repeated_fractional_charges_exactly_exhaust() {
        // 10 × ε/10 must fit despite floating-point accumulation.
        let mut ledger = BudgetLedger::new(PrivacyBudget::pure(1.0));
        let step = PrivacyParams::pure(0.1);
        for _ in 0..10 {
            ledger.try_charge(&step).unwrap();
        }
        assert!(ledger.try_charge(&step).is_err());
    }

    #[test]
    fn delta_budget_is_enforced_independently() {
        let mut ledger = BudgetLedger::new(PrivacyBudget::new(10.0, 1e-4));
        // Plenty of epsilon, but the second charge overruns delta.
        ledger.try_charge(&PrivacyParams::new(1.0, 9e-5)).unwrap();
        let err = ledger
            .try_charge(&PrivacyParams::new(1.0, 9e-5))
            .unwrap_err();
        match err {
            MechanismError::BudgetExhausted {
                remaining_delta, ..
            } => assert!(remaining_delta < 2e-5),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "epsilon budget")]
    fn negative_budget_rejected() {
        PrivacyBudget::new(-1.0, 0.0);
    }
}
