//! Sessions and privacy-budget accounting.
//!
//! A [`Session`] wraps an [`Engine`] with a
//! [`BudgetLedger`] that accounts *sequential composition*: a sequence of
//! mechanisms satisfying (ε₁,δ₁)-, (ε₂,δ₂)-, … differential privacy on the
//! same database satisfies (Σεᵢ, Σδᵢ)-differential privacy.  Every successful
//! `answer` call charges its (ε, δ) to the ledger; a call whose charge does
//! not fit in the remaining budget fails with
//! [`MechanismError::BudgetExhausted`] *before* any noise is drawn or data
//! touched, so a failed call spends nothing.

use crate::engine::{Engine, EngineAnswer};
use crate::privacy::PrivacyParams;
use crate::MechanismError;
use mm_strategies::Strategy;
use mm_workload::Workload;
use rand::Rng;
use std::sync::Arc;

/// A total privacy budget (ε, δ) available to a session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivacyBudget {
    /// Total ε available.
    pub epsilon: f64,
    /// Total δ available.
    pub delta: f64,
}

impl PrivacyBudget {
    /// Creates a budget; panics on negative or non-finite values.
    pub fn new(epsilon: f64, delta: f64) -> Self {
        assert!(
            epsilon >= 0.0 && epsilon.is_finite(),
            "epsilon budget must be finite and >= 0"
        );
        assert!(
            (0.0..1.0).contains(&delta),
            "delta budget must lie in [0, 1)"
        );
        PrivacyBudget { epsilon, delta }
    }

    /// A pure-DP budget (δ = 0).
    pub fn pure(epsilon: f64) -> Self {
        PrivacyBudget::new(epsilon, 0.0)
    }
}

/// Absolute slack absorbing floating-point drift in repeated budget
/// arithmetic (e.g. ten charges of ε/10 must exactly exhaust ε).
const BUDGET_SLACK: f64 = 1e-9;

/// Sequential-composition ledger: total budget, spend so far, and the history
/// of charges.
#[derive(Debug, Clone)]
pub struct BudgetLedger {
    total: PrivacyBudget,
    spent_epsilon: f64,
    spent_delta: f64,
    charges: Vec<PrivacyParams>,
}

impl BudgetLedger {
    /// A fresh ledger over the given total budget.
    pub fn new(total: PrivacyBudget) -> Self {
        BudgetLedger {
            total,
            spent_epsilon: 0.0,
            spent_delta: 0.0,
            charges: Vec::new(),
        }
    }

    /// The total budget the ledger was created with.
    pub fn total(&self) -> PrivacyBudget {
        self.total
    }

    /// Budget spent so far (sums of the charged ε's and δ's).
    pub fn spent(&self) -> PrivacyBudget {
        PrivacyBudget {
            epsilon: self.spent_epsilon,
            delta: self.spent_delta,
        }
    }

    /// Budget still available (clamped at zero).
    pub fn remaining(&self) -> PrivacyBudget {
        PrivacyBudget {
            epsilon: (self.total.epsilon - self.spent_epsilon).max(0.0),
            delta: (self.total.delta - self.spent_delta).max(0.0),
        }
    }

    /// Every charge accepted so far, in order.
    pub fn charges(&self) -> &[PrivacyParams] {
        &self.charges
    }

    /// Whether a charge of `params` would fit in the remaining budget.
    pub fn can_afford(&self, params: &PrivacyParams) -> bool {
        self.check_many(params, 1).is_ok()
    }

    /// Checks that a charge of `params` fits, failing with
    /// [`MechanismError::BudgetExhausted`] (and changing no state) otherwise.
    pub fn check(&self, params: &PrivacyParams) -> crate::Result<()> {
        self.check_many(params, 1)
    }

    /// Checks that `count` repeated charges of `params` would all fit
    /// (sequential composition is linear, so this is one arithmetic check),
    /// failing with [`MechanismError::BudgetExhausted`] — reporting the
    /// total requested (ε, δ) — and changing no state otherwise.
    pub fn check_many(&self, params: &PrivacyParams, count: usize) -> crate::Result<()> {
        let n = count as f64;
        let slack_e = BUDGET_SLACK * self.total.epsilon.max(1.0);
        let slack_d = BUDGET_SLACK * self.total.delta.max(f64::MIN_POSITIVE);
        let fits = self.spent_epsilon + params.epsilon * n <= self.total.epsilon + slack_e
            && self.spent_delta + params.delta * n <= self.total.delta + slack_d;
        if !fits {
            let remaining = self.remaining();
            return Err(MechanismError::BudgetExhausted {
                requested_epsilon: params.epsilon * n,
                requested_delta: params.delta * n,
                remaining_epsilon: remaining.epsilon,
                remaining_delta: remaining.delta,
            });
        }
        Ok(())
    }

    /// Charges `params` to the ledger, or fails with
    /// [`MechanismError::BudgetExhausted`] without changing any state.
    pub fn try_charge(&mut self, params: &PrivacyParams) -> crate::Result<()> {
        self.check(params)?;
        self.spent_epsilon += params.epsilon;
        self.spent_delta += params.delta;
        self.charges.push(*params);
        Ok(())
    }
}

/// The engine-independent session state: the ledger plus the answer/charge
/// logic shared by the borrowed [`Session`] and the owned [`OwnedSession`].
#[derive(Debug)]
struct SessionCore {
    ledger: BudgetLedger,
}

impl SessionCore {
    fn new(budget: PrivacyBudget) -> Self {
        SessionCore {
            ledger: BudgetLedger::new(budget),
        }
    }

    fn answer_with_privacy<W: Workload + ?Sized, R: Rng>(
        &mut self,
        engine: &Engine,
        workload: &W,
        privacy: PrivacyParams,
        x: &[f64],
        rng: &mut R,
    ) -> crate::Result<EngineAnswer> {
        self.ledger.check(&privacy)?;
        let answer = engine.answer_with_privacy(workload, privacy, x, rng)?;
        self.ledger
            .try_charge(&privacy)
            .expect("affordability was checked before answering");
        Ok(answer)
    }

    fn answer_with_strategy<W: Workload + ?Sized, R: Rng>(
        &mut self,
        engine: &Engine,
        workload: &W,
        strategy: Arc<Strategy>,
        x: &[f64],
        rng: &mut R,
    ) -> crate::Result<EngineAnswer> {
        let privacy = *engine.privacy();
        self.ledger.check(&privacy)?;
        let answer = engine.answer_with_strategy(workload, strategy, x, rng)?;
        self.ledger
            .try_charge(&privacy)
            .expect("affordability was checked before answering");
        Ok(answer)
    }

    fn answer_batch<W: Workload + ?Sized, R: Rng>(
        &mut self,
        engine: &Engine,
        workload: &W,
        xs: &[&[f64]],
        rng: &mut R,
    ) -> crate::Result<Vec<EngineAnswer>> {
        let privacy = *engine.privacy();
        // Fail closed before any noise is drawn: the whole batch must fit
        // (one (ε, δ) charge per data vector, sequential composition).
        self.ledger.check_many(&privacy, xs.len())?;
        let answers = engine.answer_batch_with_privacy(workload, privacy, xs, rng)?;
        for _ in 0..xs.len() {
            self.ledger
                .try_charge(&privacy)
                .expect("affordability of the whole batch was checked before answering");
        }
        Ok(answers)
    }
}

/// A serving session: an engine plus a privacy-budget ledger.
///
/// Created with [`Engine::session`].  The session borrows the engine, so the
/// (shared, data-independent) strategy cache keeps working across sessions —
/// only the budget is per-session state.  For a session that moves across
/// threads or async tasks, use [`Engine::owned_session`].
///
/// # Accounting contract
///
/// *Every* answering method on a session charges its privacy cost to the
/// ledger: [`Session::answer`] and [`Session::answer_with_strategy`] charge
/// the engine's per-answer (ε, δ), [`Session::answer_with_privacy`] charges
/// its explicit parameters, and [`Session::answer_batch`] charges once per
/// data vector.  A call whose charge does not fit fails with
/// [`MechanismError::BudgetExhausted`] before any noise is drawn or data is
/// touched, and spends nothing.  Answering through `session.engine()`
/// directly bypasses the ledger and is *not* covered by the session's
/// budget guarantee — the engine has no ledger of its own.
#[derive(Debug)]
pub struct Session<'e> {
    engine: &'e Engine,
    core: SessionCore,
}

impl<'e> Session<'e> {
    pub(crate) fn new(engine: &'e Engine, budget: PrivacyBudget) -> Self {
        Session {
            engine,
            core: SessionCore::new(budget),
        }
    }

    /// The engine this session serves through.
    pub fn engine(&self) -> &Engine {
        self.engine
    }

    /// The session's ledger (totals, spend, charge history).
    pub fn ledger(&self) -> &BudgetLedger {
        &self.core.ledger
    }

    /// Budget still available.
    pub fn remaining(&self) -> PrivacyBudget {
        self.core.ledger.remaining()
    }

    /// Answers a workload at the engine's per-answer privacy parameters,
    /// charging them to the ledger.  Fails with
    /// [`MechanismError::BudgetExhausted`] — before touching the data — when
    /// the charge does not fit.
    pub fn answer<W: Workload + ?Sized, R: Rng>(
        &mut self,
        workload: &W,
        x: &[f64],
        rng: &mut R,
    ) -> crate::Result<EngineAnswer> {
        self.answer_with_privacy(workload, *self.engine.privacy(), x, rng)
    }

    /// Answers a workload at explicit per-call privacy parameters (spending
    /// less of the budget on less important queries, say), charging them to
    /// the ledger.
    pub fn answer_with_privacy<W: Workload + ?Sized, R: Rng>(
        &mut self,
        workload: &W,
        privacy: PrivacyParams,
        x: &[f64],
        rng: &mut R,
    ) -> crate::Result<EngineAnswer> {
        self.core
            .answer_with_privacy(self.engine, workload, privacy, x, rng)
    }

    /// Answers with a caller-provided strategy
    /// ([`Engine::answer_with_strategy`]), charging the engine's per-answer
    /// (ε, δ) to the ledger like [`Session::answer`] — a custom strategy
    /// spends exactly as much privacy as a selected one.
    pub fn answer_with_strategy<W: Workload + ?Sized, R: Rng>(
        &mut self,
        workload: &W,
        strategy: Arc<Strategy>,
        x: &[f64],
        rng: &mut R,
    ) -> crate::Result<EngineAnswer> {
        self.core
            .answer_with_strategy(self.engine, workload, strategy, x, rng)
    }

    /// Answers many data vectors under one workload
    /// ([`Engine::answer_batch`]), charging the engine's per-answer (ε, δ)
    /// once *per vector*.  The whole batch must fit in the remaining budget
    /// or the call fails closed without answering anything.
    pub fn answer_batch<W: Workload + ?Sized, X: AsRef<[f64]>, R: Rng>(
        &mut self,
        workload: &W,
        xs: &[X],
        rng: &mut R,
    ) -> crate::Result<Vec<EngineAnswer>> {
        let xs: Vec<&[f64]> = xs.iter().map(AsRef::as_ref).collect();
        self.core.answer_batch(self.engine, workload, &xs, rng)
    }
}

/// A [`Session`] that owns its engine handle (`Arc<Engine>`), so it is
/// `Send + 'static` and can move across threads or async tasks — the shape a
/// concurrent server hands to each connection.  Budget accounting is
/// identical to [`Session`] (see its accounting contract); the engine's
/// strategy cache stays shared through the `Arc`.
///
/// Created with [`Engine::owned_session`] or [`OwnedSession::new`].
#[derive(Debug)]
pub struct OwnedSession {
    engine: Arc<Engine>,
    core: SessionCore,
}

impl OwnedSession {
    /// Opens an owned session over a shared engine.
    pub fn new(engine: Arc<Engine>, budget: PrivacyBudget) -> Self {
        OwnedSession {
            engine,
            core: SessionCore::new(budget),
        }
    }

    /// The engine this session serves through.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The session's ledger (totals, spend, charge history).
    pub fn ledger(&self) -> &BudgetLedger {
        &self.core.ledger
    }

    /// Budget still available.
    pub fn remaining(&self) -> PrivacyBudget {
        self.core.ledger.remaining()
    }

    /// Answers a workload at the engine's per-answer privacy parameters,
    /// charging them to the ledger (see [`Session::answer`]).
    pub fn answer<W: Workload + ?Sized, R: Rng>(
        &mut self,
        workload: &W,
        x: &[f64],
        rng: &mut R,
    ) -> crate::Result<EngineAnswer> {
        let privacy = *self.engine.privacy();
        self.answer_with_privacy(workload, privacy, x, rng)
    }

    /// Answers at explicit per-call privacy parameters, charging them to the
    /// ledger (see [`Session::answer_with_privacy`]).
    pub fn answer_with_privacy<W: Workload + ?Sized, R: Rng>(
        &mut self,
        workload: &W,
        privacy: PrivacyParams,
        x: &[f64],
        rng: &mut R,
    ) -> crate::Result<EngineAnswer> {
        self.core
            .answer_with_privacy(&self.engine, workload, privacy, x, rng)
    }

    /// Answers with a caller-provided strategy, charging the engine's
    /// per-answer (ε, δ) (see [`Session::answer_with_strategy`]).
    pub fn answer_with_strategy<W: Workload + ?Sized, R: Rng>(
        &mut self,
        workload: &W,
        strategy: Arc<Strategy>,
        x: &[f64],
        rng: &mut R,
    ) -> crate::Result<EngineAnswer> {
        self.core
            .answer_with_strategy(&self.engine, workload, strategy, x, rng)
    }

    /// Answers many data vectors under one workload, charging once per
    /// vector (see [`Session::answer_batch`]).
    pub fn answer_batch<W: Workload + ?Sized, X: AsRef<[f64]>, R: Rng>(
        &mut self,
        workload: &W,
        xs: &[X],
        rng: &mut R,
    ) -> crate::Result<Vec<EngineAnswer>> {
        let xs: Vec<&[f64]> = xs.iter().map(AsRef::as_ref).collect();
        self.core.answer_batch(&self.engine, workload, &xs, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_linalg::approx_eq;

    #[test]
    fn ledger_arithmetic() {
        let mut ledger = BudgetLedger::new(PrivacyBudget::new(1.0, 1e-3));
        let step = PrivacyParams::new(0.25, 1e-4);
        for i in 1..=4 {
            ledger.try_charge(&step).unwrap();
            assert!(approx_eq(ledger.spent().epsilon, 0.25 * i as f64, 1e-12));
        }
        assert!(approx_eq(ledger.remaining().epsilon, 0.0, 1e-9));
        assert!(approx_eq(ledger.remaining().delta, 1e-3 - 4e-4, 1e-12));
        assert_eq!(ledger.charges().len(), 4);
        let err = ledger.try_charge(&step).unwrap_err();
        assert!(matches!(err, MechanismError::BudgetExhausted { .. }));
        // The failed charge spent nothing.
        assert_eq!(ledger.charges().len(), 4);
        assert!(approx_eq(ledger.spent().epsilon, 1.0, 1e-12));
    }

    #[test]
    fn repeated_fractional_charges_exactly_exhaust() {
        // 10 × ε/10 must fit despite floating-point accumulation.
        let mut ledger = BudgetLedger::new(PrivacyBudget::pure(1.0));
        let step = PrivacyParams::pure(0.1);
        for _ in 0..10 {
            ledger.try_charge(&step).unwrap();
        }
        assert!(ledger.try_charge(&step).is_err());
    }

    #[test]
    fn delta_budget_is_enforced_independently() {
        let mut ledger = BudgetLedger::new(PrivacyBudget::new(10.0, 1e-4));
        // Plenty of epsilon, but the second charge overruns delta.
        ledger.try_charge(&PrivacyParams::new(1.0, 9e-5)).unwrap();
        let err = ledger
            .try_charge(&PrivacyParams::new(1.0, 9e-5))
            .unwrap_err();
        match err {
            MechanismError::BudgetExhausted {
                remaining_delta, ..
            } => assert!(remaining_delta < 2e-5),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "epsilon budget")]
    fn negative_budget_rejected() {
        PrivacyBudget::new(-1.0, 0.0);
    }

    #[test]
    fn answer_with_strategy_charges_the_ledger() {
        // Regression: custom-strategy answers used to be reachable only via
        // `session.engine().answer_with_strategy(...)`, which spends privacy
        // without charging the ledger.  The session-level method charges the
        // engine's per-answer (ε, δ) exactly like `answer`.
        use mm_strategies::identity::identity_strategy;
        use mm_workload::IdentityWorkload;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let p = PrivacyParams::new(0.5, 1e-4);
        let engine = Engine::builder().privacy(p).build().unwrap();
        let w = IdentityWorkload::new(8);
        let x = vec![3.0; 8];
        let strategy = Arc::new(identity_strategy(8));
        let mut rng = StdRng::seed_from_u64(21);

        let mut session = engine.session(PrivacyBudget::new(1.0, 1e-3));
        session
            .answer_with_strategy(&w, strategy.clone(), &x, &mut rng)
            .unwrap();
        assert!(approx_eq(session.ledger().spent().epsilon, 0.5, 1e-12));
        assert!(approx_eq(session.ledger().spent().delta, 1e-4, 1e-15));
        session
            .answer_with_strategy(&w, strategy.clone(), &x, &mut rng)
            .unwrap();
        // Third answer does not fit (ε budget 1.0, spend 1.0) and fails
        // closed before answering.
        let err = session
            .answer_with_strategy(&w, strategy, &x, &mut rng)
            .unwrap_err();
        assert!(matches!(err, MechanismError::BudgetExhausted { .. }));
        assert_eq!(session.ledger().charges().len(), 2);
    }

    #[test]
    fn answer_batch_charges_per_vector_and_fails_closed() {
        use mm_workload::IdentityWorkload;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let p = PrivacyParams::new(0.25, 1e-5);
        let engine = Engine::builder().privacy(p).build().unwrap();
        let w = IdentityWorkload::new(4);
        let xs: Vec<Vec<f64>> = (0..3).map(|k| vec![k as f64; 4]).collect();
        let mut rng = StdRng::seed_from_u64(22);

        // Budget for exactly three vectors.
        let mut session = engine.session(PrivacyBudget::new(0.75, 1e-3));
        let answers = session.answer_batch(&w, &xs, &mut rng).unwrap();
        assert_eq!(answers.len(), 3);
        assert_eq!(session.ledger().charges().len(), 3, "one charge per vector");
        assert!(approx_eq(session.ledger().spent().epsilon, 0.75, 1e-12));

        // A batch that does not fit spends *nothing* (all-or-nothing).
        let err = session.answer_batch(&w, &xs, &mut rng).unwrap_err();
        assert!(matches!(err, MechanismError::BudgetExhausted { .. }));
        assert_eq!(session.ledger().charges().len(), 3);

        // A two-vector batch would not fit a 1.5-vector leftover either.
        let mut tight = engine.session(PrivacyBudget::new(0.3, 1e-3));
        assert!(tight.answer_batch(&w, &xs[..2], &mut rng).is_err());
        assert_eq!(tight.ledger().charges().len(), 0);
        assert!(tight.answer_batch(&w, &xs[..1], &mut rng).is_ok());
    }

    #[test]
    fn answer_batch_edge_sizes_charge_exactly_k_times() {
        // Edge cases of the all-or-nothing batch charging: an empty batch
        // succeeds and charges nothing, a K = 1 batch charges exactly once —
        // for both the borrowed and the owned session.
        use mm_workload::IdentityWorkload;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let p = PrivacyParams::new(0.25, 1e-5);
        let engine = Arc::new(Engine::builder().privacy(p).build().unwrap());
        let w = IdentityWorkload::new(4);
        let mut rng = StdRng::seed_from_u64(30);

        let mut session = engine.session(PrivacyBudget::new(1.0, 1e-3));
        let empty: &[Vec<f64>] = &[];
        let answers = session.answer_batch(&w, empty, &mut rng).unwrap();
        assert!(answers.is_empty());
        assert_eq!(session.ledger().charges().len(), 0, "empty batch is free");
        assert!(approx_eq(session.ledger().spent().epsilon, 0.0, 1e-15));

        let one = vec![vec![2.0; 4]];
        let answers = session.answer_batch(&w, &one, &mut rng).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(session.ledger().charges().len(), 1, "K = 1 charges once");
        assert!(approx_eq(session.ledger().spent().epsilon, 0.25, 1e-12));

        let mut owned = engine.owned_session(PrivacyBudget::new(1.0, 1e-3));
        assert!(owned.answer_batch(&w, empty, &mut rng).unwrap().is_empty());
        assert_eq!(owned.ledger().charges().len(), 0);
        assert_eq!(owned.answer_batch(&w, &one, &mut rng).unwrap().len(), 1);
        assert_eq!(owned.ledger().charges().len(), 1);

        // An exhausted session still accepts the (free) empty batch.
        let mut broke = engine.session(PrivacyBudget::new(0.0, 0.0));
        assert!(broke.answer_batch(&w, empty, &mut rng).unwrap().is_empty());
        assert!(broke.answer_batch(&w, &one, &mut rng).is_err());
        assert_eq!(broke.ledger().charges().len(), 0);
    }

    #[test]
    fn owned_session_moves_across_threads() {
        use mm_workload::IdentityWorkload;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let engine = Arc::new(
            Engine::builder()
                .privacy(PrivacyParams::new(0.5, 1e-4))
                .build()
                .unwrap(),
        );
        let w = IdentityWorkload::new(8);
        let mut session = engine.owned_session(PrivacyBudget::new(1.0, 1e-3));
        let handle = std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(23);
            let x = vec![5.0; 8];
            session.answer(&w, &x, &mut rng).unwrap();
            session.answer(&w, &x, &mut rng).unwrap();
            assert!(session.answer(&w, &x, &mut rng).is_err(), "ε exhausted");
            session
        });
        let session = handle.join().unwrap();
        assert_eq!(session.ledger().charges().len(), 2);
        // The owned session shared the engine's cache: one selection total.
        assert_eq!(engine.stats().selections, 1);
    }
}
