//! Sessions and privacy-budget accounting.
//!
//! A [`Session`] wraps an [`Engine`] with a [`BudgetLedger`] — a total
//! privacy budget plus a pluggable [`Accountant`] deciding how the charges
//! *compose*.  The default accountant implements basic sequential
//! composition (a sequence of (ε₁,δ₁)-, (ε₂,δ₂)-, … DP mechanisms on the
//! same database satisfies (Σεᵢ, Σδᵢ)-DP); the
//! [`accounting`](crate::accounting) module provides advanced-composition
//! and Rényi (RDP) accountants that admit substantially more answers at the
//! same total budget.  Every successful answer charges its full
//! [`MechanismEvent`] (backend kind, noise scale, sensitivity, requested
//! (ε, δ)) to the ledger; a call whose charge does not fit in the remaining
//! budget fails with [`MechanismError::BudgetExhausted`] *before* any noise
//! is drawn or data touched, so a failed call spends nothing.

use crate::accounting::{Accountant, MechanismEvent, SequentialAccountant};
use crate::engine::{Engine, EngineAnswer, StructuredAnswer};
use crate::privacy::PrivacyParams;
// Referenced by the accounting-contract doc links (and the tests).
#[allow(unused_imports)]
use crate::MechanismError;
use mm_strategies::Strategy;
use mm_workload::{StructuredWorkload, Workload};
use rand::Rng;
use std::sync::Arc;

/// A total privacy budget (ε, δ) available to a session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivacyBudget {
    /// Total ε available.
    pub epsilon: f64,
    /// Total δ available.
    pub delta: f64,
}

impl PrivacyBudget {
    /// Creates a budget, rejecting negative or non-finite values with a
    /// typed error — the form to use on budgets that arrive from a caller
    /// (a config file, an RPC) rather than from a literal in the source.
    pub fn try_new(epsilon: f64, delta: f64) -> Result<Self, MechanismError> {
        if !(epsilon >= 0.0 && epsilon.is_finite()) {
            return Err(MechanismError::InvalidArgument(format!(
                "epsilon budget must be finite and >= 0, got {epsilon}"
            )));
        }
        if !(0.0..1.0).contains(&delta) {
            return Err(MechanismError::InvalidArgument(format!(
                "delta budget must lie in [0, 1), got {delta}"
            )));
        }
        Ok(PrivacyBudget { epsilon, delta })
    }

    /// Creates a budget; panics on negative or non-finite values.  See
    /// [`PrivacyBudget::try_new`] for the non-panicking form.
    pub fn new(epsilon: f64, delta: f64) -> Self {
        match PrivacyBudget::try_new(epsilon, delta) {
            Ok(budget) => budget,
            Err(e) => panic!("{e}"),
        }
    }

    /// A pure-DP budget (δ = 0).
    pub fn pure(epsilon: f64) -> Self {
        PrivacyBudget::new(epsilon, 0.0)
    }
}

/// A privacy-budget ledger: a total budget, a pluggable [`Accountant`]
/// deciding how charges compose, and the history of accepted charges.
///
/// [`BudgetLedger::new`] uses the [`SequentialAccountant`], a drop-in
/// replacement for the original sequential-composition ledger (same API and
/// admission semantics, with compensated summation and headroom reporting as
/// the intentional fixes); [`BudgetLedger::with_accountant`] plugs in any
/// other composition rule (advanced composition, RDP — see
/// [`crate::accounting`]).
///
/// # Slack semantics
///
/// Affordability tolerates an absolute overshoot of
/// `BUDGET_SLACK · max(total, 1)` per component (resp.
/// `max(total, f64::MIN_POSITIVE)` for δ), absorbing floating-point drift so
/// that e.g. ten charges of ε/10 exactly exhaust an ε budget.  For the
/// sequential accountant the admission boundary is the *headroom*
/// `max(0, total + slack − spent)`: a request is accepted iff it fits the
/// headroom componentwise, and a rejected request's
/// [`MechanismError::BudgetExhausted`] reports that same headroom as the
/// remaining budget — so the accept/reject boundary is exactly explainable
/// from the error.  [`BudgetLedger::remaining`] stays the conservative
/// clamped view `max(0, total − spent)` (never including the slack), which
/// may under-report the admissible headroom by at most the slack.
#[derive(Debug, Clone)]
pub struct BudgetLedger {
    accountant: Box<dyn Accountant>,
}

impl BudgetLedger {
    /// A fresh ledger over the given total budget, accounting sequential
    /// composition.
    pub fn new(total: PrivacyBudget) -> Self {
        BudgetLedger::with_accountant(Box::new(SequentialAccountant::new(total)))
    }

    /// A fresh ledger charging through the given accountant.
    pub fn with_accountant(accountant: Box<dyn Accountant>) -> Self {
        BudgetLedger { accountant }
    }

    /// The accountant this ledger charges through.
    pub fn accountant(&self) -> &dyn Accountant {
        self.accountant.as_ref()
    }

    /// The total budget the ledger was created with.
    pub fn total(&self) -> PrivacyBudget {
        self.accountant.total()
    }

    /// Budget spent so far under the accountant's composition (for the
    /// sequential accountant: the sums of the charged ε's and δ's; for
    /// advanced/RDP accountants: the composed spend at the budget's δ,
    /// typically far below the sums).
    pub fn spent(&self) -> PrivacyBudget {
        self.accountant.spent()
    }

    /// Budget still available (clamped at zero).
    pub fn remaining(&self) -> PrivacyBudget {
        self.accountant.remaining()
    }

    /// Every charge accepted so far, in order: the requested (ε, δ) of each
    /// recorded event.  Derived from [`BudgetLedger::events`] (the single
    /// source of truth), which carries the full mechanism events.
    pub fn charges(&self) -> Vec<PrivacyParams> {
        self.events()
            .iter()
            .map(MechanismEvent::requested)
            .collect()
    }

    /// Every mechanism event accepted so far, in order (an owned snapshot;
    /// see [`Accountant::events`]).
    pub fn events(&self) -> Vec<MechanismEvent> {
        self.accountant.events()
    }

    /// Whether a charge of `params` would fit in the remaining budget.
    pub fn can_afford(&self, params: &PrivacyParams) -> bool {
        self.check_many(params, 1).is_ok()
    }

    /// Checks that a charge of `params` fits, failing with
    /// [`MechanismError::BudgetExhausted`] (and changing no state) otherwise.
    pub fn check(&self, params: &PrivacyParams) -> crate::Result<()> {
        self.check_many(params, 1)
    }

    /// Checks that `count` repeated charges of `params` would all fit under
    /// the accountant's *composed* post-charge spend (for sequential
    /// composition this is one linear arithmetic check; for advanced/RDP
    /// accountants the k-fold composed bound is evaluated), failing with
    /// [`MechanismError::BudgetExhausted`] — reporting the total requested
    /// (ε, δ) and the accountant's view of spend — and changing no state
    /// otherwise.
    ///
    /// A bare (ε, δ) pair carries no mechanism information, so it is checked
    /// as a [*declared*](MechanismEvent::declared) event; mechanism-aware
    /// paths use [`BudgetLedger::check_event_many`].
    pub fn check_many(&self, params: &PrivacyParams, count: usize) -> crate::Result<()> {
        self.check_event_many(&MechanismEvent::declared(*params), count)
    }

    /// Checks that `count` repeated charges of the full mechanism `event`
    /// would fit the composed post-charge spend, changing no state.
    pub fn check_event_many(&self, event: &MechanismEvent, count: usize) -> crate::Result<()> {
        self.accountant.check_many(event, count)
    }

    /// Charges `params` to the ledger, or fails with
    /// [`MechanismError::BudgetExhausted`] without changing any state.
    /// The charge is recorded as a [*declared*](MechanismEvent::declared)
    /// event (composed sequentially by every accountant); mechanism-aware
    /// paths use [`BudgetLedger::charge_event_many`].
    pub fn try_charge(&mut self, params: &PrivacyParams) -> crate::Result<()> {
        self.charge_event_many(&MechanismEvent::declared(*params), 1)
    }

    /// Charges `count` copies of the full mechanism `event` (all-or-nothing:
    /// the composed post-charge spend must fit or nothing is charged).
    pub fn charge_event_many(&mut self, event: &MechanismEvent, count: usize) -> crate::Result<()> {
        self.accountant.charge_many(event, count)
    }
}

/// The engine-independent session state: the ledger plus the answer/charge
/// logic shared by the borrowed [`Session`] and the owned [`OwnedSession`].
#[derive(Debug)]
struct SessionCore {
    ledger: BudgetLedger,
}

impl SessionCore {
    fn new(ledger: BudgetLedger) -> Self {
        SessionCore { ledger }
    }

    /// The session answer paths below all start with a fast-fail
    /// affordability pre-check — *before* any strategy selection or cache
    /// work — probing the accountant with the backend's event at **unit
    /// sensitivity**.  The RDP curves are functions of the ratio σ/Δ only
    /// (and the other accountants of the requested (ε, δ) only), so for the
    /// built-in backends this is exactly the decision the authoritative
    /// post-selection check inside the engine will make — an exhausted
    /// session rejects in O(1) instead of paying an O(n³) selection and
    /// churning the shared strategy cache.
    fn answer_with_privacy<W: Workload + ?Sized, R: Rng>(
        &mut self,
        engine: &Engine,
        workload: &W,
        privacy: PrivacyParams,
        x: &[f64],
        rng: &mut R,
    ) -> crate::Result<EngineAnswer> {
        let probe = engine.backend().mechanism_event(&privacy, 1.0);
        self.ledger.check_event_many(&probe, 1)?;
        let mut answers =
            engine.answer_batch_accounted(workload, privacy, &[x], rng, &mut self.ledger)?;
        Ok(answers.pop().expect("one answer per data vector"))
    }

    fn answer_with_strategy<W: Workload + ?Sized, R: Rng>(
        &mut self,
        engine: &Engine,
        workload: &W,
        strategy: Arc<Strategy>,
        x: &[f64],
        rng: &mut R,
    ) -> crate::Result<EngineAnswer> {
        let probe = engine.backend().mechanism_event(engine.privacy(), 1.0);
        self.ledger.check_event_many(&probe, 1)?;
        engine.answer_with_strategy_accounted(workload, strategy, x, rng, &mut self.ledger)
    }

    fn answer_structured<W: StructuredWorkload + ?Sized, R: Rng>(
        &mut self,
        engine: &Engine,
        workload: &W,
        privacy: PrivacyParams,
        x: &[f64],
        rng: &mut R,
    ) -> crate::Result<StructuredAnswer> {
        let probe = engine.backend().mechanism_event(&privacy, 1.0);
        self.ledger.check_event_many(&probe, 1)?;
        engine.answer_structured_accounted(workload, privacy, x, rng, &mut self.ledger)
    }

    fn answer_batch<W: Workload + ?Sized, R: Rng>(
        &mut self,
        engine: &Engine,
        workload: &W,
        xs: &[&[f64]],
        rng: &mut R,
    ) -> crate::Result<Vec<EngineAnswer>> {
        // All-or-nothing: the engine re-checks the *composed* spend of the
        // whole batch against the accountant before any noise is drawn, so
        // a batch that does not fit spends nothing.
        let probe = engine.backend().mechanism_event(engine.privacy(), 1.0);
        self.ledger.check_event_many(&probe, xs.len())?;
        engine.answer_batch_accounted(workload, *engine.privacy(), xs, rng, &mut self.ledger)
    }
}

/// A serving session: an engine plus a privacy-budget ledger.
///
/// Created with [`Engine::session`] (which accounts through the engine's
/// configured [`AccountantFactory`](crate::accounting::AccountantFactory),
/// sequential composition by default) or
/// [`Engine::session_with_accountant`].  The session borrows the engine, so
/// the (shared, data-independent) strategy cache keeps working across
/// sessions — only the budget is per-session state.  For a session that
/// moves across threads or async tasks, use [`Engine::owned_session`].
///
/// # Accounting contract
///
/// *Every* answering method on a session charges its privacy cost to the
/// ledger as a full [`MechanismEvent`] (backend kind, noise scale,
/// sensitivity, requested (ε, δ)): [`Session::answer`] and
/// [`Session::answer_with_strategy`] charge the engine's per-answer (ε, δ),
/// [`Session::answer_with_privacy`] charges its explicit parameters, and
/// [`Session::answer_batch`] charges once per data vector, with
/// affordability decided by the accountant's *composed* post-charge spend
/// (all-or-nothing for the batch).  A call whose charge does not fit fails
/// with [`MechanismError::BudgetExhausted`] before any noise is drawn or
/// data is touched, and spends nothing; a call that fails for any other
/// reason (after the affordability check) also spends nothing.  Answering
/// through `session.engine()` directly bypasses the ledger and is *not*
/// covered by the session's budget guarantee — the engine has no ledger of
/// its own.
#[derive(Debug)]
pub struct Session<'e> {
    engine: &'e Engine,
    core: SessionCore,
}

impl<'e> Session<'e> {
    pub(crate) fn new(engine: &'e Engine, budget: PrivacyBudget) -> Self {
        let accountant = engine.accountant_factory().accountant(budget);
        Session::with_accountant(engine, accountant)
    }

    pub(crate) fn with_accountant(engine: &'e Engine, accountant: Box<dyn Accountant>) -> Self {
        Session {
            engine,
            core: SessionCore::new(BudgetLedger::with_accountant(accountant)),
        }
    }

    /// The engine this session serves through.
    pub fn engine(&self) -> &Engine {
        self.engine
    }

    /// The session's ledger (totals, composed spend, charge history).
    pub fn ledger(&self) -> &BudgetLedger {
        &self.core.ledger
    }

    /// Budget still available under the session's accountant.
    pub fn remaining(&self) -> PrivacyBudget {
        self.core.ledger.remaining()
    }

    /// Answers a workload at the engine's per-answer privacy parameters,
    /// charging them to the ledger.  Fails with
    /// [`MechanismError::BudgetExhausted`] — before touching the data — when
    /// the charge does not fit.
    pub fn answer<W: Workload + ?Sized, R: Rng>(
        &mut self,
        workload: &W,
        x: &[f64],
        rng: &mut R,
    ) -> crate::Result<EngineAnswer> {
        self.answer_with_privacy(workload, *self.engine.privacy(), x, rng)
    }

    /// Answers a workload at explicit per-call privacy parameters (spending
    /// less of the budget on less important queries, say), charging them to
    /// the ledger.
    pub fn answer_with_privacy<W: Workload + ?Sized, R: Rng>(
        &mut self,
        workload: &W,
        privacy: PrivacyParams,
        x: &[f64],
        rng: &mut R,
    ) -> crate::Result<EngineAnswer> {
        self.core
            .answer_with_privacy(self.engine, workload, privacy, x, rng)
    }

    /// Answers with a caller-provided strategy
    /// ([`Engine::answer_with_strategy`]), charging the engine's per-answer
    /// (ε, δ) to the ledger like [`Session::answer`] — a custom strategy
    /// spends exactly as much privacy as a selected one.
    pub fn answer_with_strategy<W: Workload + ?Sized, R: Rng>(
        &mut self,
        workload: &W,
        strategy: Arc<Strategy>,
        x: &[f64],
        rng: &mut R,
    ) -> crate::Result<EngineAnswer> {
        self.core
            .answer_with_strategy(self.engine, workload, strategy, x, rng)
    }

    /// Answers a structured workload through the engine's matrix-free path
    /// ([`Engine::answer_structured`]), charging the engine's per-answer
    /// (ε, δ) to the ledger exactly like [`Session::answer`] — the
    /// structured path spends privacy identically to the dense one.
    pub fn answer_structured<W: StructuredWorkload + ?Sized, R: Rng>(
        &mut self,
        workload: &W,
        x: &[f64],
        rng: &mut R,
    ) -> crate::Result<StructuredAnswer> {
        self.core
            .answer_structured(self.engine, workload, *self.engine.privacy(), x, rng)
    }

    /// Answers a structured workload at explicit per-call privacy
    /// parameters, charging them to the ledger (the structured analogue of
    /// [`Session::answer_with_privacy`]).
    pub fn answer_structured_with_privacy<W: StructuredWorkload + ?Sized, R: Rng>(
        &mut self,
        workload: &W,
        privacy: PrivacyParams,
        x: &[f64],
        rng: &mut R,
    ) -> crate::Result<StructuredAnswer> {
        self.core
            .answer_structured(self.engine, workload, privacy, x, rng)
    }

    /// Answers many data vectors under one workload
    /// ([`Engine::answer_batch`]), charging the engine's per-answer (ε, δ)
    /// once *per vector*.  The whole batch must fit the accountant's
    /// composed post-charge spend or the call fails closed without
    /// answering anything.
    pub fn answer_batch<W: Workload + ?Sized, X: AsRef<[f64]>, R: Rng>(
        &mut self,
        workload: &W,
        xs: &[X],
        rng: &mut R,
    ) -> crate::Result<Vec<EngineAnswer>> {
        let xs: Vec<&[f64]> = xs.iter().map(AsRef::as_ref).collect();
        self.core.answer_batch(self.engine, workload, &xs, rng)
    }
}

/// A [`Session`] that owns its engine handle (`Arc<Engine>`), so it is
/// `Send + 'static` and can move across threads or async tasks — the shape a
/// concurrent server hands to each connection.  Budget accounting is
/// identical to [`Session`] (see its accounting contract); the engine's
/// strategy cache stays shared through the `Arc`.
///
/// Created with [`Engine::owned_session`],
/// [`Engine::owned_session_with_accountant`] or [`OwnedSession::new`].
#[derive(Debug)]
pub struct OwnedSession {
    engine: Arc<Engine>,
    core: SessionCore,
}

impl OwnedSession {
    /// Opens an owned session over a shared engine, accounting through the
    /// engine's configured accountant factory.
    pub fn new(engine: Arc<Engine>, budget: PrivacyBudget) -> Self {
        let accountant = engine.accountant_factory().accountant(budget);
        OwnedSession::with_accountant(engine, accountant)
    }

    /// Opens an owned session charging through an explicit accountant.
    pub fn with_accountant(engine: Arc<Engine>, accountant: Box<dyn Accountant>) -> Self {
        OwnedSession {
            engine,
            core: SessionCore::new(BudgetLedger::with_accountant(accountant)),
        }
    }

    /// The engine this session serves through.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The session's ledger (totals, composed spend, charge history).
    pub fn ledger(&self) -> &BudgetLedger {
        &self.core.ledger
    }

    /// Budget still available under the session's accountant.
    pub fn remaining(&self) -> PrivacyBudget {
        self.core.ledger.remaining()
    }

    /// Answers a workload at the engine's per-answer privacy parameters,
    /// charging them to the ledger (see [`Session::answer`]).
    pub fn answer<W: Workload + ?Sized, R: Rng>(
        &mut self,
        workload: &W,
        x: &[f64],
        rng: &mut R,
    ) -> crate::Result<EngineAnswer> {
        let privacy = *self.engine.privacy();
        self.answer_with_privacy(workload, privacy, x, rng)
    }

    /// Answers at explicit per-call privacy parameters, charging them to the
    /// ledger (see [`Session::answer_with_privacy`]).
    pub fn answer_with_privacy<W: Workload + ?Sized, R: Rng>(
        &mut self,
        workload: &W,
        privacy: PrivacyParams,
        x: &[f64],
        rng: &mut R,
    ) -> crate::Result<EngineAnswer> {
        self.core
            .answer_with_privacy(&self.engine, workload, privacy, x, rng)
    }

    /// Answers with a caller-provided strategy, charging the engine's
    /// per-answer (ε, δ) (see [`Session::answer_with_strategy`]).
    pub fn answer_with_strategy<W: Workload + ?Sized, R: Rng>(
        &mut self,
        workload: &W,
        strategy: Arc<Strategy>,
        x: &[f64],
        rng: &mut R,
    ) -> crate::Result<EngineAnswer> {
        self.core
            .answer_with_strategy(&self.engine, workload, strategy, x, rng)
    }

    /// Answers a structured workload through the engine's matrix-free path,
    /// charging the engine's per-answer (ε, δ) (see
    /// [`Session::answer_structured`]).
    pub fn answer_structured<W: StructuredWorkload + ?Sized, R: Rng>(
        &mut self,
        workload: &W,
        x: &[f64],
        rng: &mut R,
    ) -> crate::Result<StructuredAnswer> {
        let privacy = *self.engine.privacy();
        self.core
            .answer_structured(&self.engine, workload, privacy, x, rng)
    }

    /// Answers a structured workload at explicit per-call privacy
    /// parameters (see [`Session::answer_structured_with_privacy`]).
    pub fn answer_structured_with_privacy<W: StructuredWorkload + ?Sized, R: Rng>(
        &mut self,
        workload: &W,
        privacy: PrivacyParams,
        x: &[f64],
        rng: &mut R,
    ) -> crate::Result<StructuredAnswer> {
        self.core
            .answer_structured(&self.engine, workload, privacy, x, rng)
    }

    /// Answers many data vectors under one workload, charging once per
    /// vector (see [`Session::answer_batch`]).
    pub fn answer_batch<W: Workload + ?Sized, X: AsRef<[f64]>, R: Rng>(
        &mut self,
        workload: &W,
        xs: &[X],
        rng: &mut R,
    ) -> crate::Result<Vec<EngineAnswer>> {
        let xs: Vec<&[f64]> = xs.iter().map(AsRef::as_ref).collect();
        self.core.answer_batch(&self.engine, workload, &xs, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_linalg::approx_eq;

    #[test]
    fn ledger_arithmetic() {
        let mut ledger = BudgetLedger::new(PrivacyBudget::new(1.0, 1e-3));
        let step = PrivacyParams::new(0.25, 1e-4);
        for i in 1..=4 {
            ledger.try_charge(&step).unwrap();
            assert!(approx_eq(ledger.spent().epsilon, 0.25 * i as f64, 1e-12));
        }
        assert!(approx_eq(ledger.remaining().epsilon, 0.0, 1e-9));
        assert!(approx_eq(ledger.remaining().delta, 1e-3 - 4e-4, 1e-12));
        assert_eq!(ledger.charges().len(), 4);
        let err = ledger.try_charge(&step).unwrap_err();
        assert!(matches!(err, MechanismError::BudgetExhausted { .. }));
        // The failed charge spent nothing.
        assert_eq!(ledger.charges().len(), 4);
        assert!(approx_eq(ledger.spent().epsilon, 1.0, 1e-12));
    }

    #[test]
    fn repeated_fractional_charges_exactly_exhaust() {
        // 10 × ε/10 must fit despite floating-point accumulation.
        let mut ledger = BudgetLedger::new(PrivacyBudget::pure(1.0));
        let step = PrivacyParams::pure(0.1);
        for _ in 0..10 {
            ledger.try_charge(&step).unwrap();
        }
        assert!(ledger.try_charge(&step).is_err());
    }

    #[test]
    fn delta_budget_is_enforced_independently() {
        let mut ledger = BudgetLedger::new(PrivacyBudget::new(10.0, 1e-4));
        // Plenty of epsilon, but the second charge overruns delta.
        ledger.try_charge(&PrivacyParams::new(1.0, 9e-5)).unwrap();
        let err = ledger
            .try_charge(&PrivacyParams::new(1.0, 9e-5))
            .unwrap_err();
        match err {
            MechanismError::BudgetExhausted {
                remaining_delta, ..
            } => assert!(remaining_delta < 2e-5),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "epsilon budget")]
    fn negative_budget_rejected() {
        PrivacyBudget::new(-1.0, 0.0);
    }

    #[test]
    fn can_afford_matches_the_reported_boundary() {
        // Regression for the slack-vs-clamped-remaining inconsistency: the
        // ledger's accept/reject boundary is the headroom the error reports,
        // and `can_afford` agrees with `try_charge` at that boundary.
        let mut ledger = BudgetLedger::new(PrivacyBudget::pure(1.0));
        ledger.try_charge(&PrivacyParams::pure(1.0)).unwrap();
        assert_eq!(ledger.remaining().epsilon, 0.0);
        let err = ledger.try_charge(&PrivacyParams::pure(0.5)).unwrap_err();
        match err {
            MechanismError::BudgetExhausted {
                requested_epsilon,
                remaining_epsilon,
                spent_epsilon,
                accountant,
                ..
            } => {
                // The reported remainder is the admission boundary (the
                // slack-aware headroom): any request at or below it is
                // affordable, anything above it is not.
                assert!(requested_epsilon > remaining_epsilon);
                assert!(remaining_epsilon > 0.0 && remaining_epsilon < 1e-8);
                assert!(ledger.can_afford(&PrivacyParams::pure(remaining_epsilon)));
                assert!(!ledger.can_afford(&PrivacyParams::pure(remaining_epsilon * 2.0)));
                assert!(approx_eq(spent_epsilon, 1.0, 1e-12));
                assert_eq!(accountant, "sequential");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn ledger_records_full_mechanism_events() {
        use crate::accounting::MechanismKind;
        let mut ledger = BudgetLedger::new(PrivacyBudget::new(2.0, 1e-3));
        let p = PrivacyParams::paper_default();
        let event = MechanismEvent::gaussian(p, p.gaussian_unit_sigma() * 2.0, 2.0);
        ledger.charge_event_many(&event, 2).unwrap();
        assert_eq!(ledger.events().len(), 2);
        assert_eq!(ledger.charges().len(), 2);
        assert_eq!(ledger.events()[0].kind(), MechanismKind::Gaussian);
        assert_eq!(ledger.events()[0].sensitivity(), 2.0);
        assert_eq!(ledger.charges()[0], p);
    }

    #[test]
    fn answer_with_strategy_charges_the_ledger() {
        // Regression: custom-strategy answers used to be reachable only via
        // `session.engine().answer_with_strategy(...)`, which spends privacy
        // without charging the ledger.  The session-level method charges the
        // engine's per-answer (ε, δ) exactly like `answer`.
        use mm_strategies::identity::identity_strategy;
        use mm_workload::IdentityWorkload;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let p = PrivacyParams::new(0.5, 1e-4);
        let engine = Engine::builder().privacy(p).build().unwrap();
        let w = IdentityWorkload::new(8);
        let x = vec![3.0; 8];
        let strategy = Arc::new(identity_strategy(8));
        let mut rng = StdRng::seed_from_u64(21);

        let mut session = engine.session(PrivacyBudget::new(1.0, 1e-3));
        session
            .answer_with_strategy(&w, strategy.clone(), &x, &mut rng)
            .unwrap();
        assert!(approx_eq(session.ledger().spent().epsilon, 0.5, 1e-12));
        assert!(approx_eq(session.ledger().spent().delta, 1e-4, 1e-15));
        session
            .answer_with_strategy(&w, strategy.clone(), &x, &mut rng)
            .unwrap();
        // Third answer does not fit (ε budget 1.0, spend 1.0) and fails
        // closed before answering.
        let err = session
            .answer_with_strategy(&w, strategy, &x, &mut rng)
            .unwrap_err();
        assert!(matches!(err, MechanismError::BudgetExhausted { .. }));
        assert_eq!(session.ledger().charges().len(), 2);
    }

    #[test]
    fn answer_batch_charges_per_vector_and_fails_closed() {
        use mm_workload::IdentityWorkload;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let p = PrivacyParams::new(0.25, 1e-5);
        let engine = Engine::builder().privacy(p).build().unwrap();
        let w = IdentityWorkload::new(4);
        let xs: Vec<Vec<f64>> = (0..3).map(|k| vec![k as f64; 4]).collect();
        let mut rng = StdRng::seed_from_u64(22);

        // Budget for exactly three vectors.
        let mut session = engine.session(PrivacyBudget::new(0.75, 1e-3));
        let answers = session.answer_batch(&w, &xs, &mut rng).unwrap();
        assert_eq!(answers.len(), 3);
        assert_eq!(session.ledger().charges().len(), 3, "one charge per vector");
        assert!(approx_eq(session.ledger().spent().epsilon, 0.75, 1e-12));

        // A batch that does not fit spends *nothing* (all-or-nothing).
        let err = session.answer_batch(&w, &xs, &mut rng).unwrap_err();
        assert!(matches!(err, MechanismError::BudgetExhausted { .. }));
        assert_eq!(session.ledger().charges().len(), 3);

        // A two-vector batch would not fit a 1.5-vector leftover either.
        let mut tight = engine.session(PrivacyBudget::new(0.3, 1e-3));
        assert!(tight.answer_batch(&w, &xs[..2], &mut rng).is_err());
        assert_eq!(tight.ledger().charges().len(), 0);
        assert!(tight.answer_batch(&w, &xs[..1], &mut rng).is_ok());
    }

    #[test]
    fn answer_batch_edge_sizes_charge_exactly_k_times() {
        // Edge cases of the all-or-nothing batch charging: an empty batch
        // succeeds and charges nothing, a K = 1 batch charges exactly once —
        // for both the borrowed and the owned session.
        use mm_workload::IdentityWorkload;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let p = PrivacyParams::new(0.25, 1e-5);
        let engine = Arc::new(Engine::builder().privacy(p).build().unwrap());
        let w = IdentityWorkload::new(4);
        let mut rng = StdRng::seed_from_u64(30);

        let mut session = engine.session(PrivacyBudget::new(1.0, 1e-3));
        let empty: &[Vec<f64>] = &[];
        let answers = session.answer_batch(&w, empty, &mut rng).unwrap();
        assert!(answers.is_empty());
        assert_eq!(session.ledger().charges().len(), 0, "empty batch is free");
        assert!(approx_eq(session.ledger().spent().epsilon, 0.0, 1e-15));

        let one = vec![vec![2.0; 4]];
        let answers = session.answer_batch(&w, &one, &mut rng).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(session.ledger().charges().len(), 1, "K = 1 charges once");
        assert!(approx_eq(session.ledger().spent().epsilon, 0.25, 1e-12));

        let mut owned = engine.owned_session(PrivacyBudget::new(1.0, 1e-3));
        assert!(owned.answer_batch(&w, empty, &mut rng).unwrap().is_empty());
        assert_eq!(owned.ledger().charges().len(), 0);
        assert_eq!(owned.answer_batch(&w, &one, &mut rng).unwrap().len(), 1);
        assert_eq!(owned.ledger().charges().len(), 1);

        // An exhausted session still accepts the (free) empty batch.
        let mut broke = engine.session(PrivacyBudget::new(0.0, 0.0));
        assert!(broke.answer_batch(&w, empty, &mut rng).unwrap().is_empty());
        assert!(broke.answer_batch(&w, &one, &mut rng).is_err());
        assert_eq!(broke.ledger().charges().len(), 0);
    }

    #[test]
    fn owned_session_moves_across_threads() {
        use mm_workload::IdentityWorkload;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let engine = Arc::new(
            Engine::builder()
                .privacy(PrivacyParams::new(0.5, 1e-4))
                .build()
                .unwrap(),
        );
        let w = IdentityWorkload::new(8);
        let mut session = engine.owned_session(PrivacyBudget::new(1.0, 1e-3));
        let handle = std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(23);
            let x = vec![5.0; 8];
            session.answer(&w, &x, &mut rng).unwrap();
            session.answer(&w, &x, &mut rng).unwrap();
            assert!(session.answer(&w, &x, &mut rng).is_err(), "ε exhausted");
            session
        });
        let session = handle.join().unwrap();
        assert_eq!(session.ledger().charges().len(), 2);
        // The owned session shared the engine's cache: one selection total.
        assert_eq!(engine.stats().selections, 1);
    }

    #[test]
    fn session_events_record_the_backend_mechanism() {
        use crate::accounting::MechanismKind;
        use mm_workload::IdentityWorkload;
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let p = PrivacyParams::new(0.5, 1e-4);
        let engine = Engine::builder().privacy(p).build().unwrap();
        let w = IdentityWorkload::new(8);
        let x = vec![3.0; 8];
        let mut rng = StdRng::seed_from_u64(40);
        let mut session = engine.session(PrivacyBudget::new(2.0, 1e-3));
        session.answer(&w, &x, &mut rng).unwrap();
        let events = session.ledger().events();
        assert_eq!(events.len(), 1);
        // The Gaussian backend records the actual σ and Δ₂ of the release
        // (identity strategy: Δ₂ = 1, σ = √(2 ln(2/δ))/ε).
        assert_eq!(events[0].kind(), MechanismKind::Gaussian);
        assert!(approx_eq(events[0].sensitivity(), 1.0, 1e-9));
        assert!(approx_eq(
            events[0].noise_scale(),
            p.gaussian_sigma(1.0),
            1e-9
        ));
        assert_eq!(events[0].requested(), p);
    }
}
