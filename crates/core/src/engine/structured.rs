//! Matrix-free structured serving: selection and answering through
//! [`mm_linalg::LinearOperator`] applies, for domains far
//! beyond what the dense path can materialise.
//!
//! The classic engine path carries an explicit strategy matrix, its n×n
//! gram, and a Cholesky factor — three O(n²) allocations plus O(n³)
//! factorisation work, which caps it around n ≈ 8192.  Structured workloads
//! (interval/prefix queries) and structured strategies (Haar wavelets,
//! hierarchies of interval counts) never need any of that:
//!
//! * **Selection** maps the workload's [`WorkloadDescriptor`] to a
//!   [`StructuredStrategy`] — a [`RunRowsOperator`](mm_strategies::RunRowsOperator)
//!   holding O(n log n) run-length-encoded coefficients — in O(n log n)
//!   time.  No eigendecomposition, no weighting program: the tree/wavelet
//!   families are the paper's own fallback strategies for ranges, and their
//!   selection is a pure function of (n, family), cacheable by the
//!   structured fingerprint.
//! * **Answering** draws noisy strategy observations `y = A·x + noise`
//!   through `apply`, recovers the estimate by conjugate gradient on the
//!   normal equations `AᵀA x̂ = Aᵀy` ([`mm_opt::cg_normal_equations`] —
//!   every inner product through the blessed `ops::dot` kernel), and
//!   evaluates the workload on the estimate through its own operator.  Peak
//!   memory is O(n); at n = 65 536 the whole path runs in well under a
//!   second where the dense path cannot even allocate its gram.
//!
//! Determinism: every reduction in the path (operator applies, CG inner
//! products) is a fixed sequential or blessed-kernel loop, so answers are
//! bit-identical across thread counts and across runs with the same seed —
//! the same contract as the dense path, checked by `tests/determinism.rs`.
//!
//! Selections persist through the engine's unified
//! [`StrategyStore`](super::StrategyStore) as structured
//! [`SelectionPlan`] entries carrying only the
//! [`StrategyDescriptor`] (a few bytes, not an n×n factor); a warm restart
//! rebuilds the operator from the descriptor and answers bit-identically to
//! the run that wrote it.  Legacy `.mmop` entries written by earlier
//! releases stay readable through the store's migration read path.

use super::plan::SelectionPlan;
use super::session;
use crate::privacy::PrivacyParams;
use crate::MechanismError;
use mm_linalg::LinearOperator;
use mm_opt::{cg_normal_equations, CgOptions};
use mm_strategies::{
    haar_strategy, hierarchical_strategy_structured, StrategyDescriptor, StructuredStrategy,
};
use mm_workload::{structured_fingerprint, Fingerprint, StructuredWorkload, WorkloadDescriptor};
use rand::Rng;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Maps a structured workload's descriptor to a structured strategy.
///
/// The structured analogue of
/// [`StrategySelector`](crate::engine::StrategySelector), but over
/// descriptors instead of gram matrices: selection never sees an n×n
/// object, so it stays O(n log n) in time and O(n) in memory at any domain
/// size.  Implementations must be deterministic — the result is cached by
/// the descriptor's fingerprint and persisted across processes, so two
/// selections of one descriptor must agree exactly.
pub trait StructuredSelector: std::fmt::Debug + Send + Sync {
    /// Selector name for reports and errors.
    fn name(&self) -> String;

    /// Selects a strategy for the described workload.
    fn select(&self, descriptor: &WorkloadDescriptor) -> crate::Result<StructuredStrategy>;
}

/// The default structured selector: the Haar wavelet strategy on
/// power-of-two domains (Xiao et al., the paper's design set for ranges),
/// a k-ary hierarchy of interval counts (Hay et al.) otherwise.
///
/// Both families answer every interval query as a combination of O(log n)
/// strategy rows, which is what makes them the right matrix-free stand-ins
/// for the dense selector's optimised designs on range workloads.
#[derive(Debug, Clone, Copy)]
pub struct TreeStructuredSelector {
    branching: usize,
}

impl TreeStructuredSelector {
    /// A selector whose non-power-of-two fallback hierarchy uses the given
    /// branching factor (clamped to at least 2).
    pub fn new(branching: usize) -> Self {
        TreeStructuredSelector {
            branching: branching.max(2),
        }
    }

    /// The hierarchy branching factor used on non-power-of-two domains.
    pub fn branching(&self) -> usize {
        self.branching
    }
}

impl Default for TreeStructuredSelector {
    fn default() -> Self {
        TreeStructuredSelector::new(2)
    }
}

impl StructuredSelector for TreeStructuredSelector {
    fn name(&self) -> String {
        format!("tree-structured (b={})", self.branching)
    }

    fn select(&self, descriptor: &WorkloadDescriptor) -> crate::Result<StructuredStrategy> {
        let n = descriptor.dim();
        if n == 0 {
            return Err(MechanismError::InvalidArgument(
                "structured workload covers no cells".into(),
            ));
        }
        if n.is_power_of_two() {
            Ok(haar_strategy(n))
        } else {
            Ok(hierarchical_strategy_structured(n, self.branching))
        }
    }
}

/// A structured selector that always instantiates one fixed
/// [`StrategyDescriptor`], rejecting workloads of any other dimension —
/// the structured analogue of
/// [`FixedStrategySelector`](crate::engine::FixedStrategySelector), used by
/// benchmarks to pin both paths to the same strategy family.
#[derive(Debug, Clone, Copy)]
pub struct FixedStructuredSelector {
    descriptor: StrategyDescriptor,
}

impl FixedStructuredSelector {
    /// A selector pinned to the given descriptor.
    pub fn new(descriptor: StrategyDescriptor) -> Self {
        FixedStructuredSelector { descriptor }
    }
}

impl StructuredSelector for FixedStructuredSelector {
    fn name(&self) -> String {
        format!("fixed-structured ({:?})", self.descriptor)
    }

    fn select(&self, descriptor: &WorkloadDescriptor) -> crate::Result<StructuredStrategy> {
        if descriptor.dim() != self.descriptor.dim() {
            return Err(MechanismError::InvalidArgument(format!(
                "workload covers {} cells but the fixed structured strategy covers {}",
                descriptor.dim(),
                self.descriptor.dim()
            )));
        }
        Ok(self.descriptor.instantiate())
    }
}

/// Everything produced by one structured answer call.
///
/// The structured counterpart of [`EngineAnswer`](crate::engine::EngineAnswer);
/// `expected_rms_error` is an `Option` because the matrix-free path only
/// computes it where a closed form exists (the Haar strategy against
/// interval workloads) — the dense trace term would need the very n×n gram
/// inverse this path exists to avoid.
#[derive(Debug, Clone)]
pub struct StructuredAnswer {
    /// Noisy (but mutually consistent) answers to every workload query, in
    /// the workload's evaluation order.
    pub answers: Vec<f64>,
    /// The noisy estimate of the data vector the answers derive from.
    pub estimate: Vec<f64>,
    /// The structured strategy used (shared with the engine's cache).
    pub strategy: Arc<StructuredStrategy>,
    /// The analytically predicted RMS workload error, where a closed form
    /// is available (Haar strategy + interval workload), else `None`.
    pub expected_rms_error: Option<f64>,
    /// The structured fingerprint used as the cache key.
    pub fingerprint: Fingerprint,
    /// Whether the strategy came from the cache or store (no selection run).
    pub cache_hit: bool,
}

/// Closed-form Prop. 4 trace term `trace(WᵀW (HᵀH)⁻¹)` for the unnormalised
/// Haar strategy `H` on a power-of-two domain of size `n` against a set of
/// inclusive intervals, in O(m log n) time and O(1) memory.
///
/// The Haar rows are mutually orthogonal and complete, so
/// `(HᵀH)⁻¹ = Σ_r h_r h_rᵀ / ‖h_r‖⁴` and the trace term decomposes per
/// query as `Σ_r ⟨w_q, h_r⟩² / ‖h_r‖⁴`.  For an interval indicator only the
/// all-ones row and, per level, the (at most two) blocks containing an
/// interval endpoint have a nonzero inner product — blocks strictly inside
/// the interval cancel (+half against −half) and blocks outside never
/// overlap — giving the O(log n) per-query walk below.
pub(crate) fn haar_interval_trace(n: usize, intervals: &[(usize, usize)]) -> f64 {
    let nf = n as f64;
    let mut trace = 0.0;
    for &(lo, hi) in intervals {
        // Row 0 (all ones): inner product = interval length, ‖row‖² = n.
        let len = (hi - lo + 1) as f64;
        trace += (len * len) / (nf * nf);
        let mut block = n;
        while block >= 2 {
            let half = block / 2;
            let b_lo = lo / block;
            let b_hi = hi / block;
            for b in [b_lo, b_hi] {
                let start = b * block;
                // Overlap of [lo, hi] with the half-open cell range [s, e).
                let overlap = |s: usize, e: usize| -> f64 {
                    let a = s.max(lo);
                    let b2 = e.min(hi + 1);
                    if b2 > a {
                        (b2 - a) as f64
                    } else {
                        0.0
                    }
                };
                let inner = overlap(start, start + half) - overlap(start + half, start + block);
                if inner != 0.0 {
                    trace += (inner * inner) / ((block * block) as f64);
                }
                if b_hi == b_lo {
                    break; // one endpoint block; don't count it twice
                }
            }
            block = half;
        }
    }
    trace
}

impl super::Engine {
    /// The configured structured selector.
    pub fn structured_selector(&self) -> &Arc<dyn StructuredSelector> {
        &self.structured_selector
    }

    /// Selects (or fetches from cache/store) the structured strategy for a
    /// workload descriptor, returning it with its fingerprint and whether
    /// it was served without running the selector.
    pub fn select_structured(
        &self,
        descriptor: &WorkloadDescriptor,
    ) -> crate::Result<(Arc<StructuredStrategy>, Fingerprint, bool)> {
        let fp = structured_fingerprint(descriptor);
        let (strategy, hit) = self.structured_entry(fp, descriptor)?;
        Ok((strategy, fp, hit))
    }

    fn structured_entry(
        &self,
        fp: Fingerprint,
        descriptor: &WorkloadDescriptor,
    ) -> crate::Result<(Arc<StructuredStrategy>, bool)> {
        if let Some(plan) = self.cache.get(fp) {
            if let Some(strategy) = plan.as_structured() {
                self.structured_hits.fetch_add(1, Ordering::Relaxed);
                return Ok((strategy.clone(), true));
            }
        }
        self.structured_misses.fetch_add(1, Ordering::Relaxed);
        // Probe the persistent store before selecting: another run (or
        // process) may have already recorded this fingerprint's descriptor.
        // Breaker-gated like the dense path: a degraded store is skipped.
        if let Some(plan) = self.store_probe(fp) {
            if let Some(strategy) = plan.as_structured().cloned() {
                self.structured_store_hits.fetch_add(1, Ordering::Relaxed);
                let cached = self.cache.insert(fp, plan);
                // A racing insert of a different plan kind under this
                // fingerprint keeps us on the strategy we just loaded.
                return Ok((cached.as_structured().cloned().unwrap_or(strategy), true));
            }
        }
        let strategy = Arc::new(self.structured_selector.select(descriptor)?);
        if strategy.dim() != descriptor.dim() {
            return Err(MechanismError::InvalidArgument(format!(
                "structured selector `{}` returned a strategy over {} cells for a workload \
                 over {}",
                self.structured_selector.name(),
                strategy.dim(),
                descriptor.dim()
            )));
        }
        self.structured_selections.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(SelectionPlan::Structured(strategy.clone()));
        if self.persist_plan(fp, &plan, None) {
            self.structured_store_writes.fetch_add(1, Ordering::Relaxed);
        }
        // No single-flight: selection is O(n log n), and being deterministic
        // a lost insert race still leaves every caller on one shared object.
        let cached = self.cache.insert(fp, plan);
        Ok((cached.as_structured().cloned().unwrap_or(strategy), false))
    }

    /// Answers a structured workload on the data vector `x` at the engine's
    /// privacy parameters, entirely matrix-free: noisy observations through
    /// the strategy operator's `apply`, estimate recovery by conjugate
    /// gradient on the normal equations, answers through the workload
    /// operator.  Peak memory is O(n + m); no n×n object is ever formed.
    pub fn answer_structured<W: StructuredWorkload + ?Sized, R: Rng>(
        &self,
        workload: &W,
        x: &[f64],
        rng: &mut R,
    ) -> crate::Result<StructuredAnswer> {
        self.answer_structured_with_privacy(workload, self.privacy, x, rng)
    }

    /// Like [`Engine::answer_structured`](super::Engine::answer_structured)
    /// with explicit per-call privacy parameters (used by sessions for
    /// per-call budget spend).
    pub fn answer_structured_with_privacy<W: StructuredWorkload + ?Sized, R: Rng>(
        &self,
        workload: &W,
        privacy: PrivacyParams,
        x: &[f64],
        rng: &mut R,
    ) -> crate::Result<StructuredAnswer> {
        self.answer_structured_maybe_accounted(workload, privacy, x, rng, None)
    }

    /// The session-facing structured path: like
    /// [`Engine::answer_structured_with_privacy`](super::Engine::answer_structured_with_privacy),
    /// but records the release's full mechanism event on `ledger` and fails
    /// closed — spending nothing, before any noise is drawn — when the
    /// accountant rejects the charge.
    pub(crate) fn answer_structured_accounted<W: StructuredWorkload + ?Sized, R: Rng>(
        &self,
        workload: &W,
        privacy: PrivacyParams,
        x: &[f64],
        rng: &mut R,
        ledger: &mut session::BudgetLedger,
    ) -> crate::Result<StructuredAnswer> {
        self.answer_structured_maybe_accounted(workload, privacy, x, rng, Some(ledger))
    }

    fn answer_structured_maybe_accounted<W: StructuredWorkload + ?Sized, R: Rng>(
        &self,
        workload: &W,
        privacy: PrivacyParams,
        x: &[f64],
        rng: &mut R,
        mut ledger: Option<&mut session::BudgetLedger>,
    ) -> crate::Result<StructuredAnswer> {
        self.backend.validate(&privacy)?;
        let n = workload.dim();
        if x.len() != n {
            return Err(MechanismError::InvalidArgument(format!(
                "data vector has {} cells but the workload covers {n}",
                x.len()
            )));
        }
        if workload.query_count() == 0 {
            return Err(MechanismError::InvalidArgument(
                "workload has no queries".into(),
            ));
        }
        let descriptor = workload.descriptor();
        let fingerprint = structured_fingerprint(&descriptor);
        let (strategy, cache_hit) = self.structured_entry(fingerprint, &descriptor)?;
        if strategy.dim() != n {
            return Err(MechanismError::InvalidArgument(format!(
                "workload covers {n} cells but the structured strategy covers {}",
                strategy.dim()
            )));
        }
        let op = strategy.operator().clone();
        let sens = self
            .backend
            .sensitivity_from_norms(strategy.l2_sensitivity(), strategy.l1_sensitivity());
        let scale = self.backend.noise_scale(&privacy, sens);
        let expected_rms_error =
            self.structured_expected_rms_error(&descriptor, &strategy, &privacy, sens)?;

        // Budgeted path: fail closed on the accountant's composed
        // post-charge spend before a single noise value is drawn.
        let event = self.backend.mechanism_event(&privacy, sens);
        if let Some(ledger) = ledger.as_deref_mut() {
            ledger.check_event_many(&event, 1)?;
        }

        // Noisy strategy observations y = A·x + noise, one operator apply.
        let mut y = op.apply(x);
        let noise = self.backend.sample(rng, scale, y.len());
        for (yi, ni) in y.iter_mut().zip(noise) {
            *yi += ni;
        }
        // Matrix-free least-squares inference: AᵀA x̂ = Aᵀy by conjugate
        // gradient.  The tree/wavelet grams have O(log n) distinct
        // eigenvalues, so CG converges in a few dozen iterations at any n.
        let estimate = cg_normal_equations(
            |v| op.apply(v),
            |w| op.apply_transpose(w),
            &y,
            &CgOptions::default(),
        )?;
        let answers = workload.evaluate(&estimate);

        // The release succeeded: record its mechanism event.  As on the
        // dense path, a shared accountant charged concurrently between the
        // check and here drops the answer unreleased and fails closed.
        if let Some(ledger) = ledger {
            ledger.charge_event_many(&event, 1)?;
        }
        Ok(StructuredAnswer {
            answers,
            estimate,
            strategy,
            expected_rms_error,
            fingerprint,
            cache_hit,
        })
    }

    /// The closed-form predicted RMS workload error, where one exists:
    /// currently the Haar strategy against interval workloads (see
    /// [`haar_interval_trace`]).  `None` means "not computed", never "zero".
    fn structured_expected_rms_error(
        &self,
        descriptor: &WorkloadDescriptor,
        strategy: &StructuredStrategy,
        privacy: &PrivacyParams,
        sens: f64,
    ) -> crate::Result<Option<f64>> {
        let StrategyDescriptor::Haar { n } = strategy.descriptor() else {
            return Ok(None);
        };
        let WorkloadDescriptor::Intervals { n: wn, intervals } = descriptor;
        if *wn != n {
            return Ok(None);
        }
        let trace = haar_interval_trace(n, intervals);
        let m = intervals.len() as f64;
        let tse = self.backend.error_constant(privacy)? * sens * sens * trace;
        Ok(Some((tse / m).sqrt()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::PrivacyParams;
    use mm_linalg::{ops, LinearOperator};
    use mm_workload::RangeQueryWorkload;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn intervals(n: usize) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for k in 0..n {
            out.push((0, k)); // prefixes
        }
        out.push((n / 4, 3 * n / 4)); // one interior interval
        out
    }

    /// Dense reference for the closed-form trace: trace(WᵀW (HᵀH)⁻¹)
    /// computed by explicit inversion through Cholesky solves.
    fn dense_haar_trace(n: usize, ivs: &[(usize, usize)]) -> f64 {
        let h = mm_strategies::wavelet::haar_matrix(n);
        let gram = ops::gram(&h);
        let chol = mm_linalg::decomp::Cholesky::new(&gram).unwrap();
        let mut trace = 0.0;
        for &(lo, hi) in ivs {
            let mut w = vec![0.0; n];
            for wi in &mut w[lo..=hi] {
                *wi = 1.0;
            }
            let sol = chol.solve_vec(&w).unwrap();
            trace += ops::dot(&w, &sol);
        }
        trace
    }

    #[test]
    fn closed_form_haar_trace_matches_dense_inverse() {
        for n in [4usize, 8, 16, 64] {
            let ivs = intervals(n);
            let fast = haar_interval_trace(n, &ivs);
            let dense = dense_haar_trace(n, &ivs);
            assert!(
                (fast - dense).abs() / dense < 1e-9,
                "n={n}: closed form {fast} vs dense {dense}"
            );
        }
    }

    #[test]
    fn tree_selector_picks_haar_on_powers_of_two() {
        let sel = TreeStructuredSelector::default();
        let d = RangeQueryWorkload::prefixes(16).descriptor();
        let s = sel.select(&d).unwrap();
        assert!(matches!(s.descriptor(), StrategyDescriptor::Haar { n: 16 }));
        let d9 = RangeQueryWorkload::prefixes(9).descriptor();
        let s9 = sel.select(&d9).unwrap();
        assert!(matches!(
            s9.descriptor(),
            StrategyDescriptor::Hierarchical { n: 9, branching: 2 }
        ));
    }

    #[test]
    fn fixed_selector_enforces_dimension() {
        let sel = FixedStructuredSelector::new(StrategyDescriptor::Haar { n: 8 });
        let ok = sel.select(&RangeQueryWorkload::prefixes(8).descriptor());
        assert!(ok.is_ok());
        let err = sel.select(&RangeQueryWorkload::prefixes(16).descriptor());
        assert!(matches!(err, Err(MechanismError::InvalidArgument(_))));
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mm-opstore-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn structured_answer_round_trip_with_caching() {
        let engine = Engine::new(PrivacyParams::paper_default());
        let w = RangeQueryWorkload::prefixes(32);
        let x: Vec<f64> = (0..32).map(|i| 100.0 + i as f64).collect();
        let mut rng = StdRng::seed_from_u64(7);
        let a = engine.answer_structured(&w, &x, &mut rng).unwrap();
        let b = engine.answer_structured(&w, &x, &mut rng).unwrap();
        assert!(!a.cache_hit && b.cache_hit);
        assert!(Arc::ptr_eq(&a.strategy, &b.strategy));
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.answers.len(), 32);
        assert_eq!(a.estimate.len(), 32);
        let stats = engine.stats();
        assert_eq!(stats.structured_selections, 1);
        assert_eq!(stats.structured_cache_hits, 1);
        assert_eq!(stats.structured_cache_misses, 1);
        // The answers track the truth at the predicted error scale.
        let truth = mm_workload::Workload::evaluate(&w, &x);
        let predicted = a.expected_rms_error.expect("Haar+intervals closed form");
        let rms = (a
            .answers
            .iter()
            .zip(truth.iter())
            .map(|(a, t)| (a - t) * (a - t))
            .sum::<f64>()
            / truth.len() as f64)
            .sqrt();
        assert!(rms < 20.0 * predicted, "rms {rms} vs predicted {predicted}");
    }

    #[test]
    fn structured_expected_error_matches_empirical() {
        // Prop. 4 regression for the closed-form Haar trace: the empirical
        // RMS over many trials must match the prediction.
        let engine = Engine::new(PrivacyParams::paper_default());
        let w = RangeQueryWorkload::prefixes(16);
        let x: Vec<f64> = (0..16).map(|i| 50.0 + (i % 5) as f64).collect();
        let truth = mm_workload::Workload::evaluate(&w, &x);
        let mut rng = StdRng::seed_from_u64(21);
        let trials = 300;
        let mut sq = 0.0;
        let mut predicted = 0.0;
        for _ in 0..trials {
            let ans = engine.answer_structured(&w, &x, &mut rng).unwrap();
            predicted = ans.expected_rms_error.unwrap();
            for (a, t) in ans.answers.iter().zip(truth.iter()) {
                sq += (a - t) * (a - t);
            }
        }
        let empirical = (sq / (trials as f64 * truth.len() as f64)).sqrt();
        assert!(
            (empirical - predicted).abs() / predicted < 0.12,
            "empirical {empirical} vs predicted {predicted}"
        );
    }

    #[test]
    fn structured_answers_are_consistent() {
        // Prefix answers must be monotone-consistent: they all derive from
        // one estimate, so answer(0..=k) - answer(0..=k-1) = estimate[k].
        let engine = Engine::new(PrivacyParams::paper_default());
        let w = RangeQueryWorkload::prefixes(8);
        let x = vec![5.0; 8];
        let mut rng = StdRng::seed_from_u64(3);
        let ans = engine.answer_structured(&w, &x, &mut rng).unwrap();
        for k in 1..8 {
            let diff = ans.answers[k] - ans.answers[k - 1];
            assert!(
                (diff - ans.estimate[k]).abs() < 1e-6,
                "consistency violated at {k}"
            );
        }
    }

    #[test]
    fn structured_rejects_bad_inputs() {
        let engine = Engine::new(PrivacyParams::paper_default());
        let w = RangeQueryWorkload::prefixes(8);
        let mut rng = StdRng::seed_from_u64(5);
        assert!(matches!(
            engine.answer_structured(&w, &[1.0; 7], &mut rng),
            Err(MechanismError::InvalidArgument(_))
        ));
    }

    #[test]
    fn structured_store_round_trip_through_engine() {
        let dir = tmp_dir("engine-store");
        let w = RangeQueryWorkload::prefixes(16);
        let x = vec![2.0; 16];
        let (fp, first_estimate) = {
            let engine = Engine::builder().strategy_store(&dir).build().unwrap();
            let mut rng = StdRng::seed_from_u64(11);
            let a = engine.answer_structured(&w, &x, &mut rng).unwrap();
            assert_eq!(engine.stats().structured_store_writes, 1);
            (a.fingerprint, a.estimate)
        };
        // A fresh engine over the same directory warms from the store and
        // answers bit-identically without ever selecting.
        let engine = Engine::builder().strategy_store(&dir).build().unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let a = engine.answer_structured(&w, &x, &mut rng).unwrap();
        assert_eq!(a.fingerprint, fp);
        assert!(a.cache_hit, "warmed entry served from cache");
        assert_eq!(engine.stats().structured_selections, 0);
        for (p, q) in first_estimate.iter().zip(a.estimate.iter()) {
            assert_eq!(p.to_bits(), q.to_bits(), "warm restart bit-identical");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn laplace_backend_uses_l1_sensitivity_on_the_structured_path() {
        let engine = Engine::builder()
            .privacy(PrivacyParams::pure(0.5))
            .build()
            .unwrap();
        let w = RangeQueryWorkload::prefixes(16);
        let (strategy, _, _) = engine.select_structured(&w.descriptor()).unwrap();
        let sens = engine
            .backend()
            .sensitivity_from_norms(strategy.l2_sensitivity(), strategy.l1_sensitivity());
        assert_eq!(sens.to_bits(), strategy.l1_sensitivity().to_bits());
        let mut rng = StdRng::seed_from_u64(17);
        let x = vec![1.0; 16];
        let ans = engine.answer_structured(&w, &x, &mut rng).unwrap();
        assert!(ans.expected_rms_error.unwrap() > 0.0);
    }

    #[test]
    fn structured_matches_explicit_operator_adapter_bitwise() {
        // The structured CG path fed by the RunRowsOperator must produce
        // bit-identical answers to the same path fed by the materialised
        // dense operator — the acceptance-criteria cross-validation at
        // small n, here exercised through the public engine pieces.
        let n = 64;
        let w = RangeQueryWorkload::prefixes(n);
        let engine = Engine::new(PrivacyParams::paper_default());
        let (strategy, _, _) = engine.select_structured(&w.descriptor()).unwrap();
        let op = strategy.operator().clone();
        let dense = mm_linalg::ExplicitOperator::new(op.materialize().unwrap());
        let x: Vec<f64> = (0..n).map(|i| (i % 7) as f64 + 1.0).collect();
        // Same noisy observations on both sides (same seed, same scale).
        let sens = engine
            .backend()
            .sensitivity_from_norms(strategy.l2_sensitivity(), strategy.l1_sensitivity());
        let scale = engine.backend().noise_scale(engine.privacy(), sens);
        let mut rng = StdRng::seed_from_u64(23);
        let noise = engine.backend().sample(&mut rng, scale, op.dims().0);
        let mut y_s = op.apply(&x);
        let mut y_d = dense.apply(&x);
        for ((a, b), nz) in y_s.iter_mut().zip(y_d.iter_mut()).zip(noise.iter()) {
            *a += *nz;
            *b += *nz;
        }
        let opts = CgOptions::default();
        let est_s =
            cg_normal_equations(|v| op.apply(v), |w2| op.apply_transpose(w2), &y_s, &opts).unwrap();
        let est_d = cg_normal_equations(
            |v| dense.apply(v),
            |w2| dense.apply_transpose(w2),
            &y_d,
            &opts,
        )
        .unwrap();
        for (a, b) in est_s.iter().zip(est_d.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "structured vs dense CG bits");
        }
    }

    #[test]
    fn large_domain_answers_without_densifying() {
        // n = 8192 is already past the dense-materialisation comfort zone;
        // the structured path must answer it with no n×n allocation (the
        // operator refuses to materialise above its cap, so reaching an
        // answer proves the path never asked for the dense form).
        let n = 8192;
        let w = RangeQueryWorkload::prefixes(n);
        let engine = Engine::new(PrivacyParams::paper_default());
        let x = vec![1.0; n];
        let mut rng = StdRng::seed_from_u64(31);
        let ans = engine.answer_structured(&w, &x, &mut rng).unwrap();
        assert_eq!(ans.answers.len(), n);
        assert!(ans.strategy.operator().materialize().is_none() || n <= 4096);
        assert!(ans.expected_rms_error.unwrap().is_finite());
    }

    #[test]
    fn haar_trace_handles_single_cells_and_full_domain() {
        for n in [2usize, 4, 32] {
            let ivs: Vec<(usize, usize)> = (0..n).map(|i| (i, i)).collect();
            let fast = haar_interval_trace(n, &ivs);
            let dense = dense_haar_trace(n, &ivs);
            assert!((fast - dense).abs() / dense < 1e-9, "cells n={n}");
            let full = [(0, n - 1)];
            let fast = haar_interval_trace(n, &full);
            let dense = dense_haar_trace(n, &full);
            assert!((fast - dense).abs() / dense < 1e-9, "full n={n}");
        }
    }
}
