//! The serving engine: pluggable strategy selection, noise backends, strategy
//! caching and budgeted sessions behind one `answer` call.
//!
//! This is the primary entry point of the crate.  An [`Engine`] is built once
//! and then serves any number of `answer` calls:
//!
//! ```text
//!     Engine::builder()                        Session / OwnedSession
//!       .privacy(ε, δ)                            │ charge (ε,δ) per answer
//!       .selector(…)      ──► Engine::answer ◄────┘   (BudgetLedger)
//!       .backend(…)             │
//!       .build()                ├── plan fingerprint ──► StrategyCache
//!                               │     (sharded LRU of SelectionPlans;
//!                               │      hit: skip selection)
//!                               ├── selection (miss: single-flight) —
//!                               │     dense StrategySelector, or the
//!                               │     Low-Rank Mechanism (builder knob
//!                               │     `low_rank(r)`: eigen-design in the
//!                               │     top-r subspace, O(nr² + r³))
//!                               └── NoiseBackend: noisy y = Ax + noise,
//!                                   x̂ = A⁺y, answers = W x̂
//! ```
//!
//! Every selection pipeline — dense, structured (matrix-free) and low-rank —
//! produces one [`SelectionPlan`], the single currency of the cache, the
//! persistent [`StrategyStore`] and the answer paths (see [`plan`]).
//!
//! The engine is a concurrent server: all methods take `&self`, the cache is
//! sharded and single-flight (N threads missing on one workload run one
//! selection), [`OwnedSession`] moves across threads/async tasks over an
//! `Arc<Engine>`, and [`Engine::answer_batch`] serves many databases under
//! one workload for a single cache lookup.
//!
//! Strategy selection is data independent (Sec. 1 of the paper): a selected
//! strategy "can be computed once and reused across databases".  The engine
//! exploits this with an internal cache keyed by a hash of the workload's
//! gram matrix — the first `answer` on a workload pays for selection, every
//! subsequent `answer` (any database, any number of times) reuses the cached
//! strategy and pays only for the mechanism run, which is orders of magnitude
//! cheaper.
//!
//! # Example
//!
//! ```
//! use mm_core::engine::{Engine, PrivacyBudget};
//! use mm_core::PrivacyParams;
//! use mm_workload::range::AllRangeWorkload;
//! use mm_workload::{Domain, Workload};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let workload = AllRangeWorkload::new(Domain::one_dim(16));
//! let x: Vec<f64> = (0..16).map(|i| 100.0 + i as f64).collect();
//!
//! let engine = Engine::builder()
//!     .privacy(PrivacyParams::new(1.0, 1e-4))
//!     .build()
//!     .unwrap();
//! let mut rng = StdRng::seed_from_u64(0);
//!
//! // First answer selects (and caches) a strategy; the second is a cache hit.
//! let a = engine.answer(&workload, &x, &mut rng).unwrap();
//! let b = engine.answer(&workload, &x, &mut rng).unwrap();
//! assert!(!a.cache_hit && b.cache_hit);
//! assert_eq!(engine.stats().selections, 1);
//!
//! // Budgeted sessions compose sequentially and fail closed.
//! let mut session = engine.session(PrivacyBudget::new(2.0, 1e-3));
//! session.answer(&workload, &x, &mut rng).unwrap();
//! session.answer(&workload, &x, &mut rng).unwrap();
//! assert!(session.answer(&workload, &x, &mut rng).is_err()); // ε exhausted
//! ```

pub mod breaker;
pub mod cache;
mod low_rank;
pub mod plan;
pub mod selector;
pub mod session;
pub mod store;
pub mod structured;

pub use breaker::{
    BreakerState, StoreBreaker, StoreHealth, DEFAULT_BREAKER_COOLDOWN, DEFAULT_BREAKER_THRESHOLD,
};
pub use cache::{
    CachedSelection, EvictionPolicy, FlightPoison, Lookup, SelectionGuard, StrategyCache,
    DEFAULT_SHARD_COUNT,
};
pub use plan::{LowRankPlan, PlanKind, SelectionPlan};
pub use selector::{
    DesignBasis, DesignSetSelector, EigenDesignSelector, FixedStrategySelector,
    MatrixDesignSelector, PureDpSelector, SelectionContext, StrategySelector,
};
pub use session::{BudgetLedger, OwnedSession, PrivacyBudget, Session};
pub use store::{
    SaveOutcome, StrategyStore, OPERATOR_STORE_VERSION, PLAN_STORE_EXTENSION, PLAN_STORE_VERSION,
    STORE_VERSION,
};
pub use structured::{
    FixedStructuredSelector, StructuredAnswer, StructuredSelector, TreeStructuredSelector,
};

use crate::accounting::{Accountant, AccountantFactory, SequentialAccounting};
use crate::eigen_design::EigenDesignOptions;
use crate::error::predicted_rms_error;
use crate::faults::{Fault, FaultInjector, FaultSite, NoFaults};
use crate::mechanism::backend::{default_backend, NoiseBackend};
use crate::privacy::PrivacyParams;
use crate::MechanismError;
use mm_linalg::Matrix;
use mm_strategies::Strategy;
use mm_workload::{try_gram_fingerprint, Fingerprint, Workload};
use rand::Rng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Default number of distinct workloads the strategy cache holds.
pub const DEFAULT_CACHE_CAPACITY: usize = 32;

/// Bounded retry for transient store-save failures: total attempts per
/// save (first try + retries), with exponential backoff between attempts
/// starting at [`STORE_SAVE_BACKOFF`].
pub const STORE_SAVE_ATTEMPTS: u32 = 3;

/// Initial backoff before the first store-save retry (doubles per retry).
pub const STORE_SAVE_BACKOFF: Duration = Duration::from_millis(1);

/// Builder for [`Engine`].
#[derive(Debug)]
pub struct EngineBuilder {
    privacy: PrivacyParams,
    selector: Option<Arc<dyn StrategySelector>>,
    backend: Option<Arc<dyn NoiseBackend>>,
    accountant: Option<Arc<dyn AccountantFactory>>,
    cache_capacity: usize,
    cache_shards: usize,
    eviction_policy: EvictionPolicy,
    strategy_store: Option<PathBuf>,
    structured_selector: Option<Arc<dyn StructuredSelector>>,
    low_rank: Option<usize>,
    fault_injector: Option<Arc<dyn FaultInjector>>,
    store_breaker: Option<(u32, Duration)>,
}

impl EngineBuilder {
    /// Sets the per-answer privacy parameters (default: the paper's
    /// ε = 0.5, δ = 10⁻⁴).
    pub fn privacy(mut self, privacy: PrivacyParams) -> Self {
        self.privacy = privacy;
        self
    }

    /// Sets the strategy selector (default: [`EigenDesignSelector`]).
    pub fn selector(mut self, selector: impl StrategySelector + 'static) -> Self {
        self.selector = Some(Arc::new(selector));
        self
    }

    /// Sets an already-shared strategy selector.
    pub fn selector_arc(mut self, selector: Arc<dyn StrategySelector>) -> Self {
        self.selector = Some(selector);
        self
    }

    /// Sets the noise backend (default: Gaussian when δ > 0, else Laplace).
    pub fn backend(mut self, backend: impl NoiseBackend + 'static) -> Self {
        self.backend = Some(Arc::new(backend));
        self
    }

    /// Sets an already-shared noise backend.
    pub fn backend_arc(mut self, backend: Arc<dyn NoiseBackend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Sets the privacy-accounting policy sessions charge through (default:
    /// [`SequentialAccounting`], i.e. basic sequential composition).  Every
    /// [`Engine::session`] / [`Engine::owned_session`] stamps out a fresh
    /// accountant from this factory; see [`crate::accounting`] for the
    /// provided policies ([`SequentialAccounting`],
    /// [`crate::accounting::AdvancedCompositionAccounting`],
    /// [`crate::accounting::RdpAccounting`]).
    pub fn accountant(mut self, factory: impl AccountantFactory + 'static) -> Self {
        self.accountant = Some(Arc::new(factory));
        self
    }

    /// Sets an already-shared accounting policy.
    pub fn accountant_arc(mut self, factory: Arc<dyn AccountantFactory>) -> Self {
        self.accountant = Some(factory);
        self
    }

    /// Sets the strategy-cache capacity in distinct workloads (0 disables
    /// caching; default [`DEFAULT_CACHE_CAPACITY`]).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Sets the number of independently locked cache shards (rounded up to a
    /// power of two; default [`DEFAULT_SHARD_COUNT`]).  More shards reduce
    /// lock contention under parallel serving; one shard gives globally exact
    /// LRU order.
    pub fn cache_shards(mut self, shards: usize) -> Self {
        self.cache_shards = shards;
        self
    }

    /// Sets how a full cache shard picks its eviction victim (default:
    /// [`EvictionPolicy::Lru`]).  [`EvictionPolicy::CostAware`] weights
    /// recency by each entry's measured selection wall-time, protecting
    /// expensive selections from being churned out by cheap ones.
    pub fn eviction_policy(mut self, policy: EvictionPolicy) -> Self {
        self.eviction_policy = policy;
        self
    }

    /// Persists selections to (and warms the cache from) a
    /// [`StrategyStore`] directory, created if missing.  On build, up to
    /// `cache_capacity` stored entries are loaded into the in-memory cache;
    /// at runtime every cache miss first probes the store, and every fresh
    /// selection is written back (write-once per fingerprint), so engine
    /// restarts — and independent processes sharing the directory — skip
    /// repeated selection work entirely.  See [`store`] for the file format
    /// and corruption semantics.
    pub fn strategy_store(mut self, dir: impl Into<PathBuf>) -> Self {
        self.strategy_store = Some(dir.into());
        self
    }

    /// Sets the structured (matrix-free) strategy selector used by
    /// [`Engine::answer_structured`] and friends (default:
    /// [`TreeStructuredSelector`] — Haar wavelets on power-of-two domains,
    /// binary hierarchies otherwise).
    pub fn structured_selector(mut self, selector: impl StructuredSelector + 'static) -> Self {
        self.structured_selector = Some(Arc::new(selector));
        self
    }

    /// Sets an already-shared structured selector.
    pub fn structured_selector_arc(mut self, selector: Arc<dyn StructuredSelector>) -> Self {
        self.structured_selector = Some(selector);
        self
    }

    /// Answers dense workloads through the Low-Rank Mechanism: strategy
    /// selection runs inside the top-`rank` eigen-subspace of the workload
    /// gram (extracted by truncated block subspace iteration) in
    /// O(nr² + r³) instead of the dense selector's O(n³), trading a small,
    /// predictable truncation bias (see [`LowRankPlan::predicted_rms_error`])
    /// for selection speed on workloads whose gram has low effective rank.
    ///
    /// A rank at or above a workload's dimension does not truncate; such
    /// workloads fall through to the dense selector, so full-rank answers
    /// are bit-identical to an engine without this knob.
    pub fn low_rank(mut self, rank: usize) -> Self {
        self.low_rank = Some(rank);
        self
    }

    /// Threads a [`FaultInjector`] (see [`crate::faults`]) through the
    /// engine: the strategy store's reads and writes and the selector path
    /// consult it, and the serve tier reads it back via
    /// [`Engine::fault_injector`] for its worker pool.  Default:
    /// [`NoFaults`].  This is the seam every chaos test drives; production
    /// engines leave it alone.
    pub fn fault_injector(mut self, injector: impl FaultInjector + 'static) -> Self {
        self.fault_injector = Some(Arc::new(injector));
        self
    }

    /// Sets an already-shared fault injector (e.g. a
    /// [`crate::faults::FaultSchedule`] a test also keeps a handle to).
    pub fn fault_injector_arc(mut self, injector: Arc<dyn FaultInjector>) -> Self {
        self.fault_injector = Some(injector);
        self
    }

    /// Configures the store circuit breaker: after `threshold` consecutive
    /// persistence failures (min 1) the engine degrades to memory-only
    /// caching — no store loads or saves — for `cooldown`, then probes
    /// half-open (see [`breaker`]).  Default:
    /// [`DEFAULT_BREAKER_THRESHOLD`] failures,
    /// [`DEFAULT_BREAKER_COOLDOWN`] cool-down.  The breaker never affects
    /// answers: selection recomputes what the store would have provided,
    /// bit-identically.
    pub fn store_breaker(mut self, threshold: u32, cooldown: Duration) -> Self {
        self.store_breaker = Some((threshold, cooldown));
        self
    }

    /// Builds the engine, validating that the backend is compatible with the
    /// privacy parameters (e.g. the Gaussian backend rejects δ = 0).
    pub fn build(self) -> crate::Result<Engine> {
        let backend = match self.backend {
            Some(b) => b,
            None => default_backend(&self.privacy),
        };
        backend.validate(&self.privacy)?;
        if self.low_rank == Some(0) {
            return Err(MechanismError::InvalidArgument(
                "low-rank rank must be at least 1".into(),
            ));
        }
        let cache = StrategyCache::with_shards_and_policy(
            self.cache_capacity,
            self.cache_shards,
            self.eviction_policy,
        );
        let faults: Arc<dyn FaultInjector> =
            self.fault_injector.unwrap_or_else(|| Arc::new(NoFaults));
        let store = match self.strategy_store {
            Some(dir) => {
                let store = StrategyStore::open(dir)?.with_injector(faults.clone());
                // Warm restart: fill the cache from disk up to its capacity —
                // every plan kind, unified and legacy formats alike (corrupt
                // entries are skipped and cleared; they will be recomputed
                // and rewritten on first use).
                store.warm(&cache, cache.capacity());
                Some(store)
            }
            None => None,
        };
        let breaker = match self.store_breaker {
            Some((threshold, cooldown)) => StoreBreaker::new(threshold, cooldown),
            None => StoreBreaker::default(),
        };
        Ok(Engine {
            privacy: self.privacy,
            selector: self
                .selector
                .unwrap_or_else(|| Arc::new(EigenDesignSelector::default())),
            backend,
            accountant: self
                .accountant
                .unwrap_or_else(|| Arc::new(SequentialAccounting)),
            cache,
            store,
            structured_selector: self
                .structured_selector
                .unwrap_or_else(|| Arc::new(TreeStructuredSelector::default())),
            low_rank: self.low_rank,
            faults,
            breaker,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            selections: AtomicU64::new(0),
            dense_selections: AtomicU64::new(0),
            low_rank_selections: AtomicU64::new(0),
            store_hits: AtomicU64::new(0),
            store_writes: AtomicU64::new(0),
            store_save_failures: AtomicU64::new(0),
            poisoned_flights: AtomicU64::new(0),
            structured_hits: AtomicU64::new(0),
            structured_misses: AtomicU64::new(0),
            structured_selections: AtomicU64::new(0),
            structured_store_hits: AtomicU64::new(0),
            structured_store_writes: AtomicU64::new(0),
        })
    }
}

/// Cache and selection counters of an engine (monotone since construction).
///
/// Invariant under single-flight selection: `selections <= cache_misses`,
/// with equality as long as no selection fails — concurrent misses on one
/// fingerprint produce one *leader* (counted as a miss and, on success, a
/// selection) while the waiters that receive the leader's result count as
/// cache hits (they did no selection work).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// `answer`/`select` calls served from the strategy cache, including
    /// calls that waited on another thread's in-flight selection.
    pub cache_hits: u64,
    /// `answer`/`select` calls that led a selection (cold fingerprint, or
    /// caching disabled).
    pub cache_misses: u64,
    /// Times a (dense or low-rank) selection ran *successfully* — the sum of
    /// `dense_selections` and `low_rank_selections` (failed selections are
    /// not counted, and errors are never cached).
    pub selections: u64,
    /// Selections among `selections` that ran the dense selector.
    pub dense_selections: u64,
    /// Selections among `selections` that ran the Low-Rank Mechanism's
    /// subspace pipeline (builder knob [`EngineBuilder::low_rank`]).
    pub low_rank_selections: u64,
    /// Cache misses served by loading a persisted selection from the
    /// [`StrategyStore`] instead of running the selector (always 0 without a
    /// configured store; does not include entries warmed at build time).
    pub store_hits: u64,
    /// Fresh selections persisted to the [`StrategyStore`] (write-once:
    /// fingerprints another process persisted first are not re-counted).
    pub store_writes: u64,
    /// Store save attempts that failed (each attempt of a bounded-retry
    /// save counts; always 0 without a configured store).  These drive the
    /// store circuit breaker — see [`Engine::store_health`].
    pub store_save_failures: u64,
    /// Corrupt store entries silently dropped (deleted and recomputed):
    /// truncated files, checksum mismatches, wrong versions, mismatched
    /// fingerprints, malformed payloads.  Always 0 without a configured
    /// store.
    pub store_corrupt_dropped: u64,
    /// Times a caller became selection leader only because a previous
    /// leader's flight was poisoned (selector error, panic or abandonment) —
    /// the typed-poison retry path.
    pub poisoned_flights: u64,
    /// Structured (matrix-free) calls served from the structured cache.
    pub structured_cache_hits: u64,
    /// Structured calls that missed the structured cache.
    pub structured_cache_misses: u64,
    /// Times the structured selector ran successfully.
    pub structured_selections: u64,
    /// Structured cache misses served by the persisted [`StrategyStore`]
    /// (always 0 without a configured store; excludes build-time warming).
    pub structured_store_hits: u64,
    /// Fresh structured selections persisted to the [`StrategyStore`]
    /// (write-once per fingerprint).
    pub structured_store_writes: u64,
}

/// Everything produced by one `answer` call.
#[derive(Debug, Clone)]
pub struct EngineAnswer {
    /// Noisy (but mutually consistent) answers to every workload query, in
    /// the workload's evaluation order.
    pub answers: Vec<f64>,
    /// The noisy estimate of the data vector the answers derive from.
    pub estimate: Vec<f64>,
    /// The strategy used (shared with the engine's cache).  Under a low-rank
    /// plan this is the subspace design `A_sub`, whose recorded sensitivities
    /// are those of the end-to-end map `A_sub·L̃` actually applied to the
    /// data (see [`LowRankPlan`]).
    pub strategy: Arc<Strategy>,
    /// The analytically predicted RMS workload error under the engine's
    /// backend (Prop. 4, resp. its L1 analogue).
    pub expected_rms_error: f64,
    /// The workload fingerprint used as the cache key.
    pub fingerprint: Fingerprint,
    /// Whether the strategy came from the cache (no selection work done).
    pub cache_hit: bool,
}

/// The serving engine: one strategy selector, one noise backend, one strategy
/// cache.  Sharable across threads behind an `Arc`; all methods take `&self`.
#[derive(Debug)]
pub struct Engine {
    privacy: PrivacyParams,
    selector: Arc<dyn StrategySelector>,
    backend: Arc<dyn NoiseBackend>,
    accountant: Arc<dyn AccountantFactory>,
    cache: StrategyCache,
    store: Option<StrategyStore>,
    structured_selector: Arc<dyn StructuredSelector>,
    /// Low-Rank Mechanism knob: when set, dense workloads of dimension
    /// greater than the rank select in the top-`rank` eigen-subspace.
    low_rank: Option<usize>,
    /// Fault-injection seam (default [`NoFaults`]): consulted by the store
    /// (reads/writes), the selector path, and — through
    /// [`Engine::fault_injector`] — the serve tier's workers.
    faults: Arc<dyn FaultInjector>,
    /// Store circuit breaker: gates all store traffic, driven by save
    /// outcomes (see [`breaker`]).
    breaker: StoreBreaker,
    hits: AtomicU64,
    misses: AtomicU64,
    selections: AtomicU64,
    dense_selections: AtomicU64,
    low_rank_selections: AtomicU64,
    store_hits: AtomicU64,
    store_writes: AtomicU64,
    store_save_failures: AtomicU64,
    poisoned_flights: AtomicU64,
    structured_hits: AtomicU64,
    structured_misses: AtomicU64,
    structured_selections: AtomicU64,
    structured_store_hits: AtomicU64,
    structured_store_writes: AtomicU64,
}

impl Engine {
    /// Starts building an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder {
            privacy: PrivacyParams::paper_default(),
            selector: None,
            backend: None,
            accountant: None,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            cache_shards: DEFAULT_SHARD_COUNT,
            eviction_policy: EvictionPolicy::default(),
            strategy_store: None,
            structured_selector: None,
            low_rank: None,
            fault_injector: None,
            store_breaker: None,
        }
    }

    /// An engine with all defaults for the given privacy parameters
    /// (Eigen-Design selection; Gaussian backend when δ > 0, else Laplace).
    pub fn new(privacy: PrivacyParams) -> Self {
        Engine::builder()
            .privacy(privacy)
            .build()
            .expect("default backend always matches the privacy parameters")
    }

    /// The per-answer privacy parameters.
    pub fn privacy(&self) -> &PrivacyParams {
        &self.privacy
    }

    /// The configured selector.
    pub fn selector(&self) -> &Arc<dyn StrategySelector> {
        &self.selector
    }

    /// The configured noise backend.
    pub fn backend(&self) -> &Arc<dyn NoiseBackend> {
        &self.backend
    }

    /// The configured accounting policy sessions charge through.
    pub fn accountant_factory(&self) -> &Arc<dyn AccountantFactory> {
        &self.accountant
    }

    /// Cache/selection counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            cache_hits: self.hits.load(Ordering::Relaxed),
            cache_misses: self.misses.load(Ordering::Relaxed),
            selections: self.selections.load(Ordering::Relaxed),
            dense_selections: self.dense_selections.load(Ordering::Relaxed),
            low_rank_selections: self.low_rank_selections.load(Ordering::Relaxed),
            store_hits: self.store_hits.load(Ordering::Relaxed),
            store_writes: self.store_writes.load(Ordering::Relaxed),
            store_save_failures: self.store_save_failures.load(Ordering::Relaxed),
            store_corrupt_dropped: self.store.as_ref().map_or(0, |s| s.corrupt_dropped()),
            poisoned_flights: self.poisoned_flights.load(Ordering::Relaxed),
            structured_cache_hits: self.structured_hits.load(Ordering::Relaxed),
            structured_cache_misses: self.structured_misses.load(Ordering::Relaxed),
            structured_selections: self.structured_selections.load(Ordering::Relaxed),
            structured_store_hits: self.structured_store_hits.load(Ordering::Relaxed),
            structured_store_writes: self.structured_store_writes.load(Ordering::Relaxed),
        }
    }

    /// The persistent strategy store, when one is configured.
    pub fn strategy_store(&self) -> Option<&StrategyStore> {
        self.store.as_ref()
    }

    /// The configured fault injector ([`NoFaults`] unless
    /// [`EngineBuilder::fault_injector`] set one).  The serve tier consults
    /// this for its worker-pool injection site.
    pub fn fault_injector(&self) -> &Arc<dyn FaultInjector> {
        &self.faults
    }

    /// Health snapshot of the persistence layer: breaker state, failure
    /// streak, corrupt entries dropped, failed save attempts.  An engine
    /// without a configured store reports a permanently closed breaker and
    /// zero counters.
    pub fn store_health(&self) -> StoreHealth {
        StoreHealth {
            breaker: self.breaker.state(),
            consecutive_failures: self.breaker.consecutive_failures(),
            corrupt_dropped: self.store.as_ref().map_or(0, |s| s.corrupt_dropped()),
            save_failures: self.store_save_failures.load(Ordering::Relaxed),
        }
    }

    /// Probes the persistent store for a plan, gated by the circuit
    /// breaker: an open breaker skips the probe entirely (memory-only
    /// degradation), so a broken disk cannot stall every cache miss.
    fn store_probe(&self, fp: Fingerprint) -> Option<Arc<SelectionPlan>> {
        let store = self.store.as_ref()?;
        if !self.breaker.allow() {
            return None;
        }
        store.load(fp)
    }

    /// Persists a plan with bounded retry and exponential backoff
    /// ([`STORE_SAVE_ATTEMPTS`] attempts, [`STORE_SAVE_BACKOFF`] doubling),
    /// recording every attempt's outcome on the circuit breaker.  Returns
    /// whether this call wrote the entry.  An open breaker skips the save
    /// (the selection stays memory-cached; a later cool-down probe can
    /// rewrite it — fingerprints are write-once, so nothing is lost).
    fn persist_plan(
        &self,
        fp: Fingerprint,
        plan: &SelectionPlan,
        workload_gram: Option<&Matrix>,
    ) -> bool {
        let Some(store) = self.store.as_ref() else {
            return false;
        };
        if !self.breaker.allow() {
            return false;
        }
        let mut backoff = STORE_SAVE_BACKOFF;
        for attempt in 1..=STORE_SAVE_ATTEMPTS {
            match store.try_save(fp, plan, workload_gram) {
                SaveOutcome::Written => {
                    self.breaker.record_success();
                    return true;
                }
                // Not a persistence failure: the entry already exists (or
                // the plan stays memory-only by design).  No health signal.
                SaveOutcome::Skipped => return false,
                SaveOutcome::Failed => {
                    self.store_save_failures.fetch_add(1, Ordering::Relaxed);
                    self.breaker.record_failure();
                    if attempt == STORE_SAVE_ATTEMPTS || !self.breaker.allow() {
                        return false;
                    }
                    std::thread::sleep(backoff);
                    backoff = backoff.saturating_mul(2);
                }
            }
        }
        false
    }

    /// A non-blocking cache probe by fingerprint for any plan kind,
    /// refreshing the entry's recency on a hit.  Unlike the `answer`/`select`
    /// paths this never joins or founds an in-flight selection, which makes
    /// it the right primitive for async front-ends that must not block an
    /// executor thread.
    pub fn cached_plan(&self, fp: Fingerprint) -> Option<Arc<SelectionPlan>> {
        self.cache.get(fp)
    }

    /// Like [`Engine::cached_plan`], narrowed to the dense selection: `None`
    /// when nothing is cached *or* when the cached plan is not dense.
    pub fn cached_selection(&self, fp: Fingerprint) -> Option<Arc<CachedSelection>> {
        self.cache.get(fp).and_then(|p| p.as_dense().cloned())
    }

    /// The cache/store key this engine uses for a workload with base (gram)
    /// fingerprint `base` and dimension `dim`.
    ///
    /// On a default engine this is `base` itself.  When the
    /// [`EngineBuilder::low_rank`] knob is set *and* actually truncates
    /// (`rank < dim`), the rank is mixed into the fingerprint so a low-rank
    /// plan never collides with the dense plan for the same workload — in
    /// the shared in-memory cache or a shared persistent store directory.
    pub fn plan_fingerprint(&self, base: Fingerprint, dim: usize) -> Fingerprint {
        match self.low_rank {
            Some(rank) if rank < dim => {
                // splitmix64-style avalanche of (base, rank): any rank change
                // flips about half the bits, so mixed keys spread over cache
                // shards exactly like base fingerprints do.
                let mut z = base.0 ^ (rank as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                Fingerprint(z ^ (z >> 31))
            }
            _ => base,
        }
    }

    /// The configured Low-Rank Mechanism rank, when the builder knob is set.
    pub fn low_rank_rank(&self) -> Option<usize> {
        self.low_rank
    }

    /// Drops every cached strategy (counters are kept).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Opens a budgeted session borrowing this engine, accounting through
    /// the engine's configured policy (sequential composition unless
    /// [`EngineBuilder::accountant`] chose otherwise).
    pub fn session(&self, budget: PrivacyBudget) -> Session<'_> {
        Session::new(self, budget)
    }

    /// Opens a budgeted session charging through an explicit accountant,
    /// overriding the engine's configured policy for this one session.
    pub fn session_with_accountant(&self, accountant: Box<dyn Accountant>) -> Session<'_> {
        Session::with_accountant(self, accountant)
    }

    /// Opens a budgeted session that *owns* a handle to this engine, so it
    /// can move across threads or async tasks (see [`OwnedSession`]).
    pub fn owned_session(self: &Arc<Self>, budget: PrivacyBudget) -> OwnedSession {
        OwnedSession::new(self.clone(), budget)
    }

    /// Opens an owned session charging through an explicit accountant.
    pub fn owned_session_with_accountant(
        self: &Arc<Self>,
        accountant: Box<dyn Accountant>,
    ) -> OwnedSession {
        OwnedSession::with_accountant(self.clone(), accountant)
    }

    /// Opens an owned session that charges a principal's **shared**
    /// [`UserLedger`](crate::accounting::UserLedger): every session opened
    /// this way — concurrently, sequentially, from any thread — spends the
    /// same composed budget, so one person's sessions can jointly answer
    /// exactly as many queries as a single session on that budget could.
    pub fn user_session(self: &Arc<Self>, ledger: &crate::accounting::UserLedger) -> OwnedSession {
        OwnedSession::with_accountant(self.clone(), ledger.accountant_handle())
    }

    /// Selects (or fetches from cache) the strategy for a workload, returning
    /// it with its fingerprint and whether it was a cache hit.  Under the
    /// [`EngineBuilder::low_rank`] knob the returned strategy is the subspace
    /// design `A_sub` (see [`LowRankPlan`]); use [`Engine::select_plan_for`]
    /// to get at the full plan.
    pub fn select<W: Workload + ?Sized>(
        &self,
        workload: &W,
    ) -> crate::Result<(Arc<Strategy>, Fingerprint, bool)> {
        let (plan, fp, hit) = self.select_plan_for(workload)?;
        let strategy =
            match &*plan {
                SelectionPlan::Dense(entry) => entry.strategy().clone(),
                SelectionPlan::LowRank(lr) => lr.selection().strategy().clone(),
                SelectionPlan::Structured(_) => return Err(MechanismError::InvalidArgument(
                    "a structured plan carries no dense strategy; use the structured answer paths"
                        .into(),
                )),
            };
        Ok((strategy, fp, hit))
    }

    /// Selects (or fetches from cache) the full [`SelectionPlan`] for a
    /// workload, returning it with its fingerprint and whether it was a
    /// cache hit.
    pub fn select_plan_for<W: Workload + ?Sized>(
        &self,
        workload: &W,
    ) -> crate::Result<(Arc<SelectionPlan>, Fingerprint, bool)> {
        let gram = workload.gram();
        let fp = self.plan_fingerprint(try_gram_fingerprint(&gram)?, gram.rows());
        let (plan, hit) = self.select_plan(workload, &gram, fp)?;
        Ok((plan, fp, hit))
    }

    /// Cache lookup / selection over a precomputed gram matrix.  The gram is
    /// only cloned (into the selection context) on a miss; the hot cache-hit
    /// path copies nothing.
    ///
    /// Selection is single-flight: concurrent misses on one fingerprint run
    /// the selector exactly once (on the *leader* thread), and every waiter
    /// receives the leader's entry, counted as a cache hit.  A selection
    /// error is returned to the leader only; waiters retry (one at a time)
    /// and errors are never cached.
    fn select_plan<W: Workload + ?Sized>(
        &self,
        workload: &W,
        gram: &Matrix,
        fp: Fingerprint,
    ) -> crate::Result<(Arc<SelectionPlan>, bool)> {
        match self.cache.begin(fp) {
            Lookup::Hit(plan) | Lookup::Shared(plan) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Ok((plan, true))
            }
            Lookup::Miss(guard) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                if guard.recovered_poison().is_some() {
                    // This caller became leader via the waiter-retry path: a
                    // previous leader's flight was poisoned.
                    self.poisoned_flights.fetch_add(1, Ordering::Relaxed);
                }
                // Before selecting, probe the persistent store: another run
                // (or process) may have already paid for this fingerprint.
                // The probe is breaker-gated: an open breaker degrades to
                // memory-only caching and recomputes instead.
                if let Some(plan) = self.store_probe(fp) {
                    self.store_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((guard.publish(plan), true));
                }
                // Fault-injection seam for the selection itself: a scheduled
                // panic crashes the leader exactly like a buggy selector
                // would (the guard's drop poisons the flight; waiters
                // observe a typed poison and retry); scheduled latency
                // models a selection stall, which is what request deadlines
                // in the serve tier must survive.
                match self.faults.inject(FaultSite::Selector) {
                    Some(Fault::Panic) => panic!("injected selector fault (scheduled chaos)"),
                    Some(Fault::LatencyMs(ms)) => std::thread::sleep(Duration::from_millis(ms)),
                    _ => {}
                }
                let plan = if let Some(rank) = self.low_rank.filter(|&r| r < gram.rows()) {
                    // Low-Rank Mechanism: eigen-design inside the top-`rank`
                    // subspace.  (A non-truncating rank falls through to the
                    // dense selector below, which keeps full-rank answers
                    // bit-identical to a plain dense engine.)
                    match low_rank::select_low_rank(gram, rank, &EigenDesignOptions::default()) {
                        Ok(lr) => {
                            self.selections.fetch_add(1, Ordering::Relaxed);
                            self.low_rank_selections.fetch_add(1, Ordering::Relaxed);
                            Arc::new(SelectionPlan::LowRank(Arc::new(lr)))
                        }
                        Err(e) => {
                            guard.fail(e.to_string());
                            return Err(e);
                        }
                    }
                } else {
                    let ctx = if self.selector.needs_workload_matrix() {
                        let rows = workload.to_matrix();
                        SelectionContext::from_gram_and_rows(gram.clone(), rows)
                    } else {
                        SelectionContext::from_gram(gram.clone())
                    };
                    // On error the flight is failed with the error's message
                    // so waiters retry knowing why; the selection counters
                    // move only on success, keeping failed selections out of
                    // the stats.  Selection wall-time is recorded on the
                    // entry for the cost-aware eviction policy.
                    // mm-lint: allow(determinism-hygiene): wall-clock feeds only the advisory eviction-cost metadata, never a released answer or cache key
                    let started = std::time::Instant::now();
                    let strategy = match self.selector.select(&ctx) {
                        Ok(s) => Arc::new(s),
                        Err(e) => {
                            guard.fail(e.to_string());
                            return Err(e);
                        }
                    };
                    let cost_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    self.selections.fetch_add(1, Ordering::Relaxed);
                    self.dense_selections.fetch_add(1, Ordering::Relaxed);
                    Arc::new(SelectionPlan::Dense(Arc::new(CachedSelection::with_cost(
                        strategy, cost_ns,
                    ))))
                };
                // Persist before publishing so a restart racing this
                // process sees the entry as soon as waiters do.  Failures
                // are retried with backoff, then absorbed: persistence is
                // an optimisation, never a correctness dependency.
                if self.persist_plan(fp, &plan, Some(gram)) {
                    self.store_writes.fetch_add(1, Ordering::Relaxed);
                }
                Ok((guard.publish(plan), false))
            }
        }
    }

    /// Predicted RMS workload error of answering `workload` with `strategy`
    /// under this engine's backend and the given privacy parameters.
    pub fn expected_rms_error<W: Workload + ?Sized>(
        &self,
        workload: &W,
        strategy: &Strategy,
        privacy: &PrivacyParams,
    ) -> crate::Result<f64> {
        predicted_rms_error(
            &workload.gram(),
            workload.query_count(),
            strategy,
            privacy,
            self.backend.as_ref(),
        )
    }

    /// Selects a strategy (cached) and answers the workload on the data
    /// vector `x` at the engine's privacy parameters.
    pub fn answer<W: Workload + ?Sized, R: Rng>(
        &self,
        workload: &W,
        x: &[f64],
        rng: &mut R,
    ) -> crate::Result<EngineAnswer> {
        self.answer_with_privacy(workload, self.privacy, x, rng)
    }

    /// Like [`Engine::answer`] with explicit per-call privacy parameters
    /// (used by [`Session`] for per-call budget spend).
    pub fn answer_with_privacy<W: Workload + ?Sized, R: Rng>(
        &self,
        workload: &W,
        privacy: PrivacyParams,
        x: &[f64],
        rng: &mut R,
    ) -> crate::Result<EngineAnswer> {
        let mut answers = self.answer_batch_with_privacy(workload, privacy, &[x], rng)?;
        Ok(answers.pop().expect("one answer per data vector"))
    }

    /// Answers the same workload on many data vectors (many databases) in
    /// one call at the engine's privacy parameters.
    ///
    /// The batch pays for the cache lookup, dimension checks, gram factor,
    /// trace term and noise calibration **once**, then answers all K vectors
    /// in a single vectorised pass: the data vectors become the columns of
    /// one matrix `X` and the whole batch runs as one blocked
    /// `L⁻ᵀ(L⁻¹(Aᵀ(A·X + N)))` sweep (mat-mat products and multi-RHS
    /// triangular solves) instead of K matvec/solve round-trips — the serving
    /// pattern for "one popular workload, millions of databases".  Each
    /// vector receives independent noise and each answer individually
    /// satisfies the engine's (ε, δ) guarantee on its own database; the
    /// results are byte-identical to K sequential [`Engine::answer`] calls on
    /// the same rng.
    pub fn answer_batch<W: Workload + ?Sized, X: AsRef<[f64]>, R: Rng>(
        &self,
        workload: &W,
        xs: &[X],
        rng: &mut R,
    ) -> crate::Result<Vec<EngineAnswer>> {
        let xs: Vec<&[f64]> = xs.iter().map(AsRef::as_ref).collect();
        self.answer_batch_with_privacy(workload, self.privacy, &xs, rng)
    }

    /// [`Engine::answer_batch`] with explicit per-call privacy parameters.
    pub fn answer_batch_with_privacy<W: Workload + ?Sized, R: Rng>(
        &self,
        workload: &W,
        privacy: PrivacyParams,
        xs: &[&[f64]],
        rng: &mut R,
    ) -> crate::Result<Vec<EngineAnswer>> {
        self.answer_batch_maybe_accounted(workload, privacy, xs, rng, None)
    }

    /// The session-facing batch path: answers like
    /// [`Engine::answer_batch_with_privacy`], but records one full
    /// [`MechanismEvent`](crate::accounting::MechanismEvent) per data vector
    /// on `ledger` — with the actual noise scale and strategy sensitivity of
    /// the release — and fails closed (spending nothing, before any noise is
    /// drawn) when the ledger's accountant rejects the composed batch charge.
    pub(crate) fn answer_batch_accounted<W: Workload + ?Sized, R: Rng>(
        &self,
        workload: &W,
        privacy: PrivacyParams,
        xs: &[&[f64]],
        rng: &mut R,
        ledger: &mut session::BudgetLedger,
    ) -> crate::Result<Vec<EngineAnswer>> {
        self.answer_batch_maybe_accounted(workload, privacy, xs, rng, Some(ledger))
    }

    fn answer_batch_maybe_accounted<W: Workload + ?Sized, R: Rng>(
        &self,
        workload: &W,
        privacy: PrivacyParams,
        xs: &[&[f64]],
        rng: &mut R,
        ledger: Option<&mut session::BudgetLedger>,
    ) -> crate::Result<Vec<EngineAnswer>> {
        self.backend.validate(&privacy)?;
        let gram = workload.gram();
        let fingerprint = self.plan_fingerprint(try_gram_fingerprint(&gram)?, gram.rows());
        let (plan, cache_hit) = self.select_plan(workload, &gram, fingerprint)?;
        self.answer_parts(
            workload,
            &gram,
            plan,
            fingerprint,
            cache_hit,
            privacy,
            xs,
            rng,
            ledger,
        )
    }

    /// Answers with a caller-provided strategy (e.g. one selected on a
    /// normalised workload for relative-error objectives, Sec. 3.4).
    ///
    /// This path bypasses the strategy cache entirely (the result reports
    /// `cache_hit == false`): the strategy's gram factor and trace term are
    /// recomputed per call.  Callers answering the same workload repeatedly
    /// should prefer [`Engine::answer`], which caches all of that.
    pub fn answer_with_strategy<W: Workload + ?Sized, R: Rng>(
        &self,
        workload: &W,
        strategy: Arc<Strategy>,
        x: &[f64],
        rng: &mut R,
    ) -> crate::Result<EngineAnswer> {
        self.answer_with_strategy_maybe_accounted(workload, strategy, x, rng, None)
    }

    /// The session-facing custom-strategy path: like
    /// [`Engine::answer_with_strategy`], but records the release's full
    /// mechanism event on `ledger` (see [`Engine::answer_batch_accounted`]).
    pub(crate) fn answer_with_strategy_accounted<W: Workload + ?Sized, R: Rng>(
        &self,
        workload: &W,
        strategy: Arc<Strategy>,
        x: &[f64],
        rng: &mut R,
        ledger: &mut session::BudgetLedger,
    ) -> crate::Result<EngineAnswer> {
        self.answer_with_strategy_maybe_accounted(workload, strategy, x, rng, Some(ledger))
    }

    fn answer_with_strategy_maybe_accounted<W: Workload + ?Sized, R: Rng>(
        &self,
        workload: &W,
        strategy: Arc<Strategy>,
        x: &[f64],
        rng: &mut R,
        ledger: Option<&mut session::BudgetLedger>,
    ) -> crate::Result<EngineAnswer> {
        self.backend.validate(&self.privacy)?;
        let gram = workload.gram();
        let fingerprint = try_gram_fingerprint(&gram)?;
        let plan = Arc::new(SelectionPlan::Dense(Arc::new(CachedSelection::new(
            strategy,
        ))));
        let mut answers = self.answer_parts(
            workload,
            &gram,
            plan,
            fingerprint,
            false,
            self.privacy,
            &[x],
            rng,
            ledger,
        )?;
        Ok(answers.pop().expect("one answer per data vector"))
    }

    /// The unified answer path, vectorised over data vectors: per batch, one
    /// round of validation plus the (cached) gram factor, trace term and
    /// noise calibration; the K data vectors are packed as the columns of one
    /// matrix `X` and the whole batch runs as a single blocked
    /// `L⁻ᵀ(L⁻¹(Aᵀ(A·X + N)))` pass — mat-mat products and multi-RHS
    /// triangular solves instead of K independent matvec/solve round-trips.
    /// Per vector only the workload evaluation `W x̂ₖ` remains.
    ///
    /// A single `answer` is exactly the K = 1 batch, and every kernel in the
    /// pass is column-wise bit-identical across widths, so batching never
    /// changes a result: `answer_batch` on K vectors equals K sequential
    /// `answer` calls on the same rng, byte for byte.  (The noise matrix `N`
    /// is filled column by column for the same reason — one backend draw of
    /// length p per vector, p being the strategy's query count, the same
    /// stream a sequential caller consumes.)
    ///
    /// When a session `ledger` is supplied, the release's full mechanism
    /// event (backend kind, actual noise scale and sensitivity, requested
    /// (ε, δ)) is checked against the accountant's composed post-charge
    /// spend *before* any noise is drawn — a rejected batch spends nothing —
    /// and charged once per data vector after the whole batch succeeds, so
    /// a failure anywhere in the pass also spends nothing.
    #[allow(clippy::too_many_arguments)]
    fn answer_parts<W: Workload + ?Sized, R: Rng>(
        &self,
        workload: &W,
        workload_gram: &Matrix,
        plan: Arc<SelectionPlan>,
        fingerprint: Fingerprint,
        cache_hit: bool,
        privacy: PrivacyParams,
        xs: &[&[f64]],
        rng: &mut R,
        mut ledger: Option<&mut session::BudgetLedger>,
    ) -> crate::Result<Vec<EngineAnswer>> {
        // Dispatch on the plan kind: a dense plan runs the classic pipeline
        // against the workload gram; a low-rank plan runs the *identical*
        // pipeline inside the subspace (project the data through the basis,
        // answer there, recombine), with its trace term taken against the
        // projected gram `L̃GL̃ᵀ`; structured plans are matrix-free and
        // answered through the structured paths.
        let (entry, basis, trace_gram): (&CachedSelection, Option<&Matrix>, &Matrix) = match &*plan
        {
            SelectionPlan::Dense(entry) => (entry.as_ref(), None, workload_gram),
            SelectionPlan::LowRank(lr) => (lr.selection(), Some(lr.basis()), lr.subspace_gram()),
            SelectionPlan::Structured(_) => {
                return Err(MechanismError::InvalidArgument(
                    "a structured plan cannot be answered through the dense path; \
                     use the structured answer paths"
                        .into(),
                ))
            }
        };
        let strategy = entry.strategy().clone();
        let dim = plan.dim();
        if workload.dim() != dim {
            return Err(MechanismError::InvalidArgument(format!(
                "workload covers {} cells but the strategy covers {}",
                workload.dim(),
                dim
            )));
        }
        for x in xs {
            if x.len() != dim {
                return Err(MechanismError::InvalidArgument(format!(
                    "data vector has {} cells but the strategy covers {}",
                    x.len(),
                    dim
                )));
            }
        }
        let a = strategy
            .matrix()
            .ok_or_else(|| MechanismError::StrategyNotMaterialized(strategy.name().to_string()))?;
        let m = workload.query_count();
        if m == 0 {
            return Err(MechanismError::InvalidArgument(
                "workload has no queries".into(),
            ));
        }
        // An empty batch is valid and does no per-vector work (the cached
        // factor and trace term are not even materialised).
        let k = xs.len();
        if k == 0 {
            return Ok(Vec::new());
        }
        // Predicted error through the cached factor and trace term
        // (Prop. 4 / Sec. 3.5) — both are data- and privacy-independent.
        // A low-rank strategy's sensitivities are those of the end-to-end
        // map `A_sub·L̃`, so the calibration below covers the whole release.
        let factor = entry.factor()?;
        let sens = self.backend.sensitivity(&strategy);
        let tse =
            self.backend.error_constant(&privacy)? * sens * sens * entry.trace_term(trace_gram)?;
        let expected_rms_error = (tse / m as f64).sqrt();
        let scale = self.backend.noise_scale(&privacy, sens);

        // Budgeted path: fail closed on the accountant's composed
        // post-charge spend before a single noise value is drawn.
        let event = self.backend.mechanism_event(&privacy, sens);
        if let Some(ledger) = ledger.as_deref_mut() {
            ledger.check_event_many(&event, k)?;
        }

        // Pack the K data vectors as columns of X (n × K); a low-rank plan
        // first projects them into the subspace, Z = L̃·X, where the rest of
        // the pipeline is column-for-column the dense one.
        let x_mat = Matrix::from_fn(dim, k, |i, c| xs[c][i]);
        let design_in = match basis {
            Some(b) => b.matmul(&x_mat)?,
            None => x_mat,
        };
        // Noisy strategy answers for the whole batch: Y = A·X + N, with one
        // independent length-p noise draw per column (p strategy queries).
        let mut y = a.matmul(&design_in)?;
        let p = y.rows();
        for c in 0..k {
            let noise = self.backend.sample(rng, scale, p);
            let y_data = y.as_mut_slice();
            for (i, ni) in noise.into_iter().enumerate() {
                y_data[i * k + c] += ni;
            }
        }
        // Batched least-squares inference through the shared factor:
        // X̂ = L⁻ᵀ(L⁻¹(AᵀY)); a low-rank plan recovers the subspace
        // coordinates Ẑ and recombines through the basis, X̂ = L̃ᵀ·Ẑ.
        let aty = a.matmul_transpose_left(&y)?;
        let solved = factor.solve_upper_multi(&factor.solve_lower_multi(&aty)?)?;
        let estimates = match basis {
            Some(b) => b.matmul_transpose_left(&solved)?,
            None => solved,
        };
        // Workload evaluation stays vectorised too: `W·X̂` in one pass
        // (explicit workloads route it through the blocked matmul kernel),
        // column-wise bit-identical to per-vector evaluation.
        let evaluated = workload.evaluate_matrix(&estimates);
        debug_assert_eq!(evaluated.shape(), (m, k));
        let mut out = Vec::with_capacity(k);
        for c in 0..k {
            out.push(EngineAnswer {
                answers: evaluated.col(c),
                estimate: estimates.col(c),
                strategy: strategy.clone(),
                expected_rms_error,
                fingerprint,
                cache_hit,
            });
        }
        // The whole batch succeeded: record one mechanism event per data
        // vector.  With a session-private accountant the pre-check above
        // makes this infallible, but a *shared* accountant (cross-session
        // [`crate::accounting::UserLedger`]) can be charged concurrently
        // between the check and here — in that race the answers are dropped
        // unreleased and the budget error propagates, failing closed.
        if let Some(ledger) = ledger {
            ledger.charge_event_many(&event, k)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::backend::{GaussianBackend, LaplaceBackend};
    use mm_linalg::approx_eq;
    use mm_workload::example::fig1_workload;
    use mm_workload::range::AllRangeWorkload;
    use mm_workload::{Domain, Workload};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn builder_defaults_and_validation() {
        // Default backend follows delta.
        let e = Engine::new(PrivacyParams::paper_default());
        assert_eq!(e.backend().name(), "gaussian");
        let e = Engine::new(PrivacyParams::pure(0.5));
        assert_eq!(e.backend().name(), "laplace");
        // Explicit Gaussian with delta = 0 is rejected at build time.
        let err = Engine::builder()
            .privacy(PrivacyParams::pure(0.5))
            .backend(GaussianBackend)
            .build();
        assert!(matches!(err, Err(MechanismError::IncompatibleBackend(_))));
    }

    #[test]
    fn second_answer_is_a_cache_hit_with_identical_strategy() {
        let w = AllRangeWorkload::new(Domain::one_dim(16));
        let x: Vec<f64> = (0..16).map(|i| 10.0 + i as f64).collect();
        let engine = Engine::new(PrivacyParams::paper_default());
        let mut rng = StdRng::seed_from_u64(1);
        let a = engine.answer(&w, &x, &mut rng).unwrap();
        let b = engine.answer(&w, &x, &mut rng).unwrap();
        assert!(!a.cache_hit);
        assert!(b.cache_hit);
        assert!(
            Arc::ptr_eq(&a.strategy, &b.strategy),
            "same cached strategy object"
        );
        assert_eq!(a.fingerprint, b.fingerprint);
        let stats = engine.stats();
        assert_eq!(stats.selections, 1, "selection ran exactly once");
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
    }

    #[test]
    fn different_workloads_get_different_cache_slots() {
        let w16 = AllRangeWorkload::new(Domain::one_dim(16));
        let w8 = AllRangeWorkload::new(Domain::one_dim(8));
        let engine = Engine::new(PrivacyParams::paper_default());
        let (s16, fp16, _) = engine.select(&w16).unwrap();
        let (s8, fp8, _) = engine.select(&w8).unwrap();
        assert_ne!(fp16, fp8);
        assert_eq!(s16.dim(), 16);
        assert_eq!(s8.dim(), 8);
        assert_eq!(engine.stats().selections, 2);
        // Both stay resident.
        assert!(engine.select(&w16).unwrap().2);
        assert!(engine.select(&w8).unwrap().2);
    }

    #[test]
    fn gaussian_and_laplace_answers_match_their_predictions() {
        // Prop. 4 regression for both backends through the unified path.
        let w = fig1_workload();
        let x = vec![50.0, 10.0, 30.0, 20.0, 60.0, 25.0, 15.0, 40.0];
        let truth = w.evaluate(&x);
        for (engine, seed) in [
            (
                Engine::builder()
                    .privacy(PrivacyParams::paper_default())
                    .backend(GaussianBackend)
                    .build()
                    .unwrap(),
                11u64,
            ),
            (
                Engine::builder()
                    .privacy(PrivacyParams::pure(0.5))
                    .backend(LaplaceBackend)
                    .build()
                    .unwrap(),
                13u64,
            ),
        ] {
            let mut rng = StdRng::seed_from_u64(seed);
            let trials = 200;
            let mut sq = 0.0;
            let mut predicted = 0.0;
            for _ in 0..trials {
                let ans = engine.answer(&w, &x, &mut rng).unwrap();
                predicted = ans.expected_rms_error;
                for (a, t) in ans.answers.iter().zip(truth.iter()) {
                    sq += (a - t).powi(2);
                }
            }
            let empirical = (sq / (trials as f64 * truth.len() as f64)).sqrt();
            assert!(
                (empirical - predicted).abs() / predicted < 0.12,
                "{}: empirical {empirical} vs predicted {predicted}",
                engine.backend().name()
            );
        }
    }

    #[test]
    fn answers_are_consistent() {
        // q3 = q1 - q2 exactly: all answers derive from one estimate.
        let w = fig1_workload();
        let x = vec![5.0; 8];
        let engine = Engine::new(PrivacyParams::paper_default());
        let mut rng = StdRng::seed_from_u64(3);
        let ans = engine.answer(&w, &x, &mut rng).unwrap();
        assert!(approx_eq(
            ans.answers[2],
            ans.answers[0] - ans.answers[1],
            1e-9
        ));
        assert!(ans.expected_rms_error > 0.0);
    }

    #[test]
    fn selector_swap_changes_selection() {
        let w = AllRangeWorkload::new(Domain::one_dim(16));
        let p = PrivacyParams::paper_default();
        let eigen = Engine::builder().privacy(p).build().unwrap();
        let wavelet = Engine::builder()
            .privacy(p)
            .selector(DesignSetSelector::wavelet())
            .build()
            .unwrap();
        let (se, _, _) = eigen.select(&w).unwrap();
        let (sw, _, _) = wavelet.select(&w).unwrap();
        let ee = eigen.expected_rms_error(&w, &se, &p).unwrap();
        let ew = wavelet.expected_rms_error(&w, &sw, &p).unwrap();
        // Both valid; eigen-design is at least as good on range workloads.
        assert!(ee <= ew * 1.01, "eigen {ee} vs weighted wavelet {ew}");
    }

    #[test]
    fn dimension_mismatches_rejected() {
        let w = AllRangeWorkload::new(Domain::one_dim(16));
        let engine = Engine::new(PrivacyParams::paper_default());
        let mut rng = StdRng::seed_from_u64(5);
        assert!(engine.answer(&w, &[1.0; 8], &mut rng).is_err());
    }

    #[test]
    fn cost_aware_engine_protects_expensive_selection_under_churn() {
        // A single-slot-per-shard engine with cost-aware eviction: the
        // expensive eigen-design selection of a large workload stays
        // resident while a churning stream of small (cheap) workloads
        // passes through, so re-answering the large workload is a cache hit.
        let engine = Engine::builder()
            .cache_capacity(3)
            .cache_shards(1)
            .eviction_policy(EvictionPolicy::CostAware)
            .build()
            .unwrap();
        let big = AllRangeWorkload::new(Domain::one_dim(96));
        let (_, _, hit) = engine.select(&big).unwrap();
        assert!(!hit);
        for n in 2..10usize {
            let small = AllRangeWorkload::new(Domain::one_dim(n));
            engine.select(&small).unwrap();
        }
        let (_, _, hit) = engine.select(&big).unwrap();
        assert!(hit, "expensive selection survived the cheap churn");
        assert_eq!(
            engine.stats().selections,
            1 + 8,
            "the big workload selected exactly once"
        );
    }

    #[test]
    fn zero_capacity_cache_still_answers() {
        let w = AllRangeWorkload::new(Domain::one_dim(8));
        let x = vec![1.0; 8];
        let engine = Engine::builder().cache_capacity(0).build().unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let a = engine.answer(&w, &x, &mut rng).unwrap();
        let b = engine.answer(&w, &x, &mut rng).unwrap();
        assert!(!a.cache_hit && !b.cache_hit);
        assert_eq!(engine.stats().selections, 2);
    }

    /// A selector that always fails, for stats-accounting regressions.
    #[derive(Debug)]
    struct FailingSelector;

    impl StrategySelector for FailingSelector {
        fn name(&self) -> String {
            "failing".into()
        }

        fn select(&self, _ctx: &SelectionContext) -> crate::Result<mm_strategies::Strategy> {
            Err(MechanismError::InvalidArgument(
                "this selector always fails".into(),
            ))
        }
    }

    #[test]
    fn failed_selections_do_not_count_as_selections() {
        // Regression: the counter used to be incremented *before* the
        // selector could fail, permanently overcounting `selections`.
        let w = AllRangeWorkload::new(Domain::one_dim(8));
        let engine = Engine::builder().selector(FailingSelector).build().unwrap();
        for _ in 0..3 {
            assert!(engine.select(&w).is_err());
        }
        let stats = engine.stats();
        assert_eq!(stats.selections, 0, "failed selections must not count");
        assert_eq!(stats.cache_misses, 3, "each failed attempt is a miss");
        assert_eq!(stats.cache_hits, 0);
        assert!(stats.selections <= stats.cache_misses);
    }

    #[test]
    fn nan_workload_is_rejected_with_typed_error() {
        // Runs under both debug and release profiles: the NaN guard is a
        // real check, not a `debug_assert!`, so release builds can no longer
        // cache-key a NaN-poisoned gram.
        let mut m = mm_linalg::Matrix::zeros(2, 4);
        m[(0, 0)] = 1.0;
        m[(1, 2)] = f64::NAN;
        let w = mm_workload::ExplicitWorkload::from_matrix("nan workload", &m);
        let engine = Engine::new(PrivacyParams::paper_default());
        let mut rng = StdRng::seed_from_u64(8);
        let err = engine.answer(&w, &[1.0; 4], &mut rng).unwrap_err();
        assert!(
            matches!(err, MechanismError::NanWorkloadGram { .. }),
            "expected NanWorkloadGram, got {err:?}"
        );
        assert!(err.to_string().contains("NaN"));
        assert!(matches!(
            engine.select(&w).unwrap_err(),
            MechanismError::NanWorkloadGram { .. }
        ));
        // Nothing was cached or counted for the poisoned workload.
        assert_eq!(engine.stats().cache_misses, 0);
    }

    #[test]
    fn answer_batch_amortises_one_lookup_over_many_vectors() {
        let w = AllRangeWorkload::new(Domain::one_dim(16));
        let xs: Vec<Vec<f64>> = (0..5)
            .map(|k| (0..16).map(|i| (k * 16 + i) as f64).collect())
            .collect();
        let engine = Engine::new(PrivacyParams::paper_default());
        let mut rng = StdRng::seed_from_u64(10);
        let answers = engine.answer_batch(&w, &xs, &mut rng).unwrap();
        assert_eq!(answers.len(), 5);
        let stats = engine.stats();
        assert_eq!(stats.selections, 1, "one selection for the whole batch");
        assert_eq!(
            stats.cache_hits + stats.cache_misses,
            1,
            "one cache lookup for the whole batch"
        );
        for (ans, x) in answers.iter().zip(xs.iter()) {
            assert_eq!(ans.answers.len(), w.query_count());
            assert!(Arc::ptr_eq(&ans.strategy, &answers[0].strategy));
            assert_eq!(ans.fingerprint, answers[0].fingerprint);
            // Each vector got its own noise draw around its own truth.
            let truth = w.evaluate(x);
            let rms = (ans
                .answers
                .iter()
                .zip(truth.iter())
                .map(|(a, t)| (a - t).powi(2))
                .sum::<f64>()
                / truth.len() as f64)
                .sqrt();
            assert!(rms < 20.0 * ans.expected_rms_error, "answers track truth");
        }
        // A batched answer is distributionally identical to repeated single
        // answers: same strategy, factor and noise scale per vector.
        let single = engine.answer(&w, &xs[0], &mut rng).unwrap();
        assert!(approx_eq(
            single.expected_rms_error,
            answers[0].expected_rms_error,
            1e-12
        ));
    }

    #[test]
    fn answer_batch_is_byte_identical_to_sequential_answers() {
        // The vectorised batch path must not change a single bit relative to
        // per-vector serving: K sequential `answer` calls on a seeded rng and
        // one `answer_batch` on an identically seeded rng consume the same
        // noise stream and run column-wise bit-identical kernels.
        for (privacy, seed) in [
            (PrivacyParams::paper_default(), 40u64),
            (PrivacyParams::pure(0.7), 41u64),
        ] {
            let w = AllRangeWorkload::new(Domain::one_dim(24));
            let xs: Vec<Vec<f64>> = (0..7)
                .map(|k| (0..24).map(|i| ((k * 31 + i * 7) % 17) as f64).collect())
                .collect();
            let engine = Engine::builder().privacy(privacy).build().unwrap();
            // Warm the cache so both paths share one strategy and factor.
            engine.select(&w).unwrap();

            let mut rng_batch = StdRng::seed_from_u64(seed);
            let batched = engine.answer_batch(&w, &xs, &mut rng_batch).unwrap();

            let mut rng_seq = StdRng::seed_from_u64(seed);
            for (k, x) in xs.iter().enumerate() {
                let single = engine.answer(&w, x, &mut rng_seq).unwrap();
                assert_eq!(single.answers.len(), batched[k].answers.len());
                for (a, b) in single.answers.iter().zip(batched[k].answers.iter()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "answer bits differ at k={k}");
                }
                for (a, b) in single.estimate.iter().zip(batched[k].estimate.iter()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "estimate bits differ at k={k}");
                }
            }
        }
    }

    #[test]
    fn answer_batch_validates_every_vector_upfront() {
        let w = AllRangeWorkload::new(Domain::one_dim(8));
        let engine = Engine::new(PrivacyParams::paper_default());
        let mut rng = StdRng::seed_from_u64(11);
        let good = vec![1.0; 8];
        let bad = vec![1.0; 7];
        let err = engine
            .answer_batch(&w, &[good.as_slice(), bad.as_slice()], &mut rng)
            .unwrap_err();
        assert!(matches!(err, MechanismError::InvalidArgument(_)));
        // Empty batches are fine and do no per-vector work.
        let none: &[&[f64]] = &[];
        assert!(engine.answer_batch(&w, none, &mut rng).unwrap().is_empty());
    }
}
