//! Circuit breaker for the persistent strategy store.
//!
//! A broken disk must cost latency once, not on every request.  The engine
//! routes every store save through a [`StoreBreaker`]; after
//! `threshold` *consecutive* persistence failures the breaker **opens** and
//! the engine degrades to memory-only caching — no store loads or saves are
//! attempted — for a cool-down period.  After the cool-down the breaker
//! goes **half-open**: store traffic is allowed again as a probe, and the
//! first outcome decides — a success closes the breaker, a failure re-opens
//! it for another full cool-down.
//!
//! ```text
//!            failure (consecutive == threshold)
//!   Closed ────────────────────────────────────► Open
//!     ▲                                            │ cool-down elapses
//!     │ success                                    ▼
//!     └─────────────────────────────────────── HalfOpen
//!                        failure: back to Open ◄───┘
//! ```
//!
//! Only *save* outcomes drive the state machine: a load returning `None`
//! conflates "entry absent" with "entry unreadable", so it carries no
//! health signal.  Loads are merely *gated* — an open breaker skips them,
//! because a store that cannot be written is usually a store that should
//! not be trusted to block the hot path on reads either.
//!
//! The breaker never affects answers: strategy selection recomputes what
//! the store would have provided, bit-identically (selection is
//! deterministic), so an open breaker costs selection time, never
//! correctness.

use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Default consecutive-failure threshold before the breaker opens.
pub const DEFAULT_BREAKER_THRESHOLD: u32 = 3;

/// Default cool-down an open breaker waits before probing again.
pub const DEFAULT_BREAKER_COOLDOWN: Duration = Duration::from_secs(30);

/// The breaker's observable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Store healthy: all traffic allowed.
    Closed,
    /// Store degraded: traffic skipped until the cool-down elapses.
    Open,
    /// Cool-down elapsed: traffic allowed as a probe; the next recorded
    /// save outcome closes or re-opens the breaker.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        };
        f.write_str(name)
    }
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
}

/// The store circuit breaker (see the module docs for the state machine).
///
/// All methods take `&self` and are safe to call concurrently; the state is
/// one small mutex, touched only around store I/O (never on cache hits).
#[derive(Debug)]
pub struct StoreBreaker {
    threshold: u32,
    cooldown: Duration,
    inner: Mutex<BreakerInner>,
}

impl StoreBreaker {
    /// A breaker opening after `threshold` consecutive failures (min 1) and
    /// cooling down for `cooldown` before each probe.
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        StoreBreaker {
            threshold: threshold.max(1),
            cooldown,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
            }),
        }
    }

    /// The configured consecutive-failure threshold.
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// The configured cool-down.
    pub fn cooldown(&self) -> Duration {
        self.cooldown
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BreakerInner> {
        // The inner state is always written whole under the lock; a panic
        // cannot leave it torn, so the poison flag carries no information.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Whether store traffic is currently allowed.  An open breaker whose
    /// cool-down has elapsed transitions to half-open and allows the probe.
    pub fn allow(&self) -> bool {
        let mut inner = self.lock();
        match inner.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                // mm-lint: allow(determinism-hygiene): the breaker cool-down is wall-clock by design — it gates only whether the persistent store is probed, never a cache key, an answer, or a stored byte
                let elapsed = inner.opened_at.map(|at| at.elapsed());
                if elapsed.is_some_and(|e| e >= self.cooldown) {
                    inner.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful persistence operation: closes the breaker and
    /// resets the consecutive-failure count.
    pub fn record_success(&self) {
        let mut inner = self.lock();
        inner.state = BreakerState::Closed;
        inner.consecutive_failures = 0;
        inner.opened_at = None;
    }

    /// Records a failed persistence operation.  Reaching the threshold — or
    /// failing a half-open probe — opens the breaker and restarts the
    /// cool-down.
    pub fn record_failure(&self) {
        let mut inner = self.lock();
        inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
        let tripped =
            inner.consecutive_failures >= self.threshold || inner.state == BreakerState::HalfOpen;
        if tripped {
            inner.state = BreakerState::Open;
            // mm-lint: allow(determinism-hygiene): the breaker cool-down is wall-clock by design — it gates only whether the persistent store is probed, never a cache key, an answer, or a stored byte
            inner.opened_at = Some(Instant::now());
        }
    }

    /// The current state (an open breaker past its cool-down reports
    /// half-open, matching what the next [`StoreBreaker::allow`] would do).
    pub fn state(&self) -> BreakerState {
        let inner = self.lock();
        match inner.state {
            BreakerState::Open => {
                // mm-lint: allow(determinism-hygiene): the breaker cool-down is wall-clock by design — it gates only whether the persistent store is probed, never a cache key, an answer, or a stored byte
                let elapsed = inner.opened_at.map(|at| at.elapsed());
                if elapsed.is_some_and(|e| e >= self.cooldown) {
                    BreakerState::HalfOpen
                } else {
                    BreakerState::Open
                }
            }
            s => s,
        }
    }

    /// Consecutive persistence failures recorded since the last success.
    pub fn consecutive_failures(&self) -> u32 {
        self.lock().consecutive_failures
    }
}

impl Default for StoreBreaker {
    fn default() -> Self {
        StoreBreaker::new(DEFAULT_BREAKER_THRESHOLD, DEFAULT_BREAKER_COOLDOWN)
    }
}

/// Health snapshot of the engine's persistence layer, exposed through
/// [`Engine::store_health`](super::Engine::store_health) and surfaced by the
/// serve tier's `ServeEngine::health`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreHealth {
    /// Current breaker state ([`BreakerState::Closed`] means healthy; an
    /// engine without a configured store is permanently closed and never
    /// records outcomes).
    pub breaker: BreakerState,
    /// Consecutive persistence failures since the last success.
    pub consecutive_failures: u32,
    /// Corrupt store entries silently dropped (deleted and recomputed)
    /// since the store was opened.
    pub corrupt_dropped: u64,
    /// Store save attempts that failed (after retries) since the engine
    /// was built.
    pub save_failures: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let b = StoreBreaker::new(3, Duration::from_secs(60));
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow());
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(), "open breaker blocks traffic");
        assert_eq!(b.consecutive_failures(), 3);
    }

    #[test]
    fn success_resets_the_streak() {
        let b = StoreBreaker::new(2, Duration::from_secs(60));
        b.record_failure();
        b.record_success();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed, "streak was broken");
        assert_eq!(b.consecutive_failures(), 1);
    }

    #[test]
    fn cooldown_elapse_half_opens_and_probe_outcome_decides() {
        let b = StoreBreaker::new(1, Duration::from_millis(0));
        b.record_failure();
        // Zero cool-down: immediately half-open.
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.allow());
        // A failed probe re-opens (without needing a full streak).
        b.record_failure();
        assert!(matches!(
            b.state(),
            BreakerState::Open | BreakerState::HalfOpen
        ));
        assert!(b.allow(), "zero cool-down re-allows the next probe");
        // A successful probe closes.
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.consecutive_failures(), 0);
    }

    #[test]
    fn threshold_has_a_floor_of_one() {
        let b = StoreBreaker::new(0, Duration::from_secs(60));
        assert_eq!(b.threshold(), 1);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
    }
}
