//! Deterministic fault injection for the serving stack.
//!
//! Production robustness claims are only worth what their tests can
//! reproduce.  This module provides the one seam every fault-tolerance test
//! in the workspace drives: a [`FaultInjector`] threaded (via
//! [`EngineBuilder::fault_injector`](crate::engine::EngineBuilder::fault_injector))
//! through the persistent strategy store's reads and writes, the selector
//! path, and the serve tier's worker pool.  The default injector,
//! [`NoFaults`], is a zero-cost no-op, so production engines pay nothing.
//!
//! Two deterministic injectors are provided:
//!
//! * [`FaultSchedule`] — an explicit script: "fail the 3rd store write",
//!   "panic every selector call", "add 50 ms latency to every worker
//!   dequeue".  Each [`FaultSite`] carries its own operation counter, so a
//!   schedule is a pure function of the operation sequence, independent of
//!   wall-clock or thread interleaving of *other* sites.
//! * [`FaultSchedule::seeded`] — a keyed pseudo-random schedule: whether
//!   operation `i` at a site faults is a pure (splitmix64) function of
//!   `(seed, site, i)` and the configured rate.  Re-running with the same
//!   seed replays the exact fault placement; changing the seed explores a
//!   different placement.  This is what the CI chaos matrix sweeps.
//!
//! What each site honours:
//!
//! | site | [`Fail`](Fault::Fail) | [`Torn`](Fault::Torn) | [`LatencyMs`](Fault::LatencyMs) | [`Panic`](Fault::Panic) |
//! |---|---|---|---|---|
//! | [`StoreRead`](FaultSite::StoreRead) | load returns `None` (recompute) | as `Fail` | sleep, then load | ignored |
//! | [`StoreWrite`](FaultSite::StoreWrite) | save fails | half-written entry lands on disk, save fails | sleep, then write | ignored |
//! | [`Selector`](FaultSite::Selector) | ignored | ignored | sleep, then select | selector panics (poisons the flight) |
//! | [`Worker`](FaultSite::Worker) | ignored | ignored | sleep before running the job | ignored |
//!
//! Ignored combinations are deliberate: a fault an operation cannot
//! physically exhibit (a "torn" selector) is skipped rather than reinterpreted,
//! so a schedule's meaning never shifts underneath a test.

use std::fmt::Debug;
use std::sync::atomic::{AtomicU64, Ordering};

/// Where in the serving stack a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FaultSite {
    /// A [`StrategyStore`](crate::engine::StrategyStore) entry load
    /// (counted once per `load` call, not per probed format).
    StoreRead,
    /// A [`StrategyStore`](crate::engine::StrategyStore) entry write.
    StoreWrite,
    /// A (dense or low-rank) strategy selection about to run.
    Selector,
    /// A serve-tier worker about to run a dequeued job.
    Worker,
}

impl FaultSite {
    /// All sites, for iteration in tests and reports.
    pub const ALL: [FaultSite; 4] = [
        FaultSite::StoreRead,
        FaultSite::StoreWrite,
        FaultSite::Selector,
        FaultSite::Worker,
    ];

    fn index(self) -> usize {
        match self {
            FaultSite::StoreRead => 0,
            FaultSite::StoreWrite => 1,
            FaultSite::Selector => 2,
            FaultSite::Worker => 3,
        }
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            FaultSite::StoreRead => "store-read",
            FaultSite::StoreWrite => "store-write",
            FaultSite::Selector => "selector",
            FaultSite::Worker => "worker",
        };
        f.write_str(name)
    }
}

/// What kind of fault to inject (see the module docs for which sites honour
/// which kinds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Fault {
    /// The operation fails cleanly (an I/O error, in effect).
    Fail,
    /// A torn/short write: a truncated entry lands on disk *and* the write
    /// reports failure — the mid-crash case durability must survive.
    Torn,
    /// The operation succeeds after an artificial delay of this many
    /// milliseconds (slow disk, scheduling stall).
    LatencyMs(u64),
    /// The operation panics (a crashing selector poisons its flight).
    Panic,
}

/// The injection seam: consulted once per operation at each instrumented
/// site; `None` means the operation proceeds normally.
///
/// Implementations must be deterministic given their construction (the
/// whole point is reproducible chaos) and cheap — `inject` sits on hot
/// paths and is called with no locks held.
pub trait FaultInjector: Send + Sync + Debug {
    /// Returns the fault to apply to the current operation at `site`, if
    /// any.  Each call advances that site's operation sequence.
    fn inject(&self, site: FaultSite) -> Option<Fault>;
}

/// The default injector: never faults, costs nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultInjector for NoFaults {
    fn inject(&self, _site: FaultSite) -> Option<Fault> {
        None
    }
}

/// splitmix64: the avalanche mixer used for keyed fault placement (and
/// already used for the engine's plan-fingerprint mixing).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One scripted rule of a [`FaultSchedule`].
#[derive(Debug, Clone, Copy)]
enum Rule {
    /// Fault exactly the `nth` (0-based) operation at the site.
    At {
        site: FaultSite,
        nth: u64,
        fault: Fault,
    },
    /// Fault every `period`-th operation at the site, starting at the first.
    Every {
        site: FaultSite,
        period: u64,
        fault: Fault,
    },
    /// Keyed pseudo-random placement: operation `i` faults when
    /// `splitmix64(seed ⊕ site ⊕ i) mod 1024 < rate`.
    Seeded {
        site: FaultSite,
        rate_per_1024: u64,
        fault: Fault,
    },
}

/// A deterministic, scripted fault injector (see the module docs).
///
/// Rules are evaluated in insertion order; the first match wins.  Each site
/// keeps its own operation counter, so rule positions are stable across
/// interleavings of *other* sites.
#[derive(Debug, Default)]
pub struct FaultSchedule {
    seed: u64,
    rules: Vec<Rule>,
    counters: [AtomicU64; 4],
}

impl FaultSchedule {
    /// An empty schedule (faults nothing until rules are added).
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// An empty schedule whose [`FaultSchedule::with_rate`] rules key their
    /// placement off `seed` — same seed, same placement.
    pub fn seeded(seed: u64) -> Self {
        FaultSchedule {
            seed,
            ..FaultSchedule::default()
        }
    }

    /// Faults exactly the `nth` (0-based) operation at `site`.
    pub fn inject_at(mut self, site: FaultSite, nth: u64, fault: Fault) -> Self {
        self.rules.push(Rule::At { site, nth, fault });
        self
    }

    /// Faults every `period`-th operation at `site`, starting with the
    /// first (`period = 1` faults every operation; 0 is treated as 1).
    pub fn inject_every(mut self, site: FaultSite, period: u64, fault: Fault) -> Self {
        self.rules.push(Rule::Every {
            site,
            period: period.max(1),
            fault,
        });
        self
    }

    /// Faults operations at `site` pseudo-randomly at roughly
    /// `rate_per_1024 / 1024` (clamped to 1024), placed by this schedule's
    /// seed: deterministic per `(seed, site, operation index)`.
    pub fn with_rate(mut self, site: FaultSite, rate_per_1024: u64, fault: Fault) -> Self {
        self.rules.push(Rule::Seeded {
            site,
            rate_per_1024: rate_per_1024.min(1024),
            fault,
        });
        self
    }

    /// How many operations have been observed at `site` so far.
    pub fn operations(&self, site: FaultSite) -> u64 {
        self.counters[site.index()].load(Ordering::Relaxed)
    }
}

impl FaultInjector for FaultSchedule {
    fn inject(&self, site: FaultSite) -> Option<Fault> {
        let op = self.counters[site.index()].fetch_add(1, Ordering::Relaxed);
        for rule in &self.rules {
            match *rule {
                Rule::At {
                    site: s,
                    nth,
                    fault,
                } if s == site && op == nth => return Some(fault),
                Rule::Every {
                    site: s,
                    period,
                    fault,
                } if s == site && op.is_multiple_of(period) => return Some(fault),
                Rule::Seeded {
                    site: s,
                    rate_per_1024,
                    fault,
                } if s == site => {
                    let key = self
                        .seed
                        .wrapping_mul(0x2545_F491_4F6C_DD1D)
                        .wrapping_add((site.index() as u64) << 32)
                        .wrapping_add(op);
                    if splitmix64(key) % 1024 < rate_per_1024 {
                        return Some(fault);
                    }
                }
                _ => {}
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_never_faults() {
        for site in FaultSite::ALL {
            for _ in 0..8 {
                assert_eq!(NoFaults.inject(site), None);
            }
        }
    }

    #[test]
    fn scripted_schedule_counts_per_site() {
        let s = FaultSchedule::new()
            .inject_at(FaultSite::StoreWrite, 1, Fault::Fail)
            .inject_every(FaultSite::Worker, 2, Fault::LatencyMs(5));
        // StoreRead traffic does not advance StoreWrite's counter.
        assert_eq!(s.inject(FaultSite::StoreRead), None);
        assert_eq!(s.inject(FaultSite::StoreWrite), None); // op 0
        assert_eq!(s.inject(FaultSite::StoreWrite), Some(Fault::Fail)); // op 1
        assert_eq!(s.inject(FaultSite::StoreWrite), None); // op 2
        assert_eq!(s.inject(FaultSite::Worker), Some(Fault::LatencyMs(5))); // op 0
        assert_eq!(s.inject(FaultSite::Worker), None); // op 1
        assert_eq!(s.inject(FaultSite::Worker), Some(Fault::LatencyMs(5))); // op 2
        assert_eq!(s.operations(FaultSite::Worker), 3);
    }

    #[test]
    fn first_matching_rule_wins() {
        let s = FaultSchedule::new()
            .inject_at(FaultSite::Selector, 0, Fault::Panic)
            .inject_every(FaultSite::Selector, 1, Fault::LatencyMs(1));
        assert_eq!(s.inject(FaultSite::Selector), Some(Fault::Panic));
        assert_eq!(s.inject(FaultSite::Selector), Some(Fault::LatencyMs(1)));
    }

    #[test]
    fn seeded_placement_replays_and_varies_by_seed() {
        let trace = |seed: u64| -> Vec<bool> {
            let s = FaultSchedule::seeded(seed).with_rate(FaultSite::StoreRead, 512, Fault::Fail);
            (0..64)
                .map(|_| s.inject(FaultSite::StoreRead).is_some())
                .collect()
        };
        let a = trace(7);
        assert_eq!(a, trace(7), "same seed, same placement");
        assert_ne!(a, trace(8), "different seed, different placement");
        let hits = a.iter().filter(|&&b| b).count();
        assert!((8..=56).contains(&hits), "rate 1/2 lands in a sane band");
    }

    #[test]
    fn rate_extremes_are_never_and_always() {
        let never = FaultSchedule::seeded(3).with_rate(FaultSite::Worker, 0, Fault::Fail);
        let always = FaultSchedule::seeded(3).with_rate(FaultSite::Worker, 1024, Fault::Fail);
        for _ in 0..32 {
            assert_eq!(never.inject(FaultSite::Worker), None);
            assert_eq!(always.inject(FaultSite::Worker), Some(Fault::Fail));
        }
    }

    #[test]
    fn site_display_names_are_stable() {
        let names: Vec<String> = FaultSite::ALL.iter().map(|s| s.to_string()).collect();
        assert_eq!(names, ["store-read", "store-write", "selector", "worker"]);
    }
}
