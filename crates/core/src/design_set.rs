//! Optimal query weighting over an arbitrary design set (Program 1).
//!
//! Given a fixed set of *design queries* `Q` (one row per design query) and a
//! workload `W`, Theorem 1 reduces the best weighted strategy
//! `A = diag(λ) Q` to the convex weighting problem solved by `mm-opt`, with
//! per-design-query costs `cᵢ = ‖column i of W Q⁺‖₂²`.  This module computes
//! those costs from the workload's gram matrix (never materialising `W`),
//! invokes the solver, and assembles the resulting strategy, including the
//! column-completion step of Program 2 (steps 4–5) which pads low-norm columns
//! with extra single-cell queries at no sensitivity cost.
//!
//! The Eigen-Design algorithm is the special case where `Q` holds the
//! eigenvectors of `WᵀW`; Fig. 5 of the paper compares it against using the
//! wavelet or Fourier matrices as the design set, which this module supports
//! directly.

use crate::MechanismError;
use mm_linalg::{ops, solve, Matrix};
use mm_opt::{solve_log_gd, GdOptions, WeightingProblem};
use mm_strategies::strategy::EXPLICIT_ENTRY_LIMIT;
use mm_strategies::Strategy;

/// Options for design-set weighting.
#[derive(Debug, Clone)]
pub struct DesignWeightingOptions {
    /// Options for the convex solver.
    pub solver: GdOptions,
    /// Whether to apply the column-completion step (Program 2, steps 4–5).
    pub completion: bool,
}

impl Default for DesignWeightingOptions {
    fn default() -> Self {
        DesignWeightingOptions {
            solver: GdOptions::default(),
            completion: true,
        }
    }
}

/// Result of weighting a design set for a workload.
#[derive(Debug, Clone)]
pub struct DesignResult {
    /// The assembled strategy (weighted design queries plus completion rows).
    pub strategy: Strategy,
    /// The squared weights `u` returned by the solver (one per design query).
    pub weights_squared: Vec<f64>,
    /// The solver objective `Σ cᵢ/uᵢ`, i.e. `trace(WᵀW (A'ᵀA')⁻¹)` for the
    /// pre-completion strategy with unit sensitivity.
    pub objective: f64,
    /// The per-design-query costs `cᵢ`.
    pub costs: Vec<f64>,
}

/// Computes the Theorem-1 costs `cᵢ = ‖column i of W Q⁺‖₂²` from the
/// workload's gram matrix: `cᵢ = (Q⁺ᵀ (WᵀW) Q⁺)ᵢᵢ`.
///
/// `design` must have full row rank (design queries must be linearly
/// independent), which holds for all design sets used in the paper
/// (eigenvectors, wavelet, Fourier bases).
pub fn design_costs(workload_gram: &Matrix, design: &Matrix) -> crate::Result<Vec<f64>> {
    if design.cols() != workload_gram.rows() {
        return Err(MechanismError::InvalidArgument(format!(
            "design queries cover {} cells but the workload covers {}",
            design.cols(),
            workload_gram.rows()
        )));
    }
    // S = Q Qᵀ (k×k), R = Q G Qᵀ (k×k), M = S⁻¹ R S⁻¹, costs = diag(M).
    let s = ops::outer_gram(design);
    let qg = ops::matmul(design, workload_gram)?;
    let r = ops::matmul_a_bt(&qg, design)?;
    let s_inv = solve::inverse_spd(&s).map_err(|_| {
        MechanismError::InvalidArgument(
            "design queries must be linearly independent (Q Qᵀ is singular)".into(),
        )
    })?;
    let m = ops::matmul(&ops::matmul(&s_inv, &r)?, &s_inv)?;
    Ok(m.diag())
}

/// Builds the strategy `A = [diag(√u) Q ; D']` for the given squared weights,
/// where `D'` is the Program-2 completion that pads every column up to the
/// maximum column norm.  Returns the strategy together with its exact gram
/// matrix and sensitivity.
pub fn build_weighted_strategy(
    name: impl Into<String>,
    design: &Matrix,
    weights_squared: &[f64],
    completion: bool,
) -> crate::Result<Strategy> {
    if design.rows() != weights_squared.len() {
        return Err(MechanismError::InvalidArgument(format!(
            "{} design queries but {} weights",
            design.rows(),
            weights_squared.len()
        )));
    }
    let n = design.cols();
    // Gram of the weighted design rows.
    let mut gram = ops::congruence_diag(design, weights_squared)?;
    let mut col_sq: Vec<f64> = gram.diag();
    let max_sq = col_sq.iter().fold(0.0_f64, |m, &v| m.max(v));
    if max_sq <= 0.0 {
        return Err(MechanismError::InvalidArgument(
            "all design-query weights are zero".into(),
        ));
    }
    // Completion rows: one single-cell query per column whose norm is below
    // the maximum, with coefficient sqrt(max - col).
    let mut completion_coeffs = vec![0.0; n];
    if completion {
        for (j, c) in completion_coeffs.iter_mut().enumerate() {
            let deficit = max_sq - col_sq[j];
            if deficit > 1e-12 * max_sq {
                *c = deficit.sqrt();
                gram[(j, j)] += deficit;
                col_sq[j] = max_sq;
            }
        }
    }
    let sensitivity = max_sq.sqrt();

    // Explicit matrix: active weighted design rows plus nonzero completion rows.
    let active_rows: Vec<usize> = weights_squared
        .iter()
        .enumerate()
        .filter(|(_, &u)| u > 0.0)
        .map(|(i, _)| i)
        .collect();
    let extra_rows = completion_coeffs.iter().filter(|&&c| c > 0.0).count();
    let total_rows = active_rows.len() + extra_rows;
    let matrix = if total_rows.saturating_mul(n) <= EXPLICIT_ENTRY_LIMIT {
        let mut m = Matrix::zeros(total_rows, n);
        for (r, &i) in active_rows.iter().enumerate() {
            let w = weights_squared[i].sqrt();
            let src = design.row(i);
            let dst = m.row_mut(r);
            for (d, &s) in dst.iter_mut().zip(src.iter()) {
                *d = w * s;
            }
        }
        let mut r = active_rows.len();
        for (j, &c) in completion_coeffs.iter().enumerate() {
            if c > 0.0 {
                m[(r, j)] = c;
                r += 1;
            }
        }
        Some(m)
    } else {
        None
    };
    // L1 sensitivity: maximum column L1 norm of the assembled strategy.
    let l1 = match &matrix {
        Some(m) => m.max_col_norm_l1(),
        None => {
            // Compute from the weighted design rows without materialising.
            let mut col_l1 = completion_coeffs.clone();
            for &i in &active_rows {
                let w = weights_squared[i].sqrt();
                for (j, &v) in design.row(i).iter().enumerate() {
                    col_l1[j] += (w * v).abs();
                }
            }
            col_l1.into_iter().fold(0.0_f64, f64::max)
        }
    };
    Ok(Strategy::from_parts(
        name,
        matrix,
        gram,
        sensitivity,
        l1,
        total_rows,
    ))
}

/// Runs Program 1 for the workload (given by its gram matrix) over an
/// arbitrary design set, returning the assembled strategy.
pub fn weighted_design_strategy(
    name: impl Into<String>,
    workload_gram: &Matrix,
    design: &Matrix,
    opts: &DesignWeightingOptions,
) -> crate::Result<DesignResult> {
    let costs = design_costs(workload_gram, design)?;
    weighted_design_strategy_with_costs(name, design, costs, opts)
}

/// Variant of [`weighted_design_strategy`] for callers that already know the
/// costs (the Eigen-Design algorithm passes the workload eigenvalues).
pub fn weighted_design_strategy_with_costs(
    name: impl Into<String>,
    design: &Matrix,
    costs: Vec<f64>,
    opts: &DesignWeightingOptions,
) -> crate::Result<DesignResult> {
    let problem = WeightingProblem::from_design_queries(design, costs.clone())?;
    let solution = solve_log_gd(&problem, &opts.solver)?;
    let strategy = build_weighted_strategy(name, design, &solution.u, opts.completion)?;
    Ok(DesignResult {
        strategy,
        weights_squared: solution.u,
        objective: solution.objective,
        costs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::rms_workload_error;
    use crate::privacy::PrivacyParams;
    use mm_linalg::approx_eq;
    use mm_strategies::wavelet::{haar_matrix, wavelet_1d};
    use mm_workload::example::fig1_workload;
    use mm_workload::range::AllRangeWorkload;
    use mm_workload::{Domain, IdentityWorkload, Workload};

    #[test]
    fn design_costs_identity_design() {
        // With Q = I, costs are the diagonal of the workload gram.
        let w = fig1_workload();
        let g = w.gram();
        let costs = design_costs(&g, &Matrix::identity(8)).unwrap();
        for (c, d) in costs.iter().zip(g.diag().iter()) {
            assert!(approx_eq(*c, *d, 1e-9));
        }
    }

    #[test]
    fn design_costs_orthonormal_rows_are_rayleigh_quotients() {
        // For orthonormal design rows Q, cost_i = q_i G q_iᵀ.
        let w = IdentityWorkload::new(4);
        let q = Matrix::from_rows(&[vec![0.5, 0.5, 0.5, 0.5], vec![0.5, 0.5, -0.5, -0.5]]).unwrap();
        let costs = design_costs(&w.gram(), &q).unwrap();
        assert!(approx_eq(costs[0], 1.0, 1e-9));
        assert!(approx_eq(costs[1], 1.0, 1e-9));
    }

    #[test]
    fn weighting_wavelet_design_improves_on_plain_wavelet() {
        // Weighting the wavelet rows for the all-range workload can only help
        // (the unweighted wavelet is in the feasible set).
        let domain = Domain::new(&[16]);
        let w = AllRangeWorkload::new(domain);
        let g = w.gram();
        let p = PrivacyParams::paper_default();
        let plain = rms_workload_error(&g, w.query_count(), &wavelet_1d(16), &p).unwrap();
        let weighted = weighted_design_strategy(
            "weighted wavelet",
            &g,
            &haar_matrix(16),
            &DesignWeightingOptions::default(),
        )
        .unwrap();
        let err = rms_workload_error(&g, w.query_count(), &weighted.strategy, &p).unwrap();
        assert!(
            err <= plain * 1.001,
            "weighted wavelet {err} should not exceed plain wavelet {plain}"
        );
    }

    #[test]
    fn completion_never_increases_error() {
        let w = fig1_workload();
        let g = w.gram();
        let p = PrivacyParams::paper_default();
        let design = haar_matrix(8);
        let with =
            weighted_design_strategy("with", &g, &design, &DesignWeightingOptions::default())
                .unwrap();
        let without = weighted_design_strategy(
            "without",
            &g,
            &design,
            &DesignWeightingOptions {
                completion: false,
                ..Default::default()
            },
        )
        .unwrap();
        let e_with = rms_workload_error(&g, 8, &with.strategy, &p).unwrap();
        let e_without = rms_workload_error(&g, 8, &without.strategy, &p).unwrap();
        assert!(e_with <= e_without * 1.0001);
        // Completion keeps the sensitivity unchanged.
        assert!(approx_eq(
            with.strategy.l2_sensitivity(),
            without.strategy.l2_sensitivity(),
            1e-9
        ));
    }

    #[test]
    fn strategy_sensitivity_is_normalised() {
        let w = fig1_workload();
        let res = weighted_design_strategy(
            "w",
            &w.gram(),
            &haar_matrix(8),
            &DesignWeightingOptions::default(),
        )
        .unwrap();
        assert!(approx_eq(res.strategy.l2_sensitivity(), 1.0, 1e-6));
        // Explicit matrix agrees with the stored gram and sensitivity.
        let m = res.strategy.matrix().unwrap();
        assert!(approx_eq(m.max_col_norm_l2(), 1.0, 1e-6));
        let g = ops::gram(m);
        for i in 0..8 {
            for j in 0..8 {
                assert!(approx_eq(g[(i, j)], res.strategy.gram()[(i, j)], 1e-8));
            }
        }
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let g = Matrix::identity(4);
        assert!(design_costs(&g, &Matrix::identity(5)).is_err());
        assert!(build_weighted_strategy("x", &Matrix::identity(4), &[1.0; 3], true).is_err());
        assert!(build_weighted_strategy("x", &Matrix::identity(4), &[0.0; 4], true).is_err());
    }
}
