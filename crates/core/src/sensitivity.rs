//! Query-matrix sensitivity (Prop. 1).
//!
//! Because neighbouring databases differ in one tuple and cell conditions are
//! disjoint, neighbouring data vectors differ by ±1 in a single component, so
//! the Lp sensitivity of a query matrix is the maximum Lp norm of its columns.

use mm_linalg::Matrix;

/// L2 sensitivity `‖W‖₂`: the maximum L2 norm over columns (Prop. 1).
pub fn l2_sensitivity(matrix: &Matrix) -> f64 {
    matrix.max_col_norm_l2()
}

/// L1 sensitivity `‖W‖₁`: the maximum L1 norm over columns.
pub fn l1_sensitivity(matrix: &Matrix) -> f64 {
    matrix.max_col_norm_l1()
}

/// L2 sensitivity computed from a gram matrix `WᵀW`: the square root of the
/// largest diagonal entry (the diagonal holds the squared column norms).
pub fn l2_sensitivity_from_gram(gram: &Matrix) -> f64 {
    gram.diag()
        .iter()
        .fold(0.0_f64, |m, &d| m.max(d))
        .max(0.0)
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_linalg::{approx_eq, ops};
    use mm_workload::example::fig1_workload;
    use mm_workload::Workload;

    #[test]
    fn fig1_sensitivities() {
        let w = fig1_workload().to_matrix().unwrap();
        assert!(approx_eq(l2_sensitivity(&w), 5.0_f64.sqrt(), 1e-12));
        assert!(approx_eq(l1_sensitivity(&w), 5.0, 1e-12));
    }

    #[test]
    fn gram_based_sensitivity_matches() {
        let w = fig1_workload();
        let m = w.to_matrix().unwrap();
        assert!(approx_eq(
            l2_sensitivity_from_gram(&ops::gram(&m)),
            l2_sensitivity(&m),
            1e-12
        ));
        assert!(approx_eq(
            l2_sensitivity_from_gram(&w.gram()),
            5.0_f64.sqrt(),
            1e-12
        ));
    }

    #[test]
    fn identity_has_unit_sensitivity() {
        let i = Matrix::identity(7);
        assert_eq!(l2_sensitivity(&i), 1.0);
        assert_eq!(l1_sensitivity(&i), 1.0);
    }
}
