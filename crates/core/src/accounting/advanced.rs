//! k-fold advanced ("strong") composition.

use super::{budget_slack, reject_delta_against_pure_budget, Accountant, KahanSum, MechanismEvent};
use crate::engine::PrivacyBudget;

/// Fraction of the total δ budget reserved as the composition slack δ′ of
/// the advanced-composition bound (the rest admits the events' own δᵢ).
pub const DEFAULT_SLACK_FRACTION: f64 = 0.5;

/// Advanced-composition accountant (Dwork–Rothblum–Vadhan, heterogeneous
/// form): a sequence of (εᵢ, δᵢ)-DP mechanisms satisfies
///
/// ```text
///     ( √(2 ln(1/δ′) · Σεᵢ²) + Σ εᵢ(e^{εᵢ} − 1),   δ′ + Σδᵢ )
/// ```
///
/// differential privacy for any slack δ′ > 0.  The accountant reserves
/// `δ′ = slack_fraction · total.delta` out of the total budget and charges
/// the events' own δᵢ against the remainder.
///
/// The composed ε is always the **minimum** of the advanced bound and the
/// basic sequential sum Σεᵢ (both are valid guarantees of the same release),
/// so this accountant never reports more ε-spend than
/// [`SequentialAccountant`](super::SequentialAccountant) on the same event
/// stream — for few large-ε events sequential is tighter, for many small-ε
/// events the √k term wins.  The δ view is strictly more expensive:
/// δ′ is consumed as soon as the first event lands.
///
/// With a pure budget (δ = 0) no slack can be reserved, the advanced bound
/// is vacuous (ln(1/δ′) → ∞) and the accountant degrades to exact
/// sequential composition — and, like every accountant, rejects any event
/// requesting δ > 0.
#[derive(Debug, Clone)]
pub struct AdvancedCompositionAccountant {
    total: PrivacyBudget,
    /// The reserved composition slack δ′.
    delta_slack: f64,
    sum_epsilon: KahanSum,
    sum_epsilon_sq: KahanSum,
    /// Σ εᵢ(e^{εᵢ} − 1), the drift term of the advanced bound.
    sum_epsilon_lin: KahanSum,
    sum_delta: KahanSum,
    events: Vec<MechanismEvent>,
}

impl AdvancedCompositionAccountant {
    /// A fresh accountant reserving [`DEFAULT_SLACK_FRACTION`] of the δ
    /// budget as the composition slack δ′.
    pub fn new(total: PrivacyBudget) -> Self {
        AdvancedCompositionAccountant::with_slack_fraction(total, DEFAULT_SLACK_FRACTION)
    }

    /// A fresh accountant reserving `fraction · total.delta` as δ′,
    /// rejecting a fraction outside (0, 1) with a typed error.
    pub fn try_with_slack_fraction(
        total: PrivacyBudget,
        fraction: f64,
    ) -> Result<Self, crate::MechanismError> {
        if !(fraction > 0.0 && fraction < 1.0) {
            return Err(crate::MechanismError::InvalidArgument(format!(
                "slack fraction must lie in (0, 1), got {fraction}"
            )));
        }
        Ok(AdvancedCompositionAccountant::with_validated_fraction(
            total, fraction,
        ))
    }

    /// A fresh accountant reserving `fraction · total.delta` as δ′.
    ///
    /// Panics unless `fraction` lies in (0, 1).  See
    /// [`AdvancedCompositionAccountant::try_with_slack_fraction`] for the
    /// non-panicking form.
    pub fn with_slack_fraction(total: PrivacyBudget, fraction: f64) -> Self {
        match AdvancedCompositionAccountant::try_with_slack_fraction(total, fraction) {
            Ok(accountant) => accountant,
            Err(e) => panic!("{e}"),
        }
    }

    fn with_validated_fraction(total: PrivacyBudget, fraction: f64) -> Self {
        AdvancedCompositionAccountant {
            total,
            delta_slack: fraction * total.delta,
            sum_epsilon: KahanSum::default(),
            sum_epsilon_sq: KahanSum::default(),
            sum_epsilon_lin: KahanSum::default(),
            sum_delta: KahanSum::default(),
            events: Vec::new(),
        }
    }

    /// The reserved composition slack δ′.
    pub fn delta_slack(&self) -> f64 {
        self.delta_slack
    }

    /// The composed ε for the given running sums: the minimum of the basic
    /// sequential sum and the advanced bound at slack δ′.
    fn composed_epsilon(&self, sum_eps: f64, sum_sq: f64, sum_lin: f64) -> f64 {
        if self.delta_slack > 0.0 {
            let advanced = (2.0 * (1.0 / self.delta_slack).ln() * sum_sq).sqrt() + sum_lin;
            sum_eps.min(advanced)
        } else {
            sum_eps
        }
    }

    /// The composed (ε, δ) spend for candidate running sums (`events > 0`
    /// decides whether δ′ has been consumed yet).
    fn composed_spend(
        &self,
        sum_eps: f64,
        sum_sq: f64,
        sum_lin: f64,
        sum_delta: f64,
        any_events: bool,
    ) -> PrivacyBudget {
        if !any_events {
            return PrivacyBudget {
                epsilon: 0.0,
                delta: 0.0,
            };
        }
        PrivacyBudget {
            epsilon: self.composed_epsilon(sum_eps, sum_sq, sum_lin),
            delta: sum_delta + self.delta_slack,
        }
    }
}

impl Accountant for AdvancedCompositionAccountant {
    fn name(&self) -> &'static str {
        "advanced"
    }

    fn total(&self) -> PrivacyBudget {
        self.total
    }

    fn spent(&self) -> PrivacyBudget {
        self.composed_spend(
            self.sum_epsilon.value(),
            self.sum_epsilon_sq.value(),
            self.sum_epsilon_lin.value(),
            self.sum_delta.value(),
            !self.events.is_empty(),
        )
    }

    fn events(&self) -> Vec<MechanismEvent> {
        self.events.clone()
    }

    fn check_many(&self, event: &MechanismEvent, count: usize) -> crate::Result<()> {
        reject_delta_against_pure_budget(self, event, count)?;
        let n = count as f64;
        let requested = event.requested();
        // Composed post-charge spend with n more copies of the event — the
        // advanced bound is non-linear in the event stream, so affordability
        // cannot be decided per charge.
        let candidate = self.composed_spend(
            self.sum_epsilon.value() + requested.epsilon * n,
            self.sum_epsilon_sq.value() + requested.epsilon * requested.epsilon * n,
            self.sum_epsilon_lin.value() + requested.epsilon * requested.epsilon.exp_m1() * n,
            self.sum_delta.value() + requested.delta * n,
            count > 0 || !self.events.is_empty(),
        );
        let (slack_e, slack_d) = budget_slack(&self.total);
        if candidate.epsilon <= self.total.epsilon + slack_e
            && candidate.delta <= self.total.delta + slack_d
        {
            return Ok(());
        }
        let spent = self.spent();
        let remaining = self.remaining();
        Err(crate::MechanismError::BudgetExhausted {
            requested_epsilon: requested.epsilon * n,
            requested_delta: requested.delta * n,
            remaining_epsilon: remaining.epsilon,
            remaining_delta: remaining.delta,
            spent_epsilon: spent.epsilon,
            spent_delta: spent.delta,
            accountant: self.name(),
        })
    }

    fn charge_many(&mut self, event: &MechanismEvent, count: usize) -> crate::Result<()> {
        self.check_many(event, count)?;
        let requested = event.requested();
        for _ in 0..count {
            self.sum_epsilon.add(requested.epsilon);
            self.sum_epsilon_sq
                .add(requested.epsilon * requested.epsilon);
            self.sum_epsilon_lin
                .add(requested.epsilon * requested.epsilon.exp_m1());
            self.sum_delta.add(requested.delta);
            self.events.push(*event);
        }
        Ok(())
    }

    fn clone_box(&self) -> Box<dyn Accountant> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::privacy::PrivacyParams;

    #[test]
    fn empty_accountant_spends_nothing() {
        let acct = AdvancedCompositionAccountant::new(PrivacyBudget::new(1.0, 1e-4));
        assert_eq!(acct.spent().epsilon, 0.0);
        assert_eq!(acct.spent().delta, 0.0);
    }

    #[test]
    fn first_event_consumes_the_delta_slack() {
        let mut acct = AdvancedCompositionAccountant::new(PrivacyBudget::new(10.0, 1e-3));
        let e = MechanismEvent::declared(PrivacyParams::new(0.1, 1e-5));
        acct.charge_many(&e, 1).unwrap();
        // δ spend = δ′ + Σδᵢ = 5e-4 + 1e-5.
        assert!((acct.spent().delta - (5e-4 + 1e-5)).abs() < 1e-18);
    }

    #[test]
    fn epsilon_spend_never_exceeds_sequential() {
        // The min() with the basic sum guarantees the advanced accountant is
        // never looser than sequential in ε, at every prefix of the stream.
        let mut acct = AdvancedCompositionAccountant::new(PrivacyBudget::new(1e6, 0.5));
        let e = MechanismEvent::declared(PrivacyParams::new(0.7, 0.0));
        let mut seq = 0.0;
        for _ in 0..200 {
            acct.charge_many(&e, 1).unwrap();
            seq += 0.7;
            assert!(acct.spent().epsilon <= seq + 1e-9);
        }
    }

    #[test]
    fn many_small_events_beat_sequential() {
        // 10 000 events at ε = 0.01: sequential composes to ε = 100, the
        // advanced bound to √(2 ln(1/δ′)·k ε²) + k ε(e^ε −1) ≈ 6.5.
        let mut acct = AdvancedCompositionAccountant::new(PrivacyBudget::new(100.0, 1e-4));
        let e = MechanismEvent::declared(PrivacyParams::new(0.01, 0.0));
        acct.charge_many(&e, 10_000).unwrap();
        let spent = acct.spent().epsilon;
        assert!(spent < 10.0, "advanced spend {spent} must be far below 100");
    }

    #[test]
    fn affordability_is_composed_not_linear() {
        // A batch that per-charge linearity would reject (k·ε > ε_total) is
        // admitted because the composed k-fold bound fits.
        let budget = PrivacyBudget::new(10.0, 1e-4);
        let acct = AdvancedCompositionAccountant::new(budget);
        let e = MechanismEvent::declared(PrivacyParams::new(0.01, 0.0));
        let k = 5_000;
        assert!(k as f64 * 0.01 > budget.epsilon, "linearity would reject");
        assert!(acct.check_many(&e, k).is_ok(), "composed bound admits");
    }

    #[test]
    fn pure_budget_degrades_to_sequential_and_rejects_delta() {
        let mut acct = AdvancedCompositionAccountant::new(PrivacyBudget::pure(1.0));
        assert_eq!(acct.delta_slack(), 0.0);
        let e = MechanismEvent::declared(PrivacyParams::pure(0.4));
        acct.charge_many(&e, 2).unwrap();
        assert!((acct.spent().epsilon - 0.8).abs() < 1e-15);
        assert!(acct.charge_many(&e, 1).is_err(), "sequential ε exhausted");
        let approx = MechanismEvent::declared(PrivacyParams::new(0.01, 1e-9));
        assert!(acct.check_many(&approx, 1).is_err(), "δ > 0 rejected");
    }
}
