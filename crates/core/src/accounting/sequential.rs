//! Basic sequential composition with compensated budget arithmetic.

use super::{budget_slack, reject_delta_against_pure_budget, Accountant, KahanSum, MechanismEvent};
use crate::engine::PrivacyBudget;

/// Sequential-composition accountant: a sequence of mechanisms satisfying
/// (ε₁,δ₁)-, (ε₂,δ₂)-, … differential privacy on the same database satisfies
/// (Σεᵢ, Σδᵢ)-differential privacy.  This is the default accountant and the
/// one the original `BudgetLedger` implemented.
///
/// # Slack semantics
///
/// Admission allows an absolute overshoot of
/// `BUDGET_SLACK · max(total, 1)` per component (resp.
/// `max(total, f64::MIN_POSITIVE)` for δ), so that e.g. ten charges of ε/10
/// exactly exhaust an ε budget despite floating-point rounding.  The single
/// source of truth is [`SequentialAccountant::headroom`] — the largest
/// request that will be admitted — which both the affordability check and
/// the `BudgetExhausted` error report use, so `can_afford(p)` is true *iff*
/// `p` fits the reported headroom componentwise.
/// [`Accountant::remaining`] stays the conservative clamped view
/// `max(0, total − spent)` (it never includes the slack), and may therefore
/// under-report the admissible headroom by at most the slack.
///
/// # Arithmetic
///
/// Spend is tracked with compensated (Neumaier) summation: after k charges,
/// `spent()` is within an ULP-scale distance of the exact sum of the
/// charges, where a naive `+=` drifts by O(k·ulp) and could spuriously
/// exhaust (or over-admit) the budget after many small charges.
#[derive(Debug, Clone)]
pub struct SequentialAccountant {
    total: PrivacyBudget,
    spent_epsilon: KahanSum,
    spent_delta: KahanSum,
    events: Vec<MechanismEvent>,
}

impl SequentialAccountant {
    /// A fresh accountant over the given total budget.
    pub fn new(total: PrivacyBudget) -> Self {
        SequentialAccountant {
            total,
            spent_epsilon: KahanSum::default(),
            spent_delta: KahanSum::default(),
            events: Vec::new(),
        }
    }

    /// The largest (ε, δ) request that will currently be admitted:
    /// `max(0, total + slack − spent)` componentwise.  This is the admission
    /// boundary — [`Accountant::check_many`] accepts a request iff it fits
    /// the headroom — and exceeds [`Accountant::remaining`] by at most the
    /// slack.
    pub fn headroom(&self) -> PrivacyBudget {
        let (slack_e, slack_d) = budget_slack(&self.total);
        PrivacyBudget {
            epsilon: (self.total.epsilon + slack_e - self.spent_epsilon.value()).max(0.0),
            delta: (self.total.delta + slack_d - self.spent_delta.value()).max(0.0),
        }
    }
}

impl Accountant for SequentialAccountant {
    fn name(&self) -> &'static str {
        "sequential"
    }

    fn total(&self) -> PrivacyBudget {
        self.total
    }

    fn spent(&self) -> PrivacyBudget {
        PrivacyBudget {
            epsilon: self.spent_epsilon.value(),
            delta: self.spent_delta.value(),
        }
    }

    fn events(&self) -> Vec<MechanismEvent> {
        self.events.clone()
    }

    fn check_many(&self, event: &MechanismEvent, count: usize) -> crate::Result<()> {
        reject_delta_against_pure_budget(self, event, count)?;
        let n = count as f64;
        let requested = event.requested();
        let headroom = self.headroom();
        // Sequential composition is linear, so k charges compose to exactly
        // (k·ε, k·δ) and one arithmetic comparison against the headroom is
        // the composed post-charge check.
        if requested.epsilon * n <= headroom.epsilon && requested.delta * n <= headroom.delta {
            return Ok(());
        }
        let spent = self.spent();
        Err(crate::MechanismError::BudgetExhausted {
            requested_epsilon: requested.epsilon * n,
            requested_delta: requested.delta * n,
            remaining_epsilon: headroom.epsilon,
            remaining_delta: headroom.delta,
            spent_epsilon: spent.epsilon,
            spent_delta: spent.delta,
            accountant: self.name(),
        })
    }

    fn charge_many(&mut self, event: &MechanismEvent, count: usize) -> crate::Result<()> {
        self.check_many(event, count)?;
        let requested = event.requested();
        for _ in 0..count {
            self.spent_epsilon.add(requested.epsilon);
            self.spent_delta.add(requested.delta);
            self.events.push(*event);
        }
        Ok(())
    }

    fn clone_box(&self) -> Box<dyn Accountant> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::privacy::PrivacyParams;
    use crate::MechanismError;

    #[test]
    fn headroom_explains_the_admission_boundary() {
        // Regression for the slack-vs-clamped-remaining inconsistency:
        // `can_afford(p)` used to return true while `remaining()` reported
        // ε = 0 and the error reported clamped remainders that did not
        // explain the accept/reject boundary.  Now a request is admitted iff
        // it fits the headroom, and the rejection error reports exactly that
        // headroom.
        let total = PrivacyBudget::new(1.0, 1e-3);
        let mut acct = SequentialAccountant::new(total);
        // Spend the whole ε budget exactly.
        let step = MechanismEvent::declared(PrivacyParams::new(0.25, 1e-4));
        acct.charge_many(&step, 4).unwrap();
        assert_eq!(acct.remaining().epsilon, 0.0, "clamped view is exact");
        // The headroom still admits a request within the slack...
        let slack = super::super::BUDGET_SLACK * 1.0;
        assert!((acct.headroom().epsilon - slack).abs() < 1e-15);
        let tiny = MechanismEvent::declared(PrivacyParams::new(slack / 2.0, 0.0));
        assert!(acct.check_many(&tiny, 1).is_ok(), "within-slack admitted");
        // ...and a rejected request's error reports the headroom boundary,
        // so the accept/reject line is exactly explainable from the error.
        let too_big = MechanismEvent::declared(PrivacyParams::new(2.0 * slack, 0.0));
        match acct.check_many(&too_big, 1).unwrap_err() {
            MechanismError::BudgetExhausted {
                requested_epsilon,
                remaining_epsilon,
                spent_epsilon,
                accountant,
                ..
            } => {
                assert!(
                    requested_epsilon > remaining_epsilon,
                    "boundary explains rejection"
                );
                assert!((remaining_epsilon - slack).abs() < 1e-15);
                assert!((spent_epsilon - 1.0).abs() < 1e-15);
                assert_eq!(accountant, "sequential");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn a_million_tiny_charges_do_not_drift() {
        // Regression for the naive `+=` drift: 10⁶ charges of ε = 10⁻⁷
        // against a 0.1 budget must land within ULP-scale distance of the
        // exact total, and the next charge must be rejected.
        let mut acct = SequentialAccountant::new(PrivacyBudget::new(0.1, 0.0));
        let step = MechanismEvent::declared(PrivacyParams::pure(1e-7));
        for _ in 0..1_000_000 {
            acct.charge_many(&step, 1).unwrap();
        }
        let exact = 0.1_f64;
        assert!(
            (acct.spent().epsilon - exact).abs() <= 2.0 * f64::EPSILON * exact,
            "spent {} vs exact {exact}",
            acct.spent().epsilon
        );
        assert_eq!(acct.events().len(), 1_000_000);
        assert!(acct.charge_many(&step, 1).is_err(), "budget is exhausted");
        assert_eq!(
            acct.events().len(),
            1_000_000,
            "failed charge spends nothing"
        );
    }

    #[test]
    fn pure_budget_rejects_approximate_charges() {
        let acct = SequentialAccountant::new(PrivacyBudget::pure(10.0));
        let approx = MechanismEvent::declared(PrivacyParams::new(0.1, 1e-9));
        assert!(acct.check_many(&approx, 1).is_err());
        let pure = MechanismEvent::declared(PrivacyParams::pure(0.1));
        assert!(acct.check_many(&pure, 1).is_ok());
    }

    #[test]
    fn check_many_is_the_composed_post_charge_check() {
        let acct = SequentialAccountant::new(PrivacyBudget::new(1.0, 0.0));
        let step = MechanismEvent::declared(PrivacyParams::pure(0.3));
        assert!(acct.check_many(&step, 3).is_ok());
        assert!(acct.check_many(&step, 4).is_err());
    }
}
