//! Rényi differential privacy accounting.

use super::{
    budget_slack, reject_delta_against_pure_budget, Accountant, KahanSum, MechanismEvent,
    MechanismKind,
};
use crate::engine::PrivacyBudget;
use crate::privacy::{gaussian_rdp, laplace_rdp};

/// The default grid of Rényi orders α: dense near 1 (where small per-release
/// spends convert best) and geometric above, the shape production RDP
/// accountants use.
pub fn default_rdp_orders() -> Vec<f64> {
    let mut orders = vec![
        1.25, 1.5, 1.75, 2.0, 2.25, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0, 6.0, 7.0,
    ];
    orders.extend([8.0, 10.0, 12.0, 14.0, 16.0, 20.0, 24.0, 32.0, 48.0, 64.0]);
    orders.extend([96.0, 128.0, 192.0, 256.0, 384.0, 512.0]);
    orders
}

/// Shared grid validation for [`RdpAccountant::try_with_orders`] and
/// [`super::RdpAccounting::try_with_orders`].
pub(crate) fn validate_rdp_orders(orders: &[f64]) -> Result<(), crate::MechanismError> {
    if orders.is_empty() {
        return Err(crate::MechanismError::InvalidArgument(
            "the RDP order grid must not be empty".into(),
        ));
    }
    if let Some(bad) = orders.iter().find(|&&a| !(a > 1.0 && a.is_finite())) {
        return Err(crate::MechanismError::InvalidArgument(format!(
            "every RDP order must be finite and exceed 1, got {bad}"
        )));
    }
    Ok(())
}

/// Rényi-DP accountant: per release, the closed-form RDP curve of the
/// mechanism (Gaussian ε(α) = α·Δ²/(2σ²), Laplace per Mironov 2017) is added
/// order-wise on a grid of α; on every affordability check and spend report
/// the accumulated curve is converted back to (ε, δ) at the budget's δ via
///
/// ```text
///     ε(δ) = min over α of  [ rdp(α) + ln(1/δ) / (α − 1) ]
/// ```
///
/// This is the accounting modern DP systems deploy, and for the paper's
/// serving regime — many Gaussian answers at a fixed per-answer (ε, δ) — it
/// admits several times more answers than sequential composition at the same
/// total budget (k Gaussian releases cost O(√k) in ε, not O(k); see the
/// `accounting` example).
///
/// [`MechanismKind::Declared`] events carry no mechanism information and are
/// composed *sequentially* on top of the RDP part (basic composition of the
/// two groups), consuming their δ out of the conversion target.  The
/// composed ε additionally never exceeds the plain sequential sum Σεᵢ
/// whenever the sequential claim is itself valid at the budget's δ (the two
/// guarantees hold simultaneously, so their minimum does).
///
/// The reported δ-spend is the budget's full δ as soon as one RDP-curve
/// event lands: the RDP→(ε, δ) conversion consumes the entire target δ.
#[derive(Debug, Clone)]
pub struct RdpAccountant {
    total: PrivacyBudget,
    orders: Vec<f64>,
    /// Accumulated RDP per order, aligned with `orders`.
    rdp: Vec<KahanSum>,
    /// Sequentially composed overhead of declared events.
    declared_epsilon: KahanSum,
    declared_delta: KahanSum,
    /// Plain sequential sums over *all* events (the α → ∞ claim).
    seq_epsilon: KahanSum,
    seq_delta: KahanSum,
    rdp_event_count: usize,
    events: Vec<MechanismEvent>,
}

/// Candidate composition state for an affordability check.
struct Candidate {
    rdp: Vec<f64>,
    declared_epsilon: f64,
    declared_delta: f64,
    seq_epsilon: f64,
    seq_delta: f64,
    rdp_event_count: usize,
    event_count: usize,
}

impl RdpAccountant {
    /// A fresh accountant on the default order grid.
    pub fn new(total: PrivacyBudget) -> Self {
        RdpAccountant::with_orders(total, default_rdp_orders())
    }

    /// A fresh accountant on a custom grid of orders, rejecting an empty
    /// grid or any order ≤ 1 (or non-finite) with a typed error.
    pub fn try_with_orders(
        total: PrivacyBudget,
        orders: Vec<f64>,
    ) -> Result<Self, crate::MechanismError> {
        validate_rdp_orders(&orders)?;
        Ok(RdpAccountant::with_validated_orders(total, orders))
    }

    /// A fresh accountant on a custom grid of orders (each must be > 1);
    /// panics on an invalid grid.  See [`RdpAccountant::try_with_orders`]
    /// for the non-panicking form.
    pub fn with_orders(total: PrivacyBudget, orders: Vec<f64>) -> Self {
        match RdpAccountant::try_with_orders(total, orders) {
            Ok(accountant) => accountant,
            Err(e) => panic!("{e}"),
        }
    }

    fn with_validated_orders(total: PrivacyBudget, orders: Vec<f64>) -> Self {
        let rdp = vec![KahanSum::default(); orders.len()];
        RdpAccountant {
            total,
            orders,
            rdp,
            declared_epsilon: KahanSum::default(),
            declared_delta: KahanSum::default(),
            seq_epsilon: KahanSum::default(),
            seq_delta: KahanSum::default(),
            rdp_event_count: 0,
            events: Vec::new(),
        }
    }

    /// The order grid the accountant converts over.
    pub fn orders(&self) -> &[f64] {
        &self.orders
    }

    /// The accumulated RDP at each order of the grid, in grid order.
    pub fn rdp_curve(&self) -> Vec<f64> {
        self.rdp.iter().map(KahanSum::value).collect()
    }

    /// The RDP-curve contribution of one copy of `event` at order `alpha`
    /// (`None` for declared events, which bypass the curve).
    fn curve_contribution(event: &MechanismEvent, alpha: f64) -> Option<f64> {
        let unit = event.unit_scale()?;
        Some(match event.kind() {
            MechanismKind::Gaussian => gaussian_rdp(alpha, unit),
            MechanismKind::Laplace => laplace_rdp(alpha, unit),
            MechanismKind::Declared => unreachable!("declared events have no unit scale"),
        })
    }

    fn current_candidate(&self) -> Candidate {
        Candidate {
            rdp: self.rdp.iter().map(KahanSum::value).collect(),
            declared_epsilon: self.declared_epsilon.value(),
            declared_delta: self.declared_delta.value(),
            seq_epsilon: self.seq_epsilon.value(),
            seq_delta: self.seq_delta.value(),
            rdp_event_count: self.rdp_event_count,
            event_count: self.events.len(),
        }
    }

    /// The candidate state after charging `count` more copies of `event`.
    fn candidate_after(&self, event: &MechanismEvent, count: usize) -> Candidate {
        let mut c = self.current_candidate();
        let n = count as f64;
        let requested = event.requested();
        c.seq_epsilon += requested.epsilon * n;
        c.seq_delta += requested.delta * n;
        c.event_count += count;
        match event.kind() {
            MechanismKind::Declared => {
                c.declared_epsilon += requested.epsilon * n;
                c.declared_delta += requested.delta * n;
            }
            _ => {
                for (r, &alpha) in c.rdp.iter_mut().zip(self.orders.iter()) {
                    *r += Self::curve_contribution(event, alpha)
                        .expect("non-declared events have a curve")
                        * n;
                }
                c.rdp_event_count += count;
            }
        }
        c
    }

    /// The composed (ε, δ) spend of a candidate state at the budget's δ.
    fn composed_spend(&self, c: &Candidate) -> PrivacyBudget {
        if c.event_count == 0 {
            return PrivacyBudget {
                epsilon: 0.0,
                delta: 0.0,
            };
        }
        let (_, slack_d) = budget_slack(&self.total);
        // δ available to the RDP→(ε, δ) conversion: the declared events'
        // sequential δ comes off the top.
        let delta_conv = self.total.delta - c.declared_delta;
        let rdp_epsilon = if c.rdp_event_count == 0 {
            0.0
        } else if delta_conv > 0.0 {
            let log_inv_delta = (1.0 / delta_conv).ln();
            c.rdp
                .iter()
                .zip(self.orders.iter())
                .map(|(&r, &alpha)| r + log_inv_delta / (alpha - 1.0))
                .fold(f64::INFINITY, f64::min)
        } else {
            f64::INFINITY
        };
        let rdp_based = c.declared_epsilon + rdp_epsilon;
        // The plain sequential claim (Σεᵢ, Σδᵢ) holds simultaneously; take
        // the minimum whenever it is valid at the budget's δ, so the RDP
        // accountant never reports more ε-spend than sequential would.
        let sequential_valid = c.seq_delta <= self.total.delta + slack_d;
        let epsilon = if sequential_valid {
            rdp_based.min(c.seq_epsilon)
        } else {
            rdp_based
        };
        let delta = if c.rdp_event_count > 0 {
            self.total.delta
        } else {
            c.declared_delta
        };
        PrivacyBudget { epsilon, delta }
    }
}

impl Accountant for RdpAccountant {
    fn name(&self) -> &'static str {
        "rdp"
    }

    fn total(&self) -> PrivacyBudget {
        self.total
    }

    fn spent(&self) -> PrivacyBudget {
        self.composed_spend(&self.current_candidate())
    }

    fn events(&self) -> Vec<MechanismEvent> {
        self.events.clone()
    }

    fn check_many(&self, event: &MechanismEvent, count: usize) -> crate::Result<()> {
        reject_delta_against_pure_budget(self, event, count)?;
        // The composed post-charge spend decides affordability: k Gaussian
        // releases cost O(√k) in converted ε, so per-charge linearity would
        // reject batches the composed bound admits (and admit streams it
        // must reject).
        let candidate = self.composed_spend(&self.candidate_after(event, count));
        let (slack_e, slack_d) = budget_slack(&self.total);
        if candidate.epsilon <= self.total.epsilon + slack_e
            && candidate.delta <= self.total.delta + slack_d
        {
            return Ok(());
        }
        let requested = event.requested();
        let n = count as f64;
        let spent = self.spent();
        let remaining = self.remaining();
        Err(crate::MechanismError::BudgetExhausted {
            requested_epsilon: requested.epsilon * n,
            requested_delta: requested.delta * n,
            remaining_epsilon: remaining.epsilon,
            remaining_delta: remaining.delta,
            spent_epsilon: spent.epsilon,
            spent_delta: spent.delta,
            accountant: self.name(),
        })
    }

    fn charge_many(&mut self, event: &MechanismEvent, count: usize) -> crate::Result<()> {
        self.check_many(event, count)?;
        let requested = event.requested();
        // The per-order curve values are identical for every copy of the
        // event: evaluate the transcendental curves once per order and only
        // repeat the (compensated) additions, which keeps the sums
        // bit-identical to `count` repeated single charges.
        let contributions: Option<Vec<f64>> = match event.kind() {
            MechanismKind::Declared => None,
            _ => Some(
                self.orders
                    .iter()
                    .map(|&alpha| {
                        Self::curve_contribution(event, alpha)
                            .expect("non-declared events have a curve")
                    })
                    .collect(),
            ),
        };
        for _ in 0..count {
            self.seq_epsilon.add(requested.epsilon);
            self.seq_delta.add(requested.delta);
            match &contributions {
                None => {
                    self.declared_epsilon.add(requested.epsilon);
                    self.declared_delta.add(requested.delta);
                }
                Some(contributions) => {
                    for (r, &c) in self.rdp.iter_mut().zip(contributions.iter()) {
                        r.add(c);
                    }
                    self.rdp_event_count += 1;
                }
            }
            self.events.push(*event);
        }
        Ok(())
    }

    fn clone_box(&self) -> Box<dyn Accountant> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::privacy::PrivacyParams;

    fn paper_gaussian_event() -> MechanismEvent {
        let p = PrivacyParams::paper_default(); // (0.5, 1e-4)
        MechanismEvent::gaussian(p, p.gaussian_unit_sigma(), 1.0)
    }

    #[test]
    fn gaussian_releases_compose_sublinearly() {
        // At the paper's per-answer (0.5, 1e-4), k releases cost O(√k): the
        // composed ε at δ = 1e-3 after 32 releases is far below 16.
        let mut acct = RdpAccountant::new(PrivacyBudget::new(100.0, 1e-3));
        let e = paper_gaussian_event();
        acct.charge_many(&e, 32).unwrap();
        let spent = acct.spent().epsilon;
        assert!(spent < 4.0, "32 releases composed to ε = {spent}, not 16");
        // And the δ view is the full conversion target.
        assert_eq!(acct.spent().delta, 1e-3);
    }

    #[test]
    fn epsilon_spend_never_exceeds_sequential_when_comparable() {
        // While the plain sequential claim (Σε, Σδ) is valid at the budget's
        // δ, the RDP accountant's min() keeps its ε-spend at or below the
        // sequential sum.
        let mut acct = RdpAccountant::new(PrivacyBudget::new(1e6, 1e-3));
        let e = paper_gaussian_event();
        for k in 1..=10 {
            // 10 × 1e-4 ≤ 1e-3 keeps the sequential claim valid throughout.
            acct.charge_many(&e, 1).unwrap();
            assert!(acct.spent().epsilon <= 0.5 * k as f64 + 1e-12);
        }
    }

    #[test]
    fn single_release_converts_at_or_below_its_requested_epsilon() {
        // One Gaussian release calibrated for (0.5, 1e-4) must not convert
        // to more than ε = 0.5 at the same δ.
        let mut acct = RdpAccountant::new(PrivacyBudget::new(10.0, 1e-4));
        acct.charge_many(&paper_gaussian_event(), 1).unwrap();
        assert!(acct.spent().epsilon <= 0.5 + 1e-12);
    }

    #[test]
    fn laplace_releases_are_accounted_via_their_curve() {
        let p = PrivacyParams::pure(0.5);
        let e = MechanismEvent::laplace(p, p.laplace_unit_scale(), 1.0);
        // δ > 0 budget lets the Laplace curve convert below the pure ε sum.
        let mut acct = RdpAccountant::new(PrivacyBudget::new(100.0, 1e-6));
        acct.charge_many(&e, 64).unwrap();
        let spent = acct.spent().epsilon;
        assert!(
            spent < 64.0 * 0.5,
            "64 Laplace releases composed to ε = {spent}"
        );
    }

    #[test]
    fn check_many_is_composed_not_linear() {
        // Budget ε = 4: linear accounting admits 8 releases at ε = 0.5; the
        // composed RDP bound admits a 32-release batch outright.
        let acct = RdpAccountant::new(PrivacyBudget::new(4.0, 1e-3));
        let e = paper_gaussian_event();
        assert!(acct.check_many(&e, 32).is_ok(), "composed bound admits 32");
        assert!(
            acct.check_many(&e, 4096).is_err(),
            "but not unboundedly many"
        );
    }

    #[test]
    fn declared_events_compose_sequentially_on_top() {
        let mut acct = RdpAccountant::new(PrivacyBudget::new(10.0, 1e-3));
        let declared = MechanismEvent::declared(PrivacyParams::new(1.0, 1e-4));
        acct.charge_many(&declared, 2).unwrap();
        // No RDP events: the spend is exactly the sequential sums.
        assert!((acct.spent().epsilon - 2.0).abs() < 1e-12);
        assert!((acct.spent().delta - 2e-4).abs() < 1e-18);
        // A Gaussian release now converts against δ = 1e-3 − 2e-4.
        acct.charge_many(&paper_gaussian_event(), 1).unwrap();
        assert!(acct.spent().epsilon > 2.0);
        assert_eq!(acct.spent().delta, 1e-3);
    }

    #[test]
    fn pure_budget_rejects_any_positive_delta_charge() {
        let acct = RdpAccountant::new(PrivacyBudget::pure(10.0));
        assert!(acct.check_many(&paper_gaussian_event(), 1).is_err());
        let declared = MechanismEvent::declared(PrivacyParams::new(0.1, 1e-12));
        assert!(acct.check_many(&declared, 1).is_err());
        // Pure Laplace releases still compose (sequentially, via the min –
        // the conversion target δ is 0 so only the Σε claim is usable).
        let p = PrivacyParams::pure(1.0);
        let laplace = MechanismEvent::laplace(p, p.laplace_unit_scale(), 1.0);
        let mut acct = RdpAccountant::new(PrivacyBudget::pure(10.0));
        acct.charge_many(&laplace, 10).unwrap();
        assert!((acct.spent().epsilon - 10.0).abs() < 1e-9);
        assert!(acct.check_many(&laplace, 1).is_err());
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn orders_at_or_below_one_rejected() {
        RdpAccountant::with_orders(PrivacyBudget::new(1.0, 1e-4), vec![1.0, 2.0]);
    }
}
