//! Pluggable privacy accounting: how a session's spend composes.
//!
//! The paper's serving regime is "many answers at a fixed per-answer
//! (ε, δ)" (ε = 0.5, δ = 10⁻⁴ for the workload-error experiments; Prop. 2
//! and 4).  How many answers a fixed *total* budget admits depends entirely
//! on the composition theorem the ledger applies:
//!
//! * [`SequentialAccountant`] — basic sequential composition
//!   (Σεᵢ, Σδᵢ).  Simple, exactly explainable, and the default: a drop-in
//!   replacement for the original `BudgetLedger` (same API and admission
//!   semantics; its arithmetic differs only by this PR's intentional fixes —
//!   compensated summation and the slack-aware headroom reporting).
//! * [`AdvancedCompositionAccountant`] — the k-fold strong-composition bound
//!   of Dwork–Rothblum–Vadhan: ε(δ′) = √(2 ln(1/δ′) Σεᵢ²) + Σεᵢ(e^{εᵢ}−1),
//!   δ = Σδᵢ + δ′, never reporting more ε-spend than sequential (the two
//!   bounds are combined by `min`).
//! * [`RdpAccountant`] — Rényi differential privacy on a grid of orders α,
//!   with the closed-form Gaussian curve ε(α) = α·Δ²/(2σ²) and the Laplace
//!   curve (Mironov 2017), converted back to (ε, δ) at the budget's δ on
//!   every affordability check.  This is the accounting modern DP systems
//!   deploy, and it stretches the paper's budget several-fold (see the
//!   `accounting` example).
//!
//! Accountants are charged [`MechanismEvent`]s — the backend kind, the noise
//! scale σ or b, the sensitivity Δ, and the requested (ε, δ) — not bare
//! (ε, δ) pairs, because the tighter theorems need the mechanism, not just
//! its claimed guarantee.  An event constructed with
//! [`MechanismEvent::declared`] carries no mechanism information and is
//! composed sequentially by every accountant (the only sound fallback).
//!
//! Affordability under the non-linear accountants is *composed*: charging k
//! copies of an event is admitted iff the composed post-charge spend fits
//! the budget, which is what makes all-or-nothing batch charging sound (k
//! RDP charges cost far less than k times one charge).

mod advanced;
mod event;
mod rdp;
mod registry;
mod sequential;

pub use advanced::{AdvancedCompositionAccountant, DEFAULT_SLACK_FRACTION};
pub use event::{MechanismEvent, MechanismKind};
pub use rdp::{default_rdp_orders, RdpAccountant};
pub use registry::{UserLedger, UserLedgerRegistry};
pub use sequential::SequentialAccountant;

use crate::engine::PrivacyBudget;

/// Absolute-relative slack absorbing floating-point drift in repeated budget
/// arithmetic (e.g. ten charges of ε/10 must exactly exhaust ε).  See
/// [`SequentialAccountant`] for the precise admission rule.
pub const BUDGET_SLACK: f64 = 1e-9;

/// A privacy accountant: tracks a stream of [`MechanismEvent`]s against a
/// total [`PrivacyBudget`] under some composition theorem.
///
/// Object safe: sessions hold `Box<dyn Accountant>` and engines a factory
/// ([`AccountantFactory`]), so the composition rule is swapped with one
/// builder call ([`Engine::builder().accountant(…)`](crate::engine::EngineBuilder::accountant)).
///
/// # Contract
///
/// * [`Accountant::check_many`] must be side-effect free and must admit a
///   charge iff the *composed post-charge* spend fits the total budget —
///   per-charge linearity is an implementation detail of the sequential
///   accountant, not part of the contract.
/// * [`Accountant::charge_many`] must behave exactly like `check_many`
///   followed (on success) by recording the events; a failed charge changes
///   no state.
/// * [`Accountant::spent`] reports the composed spend at the accountant's
///   target δ (the budget's δ), and must never exceed the sequential sums
///   (Σεᵢ at matching δ) — a sound accountant may be tighter than basic
///   composition, never looser.
/// * A pure-DP budget (δ = 0) must reject any event with requested δ > 0.
pub trait Accountant: std::fmt::Debug + Send + Sync {
    /// Accountant name for reports and errors (`"sequential"`, `"advanced"`,
    /// `"rdp"`).
    fn name(&self) -> &'static str;

    /// The total budget this accountant enforces.
    fn total(&self) -> PrivacyBudget;

    /// The composed (ε, δ) spend at the budget's δ.
    fn spent(&self) -> PrivacyBudget;

    /// Budget still available under this accountant's composition, clamped
    /// at zero: `max(0, total − spent)` componentwise.
    fn remaining(&self) -> PrivacyBudget {
        let total = self.total();
        let spent = self.spent();
        PrivacyBudget {
            epsilon: (total.epsilon - spent.epsilon).max(0.0),
            delta: (total.delta - spent.delta).max(0.0),
        }
    }

    /// Every event accepted so far, in order (one entry per charge; a
    /// `charge_many(event, k)` records `k` entries).
    ///
    /// Returns an owned snapshot rather than a borrow so that accountants
    /// whose state lives behind a lock — e.g. the shared cross-session
    /// accountant a [`UserLedger`] hands out — can implement it; for the
    /// in-memory accountants it is a clone of the event list.
    fn events(&self) -> Vec<MechanismEvent>;

    /// Checks that `count` repeated charges of `event` would fit — i.e. that
    /// the *composed* spend after all `count` charges stays within the total
    /// budget — failing with
    /// [`MechanismError::BudgetExhausted`](crate::MechanismError::BudgetExhausted)
    /// (and changing no state) otherwise.
    fn check_many(&self, event: &MechanismEvent, count: usize) -> crate::Result<()>;

    /// Charges `count` copies of `event`, or fails like
    /// [`Accountant::check_many`] without changing any state.
    fn charge_many(&mut self, event: &MechanismEvent, count: usize) -> crate::Result<()>;

    /// Clones the accountant with its full state (for `Clone` ledgers).
    fn clone_box(&self) -> Box<dyn Accountant>;
}

impl Clone for Box<dyn Accountant> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Builds a fresh [`Accountant`] per session over a given total budget.
///
/// Engines hold one factory and stamp out an accountant for every
/// [`session`](crate::engine::Engine::session) /
/// [`owned_session`](crate::engine::Engine::owned_session) call.
pub trait AccountantFactory: std::fmt::Debug + Send + Sync {
    /// A fresh, empty accountant enforcing `total`.
    fn accountant(&self, total: PrivacyBudget) -> Box<dyn Accountant>;

    /// Name of the accountants this factory produces.
    fn name(&self) -> &'static str;
}

/// Factory for [`SequentialAccountant`] (the engine default).
#[derive(Debug, Clone, Copy, Default)]
pub struct SequentialAccounting;

impl AccountantFactory for SequentialAccounting {
    fn accountant(&self, total: PrivacyBudget) -> Box<dyn Accountant> {
        Box::new(SequentialAccountant::new(total))
    }

    fn name(&self) -> &'static str {
        "sequential"
    }
}

/// Factory for [`AdvancedCompositionAccountant`] with the default δ′ slack
/// fraction.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdvancedCompositionAccounting;

impl AccountantFactory for AdvancedCompositionAccounting {
    fn accountant(&self, total: PrivacyBudget) -> Box<dyn Accountant> {
        Box::new(AdvancedCompositionAccountant::new(total))
    }

    fn name(&self) -> &'static str {
        "advanced"
    }
}

/// Factory for [`RdpAccountant`] on the default order grid.
#[derive(Debug, Clone, Default)]
pub struct RdpAccounting {
    orders: Option<Vec<f64>>,
}

impl RdpAccounting {
    /// RDP accounting on a custom grid of orders, rejecting an empty grid
    /// or any order ≤ 1 (or non-finite) with a typed error.
    pub fn try_with_orders(orders: Vec<f64>) -> Result<Self, crate::MechanismError> {
        rdp::validate_rdp_orders(&orders)?;
        Ok(RdpAccounting {
            orders: Some(orders),
        })
    }

    /// RDP accounting on a custom grid of orders.
    ///
    /// Panics unless the grid is non-empty and every order is finite and
    /// exceeds 1 — at construction, so a misconfigured engine fails where it
    /// is built rather than on the serving thread that opens the first
    /// session.  See [`RdpAccounting::try_with_orders`] for the
    /// non-panicking form.
    pub fn with_orders(orders: Vec<f64>) -> Self {
        match RdpAccounting::try_with_orders(orders) {
            Ok(factory) => factory,
            Err(e) => panic!("{e}"),
        }
    }
}

impl AccountantFactory for RdpAccounting {
    fn accountant(&self, total: PrivacyBudget) -> Box<dyn Accountant> {
        Box::new(match &self.orders {
            Some(orders) => RdpAccountant::with_orders(total, orders.clone()),
            None => RdpAccountant::new(total),
        })
    }

    fn name(&self) -> &'static str {
        "rdp"
    }
}

/// Compensated (Neumaier) running sum: after many small charges the tracked
/// total stays within an ULP-scale distance of the exact sum, where a naive
/// `+=` drifts by O(k·ulp) and can spuriously exhaust (or over-admit) a
/// budget.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(crate) struct KahanSum {
    sum: f64,
    compensation: f64,
}

impl KahanSum {
    pub(crate) fn add(&mut self, value: f64) {
        let t = self.sum + value;
        // Neumaier's branch: compensate with whichever operand lost bits.
        if self.sum.abs() >= value.abs() {
            self.compensation += (self.sum - t) + value;
        } else {
            self.compensation += (value - t) + self.sum;
        }
        self.sum = t;
    }

    pub(crate) fn value(&self) -> f64 {
        self.sum + self.compensation
    }
}

/// The slack-aware admission thresholds shared by the accountants: requests
/// are admitted up to `total + slack` where
/// `slack = BUDGET_SLACK · max(total, floor)`.
pub(crate) fn budget_slack(total: &PrivacyBudget) -> (f64, f64) {
    (
        BUDGET_SLACK * total.epsilon.max(1.0),
        BUDGET_SLACK * total.delta.max(f64::MIN_POSITIVE),
    )
}

/// Shared pure-DP guard: a δ = 0 budget admits no event with requested
/// δ > 0, under any composition theorem (no amount of post-processing turns
/// an approximate-DP release into a pure-DP one).
pub(crate) fn reject_delta_against_pure_budget(
    accountant: &dyn Accountant,
    event: &MechanismEvent,
    count: usize,
) -> crate::Result<()> {
    // Zero charges trivially fit any budget (the composed post-charge spend
    // is the current spend), whatever the event would have cost.
    if count == 0 {
        return Ok(());
    }
    if accountant.total().delta == 0.0 && event.requested().delta > 0.0 {
        let spent = accountant.spent();
        return Err(crate::MechanismError::BudgetExhausted {
            requested_epsilon: event.requested().epsilon * count as f64,
            requested_delta: event.requested().delta * count as f64,
            remaining_epsilon: accountant.remaining().epsilon,
            remaining_delta: 0.0,
            spent_epsilon: spent.epsilon,
            spent_delta: spent.delta,
            accountant: accountant.name(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kahan_sum_is_exact_where_naive_drifts() {
        let mut kahan = KahanSum::default();
        let mut naive = 0.0_f64;
        for _ in 0..1_000_000 {
            kahan.add(1e-7);
            naive += 1e-7;
        }
        let exact = 0.1_f64; // 1e6 × 1e-7
        assert!((kahan.value() - exact).abs() <= f64::EPSILON * exact);
        // The naive sum demonstrably drifts further than the compensated one
        // (this is the failure mode the sequential accountant had).
        assert!((naive - exact).abs() > (kahan.value() - exact).abs());
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn rdp_factory_validates_orders_at_construction() {
        RdpAccounting::with_orders(vec![0.5]);
    }

    #[test]
    fn zero_count_checks_and_charges_always_fit() {
        // A count of 0 composes to the current spend, so it must be admitted
        // even for events a single charge of which would be rejected —
        // including δ > 0 events against a pure budget.
        use crate::privacy::PrivacyParams;
        let p = PrivacyParams::new(5.0, 1e-4);
        let event = MechanismEvent::declared(p);
        for factory in [
            Box::new(SequentialAccounting) as Box<dyn AccountantFactory>,
            Box::new(AdvancedCompositionAccounting),
            Box::new(RdpAccounting::default()),
        ] {
            let mut acct = factory.accountant(PrivacyBudget::pure(1.0));
            assert!(acct.check_many(&event, 1).is_err(), "{}", factory.name());
            assert!(acct.check_many(&event, 0).is_ok(), "{}", factory.name());
            acct.charge_many(&event, 0).unwrap();
            assert!(acct.events().is_empty());
            assert_eq!(acct.spent().epsilon, 0.0);
        }
    }

    #[test]
    fn factories_produce_named_accountants() {
        let total = PrivacyBudget::new(1.0, 1e-4);
        for (factory, name) in [
            (
                Box::new(SequentialAccounting) as Box<dyn AccountantFactory>,
                "sequential",
            ),
            (Box::new(AdvancedCompositionAccounting), "advanced"),
            (Box::new(RdpAccounting::default()), "rdp"),
        ] {
            let acct = factory.accountant(total);
            assert_eq!(acct.name(), name);
            assert_eq!(factory.name(), name);
            assert_eq!(acct.total(), total);
            assert_eq!(acct.spent().epsilon, 0.0);
            assert_eq!(acct.spent().delta, 0.0);
            assert!(acct.events().is_empty());
        }
    }
}
