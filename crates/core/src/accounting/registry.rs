//! Cross-session accounting: one principal, many sessions, one budget.
//!
//! A per-session accountant cannot see charges made by *other* sessions for
//! the same person, so two concurrent sessions could jointly spend 2× the
//! budget each of them enforces.  A [`UserLedger`] closes that hole: it owns
//! the principal's single composed [`Accountant`] behind a lock, and every
//! session opened for the principal charges through a shared handle
//! ([`UserLedger::accountant_handle`]) into that one accountant.  The total
//! number of answers the principal's (ε, δ) budget admits is therefore the
//! same whether they arrive through one session or twenty — the acceptance
//! criterion of a serving tier fronting one budget with many connections.
//!
//! A [`UserLedgerRegistry`] maps principal names to their ledgers
//! (get-or-create), which is what a server holds: one registry, one ledger
//! per user, any number of sessions per ledger.
//!
//! Concurrency semantics: every check *and* charge takes the ledger's lock,
//! so charges serialize and the budget can never be jointly over-spent.  The
//! engine's answer path re-checks affordability at charge time (see
//! `Engine::answer_parts`), so a race between two sessions' pre-checks fails
//! closed — the loser's answers are dropped unreleased and it receives
//! [`BudgetExhausted`](crate::MechanismError::BudgetExhausted).

use super::{Accountant, AccountantFactory, MechanismEvent, SequentialAccounting};
use crate::engine::PrivacyBudget;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

#[derive(Debug)]
struct LedgerInner {
    principal: String,
    accountant: Mutex<Box<dyn Accountant>>,
}

/// One principal's shared privacy ledger: a single composed [`Accountant`]
/// that any number of concurrent sessions charge through.
///
/// Cloning is shallow — every clone (and every
/// [`accountant_handle`](UserLedger::accountant_handle)) refers to the same
/// underlying accountant, so all observers agree on the spend.
#[derive(Debug, Clone)]
pub struct UserLedger {
    inner: Arc<LedgerInner>,
}

impl UserLedger {
    /// A ledger for `principal` enforcing `total` under sequential
    /// composition (the default policy).
    pub fn new(principal: impl Into<String>, total: PrivacyBudget) -> Self {
        UserLedger::with_factory(principal, total, &SequentialAccounting)
    }

    /// A ledger whose composition policy comes from an accountant factory
    /// (e.g. the engine's: `UserLedger::with_factory(name, total,
    /// engine.accountant_factory().as_ref())`).
    pub fn with_factory(
        principal: impl Into<String>,
        total: PrivacyBudget,
        factory: &dyn AccountantFactory,
    ) -> Self {
        UserLedger::with_accountant(principal, factory.accountant(total))
    }

    /// A ledger over an explicit (possibly pre-charged) accountant.
    pub fn with_accountant(principal: impl Into<String>, accountant: Box<dyn Accountant>) -> Self {
        UserLedger {
            inner: Arc::new(LedgerInner {
                principal: principal.into(),
                accountant: Mutex::new(accountant),
            }),
        }
    }

    /// The principal this ledger accounts for.
    pub fn principal(&self) -> &str {
        &self.inner.principal
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Box<dyn Accountant>> {
        // A panic while holding the lock can only happen inside an
        // accountant, whose contract is that failed operations change no
        // state — so the state under a poisoned lock is still consistent.
        match self.inner.accountant.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The total budget the ledger enforces.
    pub fn total(&self) -> PrivacyBudget {
        self.lock().total()
    }

    /// The composed spend across *all* sessions of this principal.
    pub fn spent(&self) -> PrivacyBudget {
        self.lock().spent()
    }

    /// Budget still available, clamped at zero.
    pub fn remaining(&self) -> PrivacyBudget {
        self.lock().remaining()
    }

    /// Name of the underlying accountant's composition policy.
    pub fn accountant_name(&self) -> &'static str {
        self.lock().name()
    }

    /// Snapshot of every event charged so far, across all sessions.
    pub fn events(&self) -> Vec<MechanismEvent> {
        self.lock().events()
    }

    /// Checks `count` charges of `event` against the shared budget without
    /// spending (see [`Accountant::check_many`]).
    pub fn check_event_many(&self, event: &MechanismEvent, count: usize) -> crate::Result<()> {
        self.lock().check_many(event, count)
    }

    /// Atomically charges `count` copies of `event`, or fails without
    /// changing state.
    pub fn charge_event_many(&self, event: &MechanismEvent, count: usize) -> crate::Result<()> {
        self.lock().charge_many(event, count)
    }

    /// A `Box<dyn Accountant>` handle that charges **this shared ledger** —
    /// what [`Engine::user_session`](crate::engine::Engine::user_session)
    /// installs into each session.  Cloning the handle (or the session's
    /// ledger) shares, never forks, the spend.
    pub fn accountant_handle(&self) -> Box<dyn Accountant> {
        Box::new(SharedAccountant {
            ledger: self.clone(),
        })
    }
}

/// The [`Accountant`] face of a [`UserLedger`]: delegates every operation
/// under the ledger's lock.  Private — obtained via
/// [`UserLedger::accountant_handle`].
#[derive(Debug, Clone)]
struct SharedAccountant {
    ledger: UserLedger,
}

impl Accountant for SharedAccountant {
    fn name(&self) -> &'static str {
        self.ledger.accountant_name()
    }

    fn total(&self) -> PrivacyBudget {
        self.ledger.total()
    }

    fn spent(&self) -> PrivacyBudget {
        self.ledger.spent()
    }

    fn events(&self) -> Vec<MechanismEvent> {
        self.ledger.events()
    }

    fn check_many(&self, event: &MechanismEvent, count: usize) -> crate::Result<()> {
        self.ledger.check_event_many(event, count)
    }

    fn charge_many(&mut self, event: &MechanismEvent, count: usize) -> crate::Result<()> {
        self.ledger.charge_event_many(event, count)
    }

    fn clone_box(&self) -> Box<dyn Accountant> {
        // Shares the ledger: cloning a handle must not fork the spend.
        Box::new(self.clone())
    }
}

/// A server's map from principal names to their shared ledgers.
///
/// `get_or_create` is the only mutation: the first session for a principal
/// creates the ledger with the supplied budget, every later session joins
/// it (the later budget argument is ignored — one principal, one budget).
#[derive(Debug, Default)]
pub struct UserLedgerRegistry {
    ledgers: Mutex<HashMap<String, UserLedger>>,
}

impl UserLedgerRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        UserLedgerRegistry::default()
    }

    /// The principal's ledger, created with `total` under sequential
    /// composition if this is the principal's first appearance.
    pub fn get_or_create(&self, principal: &str, total: PrivacyBudget) -> UserLedger {
        self.get_or_create_with(principal, || UserLedger::new(principal.to_string(), total))
    }

    /// Like [`get_or_create`](UserLedgerRegistry::get_or_create) with an
    /// arbitrary ledger constructor (custom accountant or composition).
    pub fn get_or_create_with(
        &self,
        principal: &str,
        make: impl FnOnce() -> UserLedger,
    ) -> UserLedger {
        let mut ledgers = match self.ledgers.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        ledgers
            .entry(principal.to_string())
            .or_insert_with(make)
            .clone()
    }

    /// The principal's ledger, if one exists.
    pub fn get(&self, principal: &str) -> Option<UserLedger> {
        match self.ledgers.lock() {
            Ok(guard) => guard.get(principal).cloned(),
            Err(poisoned) => poisoned.into_inner().get(principal).cloned(),
        }
    }

    /// Number of principals with a ledger.
    pub fn len(&self) -> usize {
        match self.ledgers.lock() {
            Ok(guard) => guard.len(),
            Err(poisoned) => poisoned.into_inner().len(),
        }
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accounting::RdpAccounting;
    use crate::privacy::PrivacyParams;

    fn event(eps: f64, delta: f64) -> MechanismEvent {
        MechanismEvent::declared(PrivacyParams::new(eps, delta))
    }

    #[test]
    fn handles_share_one_spend() {
        let ledger = UserLedger::new("alice", PrivacyBudget::new(1.0, 1e-4));
        assert_eq!(ledger.principal(), "alice");
        let mut h1 = ledger.accountant_handle();
        let mut h2 = h1.clone_box(); // clone shares, never forks
        h1.charge_many(&event(0.4, 1e-5), 1).unwrap();
        h2.charge_many(&event(0.4, 1e-5), 1).unwrap();
        assert_eq!(ledger.events().len(), 2);
        assert!((ledger.spent().epsilon - 0.8).abs() < 1e-12);
        // A third charge that fits only a fresh budget is rejected by both.
        assert!(h1.check_many(&event(0.4, 1e-5), 1).is_err());
        assert!(h2.charge_many(&event(0.4, 1e-5), 1).is_err());
        assert_eq!(ledger.events().len(), 2, "failed charge spends nothing");
        assert_eq!(h1.name(), "sequential");
        assert_eq!(h1.total(), ledger.total());
        assert!(ledger.remaining().epsilon < 0.3);
    }

    #[test]
    fn concurrent_sessions_cannot_overspend() {
        // 8 threads race 4 charges each against a budget that admits exactly
        // 16: whatever the interleaving, exactly 16 succeed.
        let ledger = UserLedger::new("bob", PrivacyBudget::new(1.6, 1e-2));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let ledger = ledger.clone();
                std::thread::spawn(move || {
                    let mut ok = 0;
                    for _ in 0..4 {
                        if ledger.charge_event_many(&event(0.1, 1e-4), 1).is_ok() {
                            ok += 1;
                        }
                    }
                    ok
                })
            })
            .collect();
        let granted: usize = threads.into_iter().map(|t| t.join().unwrap()).sum();
        assert_eq!(granted, 16, "budget admits exactly 16 charges in total");
        assert_eq!(ledger.events().len(), 16);
    }

    #[test]
    fn registry_returns_one_ledger_per_principal() {
        let registry = UserLedgerRegistry::new();
        assert!(registry.is_empty());
        assert!(registry.get("carol").is_none());
        let a = registry.get_or_create("carol", PrivacyBudget::new(1.0, 1e-4));
        // The second budget argument is ignored: one principal, one budget.
        let b = registry.get_or_create("carol", PrivacyBudget::new(99.0, 1e-2));
        assert!(Arc::ptr_eq(&a.inner, &b.inner));
        assert_eq!(b.total(), PrivacyBudget::new(1.0, 1e-4));
        a.charge_event_many(&event(0.5, 1e-5), 1).unwrap();
        assert_eq!(registry.get("carol").unwrap().events().len(), 1);
        assert_eq!(registry.len(), 1);
        registry.get_or_create("dave", PrivacyBudget::new(1.0, 1e-4));
        assert_eq!(registry.len(), 2);
    }

    #[test]
    fn ledger_composition_policy_is_pluggable() {
        let ledger = UserLedger::with_factory(
            "erin",
            PrivacyBudget::new(1.0, 1e-4),
            &RdpAccounting::default(),
        );
        assert_eq!(ledger.accountant_name(), "rdp");
        ledger.charge_event_many(&event(0.1, 1e-6), 2).unwrap();
        assert_eq!(ledger.events().len(), 2);
    }
}
