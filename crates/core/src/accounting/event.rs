//! Mechanism events: what actually gets charged to an accountant.

use crate::privacy::PrivacyParams;
use crate::MechanismError;

fn positive_finite(value: f64, what: &str) -> Result<f64, MechanismError> {
    if value > 0.0 && value.is_finite() {
        Ok(value)
    } else {
        Err(MechanismError::InvalidArgument(format!(
            "{what} must be positive and finite, got {value}"
        )))
    }
}

/// The noise distribution a charged release used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MechanismKind {
    /// Gaussian noise (Prop. 2): the accountant may use the closed-form
    /// Gaussian RDP curve ε(α) = α·Δ₂²/(2σ²).
    Gaussian,
    /// Laplace noise: the accountant may use the Laplace RDP curve
    /// (Mironov 2017) at the per-unit-sensitivity scale b/Δ₁.
    Laplace,
    /// No mechanism information — only a claimed (ε, δ) guarantee.  Every
    /// accountant composes declared events *sequentially* (the only sound
    /// fallback for an arbitrary (ε, δ)-DP release).
    Declared,
}

/// One noisy release, as recorded by a session's accountant: which mechanism
/// ran, at what noise scale and sensitivity, and the (ε, δ) the caller
/// requested for it.
///
/// The tighter composition theorems need the mechanism, not just its claimed
/// guarantee: the Gaussian RDP curve is a function of σ/Δ₂, the Laplace
/// curve of b/Δ₁.  The requested (ε, δ) is still carried so sequential
/// accounting (and the ledger's charge history) stay exactly explainable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MechanismEvent {
    kind: MechanismKind,
    noise_scale: f64,
    sensitivity: f64,
    requested: PrivacyParams,
}

impl MechanismEvent {
    /// A Gaussian release: noise σ on a query set of L2 sensitivity Δ₂,
    /// requested at `requested`.  Rejects a non-positive or non-finite σ
    /// or Δ₂ with a typed error: a degenerate scale would make the RDP
    /// curve under-count the release.
    pub fn try_gaussian(
        requested: PrivacyParams,
        sigma: f64,
        l2_sensitivity: f64,
    ) -> Result<Self, MechanismError> {
        Ok(MechanismEvent {
            kind: MechanismKind::Gaussian,
            noise_scale: positive_finite(sigma, "gaussian noise scale")?,
            sensitivity: positive_finite(l2_sensitivity, "l2 sensitivity")?,
            requested,
        })
    }

    /// Panicking form of [`MechanismEvent::try_gaussian`].
    pub fn gaussian(requested: PrivacyParams, sigma: f64, l2_sensitivity: f64) -> Self {
        match MechanismEvent::try_gaussian(requested, sigma, l2_sensitivity) {
            Ok(event) => event,
            Err(e) => panic!("{e}"),
        }
    }

    /// A Laplace release: noise scale b on a query set of L1 sensitivity Δ₁,
    /// requested at `requested`.  Rejects a non-positive or non-finite b
    /// or Δ₁ with a typed error: a degenerate scale would make the RDP
    /// curve under-count the release.
    pub fn try_laplace(
        requested: PrivacyParams,
        b: f64,
        l1_sensitivity: f64,
    ) -> Result<Self, MechanismError> {
        Ok(MechanismEvent {
            kind: MechanismKind::Laplace,
            noise_scale: positive_finite(b, "laplace noise scale")?,
            sensitivity: positive_finite(l1_sensitivity, "l1 sensitivity")?,
            requested,
        })
    }

    /// Panicking form of [`MechanismEvent::try_laplace`].
    pub fn laplace(requested: PrivacyParams, b: f64, l1_sensitivity: f64) -> Self {
        match MechanismEvent::try_laplace(requested, b, l1_sensitivity) {
            Ok(event) => event,
            Err(e) => panic!("{e}"),
        }
    }

    /// A release about which only a claimed (ε, δ) guarantee is known
    /// (e.g. a charge made through the ledger's plain
    /// [`try_charge`](crate::engine::BudgetLedger::try_charge)).  Composed
    /// sequentially by every accountant.
    pub fn declared(requested: PrivacyParams) -> Self {
        MechanismEvent {
            kind: MechanismKind::Declared,
            noise_scale: 0.0,
            sensitivity: 0.0,
            requested,
        }
    }

    /// The noise distribution of the release.
    pub fn kind(&self) -> MechanismKind {
        self.kind
    }

    /// The noise scale (σ for Gaussian, b for Laplace; 0 for declared
    /// events).
    pub fn noise_scale(&self) -> f64 {
        self.noise_scale
    }

    /// The sensitivity the noise was calibrated to (Δ₂ for Gaussian, Δ₁ for
    /// Laplace; 0 for declared events).
    pub fn sensitivity(&self) -> f64 {
        self.sensitivity
    }

    /// The (ε, δ) the caller requested for the release.
    pub fn requested(&self) -> PrivacyParams {
        self.requested
    }

    /// The per-unit-sensitivity noise scale (σ/Δ₂ resp. b/Δ₁) — the quantity
    /// the RDP curves are functions of.  `None` for declared events.
    pub fn unit_scale(&self) -> Option<f64> {
        match self.kind {
            MechanismKind::Declared => None,
            _ => Some(self.noise_scale / self.sensitivity),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_scale_is_scale_over_sensitivity() {
        let p = PrivacyParams::paper_default();
        let g = MechanismEvent::gaussian(p, 8.0, 2.0);
        assert_eq!(g.unit_scale(), Some(4.0));
        assert_eq!(g.kind(), MechanismKind::Gaussian);
        let l = MechanismEvent::laplace(PrivacyParams::pure(0.5), 6.0, 3.0);
        assert_eq!(l.unit_scale(), Some(2.0));
        let d = MechanismEvent::declared(p);
        assert_eq!(d.unit_scale(), None);
        assert_eq!(d.requested(), p);
    }

    #[test]
    #[should_panic(expected = "noise scale must be positive")]
    fn zero_sigma_rejected() {
        MechanismEvent::gaussian(PrivacyParams::paper_default(), 0.0, 1.0);
    }
}
