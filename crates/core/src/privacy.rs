//! Privacy parameters and noise calibration.
//!
//! Approximate differential privacy (Def. 4) is achieved by adding Gaussian
//! noise calibrated to the L2 sensitivity (Prop. 2); standard ε-differential
//! privacy by Laplace noise calibrated to the L1 sensitivity.  The constant
//! `P(ε,δ) = 2 ln(2/δ)/ε²` appears in every (ε,δ) error expression (Prop. 4)
//! and cancels in all error *ratios*, which is why the paper fixes
//! ε = 0.5, δ = 10⁻⁴ for the workload-error experiments.

/// Privacy parameters (ε, δ).  `delta = 0` denotes pure ε-differential privacy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivacyParams {
    /// The ε parameter (must be positive).
    pub epsilon: f64,
    /// The δ parameter (must lie in `[0, 1)`).
    pub delta: f64,
}

impl PrivacyParams {
    /// Creates (ε, δ) parameters, rejecting invalid values with a typed
    /// error instead of panicking — the form to use on parameters that
    /// arrive from a caller rather than from a literal in the source.
    pub fn try_new(epsilon: f64, delta: f64) -> Result<Self, crate::MechanismError> {
        if !(epsilon > 0.0 && epsilon.is_finite()) {
            return Err(crate::MechanismError::InvalidArgument(format!(
                "epsilon must be positive and finite, got {epsilon}"
            )));
        }
        if !(0.0..1.0).contains(&delta) {
            return Err(crate::MechanismError::InvalidArgument(format!(
                "delta must lie in [0, 1), got {delta}"
            )));
        }
        Ok(PrivacyParams { epsilon, delta })
    }

    /// Creates (ε, δ) parameters; panics on invalid values.  See
    /// [`PrivacyParams::try_new`] for the non-panicking form.
    pub fn new(epsilon: f64, delta: f64) -> Self {
        match PrivacyParams::try_new(epsilon, delta) {
            Ok(params) => params,
            Err(e) => panic!("{e}"),
        }
    }

    /// Pure ε-differential privacy (δ = 0).
    pub fn pure(epsilon: f64) -> Self {
        PrivacyParams::new(epsilon, 0.0)
    }

    /// The paper's default setting for workload-error experiments:
    /// ε = 0.5, δ = 10⁻⁴.
    pub fn paper_default() -> Self {
        PrivacyParams::new(0.5, 1e-4)
    }

    /// True when δ > 0 (approximate differential privacy).
    pub fn is_approximate(&self) -> bool {
        self.delta > 0.0
    }

    /// The error constant `P(ε,δ) = 2 ln(2/δ) / ε²` of Prop. 4.
    ///
    /// Panics when δ = 0 (use [`PrivacyParams::laplace_error_constant`] for
    /// pure differential privacy).
    pub fn gaussian_error_constant(&self) -> f64 {
        // mm-lint: allow(assert-on-input): delta was range-validated by try_new; asking a pure-DP params for the Gaussian constant is a documented programming-error panic, not an input-validation failure
        assert!(self.is_approximate(), "P(eps, delta) requires delta > 0");
        2.0 * (2.0 / self.delta).ln() / (self.epsilon * self.epsilon)
    }

    /// The Gaussian noise scale `σ = Δ₂ √(2 ln(2/δ)) / ε` of Prop. 2 for a
    /// query set of L2 sensitivity `l2_sensitivity`.
    pub fn gaussian_sigma(&self, l2_sensitivity: f64) -> f64 {
        // mm-lint: allow(assert-on-input): delta was range-validated by try_new; calibrating Gaussian noise from pure-DP params is a documented programming-error panic
        assert!(
            self.is_approximate(),
            "the Gaussian mechanism requires delta > 0"
        );
        l2_sensitivity * (2.0 * (2.0 / self.delta).ln()).sqrt() / self.epsilon
    }

    /// Per-query noise variance of the Laplace mechanism for a query set of
    /// L1 sensitivity `l1_sensitivity`: `2 (Δ₁/ε)²`.
    pub fn laplace_variance(&self, l1_sensitivity: f64) -> f64 {
        let b = l1_sensitivity / self.epsilon;
        2.0 * b * b
    }

    /// The Laplace analogue of `P(ε,δ)`: the per-unit-sensitivity noise
    /// variance `2/ε²` used by the ε-matrix-mechanism error expressions
    /// (Sec. 3.5).
    pub fn laplace_error_constant(&self) -> f64 {
        2.0 / (self.epsilon * self.epsilon)
    }

    /// The Laplace noise scale `b = Δ₁/ε`.
    pub fn laplace_scale(&self, l1_sensitivity: f64) -> f64 {
        l1_sensitivity / self.epsilon
    }

    /// The per-unit-sensitivity Gaussian noise scale `σ/Δ₂ = √(2 ln(2/δ))/ε`
    /// of Prop. 2 — the quantity the Gaussian RDP curve
    /// ([`gaussian_rdp`]) is a function of.
    pub fn gaussian_unit_sigma(&self) -> f64 {
        self.gaussian_sigma(1.0)
    }

    /// The per-unit-sensitivity Laplace noise scale `b/Δ₁ = 1/ε` — the
    /// quantity the Laplace RDP curve ([`laplace_rdp`]) is a function of.
    pub fn laplace_unit_scale(&self) -> f64 {
        self.laplace_scale(1.0)
    }
}

/// Rényi differential privacy of the Gaussian mechanism (Mironov 2017,
/// Prop. 7): at order `alpha` > 1 and per-unit-sensitivity noise scale
/// `unit_sigma = σ/Δ₂`, the mechanism is (α, α/(2σ̂²))-RDP — the closed-form
/// curve the [`RdpAccountant`](crate::accounting::RdpAccountant) sums per
/// release.
pub fn gaussian_rdp(alpha: f64, unit_sigma: f64) -> f64 {
    // mm-lint: allow(assert-on-input): pure-math helper — accountants validate the order grid at construction (try_with_orders) and events validate scales (try_gaussian) before calling in here
    assert!(alpha > 1.0, "RDP orders must exceed 1");
    // mm-lint: allow(assert-on-input): same contract as the order check above — upstream constructors already rejected bad scales with typed errors
    assert!(
        unit_sigma > 0.0 && unit_sigma.is_finite(),
        "unit noise scale must be positive and finite"
    );
    alpha / (2.0 * unit_sigma * unit_sigma)
}

/// Rényi differential privacy of the Laplace mechanism (Mironov 2017,
/// Table II): at order `alpha` > 1 and per-unit-sensitivity noise scale
/// `unit_scale = b/Δ₁ = 1/ε`,
///
/// ```text
///     ε(α) = 1/(α−1) · ln( α/(2α−1) · e^{(α−1)/λ} + (α−1)/(2α−1) · e^{−α/λ} )
/// ```
///
/// evaluated in log-sum-exp form for numerical stability.  The curve is
/// bounded by the pure-DP level `1/λ` for every order.
pub fn laplace_rdp(alpha: f64, unit_scale: f64) -> f64 {
    // mm-lint: allow(assert-on-input): pure-math helper — accountants validate the order grid at construction (try_with_orders) and events validate scales (try_laplace) before calling in here
    assert!(alpha > 1.0, "RDP orders must exceed 1");
    // mm-lint: allow(assert-on-input): same contract as the order check above — upstream constructors already rejected bad scales with typed errors
    assert!(
        unit_scale > 0.0 && unit_scale.is_finite(),
        "unit noise scale must be positive and finite"
    );
    let lambda = unit_scale;
    // ln(a·e^x + b·e^y) = x + ln(a + b·e^{y−x}) with x ≥ y:
    // here x = (α−1)/λ, y = −α/λ, so y − x = −(2α−1)/λ < 0.
    let a = alpha / (2.0 * alpha - 1.0);
    let b = (alpha - 1.0) / (2.0 * alpha - 1.0);
    let x = (alpha - 1.0) / lambda;
    ((a + b * (-(2.0 * alpha - 1.0) / lambda).exp()).ln() + x) / (alpha - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_linalg::approx_eq;

    #[test]
    fn paper_default_constant() {
        let p = PrivacyParams::paper_default();
        // P = 2 ln(20000) / 0.25
        let expected = 2.0 * (20000.0_f64).ln() / 0.25;
        assert!(approx_eq(p.gaussian_error_constant(), expected, 1e-12));
    }

    #[test]
    fn gaussian_sigma_scales_linearly_with_sensitivity() {
        let p = PrivacyParams::new(1.0, 1e-5);
        let s1 = p.gaussian_sigma(1.0);
        let s3 = p.gaussian_sigma(3.0);
        assert!(approx_eq(s3, 3.0 * s1, 1e-12));
    }

    #[test]
    fn sigma_squared_equals_error_constant() {
        // σ² for unit sensitivity equals P(ε,δ).
        let p = PrivacyParams::new(0.7, 1e-6);
        let sigma = p.gaussian_sigma(1.0);
        assert!(approx_eq(sigma * sigma, p.gaussian_error_constant(), 1e-10));
    }

    #[test]
    fn laplace_quantities() {
        let p = PrivacyParams::pure(0.5);
        assert!(!p.is_approximate());
        assert!(approx_eq(p.laplace_scale(2.0), 4.0, 1e-12));
        assert!(approx_eq(p.laplace_variance(2.0), 32.0, 1e-12));
        assert!(approx_eq(p.laplace_error_constant(), 8.0, 1e-12));
    }

    #[test]
    #[should_panic(expected = "delta > 0")]
    fn gaussian_constant_requires_delta() {
        PrivacyParams::pure(1.0).gaussian_error_constant();
    }

    #[test]
    #[should_panic(expected = "epsilon must be positive")]
    fn invalid_epsilon_panics() {
        PrivacyParams::new(0.0, 1e-4);
    }

    #[test]
    fn gaussian_rdp_curve_is_linear_in_alpha() {
        let sigma = PrivacyParams::paper_default().gaussian_unit_sigma();
        let r2 = gaussian_rdp(2.0, sigma);
        let r8 = gaussian_rdp(8.0, sigma);
        assert!(approx_eq(r8, 4.0 * r2, 1e-12));
        assert!(approx_eq(r2, 1.0 / (sigma * sigma), 1e-12));
    }

    #[test]
    fn laplace_rdp_curve_is_bounded_by_pure_dp_and_monotone() {
        // RDP of the Laplace mechanism approaches the pure-DP level 1/λ from
        // below as α grows, and is monotone non-decreasing in α.
        let lambda = PrivacyParams::pure(0.5).laplace_unit_scale(); // λ = 2
        let pure = 1.0 / lambda;
        let mut prev = 0.0;
        for alpha in [1.5, 2.0, 4.0, 16.0, 64.0, 1024.0] {
            let r = laplace_rdp(alpha, lambda);
            assert!(
                r > 0.0 && r <= pure + 1e-12,
                "α={alpha}: {r} vs pure {pure}"
            );
            assert!(r + 1e-12 >= prev, "curve must be monotone in α");
            prev = r;
        }
        assert!(approx_eq(laplace_rdp(65536.0, lambda), pure, 1e-3));
    }
}
