//! High-level adaptive mechanism API.
//!
//! [`AdaptiveMechanism`] ties the pieces together for the common case: hand it
//! a workload and a data vector and it (1) selects a near-optimal strategy
//! with the Eigen-Design algorithm, (2) runs the (ε,δ)-matrix mechanism with
//! that strategy, and (3) returns consistent noisy answers to every workload
//! query together with the analytically predicted error.
//!
//! For relative-error objectives (Sec. 3.4) select the strategy on the
//! *normalised* variant of the workload (every workload family in
//! `mm-workload` offers one) and answer the original workload with
//! [`AdaptiveMechanism::answer_with_strategy`].

use crate::eigen_design::{eigen_design, EigenDesignOptions, EigenDesignResult};
use crate::error::rms_workload_error;
use crate::mechanism::matrix::{MatrixMechanism, MechanismRun};
use crate::privacy::PrivacyParams;
use mm_strategies::Strategy;
use mm_workload::Workload;
use rand::Rng;

/// Options of the high-level mechanism.
#[derive(Debug, Clone, Default)]
pub struct AdaptiveOptions {
    /// Options passed to the Eigen-Design algorithm.
    pub eigen: EigenDesignOptions,
}

/// The adaptive matrix mechanism: Eigen-Design strategy selection plus the
/// (ε,δ)-matrix mechanism.
#[derive(Debug, Clone)]
pub struct AdaptiveMechanism {
    privacy: PrivacyParams,
    options: AdaptiveOptions,
}

/// Everything produced by one run of the adaptive mechanism.
#[derive(Debug, Clone)]
pub struct AdaptiveAnswer {
    /// Noisy (but mutually consistent) answers to every workload query, in
    /// the workload's evaluation order.
    pub answers: Vec<f64>,
    /// The noisy estimate of the data vector the answers derive from.
    pub estimate: Vec<f64>,
    /// The strategy selected for the workload.
    pub strategy: Strategy,
    /// The analytically predicted RMS workload error (Prop. 4 / Def. 5).
    pub expected_rms_error: f64,
}

impl AdaptiveMechanism {
    /// Creates the mechanism with default Eigen-Design options.
    pub fn new(privacy: PrivacyParams) -> Self {
        AdaptiveMechanism {
            privacy,
            options: AdaptiveOptions::default(),
        }
    }

    /// Creates the mechanism with explicit options.
    pub fn with_options(privacy: PrivacyParams, options: AdaptiveOptions) -> Self {
        AdaptiveMechanism { privacy, options }
    }

    /// The configured privacy parameters.
    pub fn privacy(&self) -> &PrivacyParams {
        &self.privacy
    }

    /// Selects a strategy for the workload with the Eigen-Design algorithm.
    ///
    /// Strategy selection only depends on the workload (not the data), so the
    /// result can be cached and reused across databases (Sec. 1).
    pub fn select_strategy<W: Workload + ?Sized>(
        &self,
        workload: &W,
    ) -> crate::Result<EigenDesignResult> {
        eigen_design(&workload.gram(), &self.options.eigen)
    }

    /// Predicted RMS error of answering `workload` with `strategy` under this
    /// mechanism's privacy parameters.
    pub fn expected_rms_error<W: Workload + ?Sized>(
        &self,
        workload: &W,
        strategy: &Strategy,
    ) -> crate::Result<f64> {
        rms_workload_error(
            &workload.gram(),
            workload.query_count(),
            strategy,
            &self.privacy,
        )
    }

    /// Selects a strategy and answers the workload on the data vector `x`.
    pub fn answer<W: Workload + ?Sized, R: Rng + ?Sized>(
        &self,
        workload: &W,
        x: &[f64],
        rng: &mut R,
    ) -> crate::Result<AdaptiveAnswer> {
        let selection = self.select_strategy(workload)?;
        self.answer_with_strategy(workload, selection.strategy, x, rng)
    }

    /// Answers the workload with a caller-provided strategy (e.g. one selected
    /// on a normalised workload for relative-error objectives, or a cached one).
    pub fn answer_with_strategy<W: Workload + ?Sized, R: Rng + ?Sized>(
        &self,
        workload: &W,
        strategy: Strategy,
        x: &[f64],
        rng: &mut R,
    ) -> crate::Result<AdaptiveAnswer> {
        let expected = self.expected_rms_error(workload, &strategy)?;
        let mechanism = MatrixMechanism::new(strategy, self.privacy)?;
        let (answers, run): (Vec<f64>, MechanismRun) =
            mechanism.answer_workload(workload, x, rng)?;
        Ok(AdaptiveAnswer {
            answers,
            estimate: run.estimate,
            strategy: mechanism.strategy().clone(),
            expected_rms_error: expected,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_linalg::approx_eq;
    use mm_workload::example::fig1_workload;
    use mm_workload::range::AllRangeWorkload;
    use mm_workload::{Domain, Workload};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn end_to_end_answers_have_predicted_error() {
        let w = AllRangeWorkload::new(Domain::new(&[16]));
        let x: Vec<f64> = (0..16).map(|i| 100.0 + (i as f64) * 5.0).collect();
        let mech = AdaptiveMechanism::new(PrivacyParams::paper_default());
        let mut rng = StdRng::seed_from_u64(21);
        let truth = w.evaluate(&x);
        let expected = {
            let sel = mech.select_strategy(&w).unwrap();
            mech.expected_rms_error(&w, &sel.strategy).unwrap()
        };
        let trials = 60;
        let mut total_sq = 0.0;
        for _ in 0..trials {
            let ans = mech.answer(&w, &x, &mut rng).unwrap();
            for (a, t) in ans.answers.iter().zip(truth.iter()) {
                total_sq += (a - t).powi(2);
            }
        }
        let empirical = (total_sq / (trials as f64 * w.query_count() as f64)).sqrt();
        assert!(
            (empirical - expected).abs() / expected < 0.15,
            "empirical {empirical} vs expected {expected}"
        );
    }

    #[test]
    fn answer_consistency_and_reuse() {
        let w = fig1_workload();
        let x = vec![20.0, 5.0, 12.0, 9.0, 31.0, 7.0, 3.0, 11.0];
        let mech = AdaptiveMechanism::new(PrivacyParams::paper_default());
        let mut rng = StdRng::seed_from_u64(9);
        let ans = mech.answer(&w, &x, &mut rng).unwrap();
        assert_eq!(ans.answers.len(), 8);
        assert_eq!(ans.estimate.len(), 8);
        // Consistency: q3 = q1 - q2 exactly.
        assert!(approx_eq(ans.answers[2], ans.answers[0] - ans.answers[1], 1e-9));
        assert!(ans.expected_rms_error > 0.0);
        // The selected strategy can be reused with answer_with_strategy.
        let again = mech
            .answer_with_strategy(&w, ans.strategy.clone(), &x, &mut rng)
            .unwrap();
        assert!(approx_eq(again.expected_rms_error, ans.expected_rms_error, 1e-12));
    }
}
