//! Legacy high-level API, kept as a thin compatibility shim.
//!
//! **Deprecated:** the primary entry point is now [`crate::engine::Engine`],
//! which adds pluggable strategy selection ([`StrategySelector`]
//! implementations for Eigen-Design, weighted design sets and the pure-DP L1
//! weighting), a Gaussian/Laplace [`NoiseBackend`] behind one answer path,
//! an internal strategy cache keyed by workload fingerprint, and budgeted
//! [`Session`]s with sequential-composition accounting:
//!
//! ```
//! use mm_core::engine::Engine;
//! use mm_core::PrivacyParams;
//! use mm_workload::range::AllRangeWorkload;
//! use mm_workload::{Domain, Workload};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let workload = AllRangeWorkload::new(Domain::one_dim(16));
//! let counts: Vec<f64> = (0..16).map(|i| 100.0 + i as f64).collect();
//! let engine = Engine::new(PrivacyParams::new(1.0, 1e-4));
//! let mut rng = StdRng::seed_from_u64(0);
//! let result = engine.answer(&workload, &counts, &mut rng).unwrap();
//! assert_eq!(result.answers.len(), workload.query_count());
//! ```
//!
//! [`AdaptiveMechanism`] now simply wraps an engine configured with the
//! Eigen-Design selector and the Gaussian backend, preserving its original
//! behaviour (including the data-independent strategy reuse of Sec. 1, which
//! the engine upgrades from "caller may reuse the strategy" to an automatic
//! internal cache).
//!
//! [`StrategySelector`]: crate::engine::StrategySelector
//! [`NoiseBackend`]: crate::mechanism::NoiseBackend
//! [`Session`]: crate::engine::Session

use crate::eigen_design::{eigen_design, EigenDesignOptions, EigenDesignResult};
use crate::engine::{EigenDesignSelector, Engine, EngineAnswer};
use crate::error::rms_workload_error;
use crate::privacy::PrivacyParams;
use mm_strategies::Strategy;
use mm_workload::Workload;
use rand::Rng;
use std::sync::Arc;

/// Options of the legacy high-level mechanism.
#[derive(Debug, Clone, Default)]
pub struct AdaptiveOptions {
    /// Options passed to the Eigen-Design algorithm.
    pub eigen: EigenDesignOptions,
}

/// The adaptive matrix mechanism: Eigen-Design strategy selection plus the
/// (ε,δ)-matrix mechanism.
///
/// Deprecated compatibility shim over [`crate::engine::Engine`]; see the
/// module docs for the migration.
#[deprecated(
    since = "0.2.0",
    note = "use mm_core::engine::Engine (Engine::builder() for selector/backend control)"
)]
#[derive(Debug, Clone)]
pub struct AdaptiveMechanism {
    engine: Arc<Engine>,
    options: AdaptiveOptions,
}

/// Everything produced by one run of the adaptive mechanism.
#[derive(Debug, Clone)]
pub struct AdaptiveAnswer {
    /// Noisy (but mutually consistent) answers to every workload query, in
    /// the workload's evaluation order.
    pub answers: Vec<f64>,
    /// The noisy estimate of the data vector the answers derive from.
    pub estimate: Vec<f64>,
    /// The strategy selected for the workload.
    pub strategy: Strategy,
    /// The analytically predicted RMS workload error (Prop. 4 / Def. 5).
    pub expected_rms_error: f64,
}

impl From<EngineAnswer> for AdaptiveAnswer {
    fn from(a: EngineAnswer) -> Self {
        AdaptiveAnswer {
            answers: a.answers,
            estimate: a.estimate,
            strategy: (*a.strategy).clone(),
            expected_rms_error: a.expected_rms_error,
        }
    }
}

#[allow(deprecated)]
impl AdaptiveMechanism {
    /// Creates the mechanism with default Eigen-Design options.
    pub fn new(privacy: PrivacyParams) -> Self {
        Self::with_options(privacy, AdaptiveOptions::default())
    }

    /// Creates the mechanism with explicit options.
    pub fn with_options(privacy: PrivacyParams, options: AdaptiveOptions) -> Self {
        let engine = Engine::builder()
            .privacy(privacy)
            .selector(EigenDesignSelector {
                options: options.eigen.clone(),
            })
            .build()
            .expect("eigen-design with the default backend is always a valid configuration");
        AdaptiveMechanism {
            engine: Arc::new(engine),
            options,
        }
    }

    /// The configured privacy parameters.
    pub fn privacy(&self) -> &PrivacyParams {
        self.engine.privacy()
    }

    /// Selects a strategy for the workload with the Eigen-Design algorithm.
    ///
    /// Strategy selection only depends on the workload (not the data), so the
    /// result can be cached and reused across databases (Sec. 1) — which the
    /// underlying engine now does automatically inside
    /// [`AdaptiveMechanism::answer`].
    pub fn select_strategy<W: Workload + ?Sized>(
        &self,
        workload: &W,
    ) -> crate::Result<EigenDesignResult> {
        eigen_design(&workload.gram(), &self.options.eigen)
    }

    /// Predicted RMS error of answering `workload` with `strategy` under this
    /// mechanism's privacy parameters.
    pub fn expected_rms_error<W: Workload + ?Sized>(
        &self,
        workload: &W,
        strategy: &Strategy,
    ) -> crate::Result<f64> {
        rms_workload_error(
            &workload.gram(),
            workload.query_count(),
            strategy,
            self.engine.privacy(),
        )
    }

    /// Selects a strategy (cached across calls) and answers the workload on
    /// the data vector `x`.
    pub fn answer<W: Workload + ?Sized, R: Rng>(
        &self,
        workload: &W,
        x: &[f64],
        rng: &mut R,
    ) -> crate::Result<AdaptiveAnswer> {
        Ok(self.engine.answer(workload, x, rng)?.into())
    }

    /// Answers the workload with a caller-provided strategy (e.g. one selected
    /// on a normalised workload for relative-error objectives, or a cached one).
    pub fn answer_with_strategy<W: Workload + ?Sized, R: Rng>(
        &self,
        workload: &W,
        strategy: Strategy,
        x: &[f64],
        rng: &mut R,
    ) -> crate::Result<AdaptiveAnswer> {
        Ok(self
            .engine
            .answer_with_strategy(workload, Arc::new(strategy), x, rng)?
            .into())
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use mm_linalg::approx_eq;
    use mm_workload::example::fig1_workload;
    use mm_workload::range::AllRangeWorkload;
    use mm_workload::{Domain, Workload};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn end_to_end_answers_have_predicted_error() {
        let w = AllRangeWorkload::new(Domain::new(&[16]));
        let x: Vec<f64> = (0..16).map(|i| 100.0 + (i as f64) * 5.0).collect();
        let mech = AdaptiveMechanism::new(PrivacyParams::paper_default());
        let mut rng = StdRng::seed_from_u64(21);
        let truth = w.evaluate(&x);
        let expected = {
            let sel = mech.select_strategy(&w).unwrap();
            mech.expected_rms_error(&w, &sel.strategy).unwrap()
        };
        let trials = 60;
        let mut total_sq = 0.0;
        for _ in 0..trials {
            let ans = mech.answer(&w, &x, &mut rng).unwrap();
            for (a, t) in ans.answers.iter().zip(truth.iter()) {
                total_sq += (a - t).powi(2);
            }
        }
        let empirical = (total_sq / (trials as f64 * w.query_count() as f64)).sqrt();
        assert!(
            (empirical - expected).abs() / expected < 0.15,
            "empirical {empirical} vs expected {expected}"
        );
    }

    #[test]
    fn answer_consistency_and_reuse() {
        let w = fig1_workload();
        let x = vec![20.0, 5.0, 12.0, 9.0, 31.0, 7.0, 3.0, 11.0];
        let mech = AdaptiveMechanism::new(PrivacyParams::paper_default());
        let mut rng = StdRng::seed_from_u64(9);
        let ans = mech.answer(&w, &x, &mut rng).unwrap();
        assert_eq!(ans.answers.len(), 8);
        assert_eq!(ans.estimate.len(), 8);
        // Consistency: q3 = q1 - q2 exactly.
        assert!(approx_eq(
            ans.answers[2],
            ans.answers[0] - ans.answers[1],
            1e-9
        ));
        assert!(ans.expected_rms_error > 0.0);
        // The selected strategy can be reused with answer_with_strategy.
        let again = mech
            .answer_with_strategy(&w, ans.strategy.clone(), &x, &mut rng)
            .unwrap();
        assert!(approx_eq(
            again.expected_rms_error,
            ans.expected_rms_error,
            1e-12
        ));
    }
}
