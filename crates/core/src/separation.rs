//! Eigen-query separation (Sec. 4.2).
//!
//! Instead of optimizing all `n` eigen-query weights jointly, the eigen-queries
//! are partitioned into groups of a chosen size by descending eigenvalue.
//! Program 1 is solved within each group independently, and a second, much
//! smaller weighting problem then assigns one scale factor per group.  With
//! group size `≈ n^{1/3}` the total complexity drops to `O(n³)` while the
//! error stays within a few percent of the full Eigen-Design strategy
//! (Fig. 4 of the paper).

use crate::design_set::build_weighted_strategy;
use crate::eigen_design::workload_eigensystem;
use mm_linalg::Matrix;
use mm_opt::{solve_log_gd, GdOptions, WeightingProblem};
use mm_strategies::Strategy;

/// Options for eigen-query separation.
#[derive(Debug, Clone)]
pub struct SeparationOptions {
    /// Number of eigen-queries per group.
    pub group_size: usize,
    /// Solver options for the per-group and combining problems.
    pub solver: GdOptions,
    /// Whether to apply the column-completion step to the final strategy.
    pub completion: bool,
    /// Relative eigenvalue cutoff, as in the full Eigen-Design algorithm.
    pub rank_tol: f64,
}

impl SeparationOptions {
    /// Default options with the given group size.
    pub fn with_group_size(group_size: usize) -> Self {
        SeparationOptions {
            group_size,
            solver: GdOptions::fast(),
            completion: true,
            rank_tol: 1e-10,
        }
    }

    /// The asymptotically optimal group size `⌈n^{1/3}⌉` for an `n`-cell workload.
    pub fn recommended_group_size(n: usize) -> usize {
        (n as f64).cbrt().ceil().max(1.0) as usize
    }
}

/// Result of the eigen-query separation strategy selection.
#[derive(Debug, Clone)]
pub struct SeparationResult {
    /// The selected strategy.
    pub strategy: Strategy,
    /// Final squared weights per retained eigen-query.
    pub weights_squared: Vec<f64>,
    /// Number of groups used.
    pub groups: usize,
}

/// Runs strategy selection with eigen-query separation on a workload gram matrix.
pub fn eigen_separation(
    workload_gram: &Matrix,
    opts: &SeparationOptions,
) -> crate::Result<SeparationResult> {
    if opts.group_size == 0 {
        return Err(crate::MechanismError::InvalidArgument(
            "group size must be positive".into(),
        ));
    }
    let (_, sigma, q) = workload_eigensystem(workload_gram, opts.rank_tol)?;
    let k = sigma.len();
    let n = workload_gram.rows();
    let group_size = opts.group_size.min(k);
    let num_groups = k.div_ceil(group_size);

    // Stage 1: optimal weights within each group (eigen-queries are ordered by
    // descending eigenvalue, so groups are contiguous index ranges).
    let mut within = vec![0.0; k];
    let mut group_cost = vec![0.0; num_groups]; // C_g = Σ σ_i / u_i^(g)
    let mut group_profiles: Vec<Vec<f64>> = Vec::with_capacity(num_groups); // per-cell squared norms
    for (g, cost_slot) in group_cost.iter_mut().enumerate() {
        let lo = g * group_size;
        let hi = ((g + 1) * group_size).min(k);
        let rows: Vec<usize> = (lo..hi).collect();
        let q_group = q.select_rows(&rows)?;
        let costs: Vec<f64> = sigma[lo..hi].to_vec();
        let problem = WeightingProblem::from_design_queries(&q_group, costs.clone())?;
        let sol = solve_log_gd(&problem, &opts.solver)?;
        let mut cost_g = 0.0;
        for (idx, &u) in sol.u.iter().enumerate() {
            within[lo + idx] = u;
            if u > 0.0 {
                cost_g += costs[idx] / u;
            }
        }
        *cost_slot = cost_g;
        // Per-cell squared column norm contributed by this group at unit scale.
        let mut profile = vec![0.0; n];
        for (idx, &u) in sol.u.iter().enumerate() {
            if u == 0.0 {
                continue;
            }
            let row = q_group.row(idx);
            for (j, &v) in row.iter().enumerate() {
                profile[j] += u * v * v;
            }
        }
        group_profiles.push(profile);
    }

    // Stage 2: one scale factor per group.  This is again a weighting problem:
    // minimise Σ_g C_g / γ_g subject to Σ_g γ_g · profile_g[cell] ≤ 1.
    let constraint = Matrix::from_fn(n, num_groups, |cell, g| group_profiles[g][cell]);
    let combine = WeightingProblem::new(group_cost, constraint)?;
    let gamma = solve_log_gd(&combine, &opts.solver)?;

    // Final weights.
    let mut weights = vec![0.0; k];
    for g in 0..num_groups {
        let lo = g * group_size;
        let hi = ((g + 1) * group_size).min(k);
        for i in lo..hi {
            weights[i] = within[i] * gamma.u[g];
        }
    }
    let strategy = build_weighted_strategy(
        format!("eigen-separation (group size {group_size})"),
        &q,
        &weights,
        opts.completion,
    )?;
    Ok(SeparationResult {
        strategy,
        weights_squared: weights,
        groups: num_groups,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigen_design::{eigen_design, EigenDesignOptions};
    use crate::error::rms_workload_error;
    use crate::privacy::PrivacyParams;
    use mm_workload::range::AllRangeWorkload;
    use mm_workload::{Domain, Workload};

    #[test]
    fn separation_close_to_full_eigen_design() {
        let w = AllRangeWorkload::new(Domain::new(&[32]));
        let g = w.gram();
        let p = PrivacyParams::paper_default();
        let full = eigen_design(&g, &EigenDesignOptions::default()).unwrap();
        let full_err = rms_workload_error(&g, w.query_count(), &full.strategy, &p).unwrap();
        for group_size in [4usize, 8, 16] {
            let sep =
                eigen_separation(&g, &SeparationOptions::with_group_size(group_size)).unwrap();
            let err = rms_workload_error(&g, w.query_count(), &sep.strategy, &p).unwrap();
            assert!(
                err <= full_err * 1.25,
                "group size {group_size}: separation error {err} vs full {full_err}"
            );
            assert!(
                err >= full_err * 0.999,
                "separation cannot beat the joint optimum"
            );
        }
    }

    #[test]
    fn single_group_equals_full_algorithm() {
        let w = AllRangeWorkload::new(Domain::new(&[16]));
        let g = w.gram();
        let p = PrivacyParams::paper_default();
        let mut opts = SeparationOptions::with_group_size(16);
        opts.solver = mm_opt::GdOptions::default();
        let sep = eigen_separation(&g, &opts).unwrap();
        let full = eigen_design(&g, &EigenDesignOptions::default()).unwrap();
        let e1 = rms_workload_error(&g, w.query_count(), &sep.strategy, &p).unwrap();
        let e2 = rms_workload_error(&g, w.query_count(), &full.strategy, &p).unwrap();
        assert!((e1 - e2).abs() / e2 < 0.02, "{e1} vs {e2}");
        assert_eq!(sep.groups, 1);
    }

    #[test]
    fn recommended_group_size() {
        assert_eq!(SeparationOptions::recommended_group_size(8192), 21);
        assert_eq!(SeparationOptions::recommended_group_size(1), 1);
    }

    #[test]
    fn zero_group_size_rejected() {
        let g = Matrix::identity(4);
        assert!(eigen_separation(&g, &SeparationOptions::with_group_size(0)).is_err());
    }
}
