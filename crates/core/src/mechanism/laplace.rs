//! The Laplace mechanism (for standard ε-differential privacy).

use crate::mechanism::noise::laplace_noise;
use crate::privacy::PrivacyParams;
use crate::sensitivity::l1_sensitivity;
use mm_linalg::Matrix;
use rand::Rng;

/// The Laplace mechanism: answers a query matrix by adding independent
/// Laplace noise calibrated to its L1 sensitivity.
#[derive(Debug, Clone)]
pub struct LaplaceMechanism {
    privacy: PrivacyParams,
}

impl LaplaceMechanism {
    /// Creates the mechanism for the given ε (δ is ignored by the Laplace
    /// mechanism, which satisfies pure ε-differential privacy).
    pub fn new(privacy: PrivacyParams) -> Self {
        LaplaceMechanism { privacy }
    }

    /// The privacy parameters.
    pub fn privacy(&self) -> &PrivacyParams {
        &self.privacy
    }

    /// Answers `W x` with independent Laplace noise scaled to `‖W‖₁ / ε`.
    pub fn answer<R: Rng + ?Sized>(
        &self,
        queries: &Matrix,
        x: &[f64],
        rng: &mut R,
    ) -> crate::Result<Vec<f64>> {
        let true_answers = queries.matvec(x)?;
        let b = self.privacy.laplace_scale(l1_sensitivity(queries));
        // mm-lint: allow(charge-before-noise): one-shot mechanism whose entire cost is the constructor's epsilon; ledger-tracked callers go through engine::answer_parts
        let noise = laplace_noise(rng, b, true_answers.len());
        Ok(true_answers
            .into_iter()
            .zip(noise)
            .map(|(a, n)| a + n)
            .collect())
    }

    /// The Laplace scale used for a query matrix.
    pub fn scale_for(&self, queries: &Matrix) -> f64 {
        self.privacy.laplace_scale(l1_sensitivity(queries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noise_variance_matches_scale() {
        let queries = Matrix::identity(32);
        let x = vec![5.0; 32];
        let mech = LaplaceMechanism::new(PrivacyParams::pure(0.5));
        let mut rng = StdRng::seed_from_u64(11);
        let mut sq = 0.0;
        let trials = 400;
        for _ in 0..trials {
            let noisy = mech.answer(&queries, &x, &mut rng).unwrap();
            for (noisy_v, true_v) in noisy.iter().zip(x.iter()) {
                sq += (noisy_v - true_v).powi(2);
            }
        }
        let mse = sq / (trials as f64 * 32.0);
        let b = mech.scale_for(&queries);
        assert!(
            (mse - 2.0 * b * b).abs() / (2.0 * b * b) < 0.1,
            "mse {mse} vs 2b^2 {}",
            2.0 * b * b
        );
    }

    #[test]
    fn scale_uses_l1_sensitivity() {
        let mech = LaplaceMechanism::new(PrivacyParams::pure(1.0));
        let two_ones = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 1.0]]).unwrap();
        assert_eq!(mech.scale_for(&two_ones), 2.0);
    }
}
