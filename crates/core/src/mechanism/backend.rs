//! Noise backends: one answer path for the (ε,δ)-Gaussian and ε-Laplace
//! matrix mechanisms.
//!
//! The two instantiations of the matrix mechanism differ only in three
//! places — which sensitivity norm governs the strategy (L2 vs. L1, Prop. 1),
//! how the noise scale is calibrated (Prop. 2 vs. the Laplace mechanism), and
//! the per-unit-sensitivity noise variance entering the error formula
//! (`P(ε,δ) = 2 ln(2/δ)/ε²` vs. `2/ε²`, Prop. 4 / Sec. 3.5).  A
//! [`NoiseBackend`] packages those three choices behind an object-safe trait
//! so that [`MatrixMechanism`](crate::mechanism::MatrixMechanism) and the
//! serving [`Engine`](crate::engine::Engine) can run either mechanism through
//! one code path, and callers can swap backends with one builder call.

use crate::accounting::MechanismEvent;
use crate::mechanism::noise::{gaussian_noise, laplace_noise};
use crate::privacy::PrivacyParams;
use crate::MechanismError;
use mm_strategies::Strategy;
use rand::RngCore;
use std::sync::Arc;

/// A differential-privacy noise distribution plus its calibration rules.
///
/// Object safe: engines hold `Arc<dyn NoiseBackend>` and swap implementations
/// at build time.  Sampling takes `&mut dyn RngCore` so the trait stays object
/// safe; generic callers pass any sized [`rand::Rng`].
pub trait NoiseBackend: std::fmt::Debug + Send + Sync {
    /// Backend name for reports and errors (`"gaussian"`, `"laplace"`).
    fn name(&self) -> &'static str;

    /// Checks that the privacy parameters are usable with this backend.
    fn validate(&self, privacy: &PrivacyParams) -> crate::Result<()>;

    /// The sensitivity of a strategy under this backend's norm (Prop. 1).
    fn sensitivity(&self, strategy: &Strategy) -> f64;

    /// Picks this backend's sensitivity from precomputed (L2, L1) column
    /// norms — the matrix-free analogue of [`NoiseBackend::sensitivity`] for
    /// strategies that never materialise a [`Strategy`] (structured
    /// operators carry both norms instead).  The default is the L2 norm
    /// (the Gaussian calibration); the Laplace backend overrides it with L1.
    fn sensitivity_from_norms(&self, l2: f64, l1: f64) -> f64 {
        let _ = l1;
        l2
    }

    /// The noise scale for a query set of the given sensitivity (σ for the
    /// Gaussian mechanism, b for Laplace).
    fn noise_scale(&self, privacy: &PrivacyParams, sensitivity: f64) -> f64;

    /// Per-query noise variance at unit sensitivity: the constant multiplying
    /// `‖A‖² · trace(WᵀW (AᵀA)⁻¹)` in the total-squared-error formula.
    fn error_constant(&self, privacy: &PrivacyParams) -> crate::Result<f64>;

    /// Samples `len` independent noise values at the given scale.
    fn sample(&self, rng: &mut dyn RngCore, scale: f64, len: usize) -> Vec<f64>;

    /// The accounting event describing one release of this backend at the
    /// given privacy parameters on a query set of the given sensitivity
    /// (under this backend's norm) — what a budgeted
    /// [`Session`](crate::engine::Session) records on its ledger.
    ///
    /// The default returns a [*declared*](MechanismEvent::declared) event
    /// (just the requested (ε, δ), composed sequentially by every
    /// accountant) — the only sound answer for a backend the accountants
    /// know nothing about.  The Gaussian and Laplace backends override it
    /// with their actual noise scale and sensitivity so the RDP accountant
    /// can apply the per-mechanism curves.
    fn mechanism_event(&self, privacy: &PrivacyParams, sensitivity: f64) -> MechanismEvent {
        let _ = sensitivity;
        MechanismEvent::declared(*privacy)
    }
}

/// The (ε,δ) Gaussian backend (Prop. 2): L2 sensitivity, noise
/// `σ = Δ₂ √(2 ln(2/δ))/ε`, error constant `P(ε,δ)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct GaussianBackend;

impl NoiseBackend for GaussianBackend {
    fn name(&self) -> &'static str {
        "gaussian"
    }

    fn validate(&self, privacy: &PrivacyParams) -> crate::Result<()> {
        if !privacy.is_approximate() {
            return Err(MechanismError::IncompatibleBackend(
                "the Gaussian backend requires delta > 0 (use the Laplace backend for pure \
                 epsilon-differential privacy)"
                    .into(),
            ));
        }
        Ok(())
    }

    fn sensitivity(&self, strategy: &Strategy) -> f64 {
        strategy.l2_sensitivity()
    }

    fn noise_scale(&self, privacy: &PrivacyParams, sensitivity: f64) -> f64 {
        privacy.gaussian_sigma(sensitivity)
    }

    fn error_constant(&self, privacy: &PrivacyParams) -> crate::Result<f64> {
        self.validate(privacy)?;
        Ok(privacy.gaussian_error_constant())
    }

    fn sample(&self, rng: &mut dyn RngCore, scale: f64, len: usize) -> Vec<f64> {
        gaussian_noise(rng, scale, len)
    }

    fn mechanism_event(&self, privacy: &PrivacyParams, sensitivity: f64) -> MechanismEvent {
        if sensitivity > 0.0 && sensitivity.is_finite() && privacy.is_approximate() {
            MechanismEvent::gaussian(*privacy, privacy.gaussian_sigma(sensitivity), sensitivity)
        } else {
            // Degenerate strategies (zero sensitivity) add no calibrated
            // noise; fall back to the declared guarantee.
            MechanismEvent::declared(*privacy)
        }
    }
}

/// The ε-Laplace backend: L1 sensitivity, noise scale `b = Δ₁/ε`, error
/// constant `2/ε²` (Sec. 3.5).  Valid for any δ (the Laplace mechanism
/// satisfies pure ε-differential privacy, which implies (ε,δ)-privacy).
#[derive(Debug, Clone, Copy, Default)]
pub struct LaplaceBackend;

impl NoiseBackend for LaplaceBackend {
    fn name(&self) -> &'static str {
        "laplace"
    }

    fn validate(&self, _privacy: &PrivacyParams) -> crate::Result<()> {
        Ok(())
    }

    fn sensitivity(&self, strategy: &Strategy) -> f64 {
        strategy.l1_sensitivity()
    }

    fn sensitivity_from_norms(&self, l2: f64, l1: f64) -> f64 {
        let _ = l2;
        l1
    }

    fn noise_scale(&self, privacy: &PrivacyParams, sensitivity: f64) -> f64 {
        privacy.laplace_scale(sensitivity)
    }

    fn error_constant(&self, privacy: &PrivacyParams) -> crate::Result<f64> {
        Ok(privacy.laplace_error_constant())
    }

    fn sample(&self, rng: &mut dyn RngCore, scale: f64, len: usize) -> Vec<f64> {
        laplace_noise(rng, scale, len)
    }

    fn mechanism_event(&self, privacy: &PrivacyParams, sensitivity: f64) -> MechanismEvent {
        if sensitivity > 0.0 && sensitivity.is_finite() {
            MechanismEvent::laplace(*privacy, privacy.laplace_scale(sensitivity), sensitivity)
        } else {
            MechanismEvent::declared(*privacy)
        }
    }
}

/// The natural backend for the given parameters: Gaussian when δ > 0,
/// Laplace for pure ε-differential privacy.
pub fn default_backend(privacy: &PrivacyParams) -> Arc<dyn NoiseBackend> {
    if privacy.is_approximate() {
        Arc::new(GaussianBackend)
    } else {
        Arc::new(LaplaceBackend)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_linalg::approx_eq;
    use mm_strategies::wavelet::wavelet_1d;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_rejects_pure_dp() {
        let b = GaussianBackend;
        assert!(b.validate(&PrivacyParams::pure(1.0)).is_err());
        assert!(b.validate(&PrivacyParams::paper_default()).is_ok());
        assert!(b.error_constant(&PrivacyParams::pure(1.0)).is_err());
    }

    #[test]
    fn laplace_accepts_any_privacy() {
        let b = LaplaceBackend;
        assert!(b.validate(&PrivacyParams::pure(1.0)).is_ok());
        assert!(b.validate(&PrivacyParams::paper_default()).is_ok());
    }

    #[test]
    fn sensitivities_use_the_right_norm() {
        let w = wavelet_1d(8);
        assert!(approx_eq(
            GaussianBackend.sensitivity(&w),
            w.l2_sensitivity(),
            1e-12
        ));
        assert!(approx_eq(
            LaplaceBackend.sensitivity(&w),
            w.l1_sensitivity(),
            1e-12
        ));
    }

    #[test]
    fn sensitivity_from_norms_picks_the_backend_norm() {
        let w = wavelet_1d(8);
        let (l2, l1) = (w.l2_sensitivity(), w.l1_sensitivity());
        // The norm-pair path must agree bit for bit with the Strategy path.
        assert_eq!(
            GaussianBackend.sensitivity_from_norms(l2, l1).to_bits(),
            GaussianBackend.sensitivity(&w).to_bits()
        );
        assert_eq!(
            LaplaceBackend.sensitivity_from_norms(l2, l1).to_bits(),
            LaplaceBackend.sensitivity(&w).to_bits()
        );
    }

    #[test]
    fn error_constants_match_privacy_module() {
        let p = PrivacyParams::paper_default();
        assert!(approx_eq(
            GaussianBackend.error_constant(&p).unwrap(),
            p.gaussian_error_constant(),
            1e-12
        ));
        assert!(approx_eq(
            LaplaceBackend.error_constant(&p).unwrap(),
            p.laplace_error_constant(),
            1e-12
        ));
    }

    #[test]
    fn sample_variances_match_scales() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 100_000;
        let g = GaussianBackend.sample(&mut rng, 2.0, n);
        let var_g: f64 = g.iter().map(|x| x * x).sum::<f64>() / n as f64;
        assert!((var_g - 4.0).abs() / 4.0 < 0.05, "gaussian var {var_g}");
        let l = LaplaceBackend.sample(&mut rng, 2.0, n);
        let var_l: f64 = l.iter().map(|x| x * x).sum::<f64>() / n as f64;
        assert!((var_l - 8.0).abs() / 8.0 < 0.05, "laplace var {var_l}");
    }

    #[test]
    fn default_backend_follows_delta() {
        assert_eq!(
            default_backend(&PrivacyParams::paper_default()).name(),
            "gaussian"
        );
        assert_eq!(default_backend(&PrivacyParams::pure(0.5)).name(), "laplace");
    }
}
