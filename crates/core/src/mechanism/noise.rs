//! Noise sampling primitives.

use rand::Rng;

/// Samples `len` independent Gaussian values with mean 0 and standard
/// deviation `sigma`, using the Box–Muller transform (so only `rand`'s uniform
/// sampling is required).
pub fn gaussian_noise<R: Rng + ?Sized>(rng: &mut R, sigma: f64, len: usize) -> Vec<f64> {
    // mm-lint: allow(assert-on-input): sampling primitive — the scale is computed by PrivacyParams (validated at try_new) or a NoiseBackend, never taken from a caller directly; a bad sigma here is a library bug
    assert!(
        sigma >= 0.0 && sigma.is_finite(),
        "sigma must be nonnegative"
    );
    let mut out = Vec::with_capacity(len);
    while out.len() < len {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        out.push(sigma * r * theta.cos());
        if out.len() < len {
            out.push(sigma * r * theta.sin());
        }
    }
    out
}

/// Samples `len` independent Laplace values with mean 0 and scale `b`
/// (variance `2b²`) by inverse-CDF sampling.
pub fn laplace_noise<R: Rng + ?Sized>(rng: &mut R, b: f64, len: usize) -> Vec<f64> {
    // mm-lint: allow(assert-on-input): sampling primitive — the scale is computed by PrivacyParams (validated at try_new) or a NoiseBackend, never taken from a caller directly; a bad scale here is a library bug
    assert!(b >= 0.0 && b.is_finite(), "scale must be nonnegative");
    (0..len)
        .map(|_| {
            let u: f64 = rng.gen_range(-0.5..0.5);
            -b * u.signum() * (1.0 - 2.0 * u.abs()).ln()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 200_000;
        let sigma = 3.0;
        let xs = gaussian_noise(&mut rng, sigma, n);
        assert_eq!(xs.len(), n);
        let mean: f64 = xs.iter().sum::<f64>() / n as f64;
        let var: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!(
            (var - sigma * sigma).abs() / (sigma * sigma) < 0.03,
            "variance {var}"
        );
    }

    #[test]
    fn laplace_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 200_000;
        let b = 2.0;
        let xs = laplace_noise(&mut rng, b, n);
        let mean: f64 = xs.iter().sum::<f64>() / n as f64;
        let var: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!(
            (var - 2.0 * b * b).abs() / (2.0 * b * b) < 0.05,
            "variance {var}"
        );
    }

    #[test]
    fn zero_scale_produces_zeros() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(gaussian_noise(&mut rng, 0.0, 5).iter().all(|&x| x == 0.0));
        assert!(laplace_noise(&mut rng, 0.0, 5).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn odd_lengths_handled() {
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(gaussian_noise(&mut rng, 1.0, 7).len(), 7);
        assert_eq!(laplace_noise(&mut rng, 1.0, 0).len(), 0);
    }
}
