//! The matrix mechanism (Prop. 3), generic over the noise backend.
//!
//! Given a full-rank strategy `A`, the mechanism (1) answers the strategy
//! queries with calibrated noise — Gaussian under (ε,δ)-privacy, Laplace under
//! pure ε-privacy, see [`NoiseBackend`] — (2) estimates the data vector by
//! least squares, `x̂ = A⁺ y`, and (3) answers every workload query from `x̂`.
//! The answers are consistent (they all derive from one estimate of the data
//! vector) and their error is governed by Prop. 4 (resp. its L1 analogue).

use crate::mechanism::backend::{GaussianBackend, NoiseBackend};
use crate::privacy::PrivacyParams;
use crate::MechanismError;
use mm_linalg::decomp::Cholesky;
use mm_linalg::Matrix;
use mm_strategies::Strategy;
use mm_workload::Workload;
use rand::Rng;
use std::sync::Arc;

/// The matrix mechanism configured with a strategy, privacy parameters and a
/// noise backend.
#[derive(Debug, Clone)]
pub struct MatrixMechanism {
    strategy: Strategy,
    privacy: PrivacyParams,
    backend: Arc<dyn NoiseBackend>,
}

/// The result of one run of the matrix mechanism.
#[derive(Debug, Clone)]
pub struct MechanismRun {
    /// The noisy estimate `x̂` of the data vector.
    pub estimate: Vec<f64>,
    /// The noisy strategy-query answers the estimate was derived from.
    pub strategy_answers: Vec<f64>,
}

/// Least-squares estimate `x̂ = (AᵀA)⁻¹ Aᵀ y` through the strategy's
/// (pre-computed) gram matrix, with ridge fallback for rank-deficient
/// strategies.  Shared by the mechanism and the serving engine (which passes
/// a cached factor instead via [`least_squares_estimate_with_factor`]).
pub fn least_squares_estimate(strategy: &Strategy, aty: &[f64]) -> crate::Result<Vec<f64>> {
    least_squares_estimate_with_factor(&crate::error::strategy_factor(strategy)?, aty)
}

/// [`least_squares_estimate`] against a precomputed strategy-gram factor.
pub fn least_squares_estimate_with_factor(
    factor: &Cholesky,
    aty: &[f64],
) -> crate::Result<Vec<f64>> {
    Ok(factor.solve_vec(aty)?)
}

impl MatrixMechanism {
    /// Creates the mechanism with the Gaussian backend (the paper's default
    /// (ε,δ) instantiation; requires δ > 0).
    pub fn new(strategy: Strategy, privacy: PrivacyParams) -> crate::Result<Self> {
        Self::with_backend(strategy, privacy, Arc::new(GaussianBackend))
    }

    /// Creates the mechanism with an explicit noise backend.
    ///
    /// The strategy must carry an explicit matrix (strategies too large to
    /// materialise cannot be *run*, although their error can still be computed
    /// analytically), and the privacy parameters must be compatible with the
    /// backend (e.g. the Gaussian backend rejects δ = 0).
    pub fn with_backend(
        strategy: Strategy,
        privacy: PrivacyParams,
        backend: Arc<dyn NoiseBackend>,
    ) -> crate::Result<Self> {
        if strategy.matrix().is_none() {
            return Err(MechanismError::StrategyNotMaterialized(
                strategy.name().to_string(),
            ));
        }
        backend.validate(&privacy)?;
        Ok(MatrixMechanism {
            strategy,
            privacy,
            backend,
        })
    }

    /// The configured strategy.
    pub fn strategy(&self) -> &Strategy {
        &self.strategy
    }

    /// The privacy parameters.
    pub fn privacy(&self) -> &PrivacyParams {
        &self.privacy
    }

    /// The configured noise backend.
    pub fn backend(&self) -> &Arc<dyn NoiseBackend> {
        &self.backend
    }

    /// Runs the mechanism once: answers the strategy queries privately and
    /// derives the least-squares estimate `x̂` of the data vector.
    pub fn run<R: Rng>(&self, x: &[f64], rng: &mut R) -> crate::Result<MechanismRun> {
        let a = self
            .strategy
            .matrix()
            .expect("checked at construction time");
        if x.len() != a.cols() {
            return Err(MechanismError::InvalidArgument(format!(
                "data vector has {} cells but the strategy covers {}",
                x.len(),
                a.cols()
            )));
        }
        let scale = self
            .backend
            .noise_scale(&self.privacy, self.backend.sensitivity(&self.strategy));
        let mut y = a.matvec(x)?;
        // mm-lint: allow(charge-before-noise): one-shot mechanism run; its cost is fixed by the constructor's privacy params — the accounted path is engine::answer_parts, which charges the ledger before calling in here
        let noise = self.backend.sample(rng, scale, y.len());
        for (yi, ni) in y.iter_mut().zip(noise.iter()) {
            *yi += ni;
        }
        let aty = a.matvec_transposed(&y)?;
        let estimate = least_squares_estimate(&self.strategy, &aty)?;
        Ok(MechanismRun {
            estimate,
            strategy_answers: y,
        })
    }

    /// Runs the mechanism and answers every query of `workload` from the
    /// estimate, returning `(answers, run)`.
    pub fn answer_workload<R: Rng, W: Workload + ?Sized>(
        &self,
        workload: &W,
        x: &[f64],
        rng: &mut R,
    ) -> crate::Result<(Vec<f64>, MechanismRun)> {
        if workload.dim() != self.strategy.dim() {
            return Err(MechanismError::InvalidArgument(format!(
                "workload covers {} cells but the strategy covers {}",
                workload.dim(),
                self.strategy.dim()
            )));
        }
        let run = self.run(x, rng)?;
        let answers = workload.evaluate(&run.estimate);
        Ok((answers, run))
    }

    /// Answers the workload of Prop. 3 directly from a query matrix `W`
    /// (`MA(W, x) = W x̂`), for callers holding an explicit matrix.
    pub fn answer_matrix<R: Rng>(
        &self,
        queries: &Matrix,
        x: &[f64],
        rng: &mut R,
    ) -> crate::Result<Vec<f64>> {
        let run = self.run(x, rng)?;
        Ok(queries.matvec(&run.estimate)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mechanism::backend::LaplaceBackend;
    use mm_linalg::approx_eq;
    use mm_strategies::identity::identity_strategy;
    use mm_strategies::wavelet::wavelet_1d;
    use mm_workload::example::fig1_workload;
    use mm_workload::Workload;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn paper_privacy() -> PrivacyParams {
        PrivacyParams::paper_default()
    }

    #[test]
    fn zero_noise_limit_recovers_exact_answers() {
        // With a huge epsilon the noise is negligible and the mechanism
        // reproduces the true workload answers.
        let w = fig1_workload();
        let x: Vec<f64> = (1..=8).map(|v| v as f64 * 10.0).collect();
        let strategy = wavelet_1d(8);
        let mech = MatrixMechanism::new(strategy, PrivacyParams::new(1e9, 1e-4)).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let (answers, _) = mech.answer_workload(&w, &x, &mut rng).unwrap();
        let truth = w.evaluate(&x);
        for (a, t) in answers.iter().zip(truth.iter()) {
            assert!(approx_eq(*a, *t, 1e-3), "{a} vs {t}");
        }
    }

    #[test]
    fn empirical_error_matches_analytic_prediction() {
        // Monte-Carlo RMS error over repeated runs should match Prop. 4.
        let w = fig1_workload();
        let x: Vec<f64> = vec![50.0, 10.0, 30.0, 20.0, 60.0, 25.0, 15.0, 40.0];
        let strategy = wavelet_1d(8);
        let privacy = paper_privacy();
        let predicted =
            crate::error::rms_workload_error(&w.gram(), w.query_count(), &strategy, &privacy)
                .unwrap();
        let mech = MatrixMechanism::new(strategy, privacy).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let truth = w.evaluate(&x);
        let trials = 300;
        let mut total_sq = 0.0;
        for _ in 0..trials {
            let (answers, _) = mech.answer_workload(&w, &x, &mut rng).unwrap();
            for (a, t) in answers.iter().zip(truth.iter()) {
                total_sq += (a - t).powi(2);
            }
        }
        let empirical = (total_sq / (trials as f64 * w.query_count() as f64)).sqrt();
        assert!(
            (empirical - predicted).abs() / predicted < 0.1,
            "empirical {empirical} vs predicted {predicted}"
        );
    }

    #[test]
    fn laplace_backend_empirical_error_matches_l1_prediction() {
        // The same unified path under the Laplace backend matches the Sec. 3.5
        // error expression (L1 sensitivity, constant 2/ε²).
        let w = fig1_workload();
        let x: Vec<f64> = vec![50.0, 10.0, 30.0, 20.0, 60.0, 25.0, 15.0, 40.0];
        let strategy = wavelet_1d(8);
        let privacy = PrivacyParams::pure(0.5);
        let predicted =
            crate::error::rms_workload_error_l1(&w.gram(), w.query_count(), &strategy, &privacy)
                .unwrap();
        let mech =
            MatrixMechanism::with_backend(strategy, privacy, Arc::new(LaplaceBackend)).unwrap();
        let mut rng = StdRng::seed_from_u64(43);
        let truth = w.evaluate(&x);
        let trials = 300;
        let mut total_sq = 0.0;
        for _ in 0..trials {
            let (answers, _) = mech.answer_workload(&w, &x, &mut rng).unwrap();
            for (a, t) in answers.iter().zip(truth.iter()) {
                total_sq += (a - t).powi(2);
            }
        }
        let empirical = (total_sq / (trials as f64 * w.query_count() as f64)).sqrt();
        assert!(
            (empirical - predicted).abs() / predicted < 0.1,
            "empirical {empirical} vs predicted {predicted}"
        );
    }

    #[test]
    fn answers_are_consistent() {
        // q3 = q1 - q2 holds exactly for the mechanism output because all
        // answers derive from a single estimate x̂.
        let w = fig1_workload();
        let x = vec![5.0; 8];
        let mech = MatrixMechanism::new(identity_strategy(8), paper_privacy()).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let (answers, _) = mech.answer_workload(&w, &x, &mut rng).unwrap();
        assert!(approx_eq(answers[2], answers[0] - answers[1], 1e-9));
    }

    #[test]
    fn construction_errors() {
        let s =
            mm_strategies::Strategy::from_parts("implicit", None, Matrix::identity(4), 1.0, 1.0, 4);
        assert!(MatrixMechanism::new(s, paper_privacy()).is_err());
        assert!(MatrixMechanism::new(identity_strategy(4), PrivacyParams::pure(1.0)).is_err());
        // The Laplace backend accepts pure-DP parameters.
        assert!(MatrixMechanism::with_backend(
            identity_strategy(4),
            PrivacyParams::pure(1.0),
            Arc::new(LaplaceBackend)
        )
        .is_ok());
        let mech = MatrixMechanism::new(identity_strategy(4), paper_privacy()).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        assert!(mech.run(&[1.0; 3], &mut rng).is_err());
        assert!(mech
            .answer_workload(&fig1_workload(), &[1.0; 8], &mut rng)
            .is_err());
    }
}
