//! The Gaussian mechanism (Prop. 2).

use crate::mechanism::noise::gaussian_noise;
use crate::privacy::PrivacyParams;
use crate::sensitivity::l2_sensitivity;
use mm_linalg::Matrix;
use rand::Rng;

/// The Gaussian mechanism: answers a query matrix by adding independent
/// Gaussian noise calibrated to its L2 sensitivity.
#[derive(Debug, Clone)]
pub struct GaussianMechanism {
    privacy: PrivacyParams,
}

impl GaussianMechanism {
    /// Creates the mechanism for the given (ε,δ) parameters, rejecting
    /// δ = 0 with a typed error (the Gaussian mechanism only yields
    /// approximate DP).
    pub fn try_new(privacy: PrivacyParams) -> crate::Result<Self> {
        if !privacy.is_approximate() {
            return Err(crate::MechanismError::InvalidArgument(
                "the Gaussian mechanism requires delta > 0".into(),
            ));
        }
        Ok(GaussianMechanism { privacy })
    }

    /// Creates the mechanism for the given (ε,δ) parameters (δ must be > 0);
    /// panics otherwise.  See [`GaussianMechanism::try_new`] for the
    /// non-panicking form.
    pub fn new(privacy: PrivacyParams) -> Self {
        match GaussianMechanism::try_new(privacy) {
            Ok(mechanism) => mechanism,
            Err(e) => panic!("{e}"),
        }
    }

    /// The privacy parameters.
    pub fn privacy(&self) -> &PrivacyParams {
        &self.privacy
    }

    /// Answers `W x` with independent Gaussian noise scaled to `‖W‖₂`.
    pub fn answer<R: Rng + ?Sized>(
        &self,
        queries: &Matrix,
        x: &[f64],
        rng: &mut R,
    ) -> crate::Result<Vec<f64>> {
        let true_answers = queries.matvec(x)?;
        let sigma = self.privacy.gaussian_sigma(l2_sensitivity(queries));
        // mm-lint: allow(charge-before-noise): one-shot mechanism whose entire cost is the constructor's (epsilon, delta); ledger-tracked callers go through engine::answer_parts
        let noise = gaussian_noise(rng, sigma, true_answers.len());
        Ok(true_answers
            .into_iter()
            .zip(noise)
            .map(|(a, n)| a + n)
            .collect())
    }

    /// The per-query noise standard deviation used for a query matrix.
    pub fn sigma_for(&self, queries: &Matrix) -> f64 {
        self.privacy.gaussian_sigma(l2_sensitivity(queries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn answers_have_expected_noise_scale() {
        let queries = Matrix::identity(64);
        let x = vec![10.0; 64];
        let mech = GaussianMechanism::new(PrivacyParams::new(1.0, 1e-4));
        let mut rng = StdRng::seed_from_u64(7);
        let mut sq_err = 0.0;
        let trials = 200;
        for _ in 0..trials {
            let noisy = mech.answer(&queries, &x, &mut rng).unwrap();
            for (noisy_v, true_v) in noisy.iter().zip(x.iter()) {
                sq_err += (noisy_v - true_v).powi(2);
            }
        }
        let mse = sq_err / (trials as f64 * 64.0);
        let sigma = mech.sigma_for(&queries);
        assert!(
            (mse - sigma * sigma).abs() / (sigma * sigma) < 0.1,
            "mse {mse} vs sigma^2 {}",
            sigma * sigma
        );
    }

    #[test]
    fn higher_sensitivity_means_more_noise() {
        let mech = GaussianMechanism::new(PrivacyParams::paper_default());
        let small = Matrix::identity(4);
        let large = Matrix::filled(4, 4, 1.0);
        assert!(mech.sigma_for(&large) > mech.sigma_for(&small));
    }

    #[test]
    #[should_panic(expected = "delta > 0")]
    fn pure_dp_rejected() {
        GaussianMechanism::new(PrivacyParams::pure(1.0));
    }
}
