//! Differentially private mechanisms: the Gaussian and Laplace primitives,
//! the pluggable [`backend::NoiseBackend`] abstraction, and the matrix
//! mechanism with least-squares inference.

pub mod backend;
pub mod gaussian;
pub mod laplace;
pub mod matrix;
pub mod noise;

pub use backend::{default_backend, GaussianBackend, LaplaceBackend, NoiseBackend};
pub use gaussian::GaussianMechanism;
pub use laplace::LaplaceMechanism;
pub use matrix::MatrixMechanism;
