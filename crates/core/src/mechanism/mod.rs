//! Differentially private mechanisms: Gaussian, Laplace, and the matrix
//! mechanism with least-squares inference.

pub mod gaussian;
pub mod laplace;
pub mod matrix;
pub mod noise;

pub use gaussian::GaussianMechanism;
pub use laplace::LaplaceMechanism;
pub use matrix::MatrixMechanism;
