//! Optimal query weighting under standard ε-differential privacy (Sec. 3.5).
//!
//! Under pure ε-differential privacy the noise is Laplace and the sensitivity
//! is measured in L1, so the strategy `A = diag(λ) Q` built from design
//! queries `Q` has error proportional to
//!
//! ```text
//!     F(λ) = ( max_j Σᵢ λᵢ |Q_{ij}| )² · Σᵢ cᵢ / λᵢ²
//! ```
//!
//! Substituting `λ = eᵗ` makes `log F` a sum of log-sum-exp terms of affine
//! functions of `t`, hence convex, and we minimise it with the same smoothed
//! gradient scheme used for the (ε,δ) problem.  As the paper observes, there
//! is no universally good design set under L1 — the eigen-queries ignore the
//! L1 geometry — but weighting an existing basis (wavelet for ranges, Fourier
//! for marginals) improves it by the factors reported in Sec. 3.5.

use crate::design_set::design_costs;
use crate::MechanismError;
use mm_linalg::{ops, Matrix};
use mm_strategies::Strategy;

/// Options for the L1 weighting solver.
#[derive(Debug, Clone)]
pub struct PureDpOptions {
    /// Maximum gradient iterations per smoothing stage.
    pub max_iters: usize,
    /// Relative improvement tolerance.
    pub tol: f64,
    /// Smoothing exponents for the max over columns.
    pub p_schedule: Vec<f64>,
}

impl Default for PureDpOptions {
    fn default() -> Self {
        PureDpOptions {
            max_iters: 400,
            tol: 1e-10,
            p_schedule: vec![16.0, 128.0, 1024.0],
        }
    }
}

/// Result of the L1 design weighting.
#[derive(Debug, Clone)]
pub struct PureDpResult {
    /// The weighted strategy (L1 sensitivity normalised to 1).
    pub strategy: Strategy,
    /// The selected weights λ (one per design query).
    pub weights: Vec<f64>,
    /// The objective `F(λ)` = (L1 sensitivity)² · trace term.
    pub objective: f64,
}

fn objective_and_gradient(
    t: &[f64],
    costs: &[f64],
    abs_design: &Matrix,
    p: f64,
) -> (f64, Vec<f64>) {
    let k = t.len();
    let n = abs_design.cols();
    let lambda: Vec<f64> = t.iter().map(|&x| x.exp()).collect();
    // Term A: log Σ c_i e^{-2 t_i}.
    let mut max_a = f64::NEG_INFINITY;
    let a: Vec<f64> = (0..k)
        .map(|i| {
            let v = if costs[i] > 0.0 {
                costs[i].ln() - 2.0 * t[i]
            } else {
                f64::NEG_INFINITY
            };
            if v > max_a {
                max_a = v;
            }
            v
        })
        .collect();
    let sum_a: f64 = a.iter().map(|&v| (v - max_a).exp()).sum();
    let term_a = max_a + sum_a.ln();
    let mut grad = vec![0.0; k];
    for i in 0..k {
        if a[i].is_finite() {
            grad[i] = -2.0 * (a[i] - max_a).exp() / sum_a;
        }
    }
    // Term B: 2 · (1/p) log Σ_j s_j^p with s_j = Σ_i λ_i |Q_ij|.
    let mut s = vec![0.0; n];
    for (i, &li) in lambda.iter().enumerate().take(k) {
        if li == 0.0 {
            continue;
        }
        let row = abs_design.row(i);
        for (j, &v) in row.iter().enumerate() {
            s[j] += li * v;
        }
    }
    let max_ls = s
        .iter()
        .filter(|&&v| v > 0.0)
        .fold(f64::NEG_INFINITY, |m, &v| m.max(v.ln()));
    let mut denom = 0.0;
    let mut weights = vec![0.0; n];
    for j in 0..n {
        if s[j] > 0.0 {
            let w = (p * (s[j].ln() - max_ls)).exp();
            weights[j] = w;
            denom += w;
        }
    }
    let term_b = 2.0 * (max_ls + denom.ln() / p);
    for j in 0..n {
        let wj = weights[j] / denom;
        if wj == 0.0 {
            continue;
        }
        for i in 0..k {
            let v = abs_design[(i, j)];
            if v == 0.0 {
                continue;
            }
            grad[i] += 2.0 * wj * lambda[i] * v / s[j];
        }
    }
    (term_a + term_b, grad)
}

/// Weights a design set for a workload under L1 sensitivity, returning a
/// strategy whose L1 sensitivity is normalised to 1.
pub fn l1_weighted_design_strategy(
    name: impl Into<String>,
    workload_gram: &Matrix,
    design: &Matrix,
    opts: &PureDpOptions,
) -> crate::Result<PureDpResult> {
    let costs = design_costs(workload_gram, design)?;
    if costs.iter().all(|&c| c <= 0.0) {
        return Err(MechanismError::InvalidArgument(
            "workload carries no mass on the design set".into(),
        ));
    }
    let abs_design = design.map(f64::abs);
    let k = design.rows();
    // Initialise with λ_i ∝ c_i^{1/3} (balances the two terms for a single
    // shared constraint), which is a reasonable scale-free starting point.
    let mut t: Vec<f64> = costs
        .iter()
        .map(|&c| {
            if c > 0.0 {
                c.max(1e-12).ln() / 3.0
            } else {
                -20.0
            }
        })
        .collect();
    for &p in &opts.p_schedule {
        let (mut f_prev, mut grad) = objective_and_gradient(&t, &costs, &abs_design, p);
        let mut step = 0.5;
        for _ in 0..opts.max_iters {
            let gnorm_sq: f64 = grad.iter().map(|g| g * g).sum();
            if gnorm_sq.sqrt() < 1e-14 {
                break;
            }
            let mut accepted = false;
            let mut local = step;
            for _ in 0..50 {
                let cand: Vec<f64> = t
                    .iter()
                    .zip(grad.iter())
                    .map(|(&ti, &gi)| ti - local * gi)
                    .collect();
                let (fc, gc) = objective_and_gradient(&cand, &costs, &abs_design, p);
                if fc <= f_prev - 0.25 * local * gnorm_sq {
                    let improvement = (f_prev - fc).abs() / (1.0 + f_prev.abs());
                    t = cand;
                    f_prev = fc;
                    grad = gc;
                    accepted = true;
                    step = (local * 1.5).min(5.0);
                    if improvement < opts.tol {
                        step = local;
                    }
                    break;
                }
                local *= 0.5;
            }
            if !accepted {
                break;
            }
        }
        let _ = k;
    }
    // Normalise to unit L1 sensitivity and assemble the explicit strategy.
    let lambda: Vec<f64> = t.iter().map(|&x| x.exp()).collect();
    let scaled = ops::scale_rows(&lambda, design)?;
    let sens = scaled.max_col_norm_l1();
    if sens <= 0.0 {
        return Err(MechanismError::InvalidArgument(
            "weighted design collapsed to zero".into(),
        ));
    }
    let normalized = scaled.scaled(1.0 / sens);
    let weights: Vec<f64> = lambda.iter().map(|&l| l / sens).collect();
    let strategy = Strategy::from_matrix(name, normalized);
    // Objective = sens² · Σ c_i / λ_i² evaluated at the normalised weights.
    let trace: f64 = costs
        .iter()
        .zip(weights.iter())
        .filter(|(_, &l)| l > 0.0)
        .map(|(&c, &l)| c / (l * l))
        .sum();
    Ok(PureDpResult {
        objective: strategy.l1_sensitivity() * strategy.l1_sensitivity() * trace,
        strategy,
        weights,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::rms_workload_error_l1;
    use crate::privacy::PrivacyParams;
    use mm_strategies::wavelet::{haar_matrix, wavelet_1d};
    use mm_workload::range::AllRangeWorkload;
    use mm_workload::{Domain, Workload};

    #[test]
    fn weighted_wavelet_improves_plain_wavelet_under_l1() {
        // Sec. 3.5: weighting the wavelet basis improves the all-range error
        // under epsilon-DP by a modest factor (paper reports ~1.1x).
        let w = AllRangeWorkload::new(Domain::new(&[32]));
        let g = w.gram();
        let p = PrivacyParams::pure(0.5);
        let plain = rms_workload_error_l1(&g, w.query_count(), &wavelet_1d(32), &p).unwrap();
        let weighted = l1_weighted_design_strategy(
            "l1 weighted wavelet",
            &g,
            &haar_matrix(32),
            &PureDpOptions::default(),
        )
        .unwrap();
        let err = rms_workload_error_l1(&g, w.query_count(), &weighted.strategy, &p).unwrap();
        assert!(
            err <= plain * 1.01,
            "weighted {err} should not exceed plain wavelet {plain}"
        );
        assert!(
            err >= plain * 0.5,
            "improvement should be modest, got {err} vs {plain}"
        );
    }

    #[test]
    fn l1_sensitivity_normalised() {
        let w = AllRangeWorkload::new(Domain::new(&[16]));
        let res = l1_weighted_design_strategy(
            "x",
            &w.gram(),
            &haar_matrix(16),
            &PureDpOptions::default(),
        )
        .unwrap();
        assert!((res.strategy.l1_sensitivity() - 1.0).abs() < 1e-9);
        assert!(res.objective.is_finite() && res.objective > 0.0);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        let g = Matrix::zeros(4, 4);
        let design = Matrix::identity(4);
        assert!(l1_weighted_design_strategy("x", &g, &design, &PureDpOptions::default()).is_err());
    }
}
