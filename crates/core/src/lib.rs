//! # mm-core
//!
//! The adaptive matrix mechanism of Li & Miklau (VLDB 2012) under
//! (ε,δ)-differential privacy.
//!
//! The crate provides, on top of the substrates `mm-linalg`, `mm-opt`,
//! `mm-workload` and `mm-strategies`:
//!
//! * [`privacy`] — privacy parameters, the Gaussian/Laplace noise calibration
//!   and the error constant `P(ε,δ)`;
//! * [`sensitivity`] — L1/L2 query-matrix sensitivity (Prop. 1);
//! * [`mechanism`] — the Gaussian, Laplace and matrix mechanisms (Props. 2–3),
//!   including the least-squares inference step;
//! * [`error`] — the analytic workload error of Prop. 4 / Def. 5;
//! * [`bounds`] — the singular value lower bound (Thm. 2) and the
//!   approximation ratio bound (Thm. 3);
//! * [`mod@eigen_design`] — the Eigen-Design algorithm (Program 2);
//! * [`design_set`] — Program 1 over arbitrary design sets (wavelet, Fourier,
//!   workload rows, …), used by the Fig. 5 comparison;
//! * [`separation`] and [`principal`] — the eigen-query separation and
//!   principal-vector performance optimizations (Sec. 4.2);
//! * [`pure_dp`] — the ε-differential-privacy (L1) variant of optimal query
//!   weighting (Sec. 3.5);
//! * [`engine`] — **the primary entry point**: a serving [`engine::Engine`]
//!   with pluggable strategy selection ([`engine::StrategySelector`]), a
//!   Gaussian/Laplace noise backend behind one answer path
//!   ([`mechanism::NoiseBackend`]), every selection artifact (dense,
//!   structured, low-rank) unified behind one [`engine::SelectionPlan`]
//!   currency flowing through one cache and one persistent store, and
//!   budgeted [`engine::Session`]s charging through a pluggable
//!   [`accounting::Accountant`];
//! * [`faults`] — deterministic fault injection for the serving stack: a
//!   seeded [`FaultInjector`] threaded through the strategy store's I/O, the
//!   selector path, and the serve tier's workers, so robustness tests replay
//!   exact failure schedules;
//! * [`accounting`] — privacy accounting: sequential composition (default),
//!   the advanced (strong) composition bound, and Rényi-DP accounting with
//!   per-mechanism curves, all behind one object-safe trait;
//! * [`adaptive`] — the legacy `AdaptiveMechanism` API, now a deprecated
//!   shim over [`engine::Engine`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accounting;
pub mod adaptive;
pub mod bounds;
pub mod design_set;
pub mod eigen_design;
pub mod engine;
pub mod error;
pub mod faults;
pub mod mechanism;
pub mod principal;
pub mod privacy;
pub mod pure_dp;
pub mod sensitivity;
pub mod separation;

pub use accounting::{
    Accountant, AccountantFactory, AdvancedCompositionAccountant, AdvancedCompositionAccounting,
    MechanismEvent, MechanismKind, RdpAccountant, RdpAccounting, SequentialAccountant,
    SequentialAccounting, UserLedger, UserLedgerRegistry,
};
#[allow(deprecated)]
pub use adaptive::{AdaptiveAnswer, AdaptiveMechanism, AdaptiveOptions};
pub use eigen_design::{eigen_design, EigenDesignOptions, EigenDesignResult};
pub use engine::{
    Engine, EngineAnswer, EngineBuilder, LowRankPlan, OwnedSession, PlanKind, PrivacyBudget,
    SelectionPlan, Session, StructuredAnswer,
};
pub use error::{predicted_rms_error, rms_workload_error, total_squared_error};
pub use faults::{Fault, FaultInjector, FaultSchedule, FaultSite, NoFaults};
pub use mechanism::{GaussianBackend, LaplaceBackend, NoiseBackend};
pub use privacy::PrivacyParams;

/// Error type shared by the mechanism-level routines.
///
/// Marked `#[non_exhaustive]`: new serving-layer failure modes (budget
/// accounting, backend compatibility, …) may be added without a breaking
/// change, so downstream matches must carry a wildcard arm.
#[derive(Debug)]
#[non_exhaustive]
pub enum MechanismError {
    /// A linear-algebra step failed.
    Linalg(mm_linalg::LinalgError),
    /// The optimization step failed.
    Opt(mm_opt::OptError),
    /// The requested operation needs an explicit strategy matrix that is not
    /// available (the strategy was too large to materialise).
    StrategyNotMaterialized(String),
    /// Invalid argument supplied by the caller.
    InvalidArgument(String),
    /// A [`engine::Session`] ran out of privacy budget: the requested charge
    /// does not fit the remaining budget under the session accountant's
    /// composition (sequential by default; see [`accounting`]).
    #[non_exhaustive]
    BudgetExhausted {
        /// ε requested by the rejected call.
        requested_epsilon: f64,
        /// δ requested by the rejected call.
        requested_delta: f64,
        /// ε still admissible before the call, in the accountant's view.
        /// For the sequential accountant this is the slack-aware *headroom*
        /// — the exact accept/reject boundary: a request at or below it
        /// would have been admitted.
        remaining_epsilon: f64,
        /// δ still admissible before the call (see `remaining_epsilon`).
        remaining_delta: f64,
        /// Composed ε spent before the call, in the accountant's view.
        spent_epsilon: f64,
        /// Composed δ spent before the call, in the accountant's view.
        spent_delta: f64,
        /// Name of the accountant that rejected the charge
        /// (`"sequential"`, `"advanced"`, `"rdp"`, …).
        accountant: &'static str,
    },
    /// The privacy parameters are unusable with the selected noise backend
    /// (e.g. the Gaussian backend with δ = 0).
    IncompatibleBackend(String),
    /// The workload's gram matrix contains a NaN entry, so it cannot be
    /// fingerprinted (and the workload is numerically broken upstream).
    NanWorkloadGram {
        /// Row of the first NaN entry found.
        row: usize,
        /// Column of the first NaN entry found.
        col: usize,
    },
    /// The persistent strategy store could not be opened or written (the
    /// message carries the I/O error and path).  Per-entry corruption is
    /// *not* reported here — corrupt entries fall back to fresh selection.
    Store(String),
    /// A selection this caller was waiting on died with the leader (panic or
    /// abandonment) and was not retried on the caller's behalf.
    PoisonedSelection(String),
}

impl MechanismError {
    /// Whether retrying the same request could plausibly succeed without
    /// any caller-side change.
    ///
    /// * **Transient** — [`MechanismError::Store`] (an I/O failure: the disk
    ///   may recover, and the engine degrades to memory-only caching
    ///   meanwhile) and [`MechanismError::PoisonedSelection`] (the poison is
    ///   cleared when the waiter observes it; a retry founds a fresh
    ///   selection).
    /// * **Permanent** — everything else: invalid arguments, dimension
    ///   mismatches, NaN workloads, incompatible backends, selector errors
    ///   and exhausted budgets are deterministic functions of the request
    ///   (or of state that only moves further against the caller), so
    ///   retrying unchanged cannot help.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            MechanismError::Store(_) | MechanismError::PoisonedSelection(_)
        )
    }
}

impl std::fmt::Display for MechanismError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MechanismError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            MechanismError::Opt(e) => write!(f, "optimization error: {e}"),
            MechanismError::StrategyNotMaterialized(name) => {
                write!(f, "strategy `{name}` has no explicit matrix available")
            }
            MechanismError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            MechanismError::BudgetExhausted {
                requested_epsilon,
                requested_delta,
                remaining_epsilon,
                remaining_delta,
                spent_epsilon,
                spent_delta,
                accountant,
            } => write!(
                f,
                "privacy budget exhausted: requested (ε = {requested_epsilon}, δ = \
                 {requested_delta}) but only (ε = {remaining_epsilon}, δ = {remaining_delta}) \
                 remains under {accountant} accounting (composed spend ε = {spent_epsilon}, \
                 δ = {spent_delta})"
            ),
            MechanismError::IncompatibleBackend(msg) => {
                write!(f, "incompatible noise backend: {msg}")
            }
            MechanismError::NanWorkloadGram { row, col } => {
                write!(
                    f,
                    "workload gram matrix entry ({row}, {col}) is NaN; the workload is \
                     numerically broken upstream"
                )
            }
            MechanismError::Store(msg) => write!(f, "strategy store error: {msg}"),
            MechanismError::PoisonedSelection(msg) => {
                write!(f, "in-flight selection died: {msg}")
            }
        }
    }
}

impl std::error::Error for MechanismError {}

impl From<mm_linalg::LinalgError> for MechanismError {
    fn from(e: mm_linalg::LinalgError) -> Self {
        MechanismError::Linalg(e)
    }
}

impl From<mm_workload::NanGramEntry> for MechanismError {
    fn from(e: mm_workload::NanGramEntry) -> Self {
        MechanismError::NanWorkloadGram {
            row: e.row,
            col: e.col,
        }
    }
}

impl From<mm_opt::OptError> for MechanismError {
    fn from(e: mm_opt::OptError) -> Self {
        MechanismError::Opt(e)
    }
}

/// Result alias for mechanism-level routines.
pub type Result<T> = std::result::Result<T, MechanismError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e: MechanismError = mm_linalg::LinalgError::Empty.into();
        assert!(e.to_string().contains("linear algebra"));
        let e: MechanismError = mm_opt::OptError::InvalidProblem("p".into()).into();
        assert!(e.to_string().contains("optimization"));
        assert!(MechanismError::StrategyNotMaterialized("w".into())
            .to_string()
            .contains("w"));
        assert!(MechanismError::InvalidArgument("arg".into())
            .to_string()
            .contains("arg"));
    }

    #[test]
    fn transient_classification() {
        assert!(MechanismError::Store("disk on fire".into()).is_transient());
        assert!(MechanismError::PoisonedSelection("leader died".into()).is_transient());
        assert!(!MechanismError::InvalidArgument("bad".into()).is_transient());
        assert!(!MechanismError::StrategyNotMaterialized("w".into()).is_transient());
        assert!(!MechanismError::IncompatibleBackend("b".into()).is_transient());
        assert!(!MechanismError::NanWorkloadGram { row: 0, col: 1 }.is_transient());
        let e: MechanismError = mm_linalg::LinalgError::Empty.into();
        assert!(!e.is_transient());
    }
}
