//! Principal-vector optimization (Sec. 4.2).
//!
//! Only the `k` eigen-queries with the largest eigenvalues receive individual
//! weights; all remaining eigen-queries with nonzero eigenvalue share a single
//! common weight.  The weighting problem then has `k + 1` variables, reducing
//! the solve to `O(n k³)` while — experimentally — 10% of the eigenvectors is
//! enough to stay close to the full Eigen-Design error (Fig. 4).

use crate::design_set::build_weighted_strategy;
use crate::eigen_design::workload_eigensystem;
use mm_linalg::Matrix;
use mm_opt::{solve_log_gd, GdOptions, WeightingProblem};
use mm_strategies::Strategy;

/// Options for the principal-vector optimization.
#[derive(Debug, Clone)]
pub struct PrincipalOptions {
    /// Number of leading eigen-queries that receive individual weights.
    pub principal_count: usize,
    /// Solver options.
    pub solver: GdOptions,
    /// Whether to apply the column-completion step.
    pub completion: bool,
    /// Relative eigenvalue cutoff.
    pub rank_tol: f64,
}

impl PrincipalOptions {
    /// Default options with the given number of principal vectors.
    pub fn with_principal_count(principal_count: usize) -> Self {
        PrincipalOptions {
            principal_count,
            solver: GdOptions::fast(),
            completion: true,
            rank_tol: 1e-10,
        }
    }
}

/// Result of the principal-vector strategy selection.
#[derive(Debug, Clone)]
pub struct PrincipalResult {
    /// The selected strategy.
    pub strategy: Strategy,
    /// Final squared weights per retained eigen-query.
    pub weights_squared: Vec<f64>,
    /// The common squared weight shared by the non-principal eigen-queries.
    pub common_weight_squared: f64,
    /// Number of principal vectors actually used.
    pub principal_count: usize,
}

/// Runs strategy selection with the principal-vector optimization.
pub fn principal_vectors(
    workload_gram: &Matrix,
    opts: &PrincipalOptions,
) -> crate::Result<PrincipalResult> {
    if opts.principal_count == 0 {
        return Err(crate::MechanismError::InvalidArgument(
            "principal_count must be positive".into(),
        ));
    }
    let (_, sigma, q) = workload_eigensystem(workload_gram, opts.rank_tol)?;
    let k = sigma.len();
    let n = workload_gram.rows();
    let p = opts.principal_count.min(k);

    if p == k {
        // Degenerates to the full algorithm.
        let problem = WeightingProblem::from_design_queries(&q, sigma.clone())?;
        let sol = solve_log_gd(&problem, &opts.solver)?;
        let strategy = build_weighted_strategy(
            format!("principal-vectors (all {k})"),
            &q,
            &sol.u,
            opts.completion,
        )?;
        return Ok(PrincipalResult {
            strategy,
            weights_squared: sol.u,
            common_weight_squared: 0.0,
            principal_count: p,
        });
    }

    // Reduced problem: p individual variables + 1 shared variable.
    // Costs: σ_1..σ_p and Σ_{i>p} σ_i.
    let mut costs: Vec<f64> = sigma[..p].to_vec();
    costs.push(sigma[p..].iter().sum());
    // Constraints per cell: Σ_{i<=p} u_i Q_ij² + u_common Σ_{i>p} Q_ij² <= 1.
    let constraint = Matrix::from_fn(n, p + 1, |cell, var| {
        if var < p {
            let v = q[(var, cell)];
            v * v
        } else {
            (p..k).map(|i| q[(i, cell)] * q[(i, cell)]).sum()
        }
    });
    let problem = WeightingProblem::new(costs, constraint)?;
    let sol = solve_log_gd(&problem, &opts.solver)?;
    let common = sol.u[p];
    let mut weights = vec![0.0; k];
    weights[..p].copy_from_slice(&sol.u[..p]);
    for w in weights.iter_mut().take(k).skip(p) {
        *w = common;
    }
    let strategy = build_weighted_strategy(
        format!("principal-vectors ({p} of {k})"),
        &q,
        &weights,
        opts.completion,
    )?;
    Ok(PrincipalResult {
        strategy,
        weights_squared: weights,
        common_weight_squared: common,
        principal_count: p,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eigen_design::{eigen_design, EigenDesignOptions};
    use crate::error::rms_workload_error;
    use crate::privacy::PrivacyParams;
    use mm_workload::marginal::{MarginalKind, MarginalWorkload};
    use mm_workload::range::AllRangeWorkload;
    use mm_workload::{Domain, Workload};

    #[test]
    fn principal_vectors_close_to_full_on_ranges() {
        let w = AllRangeWorkload::new(Domain::new(&[32]));
        let g = w.gram();
        let p = PrivacyParams::paper_default();
        let full = eigen_design(&g, &EigenDesignOptions::default()).unwrap();
        let full_err = rms_workload_error(&g, w.query_count(), &full.strategy, &p).unwrap();
        for count in [4usize, 8, 16] {
            let pr = principal_vectors(&g, &PrincipalOptions::with_principal_count(count)).unwrap();
            let err = rms_workload_error(&g, w.query_count(), &pr.strategy, &p).unwrap();
            assert!(
                err <= full_err * 1.25,
                "{count} principal vectors: {err} vs full {full_err}"
            );
        }
    }

    #[test]
    fn all_vectors_matches_full_algorithm() {
        let w = AllRangeWorkload::new(Domain::new(&[16]));
        let g = w.gram();
        let p = PrivacyParams::paper_default();
        let mut opts = PrincipalOptions::with_principal_count(16);
        opts.solver = mm_opt::GdOptions::default();
        let pr = principal_vectors(&g, &opts).unwrap();
        let full = eigen_design(&g, &EigenDesignOptions::default()).unwrap();
        let e1 = rms_workload_error(&g, w.query_count(), &pr.strategy, &p).unwrap();
        let e2 = rms_workload_error(&g, w.query_count(), &full.strategy, &p).unwrap();
        assert!((e1 - e2).abs() / e2 < 0.02);
        assert_eq!(pr.principal_count, 16);
        assert_eq!(pr.common_weight_squared, 0.0);
    }

    #[test]
    fn works_on_marginal_workloads() {
        // The paper notes principal vectors work particularly well on marginals.
        let d = Domain::new(&[4, 4, 4]);
        let w = MarginalWorkload::all_k_way(d, 2, MarginalKind::Point);
        let g = w.gram();
        let p = PrivacyParams::paper_default();
        let full = eigen_design(&g, &EigenDesignOptions::default()).unwrap();
        let full_err = rms_workload_error(&g, w.query_count(), &full.strategy, &p).unwrap();
        let pr = principal_vectors(&g, &PrincipalOptions::with_principal_count(6)).unwrap();
        let err = rms_workload_error(&g, w.query_count(), &pr.strategy, &p).unwrap();
        assert!(err <= full_err * 1.15, "{err} vs {full_err}");
    }

    #[test]
    fn zero_principal_count_rejected() {
        let g = Matrix::identity(4);
        assert!(principal_vectors(&g, &PrincipalOptions::with_principal_count(0)).is_err());
    }
}
