//! Lower bounds on achievable error and the approximation ratio of the
//! Eigen-Design algorithm.
//!
//! Theorem 2 (the *singular value bound* of Li & Miklau, "Measuring the
//! achievable error of query sets under differential privacy"): for any
//! workload `W` with `WᵀW` eigenvalues `σ₁ ≥ … ≥ σ_n`,
//!
//! ```text
//!     svdb(W) = (1/n) (√σ₁ + … + √σ_n)²
//!     OptTSE(W) ≥ P(ε,δ) · svdb(W)
//! ```
//!
//! where `OptTSE` is the optimal total squared error over all strategies.
//! Theorem 3 bounds the approximation ratio of Program 2 by
//! `(n σ₁ / svdb(W))^{1/4}`.

use crate::privacy::PrivacyParams;
use mm_linalg::decomp::SymmetricEigen;
use mm_linalg::Matrix;

/// Eigenvalues of a workload gram matrix, clamped at zero and sorted
/// descending (tiny negative values from floating point noise are clipped).
pub fn workload_eigenvalues(workload_gram: &Matrix) -> crate::Result<Vec<f64>> {
    let eig = SymmetricEigen::new(workload_gram)?;
    Ok(eig
        .eigenvalues()
        .iter()
        .map(|&l| if l > 0.0 { l } else { 0.0 })
        .collect())
}

/// The singular value bound `svdb(W) = (1/n)(Σ√σᵢ)²` computed from the
/// workload's gram-matrix eigenvalues.
pub fn svd_bound_value(eigenvalues: &[f64]) -> f64 {
    let n = eigenvalues.len();
    if n == 0 {
        return 0.0;
    }
    let s: f64 = eigenvalues.iter().map(|&l| l.max(0.0).sqrt()).sum();
    s * s / n as f64
}

/// Lower bound on the total squared error of *any* strategy for the workload.
pub fn total_squared_error_bound(eigenvalues: &[f64], privacy: &PrivacyParams) -> f64 {
    privacy.gaussian_error_constant() * svd_bound_value(eigenvalues)
}

/// Lower bound on the workload RMS error (Def. 5) of any strategy:
/// `√(P · svdb / m)`.
pub fn rms_error_bound(eigenvalues: &[f64], query_count: usize, privacy: &PrivacyParams) -> f64 {
    // mm-lint: allow(assert-on-input): an empty workload is a structural misuse with a documented panic; rms_error_bound_from_gram is the Result-returning entry point for untrusted dimensions
    assert!(query_count > 0, "workload must have at least one query");
    (total_squared_error_bound(eigenvalues, privacy) / query_count as f64).sqrt()
}

/// Convenience: RMS lower bound straight from a workload gram matrix.
pub fn rms_error_bound_from_gram(
    workload_gram: &Matrix,
    query_count: usize,
    privacy: &PrivacyParams,
) -> crate::Result<f64> {
    let ev = workload_eigenvalues(workload_gram)?;
    Ok(rms_error_bound(&ev, query_count, privacy))
}

/// The Theorem-3 approximation-ratio bound `(n σ₁ / svdb)^{1/4}` for the
/// Eigen-Design algorithm on a workload with the given eigenvalues.
pub fn approximation_ratio_bound(eigenvalues: &[f64]) -> f64 {
    let n = eigenvalues.len();
    if n == 0 {
        return 1.0;
    }
    let svdb = svd_bound_value(eigenvalues);
    if svdb <= 0.0 {
        return 1.0;
    }
    let sigma1 = eigenvalues.iter().fold(0.0_f64, |m, &l| m.max(l));
    ((n as f64) * sigma1 / svdb).powf(0.25)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_linalg::approx_eq;
    use mm_workload::example::fig1_workload;
    use mm_workload::range::AllRangeWorkload;
    use mm_workload::{Domain, IdentityWorkload, TotalWorkload, Workload};

    #[test]
    fn identity_workload_bound_is_achieved_by_identity_strategy() {
        let w = IdentityWorkload::new(12);
        let p = PrivacyParams::paper_default();
        let ev = workload_eigenvalues(&w.gram()).unwrap();
        assert!(approx_eq(svd_bound_value(&ev), 12.0, 1e-9));
        let bound = rms_error_bound(&ev, w.query_count(), &p);
        let err = crate::error::rms_workload_error(
            &w.gram(),
            w.query_count(),
            &mm_strategies::identity::identity_strategy(12),
            &p,
        )
        .unwrap();
        assert!(
            approx_eq(bound, err, 1e-9),
            "identity is optimal for identity workload"
        );
    }

    #[test]
    fn total_workload_bound() {
        let w = TotalWorkload::new(9);
        let ev = workload_eigenvalues(&w.gram()).unwrap();
        // Eigenvalues of J_n: one n, rest 0 -> svdb = n/n = 1.
        assert!(approx_eq(svd_bound_value(&ev), 1.0, 1e-9));
    }

    #[test]
    fn bound_below_known_strategies_for_ranges() {
        let domain = Domain::new(&[32]);
        let w = AllRangeWorkload::new(domain);
        let p = PrivacyParams::paper_default();
        let ev = workload_eigenvalues(&w.gram()).unwrap();
        let bound = rms_error_bound(&ev, w.query_count(), &p);
        for strategy in [
            mm_strategies::identity::identity_strategy(32),
            mm_strategies::wavelet::wavelet_1d(32),
            mm_strategies::hierarchical::binary_hierarchical_1d(32),
        ] {
            let err = crate::error::rms_workload_error(&w.gram(), w.query_count(), &strategy, &p)
                .unwrap();
            assert!(
                err >= bound * (1.0 - 1e-9),
                "{} error {err} below the lower bound {bound}",
                strategy.name()
            );
        }
    }

    #[test]
    fn approximation_ratio_bound_properties() {
        // Identity workload: all eigenvalues equal -> ratio bound 1.
        let ev = vec![1.0; 8];
        assert!(approx_eq(approximation_ratio_bound(&ev), 1.0, 1e-12));
        // More skewed spectra have larger bounds.
        let skewed = vec![100.0, 1.0, 1.0, 1.0];
        assert!(approximation_ratio_bound(&skewed) > 1.0);
        assert!(approximation_ratio_bound(&[]) == 1.0);
    }

    #[test]
    fn fig1_bound_below_best_strategy() {
        let w = fig1_workload();
        let p = PrivacyParams::paper_default();
        let bound = rms_error_bound_from_gram(&w.gram(), w.query_count(), &p).unwrap();
        let wav = crate::error::rms_workload_error(
            &w.gram(),
            w.query_count(),
            &mm_strategies::wavelet::wavelet_1d(8),
            &p,
        )
        .unwrap();
        assert!(bound <= wav);
        assert!(bound > 0.0);
    }
}
