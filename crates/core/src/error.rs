//! Analytic workload error of the (ε,δ)-matrix mechanism (Prop. 4, Def. 5).
//!
//! For a workload `W` (m queries, gram matrix `G = WᵀW`) answered with
//! strategy `A` under (ε,δ)-differential privacy, the total squared error is
//!
//! ```text
//!     TSE = P(ε,δ) · ‖A‖₂² · trace(G (AᵀA)⁻¹)
//! ```
//!
//! and the workload (root-mean-square, Def. 5) error is `√(TSE / m)`.  The
//! expression depends on the workload only through `G` and on the data not at
//! all, so it is evaluated exactly, without sampling.
//!
//! Rank-deficient strategies are handled with a tiny ridge: when `AᵀA` is not
//! positive definite the trace is computed against `(AᵀA + λI)⁻¹` with
//! `λ = RIDGE_FACTOR · max diag(AᵀA)`; when the strategy cannot answer the
//! workload at all (the workload's row space is not contained in the
//! strategy's) the resulting error is enormous, which is the correct signal.

use crate::privacy::PrivacyParams;
use mm_linalg::decomp::Cholesky;
use mm_linalg::Matrix;
use mm_strategies::Strategy;

/// Relative ridge added to `AᵀA` when it is numerically singular.
pub const RIDGE_FACTOR: f64 = 1e-10;

/// Cholesky factorization of a strategy's gram matrix `AᵀA`, with a small
/// relative ridge added when the strategy is rank deficient.  This factor is
/// what both the error formula (trace term) and the mechanism's inference
/// step consume; the engine caches it alongside the selected strategy.
pub fn strategy_factor(strategy: &Strategy) -> crate::Result<Cholesky> {
    let a_gram = strategy.gram();
    match Cholesky::new(a_gram) {
        Ok(c) => Ok(c),
        Err(_) => {
            // Relative ridge: fold from 0.0 so the scale comes from the gram
            // itself (a fold seeded at 1.0 made λ absolute for strategies
            // with max diag ≪ 1, over-regularising small-magnitude
            // strategies).  The all-zero gram keeps an absolute floor.
            let diag_max = a_gram.diag().iter().fold(0.0_f64, |m, &d| m.max(d));
            let ridge = RIDGE_FACTOR * if diag_max > 0.0 { diag_max } else { 1.0 };
            Ok(Cholesky::new_with_shift(a_gram, ridge)?)
        }
    }
}

/// `trace(G (AᵀA)⁻¹)` for a workload gram matrix `G` and a strategy.
///
/// Uses a Cholesky factorization of the strategy gram, adding a small ridge
/// when the strategy is rank deficient.
pub fn trace_term(workload_gram: &Matrix, strategy: &Strategy) -> crate::Result<f64> {
    if workload_gram.shape() != strategy.gram().shape() {
        return Err(crate::MechanismError::InvalidArgument(format!(
            "workload gram is {:?} but strategy gram is {:?}",
            workload_gram.shape(),
            strategy.gram().shape()
        )));
    }
    trace_term_with_factor(workload_gram, &strategy_factor(strategy)?)
}

/// [`trace_term`] against a precomputed strategy-gram factor (the engine's
/// cache-hit path: no re-factorization per answer).
pub fn trace_term_with_factor(workload_gram: &Matrix, factor: &Cholesky) -> crate::Result<f64> {
    Ok(factor.trace_of_gram_times_inverse(workload_gram)?)
}

/// Total squared error `P(ε,δ) · ‖A‖₂² · trace(G (AᵀA)⁻¹)` (Prop. 4, summed
/// over the workload queries rather than averaged).
pub fn total_squared_error(
    workload_gram: &Matrix,
    strategy: &Strategy,
    privacy: &PrivacyParams,
) -> crate::Result<f64> {
    let t = trace_term(workload_gram, strategy)?;
    let sens = strategy.l2_sensitivity();
    Ok(privacy.gaussian_error_constant() * sens * sens * t)
}

/// Workload (root mean square) error per Def. 5: `√(TSE / m)`.
pub fn rms_workload_error(
    workload_gram: &Matrix,
    query_count: usize,
    strategy: &Strategy,
    privacy: &PrivacyParams,
) -> crate::Result<f64> {
    if query_count == 0 {
        return Err(crate::MechanismError::InvalidArgument(
            "workload has no queries".into(),
        ));
    }
    Ok((total_squared_error(workload_gram, strategy, privacy)? / query_count as f64).sqrt())
}

/// Error of a single linear query `w` under the strategy (Def. 5): the square
/// root of `P(ε,δ) ‖A‖₂² · w (AᵀA)⁻¹ wᵀ`.
pub fn query_error(
    query: &[f64],
    strategy: &Strategy,
    privacy: &PrivacyParams,
) -> crate::Result<f64> {
    let a_gram = strategy.gram();
    if query.len() != a_gram.rows() {
        return Err(crate::MechanismError::InvalidArgument(format!(
            "query has {} coefficients but the strategy covers {} cells",
            query.len(),
            a_gram.rows()
        )));
    }
    let chol = strategy_factor(strategy)?;
    let solved = chol.solve_vec(query)?;
    let quad: f64 = query.iter().zip(solved.iter()).map(|(a, b)| a * b).sum();
    let sens = strategy.l2_sensitivity();
    Ok((privacy.gaussian_error_constant() * sens * sens * quad).sqrt())
}

/// Backend-aware analogue of [`rms_workload_error`]: the predicted RMS
/// workload error under any [`NoiseBackend`](crate::mechanism::NoiseBackend)
/// (Gaussian → Prop. 4, Laplace → the Sec. 3.5 L1 expression), evaluated
/// through the one shared formula
/// `√( c(ε,δ) · ‖A‖² · trace(WᵀW (AᵀA)⁻¹) / m )`
/// with the backend supplying the error constant `c` and sensitivity norm.
pub fn predicted_rms_error(
    workload_gram: &Matrix,
    query_count: usize,
    strategy: &Strategy,
    privacy: &PrivacyParams,
    backend: &dyn crate::mechanism::NoiseBackend,
) -> crate::Result<f64> {
    if query_count == 0 {
        return Err(crate::MechanismError::InvalidArgument(
            "workload has no queries".into(),
        ));
    }
    let t = trace_term(workload_gram, strategy)?;
    let sens = backend.sensitivity(strategy);
    let tse = backend.error_constant(privacy)? * sens * sens * t;
    Ok((tse / query_count as f64).sqrt())
}

/// ε-differential-privacy analogue of [`rms_workload_error`]: Laplace noise
/// calibrated to the L1 sensitivity (used by the Sec. 3.5 experiments).
pub fn rms_workload_error_l1(
    workload_gram: &Matrix,
    query_count: usize,
    strategy: &Strategy,
    privacy: &PrivacyParams,
) -> crate::Result<f64> {
    if query_count == 0 {
        return Err(crate::MechanismError::InvalidArgument(
            "workload has no queries".into(),
        ));
    }
    let t = trace_term(workload_gram, strategy)?;
    let sens = strategy.l1_sensitivity();
    let tse = privacy.laplace_error_constant() * sens * sens * t;
    Ok((tse / query_count as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_linalg::approx_eq;
    use mm_strategies::identity::identity_strategy;
    use mm_strategies::wavelet::wavelet_1d;
    use mm_workload::example::fig1_workload;
    use mm_workload::{IdentityWorkload, TotalWorkload, Workload};

    fn paper_privacy() -> PrivacyParams {
        PrivacyParams::paper_default()
    }

    #[test]
    fn identity_workload_identity_strategy() {
        // trace(I * I) = n, sensitivity 1: TSE = P * n, RMS = sqrt(P).
        let w = IdentityWorkload::new(16);
        let s = identity_strategy(16);
        let p = paper_privacy();
        let tse = total_squared_error(&w.gram(), &s, &p).unwrap();
        assert!(approx_eq(tse, p.gaussian_error_constant() * 16.0, 1e-9));
        let rms = rms_workload_error(&w.gram(), w.query_count(), &s, &p).unwrap();
        assert!(approx_eq(rms, p.gaussian_error_constant().sqrt(), 1e-9));
    }

    #[test]
    fn total_workload_answered_by_total_strategy() {
        // Strategy = the single total query: sensitivity 1,
        // trace(J (1ᵀ1)⁺)… with ridge handling the rank deficiency the error
        // approaches sqrt(P).
        let n = 8;
        let w = TotalWorkload::new(n);
        let total_row = Matrix::filled(1, n, 1.0);
        let s = mm_strategies::Strategy::from_matrix("total", total_row);
        let p = paper_privacy();
        let rms = rms_workload_error(&w.gram(), 1, &s, &p).unwrap();
        assert!(approx_eq(rms, p.gaussian_error_constant().sqrt(), 1e-3));
    }

    #[test]
    fn fig1_identity_vs_wavelet_ordering() {
        // The paper's Example 4: wavelet beats identity on the Fig. 1 workload.
        let w = fig1_workload();
        let p = paper_privacy();
        let id = rms_workload_error(&w.gram(), w.query_count(), &identity_strategy(8), &p).unwrap();
        let wav = rms_workload_error(&w.gram(), w.query_count(), &wavelet_1d(8), &p).unwrap();
        assert!(wav < id, "wavelet {wav} should beat identity {id}");
        // Using the workload itself as the strategy is also supported; the
        // Fig. 1 workload is rank deficient (rank 4), so its error is computed
        // against the ridge-regularised pseudo-inverse and must stay finite.
        let as_strategy =
            mm_strategies::Strategy::from_matrix("workload as strategy", w.to_matrix().unwrap());
        let own = rms_workload_error(&w.gram(), w.query_count(), &as_strategy, &p).unwrap();
        assert!(own.is_finite() && own > 0.0);
    }

    #[test]
    fn example4_error_ratios_match_paper() {
        // Example 4 reports identity error 45.36 and wavelet error 34.62 on
        // the Fig. 1 workload.  The absolute scale depends on the error
        // normalisation, but the wavelet/identity ratio (34.62/45.36 ≈ 0.763)
        // is normalisation independent; check it within 1%.  (The example's
        // "workload as strategy" figure is not compared: the Fig. 1 workload
        // is rank deficient, and its treatment as a strategy depends on the
        // pseudo-inverse convention — see fig1_identity_vs_wavelet_ordering.)
        let w = fig1_workload();
        let p = paper_privacy();
        let id = rms_workload_error(&w.gram(), 8, &identity_strategy(8), &p).unwrap();
        let wav = rms_workload_error(&w.gram(), 8, &wavelet_1d(8), &p).unwrap();
        let ratio_wav = wav / id;
        assert!(
            (ratio_wav - 34.62 / 45.36).abs() < 0.01,
            "wavelet/identity = {ratio_wav}"
        );
    }

    #[test]
    fn ridge_is_relative_for_small_magnitude_strategies() {
        // Regression: the ridge fold used to start at 1.0, so a
        // rank-deficient strategy with max diag(AᵀA) ≪ 1 got an *absolute*
        // λ = 1e-10 that dwarfed the gram and over-regularised it.  The
        // workload RMS error is invariant under strategy scaling (sensitivity
        // scales by c, (AᵀA)⁻¹ by c⁻²), so the scaled-down rank-deficient
        // strategy must predict the same error as the unscaled one.
        let n = 8;
        let w = TotalWorkload::new(n);
        let total_row = Matrix::filled(1, n, 1.0);
        let s = mm_strategies::Strategy::from_matrix("total", total_row);
        let tiny = s.scaled(1e-6).with_name("total, scaled by 1e-6");
        let p = paper_privacy();
        let reference = rms_workload_error(&w.gram(), 1, &s, &p).unwrap();
        let scaled = rms_workload_error(&w.gram(), 1, &tiny, &p).unwrap();
        assert!(
            approx_eq(scaled, reference, 1e-6 * reference),
            "scaled {scaled} vs reference {reference}"
        );
        // The all-zero gram keeps an absolute floor instead of λ = 0.
        let zero = mm_strategies::Strategy::from_matrix("zero", Matrix::zeros(2, n));
        assert!(strategy_factor(&zero).is_ok());
    }

    #[test]
    fn query_error_matches_workload_error_for_single_query() {
        let n = 8;
        let w = TotalWorkload::new(n);
        let s = wavelet_1d(n);
        let p = paper_privacy();
        let q = vec![1.0; n];
        let qe = query_error(&q, &s, &p).unwrap();
        let we = rms_workload_error(&w.gram(), 1, &s, &p).unwrap();
        assert!(approx_eq(qe, we, 1e-9));
    }

    #[test]
    fn error_scales_with_epsilon() {
        let w = IdentityWorkload::new(4);
        let s = identity_strategy(4);
        let tight = PrivacyParams::new(0.1, 1e-4);
        let loose = PrivacyParams::new(1.0, 1e-4);
        let e_tight = rms_workload_error(&w.gram(), 4, &s, &tight).unwrap();
        let e_loose = rms_workload_error(&w.gram(), 4, &s, &loose).unwrap();
        assert!(approx_eq(e_tight / e_loose, 10.0, 1e-9));
    }

    #[test]
    fn l1_error_uses_l1_sensitivity() {
        let w = fig1_workload();
        let p = PrivacyParams::pure(0.5);
        let id = rms_workload_error_l1(&w.gram(), 8, &identity_strategy(8), &p).unwrap();
        let wav = rms_workload_error_l1(&w.gram(), 8, &wavelet_1d(8), &p).unwrap();
        assert!(id.is_finite() && wav.is_finite());
        // Under L1 the wavelet's sensitivity is log(n)+1 = 4, so its advantage
        // shrinks; both should at least be positive and comparable.
        assert!(wav > 0.0 && id > 0.0);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let w = IdentityWorkload::new(4);
        let s = identity_strategy(5);
        assert!(trace_term(&w.gram(), &s).is_err());
        assert!(query_error(&[1.0; 3], &s, &paper_privacy()).is_err());
        assert!(rms_workload_error(&w.gram(), 0, &identity_strategy(4), &paper_privacy()).is_err());
    }
}
