//! # mm-bench
//!
//! Benchmark harness reproducing every table and figure of the paper's
//! evaluation (Sec. 5).  Each `repro_*` binary regenerates one artifact and
//! prints the same rows/series the paper reports; Criterion benches under
//! `benches/` time the individual components.
//!
//! Every binary accepts:
//!
//! * `--paper` — run at the paper's domain sizes (2048 cells, 8192 for Fig. 4);
//!   slower but closest to the original setup;
//! * `--cells N` — override the target cell count (default: a quick scale of
//!   256 cells that preserves every qualitative conclusion, see
//!   `EXPERIMENTS.md`);
//! * `--json PATH` — additionally write the rows as JSON.

#![forbid(unsafe_code)]

pub mod report;
pub mod runs;

pub use report::{ExperimentTable, RunConfig};
