//! Table formatting, JSON output and command-line configuration shared by the
//! reproduction binaries.

use std::fmt::Write as _;

/// Command-line configuration for a reproduction binary.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Target number of cells (per experiment, interpreted by each binary).
    pub cells: usize,
    /// Whether the paper-scale sizes were requested.
    pub paper_scale: bool,
    /// Optional JSON output path.
    pub json_path: Option<String>,
    /// Privacy parameter ε used for workload error.
    pub epsilon: f64,
    /// Privacy parameter δ.
    pub delta: f64,
    /// Trials for Monte-Carlo (relative error) experiments.
    pub trials: usize,
    /// Seed for all randomised components.
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            cells: 256,
            paper_scale: false,
            json_path: None,
            epsilon: 0.5,
            delta: 1e-4,
            trials: 3,
            seed: 20120216, // the paper's arXiv submission date
        }
    }
}

impl RunConfig {
    /// Parses configuration from `std::env::args()`.
    pub fn from_args() -> Self {
        Self::from_arg_list(std::env::args().skip(1))
    }

    /// Parses configuration from an explicit argument list (for tests).
    pub fn from_arg_list<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut cfg = RunConfig::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--paper" => {
                    cfg.paper_scale = true;
                    cfg.cells = 2048;
                }
                "--cells" => {
                    if let Some(v) = iter.next().and_then(|s| s.parse().ok()) {
                        cfg.cells = v;
                    }
                }
                "--json" => cfg.json_path = iter.next(),
                "--epsilon" => {
                    if let Some(v) = iter.next().and_then(|s| s.parse().ok()) {
                        cfg.epsilon = v;
                    }
                }
                "--delta" => {
                    if let Some(v) = iter.next().and_then(|s| s.parse().ok()) {
                        cfg.delta = v;
                    }
                }
                "--trials" => {
                    if let Some(v) = iter.next().and_then(|s| s.parse().ok()) {
                        cfg.trials = v;
                    }
                }
                "--seed" => {
                    if let Some(v) = iter.next().and_then(|s| s.parse().ok()) {
                        cfg.seed = v;
                    }
                }
                other => eprintln!("ignoring unknown argument `{other}`"),
            }
        }
        cfg
    }

    /// The privacy parameters implied by this configuration.
    pub fn privacy(&self) -> mm_core::PrivacyParams {
        mm_core::PrivacyParams::new(self.epsilon, self.delta)
    }
}

/// A printable experiment table (one per figure/table of the paper).
#[derive(Debug, Clone)]
pub struct ExperimentTable {
    /// Table title (which paper artifact it reproduces).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of formatted cells.
    pub rows: Vec<Vec<String>>,
}

impl ExperimentTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        ExperimentTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let mut header_line = String::new();
        for (h, w) in self.headers.iter().zip(widths.iter()) {
            let _ = write!(header_line, "{h:<w$}  ");
        }
        let _ = writeln!(out, "{}", header_line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(header_line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (c, w) in row.iter().zip(widths.iter()) {
                let _ = write!(line, "{c:<w$}  ");
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Renders the table as pretty-printed JSON (hand-rolled: the offline
    /// build has no serde).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out
        }
        fn string_array(items: &[String], indent: &str) -> String {
            let inner: Vec<String> = items.iter().map(|s| format!("\"{}\"", esc(s))).collect();
            format!("{indent}[{}]", inner.join(", "))
        }
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"title\": \"{}\",", esc(&self.title));
        let _ = writeln!(
            out,
            "  \"headers\": {},",
            string_array(&self.headers, "").trim_start()
        );
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let sep = if i + 1 < self.rows.len() { "," } else { "" };
            let _ = writeln!(out, "{}{}", string_array(row, "    "), sep);
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Prints the table to stdout and optionally writes it as JSON.
    pub fn emit(&self, cfg: &RunConfig) {
        println!("{}", self.render());
        if let Some(path) = &cfg.json_path {
            if let Err(e) = std::fs::write(path, self.to_json()) {
                eprintln!("failed to write {path}: {e}");
            }
        }
    }
}

/// Formats a float with three significant decimals for table cells.
pub fn fmt(v: f64) -> String {
    if !v.is_finite() {
        return "inf".to_string();
    }
    if v == 0.0 {
        return "0".to_string();
    }
    if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_parsing() {
        let cfg = RunConfig::from_arg_list(
            [
                "--cells",
                "512",
                "--epsilon",
                "1.0",
                "--trials",
                "7",
                "--json",
                "/tmp/x.json",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert_eq!(cfg.cells, 512);
        assert_eq!(cfg.epsilon, 1.0);
        assert_eq!(cfg.trials, 7);
        assert_eq!(cfg.json_path.as_deref(), Some("/tmp/x.json"));
        let paper = RunConfig::from_arg_list(["--paper".to_string()]);
        assert!(paper.paper_scale);
        assert_eq!(paper.cells, 2048);
    }

    #[test]
    fn table_rendering() {
        let mut t = ExperimentTable::new("Test", &["a", "method"]);
        t.push_row(vec!["1".into(), "wavelet".into()]);
        t.push_row(vec!["2".into(), "eigen".into()]);
        let s = t.render();
        assert!(s.contains("Test"));
        assert!(s.contains("wavelet"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(12345.6), "12346");
        assert_eq!(fmt(1.23456), "1.235");
        assert_eq!(fmt(0.012345), "0.0123");
        assert_eq!(fmt(f64::INFINITY), "inf");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = ExperimentTable::new("x", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }
}
