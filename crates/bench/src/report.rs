//! Table formatting, JSON output and command-line configuration shared by the
//! reproduction binaries.

use std::fmt::Write as _;

/// Command-line configuration for a reproduction binary.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Target number of cells (per experiment, interpreted by each binary).
    pub cells: usize,
    /// Whether the paper-scale sizes were requested.
    pub paper_scale: bool,
    /// Optional JSON output path.
    pub json_path: Option<String>,
    /// Privacy parameter ε used for workload error.
    pub epsilon: f64,
    /// Privacy parameter δ.
    pub delta: f64,
    /// Trials for Monte-Carlo (relative error) experiments.
    pub trials: usize,
    /// Seed for all randomised components.
    pub seed: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            cells: 256,
            paper_scale: false,
            json_path: None,
            epsilon: 0.5,
            delta: 1e-4,
            trials: 3,
            seed: 20120216, // the paper's arXiv submission date
        }
    }
}

impl RunConfig {
    /// Parses configuration from `std::env::args()`.
    pub fn from_args() -> Self {
        Self::from_arg_list(std::env::args().skip(1))
    }

    /// Parses configuration from an explicit argument list (for tests).
    pub fn from_arg_list<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut cfg = RunConfig::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--paper" => {
                    cfg.paper_scale = true;
                    cfg.cells = 2048;
                }
                "--cells" => {
                    if let Some(v) = iter.next().and_then(|s| s.parse().ok()) {
                        cfg.cells = v;
                    }
                }
                "--json" => cfg.json_path = iter.next(),
                "--epsilon" => {
                    if let Some(v) = iter.next().and_then(|s| s.parse().ok()) {
                        cfg.epsilon = v;
                    }
                }
                "--delta" => {
                    if let Some(v) = iter.next().and_then(|s| s.parse().ok()) {
                        cfg.delta = v;
                    }
                }
                "--trials" => {
                    if let Some(v) = iter.next().and_then(|s| s.parse().ok()) {
                        cfg.trials = v;
                    }
                }
                "--seed" => {
                    if let Some(v) = iter.next().and_then(|s| s.parse().ok()) {
                        cfg.seed = v;
                    }
                }
                other => eprintln!("ignoring unknown argument `{other}`"),
            }
        }
        cfg
    }

    /// The privacy parameters implied by this configuration.
    pub fn privacy(&self) -> mm_core::PrivacyParams {
        mm_core::PrivacyParams::new(self.epsilon, self.delta)
    }
}

/// A printable experiment table (one per figure/table of the paper).
#[derive(Debug, Clone)]
pub struct ExperimentTable {
    /// Table title (which paper artifact it reproduces).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of formatted cells.
    pub rows: Vec<Vec<String>>,
}

impl ExperimentTable {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        ExperimentTable {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let mut header_line = String::new();
        for (h, w) in self.headers.iter().zip(widths.iter()) {
            let _ = write!(header_line, "{h:<w$}  ");
        }
        let _ = writeln!(out, "{}", header_line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(header_line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (c, w) in row.iter().zip(widths.iter()) {
                let _ = write!(line, "{c:<w$}  ");
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Renders the table as pretty-printed JSON (hand-rolled: the offline
    /// build has no serde).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out
        }
        fn string_array(items: &[String], indent: &str) -> String {
            let inner: Vec<String> = items.iter().map(|s| format!("\"{}\"", esc(s))).collect();
            format!("{indent}[{}]", inner.join(", "))
        }
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"title\": \"{}\",", esc(&self.title));
        let _ = writeln!(
            out,
            "  \"headers\": {},",
            string_array(&self.headers, "").trim_start()
        );
        out.push_str("  \"rows\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let sep = if i + 1 < self.rows.len() { "," } else { "" };
            let _ = writeln!(out, "{}{}", string_array(row, "    "), sep);
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Prints the table to stdout and optionally writes it as JSON.
    pub fn emit(&self, cfg: &RunConfig) {
        println!("{}", self.render());
        if let Some(path) = &cfg.json_path {
            if let Err(e) = std::fs::write(path, self.to_json()) {
                eprintln!("failed to write {path}: {e}");
            }
        }
    }
}

/// One measured batch-answering scenario: the vectorised (batched) path
/// against the per-vector baseline at a given domain size `n` and batch
/// width `k`.
///
/// Both timings are whole-batch figures — `baseline_ns_per_op` is the total
/// time of `k` per-vector calls, so `speedup = baseline / batched` is the
/// end-to-end win of vectorising, and `>= 1.0` means batching does not lose.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchBenchRecord {
    /// Scenario name (`matmul`, `solve_multi`, `engine_answer_batch`, …).
    pub scenario: String,
    /// Domain size (cells / matrix dimension).
    pub n: usize,
    /// Batch width (number of right-hand sides / data vectors).
    pub k: usize,
    /// Nanoseconds for one whole-batch operation on the vectorised path
    /// (fastest sample).
    pub batched_ns_per_op: f64,
    /// Nanoseconds for the per-vector baseline answering the same batch
    /// (fastest sample, total over the `k` calls).
    pub baseline_ns_per_op: f64,
    /// `baseline_ns_per_op / batched_ns_per_op`.
    pub speedup: f64,
}

impl BatchBenchRecord {
    /// Builds a record, deriving the speedup from the two timings.
    pub fn new(
        scenario: impl Into<String>,
        n: usize,
        k: usize,
        batched_ns_per_op: f64,
        baseline_ns_per_op: f64,
    ) -> Self {
        let speedup = if batched_ns_per_op > 0.0 {
            baseline_ns_per_op / batched_ns_per_op
        } else {
            f64::INFINITY
        };
        BatchBenchRecord {
            scenario: scenario.into(),
            n,
            k,
            batched_ns_per_op,
            baseline_ns_per_op,
            speedup,
        }
    }
}

/// The machine-readable perf-trajectory report emitted as
/// `BENCH_batch.json` — the repo's recorded performance format (schema
/// documented in the README's Performance section).
#[derive(Debug, Clone, Default)]
pub struct BatchBenchReport {
    /// Whether the run used the short fixed-iteration CI mode.
    pub quick: bool,
    /// All measured scenarios.
    pub records: Vec<BatchBenchRecord>,
}

/// Schema identifier written into every `BENCH_batch.json`.
pub const BATCH_BENCH_FORMAT: &str = "mm-bench/batch-v1";

impl BatchBenchReport {
    /// An empty report.
    pub fn new(quick: bool) -> Self {
        BatchBenchReport {
            quick,
            records: Vec::new(),
        }
    }

    /// Appends a record.
    pub fn push(&mut self, record: BatchBenchRecord) {
        self.records.push(record);
    }

    /// Renders the report as pretty-printed JSON (hand-rolled: the offline
    /// build has no serde).
    pub fn to_json(&self) -> String {
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v:.1}")
            } else {
                "null".to_string()
            }
        }
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"format\": \"{BATCH_BENCH_FORMAT}\",");
        let _ = writeln!(out, "  \"quick\": {},", self.quick);
        out.push_str("  \"scenarios\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let sep = if i + 1 < self.records.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"scenario\": \"{}\", \"n\": {}, \"k\": {}, \
                 \"batched_ns_per_op\": {}, \"baseline_ns_per_op\": {}, \
                 \"speedup\": {}}}{sep}",
                r.scenario,
                r.n,
                r.k,
                num(r.batched_ns_per_op),
                num(r.baseline_ns_per_op),
                num(r.speedup),
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the report to `path`.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// The coarse CI regression gate: every scenario with `k >= min_k` must
    /// show `speedup >= min_speedup` (batching must not lose once the batch
    /// is wide enough to amortise its setup).  Returns the offending records'
    /// descriptions on failure.
    pub fn gate(&self, min_k: usize, min_speedup: f64) -> Result<(), String> {
        let failures: Vec<String> = self
            .records
            .iter()
            .filter(|r| r.k >= min_k && (r.speedup < min_speedup || r.speedup.is_nan()))
            .map(|r| {
                format!(
                    "{} n={} k={}: speedup {:.2}x < {:.2}x",
                    r.scenario, r.n, r.k, r.speedup, min_speedup
                )
            })
            .collect();
        if failures.is_empty() {
            Ok(())
        } else {
            Err(failures.join("; "))
        }
    }
}

/// One measured selection-path scenario: the blocked-parallel (optimized)
/// implementation against its reference baseline at domain size `n`.
///
/// What "optimized" and "baseline" mean is scenario-specific (documented in
/// the README's Performance section): for the kernel scenarios (`cholesky`,
/// `eigen`) the baseline is the scalar reference kernel; for
/// `selection_eigen_design` it is the full cold miss path rebuilt on the
/// scalar kernels; for the `*_hit` scenarios it is the cold miss itself, so
/// the speedup is the cache win.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionBenchRecord {
    /// Scenario name (`cholesky`, `eigen`, `selection_eigen_design`, …).
    pub scenario: String,
    /// Domain size (cells / matrix dimension).
    pub n: usize,
    /// Nanoseconds per operation on the optimized path (fastest sample).
    pub optimized_ns_per_op: f64,
    /// Nanoseconds per operation on the baseline (fastest sample).
    pub baseline_ns_per_op: f64,
    /// `baseline_ns_per_op / optimized_ns_per_op`.
    pub speedup: f64,
}

impl SelectionBenchRecord {
    /// Builds a record, deriving the speedup from the two timings.
    pub fn new(
        scenario: impl Into<String>,
        n: usize,
        optimized_ns_per_op: f64,
        baseline_ns_per_op: f64,
    ) -> Self {
        let speedup = if optimized_ns_per_op > 0.0 {
            baseline_ns_per_op / optimized_ns_per_op
        } else {
            f64::INFINITY
        };
        SelectionBenchRecord {
            scenario: scenario.into(),
            n,
            optimized_ns_per_op,
            baseline_ns_per_op,
            speedup,
        }
    }
}

/// Schema identifier written into every `BENCH_selection.json`.
pub const SELECTION_BENCH_FORMAT: &str = "mm-bench/selection-v1";

/// The machine-readable selection-latency report emitted as
/// `BENCH_selection.json` — the perf-trajectory record for the engine's
/// expensive (cache-miss) path, companion to [`BatchBenchReport`].
#[derive(Debug, Clone, Default)]
pub struct SelectionBenchReport {
    /// Whether the run used the short fixed-iteration CI mode.
    pub quick: bool,
    /// Worker-thread budget the kernels ran with
    /// (`mm_linalg::parallel::max_threads()` at bench time).
    pub threads: usize,
    /// All measured scenarios.
    pub records: Vec<SelectionBenchRecord>,
}

impl SelectionBenchReport {
    /// An empty report.
    pub fn new(quick: bool, threads: usize) -> Self {
        SelectionBenchReport {
            quick,
            threads,
            records: Vec::new(),
        }
    }

    /// Appends a record.
    pub fn push(&mut self, record: SelectionBenchRecord) {
        self.records.push(record);
    }

    /// Renders the report as pretty-printed JSON (hand-rolled: the offline
    /// build has no serde).
    pub fn to_json(&self) -> String {
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v:.1}")
            } else {
                "null".to_string()
            }
        }
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"format\": \"{SELECTION_BENCH_FORMAT}\",");
        let _ = writeln!(out, "  \"quick\": {},", self.quick);
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        out.push_str("  \"scenarios\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let sep = if i + 1 < self.records.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"scenario\": \"{}\", \"n\": {}, \
                 \"optimized_ns_per_op\": {}, \"baseline_ns_per_op\": {}, \
                 \"speedup\": {}}}{sep}",
                r.scenario,
                r.n,
                num(r.optimized_ns_per_op),
                num(r.baseline_ns_per_op),
                num(r.speedup),
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the report to `path`.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// The coarse CI regression gate: every record of `scenario` with
    /// `n >= min_n` must show `speedup >= min_speedup`.  Returns the
    /// offending records' descriptions on failure, or an error when the
    /// report holds no matching record at all (an empty gate must not pass).
    pub fn gate(&self, scenario: &str, min_n: usize, min_speedup: f64) -> Result<(), String> {
        let mut matched = 0usize;
        let failures: Vec<String> = self
            .records
            .iter()
            .filter(|r| r.scenario == scenario && r.n >= min_n)
            .inspect(|_| matched += 1)
            .filter(|r| r.speedup < min_speedup || r.speedup.is_nan())
            .map(|r| {
                format!(
                    "{} n={}: speedup {:.2}x < {:.2}x",
                    r.scenario, r.n, r.speedup, min_speedup
                )
            })
            .collect();
        if matched == 0 {
            return Err(format!(
                "no records for scenario `{scenario}` with n >= {min_n}"
            ));
        }
        if failures.is_empty() {
            Ok(())
        } else {
            Err(failures.join("; "))
        }
    }
}

/// One measured serving scenario: latency quantiles over `requests` answered
/// requests at domain size `n` with `clients` concurrent clients.
///
/// Scenario names: `cold_start` / `warm_start` (first answer of a fresh
/// engine process without / with a populated strategy store — the restart
/// figure the store exists for) and `soak_cold` / `soak_warm` (the async
/// client mix against a cold / pre-warmed serving tier).
#[derive(Debug, Clone, PartialEq)]
pub struct ServingBenchRecord {
    /// Scenario name (`cold_start`, `warm_start`, `soak_cold`, `soak_warm`).
    pub scenario: String,
    /// Domain size (cells).
    pub n: usize,
    /// Concurrent clients driving the scenario (1 for the start scenarios).
    pub clients: usize,
    /// Requests answered over the whole scenario.
    pub requests: usize,
    /// Median per-request latency in nanoseconds.
    pub p50_ns: f64,
    /// 99th-percentile per-request latency in nanoseconds.
    pub p99_ns: f64,
}

impl ServingBenchRecord {
    /// Builds a record from a sorted-or-not slice of per-request latencies.
    pub fn from_latencies(
        scenario: impl Into<String>,
        n: usize,
        clients: usize,
        latencies_ns: &[f64],
    ) -> Self {
        let mut sorted: Vec<f64> = latencies_ns.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let q = |p: f64| -> f64 {
            if sorted.is_empty() {
                return f64::NAN;
            }
            let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
            sorted[idx]
        };
        ServingBenchRecord {
            scenario: scenario.into(),
            n,
            clients,
            requests: sorted.len(),
            p50_ns: q(0.5),
            p99_ns: q(0.99),
        }
    }
}

/// Schema identifier written into every `BENCH_serving.json`.
pub const SERVING_BENCH_FORMAT: &str = "mm-bench/serving-v1";

/// The machine-readable serving-tier report emitted as `BENCH_serving.json`
/// — the perf-trajectory record for `mm-serve` (async front-end + persistent
/// strategy store), companion to [`SelectionBenchReport`].
#[derive(Debug, Clone, Default)]
pub struct ServingBenchReport {
    /// Whether the run used the short fixed-iteration CI mode.
    pub quick: bool,
    /// Serving workers the tier ran with.
    pub workers: usize,
    /// All measured scenarios.
    pub records: Vec<ServingBenchRecord>,
}

impl ServingBenchReport {
    /// An empty report.
    pub fn new(quick: bool, workers: usize) -> Self {
        ServingBenchReport {
            quick,
            workers,
            records: Vec::new(),
        }
    }

    /// Appends a record.
    pub fn push(&mut self, record: ServingBenchRecord) {
        self.records.push(record);
    }

    /// Renders the report as pretty-printed JSON (hand-rolled: the offline
    /// build has no serde).
    pub fn to_json(&self) -> String {
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v:.1}")
            } else {
                "null".to_string()
            }
        }
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"format\": \"{SERVING_BENCH_FORMAT}\",");
        let _ = writeln!(out, "  \"quick\": {},", self.quick);
        let _ = writeln!(out, "  \"workers\": {},", self.workers);
        out.push_str("  \"scenarios\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let sep = if i + 1 < self.records.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"scenario\": \"{}\", \"n\": {}, \"clients\": {}, \
                 \"requests\": {}, \"p50_ns\": {}, \"p99_ns\": {}}}{sep}",
                r.scenario,
                r.n,
                r.clients,
                r.requests,
                num(r.p50_ns),
                num(r.p99_ns),
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the report to `path`.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// The CI regression gate for the persistent store: at every domain size
    /// `n >= min_n` where both are recorded, `warm_start` p50 must beat
    /// `cold_start` p50 by at least `min_speedup`.  Errors when no such pair
    /// exists (an empty gate must not pass).
    pub fn gate_warm_restart(&self, min_n: usize, min_speedup: f64) -> Result<(), String> {
        let p50 = |scenario: &str, n: usize| -> Option<f64> {
            self.records
                .iter()
                .find(|r| r.scenario == scenario && r.n == n)
                .map(|r| r.p50_ns)
        };
        let mut matched = 0usize;
        let mut failures = Vec::new();
        for r in &self.records {
            if r.scenario != "cold_start" || r.n < min_n {
                continue;
            }
            let Some(warm) = p50("warm_start", r.n) else {
                continue;
            };
            matched += 1;
            let speedup = if warm > 0.0 {
                r.p50_ns / warm
            } else {
                f64::INFINITY
            };
            if speedup < min_speedup || speedup.is_nan() {
                failures.push(format!(
                    "warm restart n={}: speedup {:.2}x < {:.2}x (cold p50 {:.0}ns, warm p50 {:.0}ns)",
                    r.n, speedup, min_speedup, r.p50_ns, warm
                ));
            }
        }
        if matched == 0 {
            return Err(format!("no cold_start/warm_start pair with n >= {min_n}"));
        }
        if failures.is_empty() {
            Ok(())
        } else {
            Err(failures.join("; "))
        }
    }
}

/// One measured large-domain answering scenario: the matrix-free structured
/// path (`structured`) or the materialised-operator baseline (`dense`) at
/// domain size `n`, answering `queries` range queries end to end.
///
/// `select_ns` is the strategy-side setup cost — structured selection for
/// the structured path, operator densification for the dense baseline —
/// and `answer_ns` the full noisy answer (observe, reconstruct via CG,
/// evaluate).  Above the dense materialisation cap the baseline cannot run
/// at all; such sizes are recorded with `skipped = true` and no timings, so
/// the artifact shows *why* the comparison stops rather than silently
/// omitting the row.
#[derive(Debug, Clone, PartialEq)]
pub struct LargeDomainRecord {
    /// Scenario name (`structured` or `dense`).
    pub scenario: String,
    /// Domain size (cells).
    pub n: usize,
    /// Range queries answered.
    pub queries: usize,
    /// True when the scenario could not run at this size (dense above the
    /// materialisation cap); timings are NaN and serialise as null.
    pub skipped: bool,
    /// Nanoseconds for strategy selection / densification (fastest sample).
    pub select_ns: f64,
    /// Nanoseconds for one end-to-end noisy answer (fastest sample).
    pub answer_ns: f64,
}

impl LargeDomainRecord {
    /// A measured record.
    pub fn measured(
        scenario: impl Into<String>,
        n: usize,
        queries: usize,
        select_ns: f64,
        answer_ns: f64,
    ) -> Self {
        LargeDomainRecord {
            scenario: scenario.into(),
            n,
            queries,
            skipped: false,
            select_ns,
            answer_ns,
        }
    }

    /// A skipped record (scenario infeasible at this size).
    pub fn skipped(scenario: impl Into<String>, n: usize, queries: usize) -> Self {
        LargeDomainRecord {
            scenario: scenario.into(),
            n,
            queries,
            skipped: true,
            select_ns: f64::NAN,
            answer_ns: f64::NAN,
        }
    }

    /// Selection plus answering — the end-to-end figure the gate compares.
    pub fn total_ns(&self) -> f64 {
        self.select_ns + self.answer_ns
    }
}

/// Schema identifier written into every `BENCH_large_domain.json`.
pub const LARGE_DOMAIN_BENCH_FORMAT: &str = "mm-bench/large-domain-v1";

/// The machine-readable large-domain report emitted as
/// `BENCH_large_domain.json` — the perf-trajectory record for the
/// matrix-free structured answering path, companion to
/// [`SelectionBenchReport`].
#[derive(Debug, Clone, Default)]
pub struct LargeDomainReport {
    /// Whether the run used the short fixed-iteration CI mode.
    pub quick: bool,
    /// Worker-thread budget the kernels ran with
    /// (`mm_linalg::parallel::max_threads()` at bench time).
    pub threads: usize,
    /// All measured scenarios.
    pub records: Vec<LargeDomainRecord>,
}

impl LargeDomainReport {
    /// An empty report.
    pub fn new(quick: bool, threads: usize) -> Self {
        LargeDomainReport {
            quick,
            threads,
            records: Vec::new(),
        }
    }

    /// Appends a record.
    pub fn push(&mut self, record: LargeDomainRecord) {
        self.records.push(record);
    }

    /// Renders the report as pretty-printed JSON (hand-rolled: the offline
    /// build has no serde).
    pub fn to_json(&self) -> String {
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v:.1}")
            } else {
                "null".to_string()
            }
        }
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"format\": \"{LARGE_DOMAIN_BENCH_FORMAT}\",");
        let _ = writeln!(out, "  \"quick\": {},", self.quick);
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        out.push_str("  \"scenarios\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let sep = if i + 1 < self.records.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"scenario\": \"{}\", \"n\": {}, \"queries\": {}, \
                 \"skipped\": {}, \"select_ns\": {}, \"answer_ns\": {}, \
                 \"total_ns\": {}}}{sep}",
                r.scenario,
                r.n,
                r.queries,
                r.skipped,
                num(r.select_ns),
                num(r.answer_ns),
                num(r.total_ns()),
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes the report to `path`.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// The CI regression gate for the matrix-free path.  Two clauses:
    ///
    /// 1. the structured path must *complete* `must_complete_n` (the
    ///    headline large domain) — a missing or skipped record fails;
    /// 2. at every n >= `min_n` where the dense baseline also ran,
    ///    structured end-to-end must not lose to dense; at least one such
    ///    pair must exist (an empty gate must not pass).
    pub fn gate(&self, min_n: usize, must_complete_n: usize) -> Result<(), String> {
        let find = |scenario: &str, n: usize| {
            self.records
                .iter()
                .find(|r| r.scenario == scenario && r.n == n)
        };
        let mut failures = Vec::new();
        match find("structured", must_complete_n) {
            Some(r) if !r.skipped && r.total_ns().is_finite() => {}
            _ => failures.push(format!(
                "structured n={must_complete_n} missing, skipped, or unmeasured"
            )),
        }
        let mut pairs = 0usize;
        for r in &self.records {
            if r.scenario != "dense" || r.n < min_n || r.skipped {
                continue;
            }
            let Some(s) = find("structured", r.n) else {
                continue;
            };
            if s.skipped {
                continue;
            }
            pairs += 1;
            let speedup = if s.total_ns() > 0.0 {
                r.total_ns() / s.total_ns()
            } else {
                f64::INFINITY
            };
            // A NaN speedup (corrupt timing) must fail the gate, not pass it.
            if speedup.is_nan() || speedup < 1.0 {
                failures.push(format!(
                    "n={}: structured {:.0}ns loses to dense {:.0}ns ({:.2}x)",
                    r.n,
                    s.total_ns(),
                    r.total_ns(),
                    speedup
                ));
            }
        }
        if pairs == 0 {
            failures.push(format!("no structured/dense pair with n >= {min_n}"));
        }
        if failures.is_empty() {
            Ok(())
        } else {
            Err(failures.join("; "))
        }
    }
}

/// Formats a float with three significant decimals for table cells.
pub fn fmt(v: f64) -> String {
    if !v.is_finite() {
        return "inf".to_string();
    }
    if v == 0.0 {
        return "0".to_string();
    }
    if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_parsing() {
        let cfg = RunConfig::from_arg_list(
            [
                "--cells",
                "512",
                "--epsilon",
                "1.0",
                "--trials",
                "7",
                "--json",
                "/tmp/x.json",
            ]
            .iter()
            .map(|s| s.to_string()),
        );
        assert_eq!(cfg.cells, 512);
        assert_eq!(cfg.epsilon, 1.0);
        assert_eq!(cfg.trials, 7);
        assert_eq!(cfg.json_path.as_deref(), Some("/tmp/x.json"));
        let paper = RunConfig::from_arg_list(["--paper".to_string()]);
        assert!(paper.paper_scale);
        assert_eq!(paper.cells, 2048);
    }

    #[test]
    fn table_rendering() {
        let mut t = ExperimentTable::new("Test", &["a", "method"]);
        t.push_row(vec!["1".into(), "wavelet".into()]);
        t.push_row(vec!["2".into(), "eigen".into()]);
        let s = t.render();
        assert!(s.contains("Test"));
        assert!(s.contains("wavelet"));
        assert!(s.lines().count() >= 5);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(12345.6), "12346");
        assert_eq!(fmt(1.23456), "1.235");
        assert_eq!(fmt(0.012345), "0.0123");
        assert_eq!(fmt(f64::INFINITY), "inf");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = ExperimentTable::new("x", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn batch_report_json_schema() {
        let mut report = BatchBenchReport::new(true);
        report.push(BatchBenchRecord::new("matmul", 256, 8, 1000.0, 4000.0));
        report.push(BatchBenchRecord::new(
            "engine_answer_batch",
            1024,
            64,
            2.0,
            5.0,
        ));
        let json = report.to_json();
        assert!(json.contains("\"format\": \"mm-bench/batch-v1\""));
        assert!(json.contains("\"quick\": true"));
        assert!(json.contains("\"scenario\": \"matmul\""));
        assert!(json.contains("\"n\": 256"));
        assert!(json.contains("\"k\": 8"));
        assert!(json.contains("\"batched_ns_per_op\": 1000.0"));
        assert!(json.contains("\"speedup\": 4.0"));
        // Two records, comma-separated, last one bare.
        assert_eq!(json.matches("\"scenario\"").count(), 2);
        assert!(json.contains("\"speedup\": 2.5}\n"));
    }

    #[test]
    fn selection_report_json_schema() {
        let mut report = SelectionBenchReport::new(true, 4);
        report.push(SelectionBenchRecord::new("cholesky", 512, 1000.0, 5000.0));
        report.push(SelectionBenchRecord::new(
            "selection_eigen_design",
            1024,
            2.0,
            9.0,
        ));
        let json = report.to_json();
        assert!(json.contains("\"format\": \"mm-bench/selection-v1\""));
        assert!(json.contains("\"quick\": true"));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"scenario\": \"cholesky\""));
        assert!(json.contains("\"n\": 512"));
        assert!(json.contains("\"optimized_ns_per_op\": 1000.0"));
        assert!(json.contains("\"speedup\": 5.0"));
        assert_eq!(json.matches("\"scenario\"").count(), 2);
        assert!(json.contains("\"speedup\": 4.5}\n"));
        // Infinite speedup serialises as null.
        let r = SelectionBenchRecord::new("s", 4, 0.0, 100.0);
        assert!(r.speedup.is_infinite());
        let json = SelectionBenchReport {
            quick: false,
            threads: 1,
            records: vec![r],
        }
        .to_json();
        assert!(json.contains("\"speedup\": null"), "{json}");
    }

    #[test]
    fn selection_report_gate() {
        let mut report = SelectionBenchReport::new(true, 1);
        report.push(SelectionBenchRecord::new("cholesky", 256, 100.0, 90.0));
        report.push(SelectionBenchRecord::new("cholesky", 512, 100.0, 300.0));
        report.push(SelectionBenchRecord::new("cholesky", 1024, 100.0, 450.0));
        // n < min_n records are exempt; both n >= 512 records pass.
        assert!(report.gate("cholesky", 512, 1.0).is_ok());
        // A losing large-n record trips the gate with a description.
        report.push(SelectionBenchRecord::new("cholesky", 2048, 100.0, 80.0));
        let err = report.gate("cholesky", 512, 1.0).unwrap_err();
        assert!(err.contains("cholesky n=2048"), "{err}");
        assert!(err.contains("0.80x"), "{err}");
        // An empty gate (unknown scenario or too-large min_n) must fail.
        assert!(report.gate("eigen", 512, 1.0).is_err());
        assert!(report.gate("cholesky", 4096, 1.0).is_err());
        // NaN speedups fail the gate.
        let nan = SelectionBenchReport {
            quick: false,
            threads: 1,
            records: vec![SelectionBenchRecord {
                scenario: "cholesky".into(),
                n: 512,
                optimized_ns_per_op: f64::NAN,
                baseline_ns_per_op: f64::NAN,
                speedup: f64::NAN,
            }],
        };
        assert!(nan.gate("cholesky", 512, 1.0).is_err());
    }

    #[test]
    fn serving_report_json_schema() {
        let mut report = ServingBenchReport::new(true, 2);
        report.push(ServingBenchRecord::from_latencies(
            "cold_start",
            1024,
            1,
            &[50_000.0],
        ));
        report.push(ServingBenchRecord::from_latencies(
            "soak_warm",
            256,
            8,
            &[10.0, 20.0, 30.0, 40.0],
        ));
        let json = report.to_json();
        assert!(json.contains("\"format\": \"mm-bench/serving-v1\""));
        assert!(json.contains("\"quick\": true"));
        assert!(json.contains("\"workers\": 2"));
        assert!(json.contains("\"scenario\": \"cold_start\""));
        assert!(json.contains("\"clients\": 8"));
        assert!(json.contains("\"requests\": 4"));
        assert_eq!(json.matches("\"scenario\"").count(), 2);
    }

    #[test]
    fn serving_record_quantiles() {
        let latencies: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let r = ServingBenchRecord::from_latencies("soak_cold", 64, 4, &latencies);
        assert_eq!(r.requests, 100);
        assert_eq!(r.p50_ns, 51.0);
        assert_eq!(r.p99_ns, 99.0);
        // Ordering of the input must not matter.
        let mut shuffled = latencies.clone();
        shuffled.reverse();
        let r2 = ServingBenchRecord::from_latencies("soak_cold", 64, 4, &shuffled);
        assert_eq!(r, r2);
    }

    #[test]
    fn serving_warm_restart_gate() {
        let mut report = ServingBenchReport::new(false, 2);
        report.push(ServingBenchRecord::from_latencies(
            "cold_start",
            1024,
            1,
            &[100_000.0],
        ));
        // No warm_start pair yet: the gate must fail, not vacuously pass.
        assert!(report.gate_warm_restart(1024, 5.0).is_err());
        report.push(ServingBenchRecord::from_latencies(
            "warm_start",
            1024,
            1,
            &[10_000.0],
        ));
        assert!(report.gate_warm_restart(1024, 5.0).is_ok());
        let err = report.gate_warm_restart(1024, 20.0).unwrap_err();
        assert!(err.contains("warm restart n=1024"), "{err}");
        assert!(err.contains("10.00x < 20.00x"), "{err}");
        // Sub-threshold sizes are exempt.
        assert!(report.gate_warm_restart(2048, 5.0).is_err());
    }

    #[test]
    fn large_domain_report_json_schema() {
        let mut report = LargeDomainReport::new(true, 4);
        report.push(LargeDomainRecord::measured(
            "structured",
            65536,
            1024,
            1000.0,
            4000.0,
        ));
        report.push(LargeDomainRecord::skipped("dense", 65536, 1024));
        let json = report.to_json();
        assert!(json.contains("\"format\": \"mm-bench/large-domain-v1\""));
        assert!(json.contains("\"quick\": true"));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"scenario\": \"structured\""));
        assert!(json.contains("\"n\": 65536"));
        assert!(json.contains("\"queries\": 1024"));
        assert!(json.contains("\"total_ns\": 5000.0"));
        // Skipped rows stay in the artifact with null timings.
        assert!(json.contains("\"skipped\": true"));
        assert!(json.contains("\"select_ns\": null"), "{json}");
        assert_eq!(json.matches("\"scenario\"").count(), 2);
    }

    #[test]
    fn large_domain_gate() {
        let mut report = LargeDomainReport::new(true, 1);
        // Structured completes the headline size but no dense pair exists
        // yet: the comparison clause must fail, not vacuously pass.
        report.push(LargeDomainRecord::measured(
            "structured",
            65536,
            1024,
            1_000.0,
            50_000.0,
        ));
        report.push(LargeDomainRecord::skipped("dense", 65536, 1024));
        assert!(report.gate(4096, 65536).is_err());
        // A winning pair at n >= min_n satisfies both clauses.
        report.push(LargeDomainRecord::measured(
            "structured",
            4096,
            1024,
            1_000.0,
            10_000.0,
        ));
        report.push(LargeDomainRecord::measured(
            "dense", 4096, 1024, 500_000.0, 900_000.0,
        ));
        assert!(report.gate(4096, 65536).is_ok());
        // Small-n dense wins are exempt (below min_n).
        report.push(LargeDomainRecord::measured(
            "structured",
            1024,
            1024,
            1_000.0,
            10_000.0,
        ));
        report.push(LargeDomainRecord::measured("dense", 1024, 1024, 10.0, 20.0));
        assert!(report.gate(4096, 65536).is_ok());
        // A losing large-n pair trips the gate with a description.
        report.push(LargeDomainRecord::measured(
            "structured",
            8192,
            1024,
            1_000.0,
            999_000.0,
        ));
        report.push(LargeDomainRecord::measured(
            "dense", 8192, 1024, 100.0, 900.0,
        ));
        let err = report.gate(4096, 65536).unwrap_err();
        assert!(err.contains("n=8192"), "{err}");
        // A skipped headline size fails the completion clause.
        let mut incomplete = LargeDomainReport::new(true, 1);
        incomplete.push(LargeDomainRecord::skipped("structured", 65536, 1024));
        let err = incomplete.gate(4096, 65536).unwrap_err();
        assert!(err.contains("structured n=65536"), "{err}");
    }

    #[test]
    fn batch_record_speedup_edge_cases() {
        let r = BatchBenchRecord::new("s", 4, 1, 0.0, 100.0);
        assert!(r.speedup.is_infinite());
        let json = BatchBenchReport {
            quick: false,
            records: vec![r],
        }
        .to_json();
        assert!(json.contains("\"speedup\": null"), "{json}");
    }

    #[test]
    fn batch_report_gate() {
        let mut report = BatchBenchReport::new(true);
        // K = 1 is exempt from the gate regardless of its speedup.
        report.push(BatchBenchRecord::new("engine", 256, 1, 100.0, 80.0));
        report.push(BatchBenchRecord::new("engine", 256, 8, 100.0, 150.0));
        assert!(report.gate(8, 1.0).is_ok());
        // A losing K = 64 record trips the gate with a description.
        report.push(BatchBenchRecord::new("engine", 1024, 64, 100.0, 90.0));
        let err = report.gate(8, 1.0).unwrap_err();
        assert!(err.contains("engine n=1024 k=64"), "{err}");
        assert!(err.contains("0.90x"), "{err}");
        // NaN speedups must fail, not pass, the gate.
        let nan = BatchBenchReport {
            quick: false,
            records: vec![BatchBenchRecord {
                scenario: "s".into(),
                n: 1,
                k: 8,
                batched_ns_per_op: f64::NAN,
                baseline_ns_per_op: f64::NAN,
                speedup: f64::NAN,
            }],
        };
        assert!(nan.gate(8, 1.0).is_err());
    }
}
