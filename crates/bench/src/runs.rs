//! Shared experiment plumbing for the reproduction binaries.

use mm_core::bounds::{rms_error_bound, workload_eigenvalues};
use mm_core::error::rms_workload_error;
use mm_core::{eigen_design, EigenDesignOptions, PrivacyParams};
use mm_linalg::Matrix;
use mm_strategies::Strategy;
use mm_workload::{Domain, Workload};
use std::time::Instant;

/// The Fig. 3 family of domains for a target cell count `n` (a power of two):
/// one-dimensional, two-, three-, four-dimensional and all-binary splits.
///
/// For `n = 2048` this reproduces the paper's `[2048]`, `[64·32]`,
/// `[16·16·8]`, `[8·8·8·4]` and `[2¹¹]`.
pub fn figure3_domains(n: usize) -> Vec<Domain> {
    let bits = (n.max(2) as f64).log2().floor() as usize;
    let n = 1usize << bits;
    let split = |parts: usize| -> Domain {
        let base = bits / parts;
        let extra = bits % parts;
        let sizes: Vec<usize> = (0..parts)
            .map(|i| 1usize << (base + usize::from(i < extra)))
            .collect();
        Domain::new(&sizes)
    };
    let mut out = vec![Domain::one_dim(n)];
    if bits >= 2 {
        out.push(split(2));
    }
    if bits >= 3 {
        out.push(split(3));
    }
    if bits >= 4 {
        out.push(split(4));
    }
    if bits >= 5 {
        out.push(Domain::new(&vec![2usize; bits]));
    }
    out
}

/// Times a closure, returning its output and the elapsed seconds.
pub fn timed<T, F: FnOnce() -> T>(f: F) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// A named strategy (or a reason it is not applicable) for comparison rows.
pub struct Method {
    /// Display name ("Wavelet", "Eigen Design", …).
    pub name: String,
    /// The strategy, when applicable to the workload.
    pub strategy: Option<Strategy>,
}

impl Method {
    /// A method with a strategy.
    pub fn new(name: impl Into<String>, strategy: Strategy) -> Self {
        Method {
            name: name.into(),
            strategy: Some(strategy),
        }
    }

    /// A method that is not applicable for this workload.
    pub fn not_applicable(name: impl Into<String>) -> Self {
        Method {
            name: name.into(),
            strategy: None,
        }
    }
}

/// Per-workload comparison: RMS workload errors of all methods plus the
/// singular value lower bound.
pub struct Comparison {
    /// `(method name, rms error)` for each applicable method.
    pub errors: Vec<(String, f64)>,
    /// The Thm. 2 lower bound on the RMS error.
    pub lower_bound: f64,
}

impl Comparison {
    /// Evaluates all methods on a workload gram matrix.
    pub fn evaluate(
        gram: &Matrix,
        query_count: usize,
        privacy: &PrivacyParams,
        methods: &[Method],
    ) -> Self {
        let eigenvalues = workload_eigenvalues(gram).expect("valid gram matrix");
        let lower_bound = rms_error_bound(&eigenvalues, query_count, privacy);
        let errors = methods
            .iter()
            .filter_map(|m| {
                m.strategy.as_ref().map(|s| {
                    let e =
                        rms_workload_error(gram, query_count, s, privacy).unwrap_or(f64::INFINITY);
                    (m.name.clone(), e)
                })
            })
            .collect();
        Comparison {
            errors,
            lower_bound,
        }
    }

    /// The error of the named method.
    pub fn error_of(&self, name: &str) -> Option<f64> {
        self.errors.iter().find(|(n, _)| n == name).map(|(_, e)| *e)
    }

    /// Best and worst error among methods other than `reference`.
    pub fn best_and_worst_excluding(&self, reference: &str) -> Option<(f64, f64)> {
        let others: Vec<f64> = self
            .errors
            .iter()
            .filter(|(n, _)| n != reference)
            .map(|(_, e)| *e)
            .collect();
        if others.is_empty() {
            return None;
        }
        let best = others.iter().cloned().fold(f64::INFINITY, f64::min);
        let worst = others.iter().cloned().fold(0.0_f64, f64::max);
        Some((best, worst))
    }
}

/// Runs the Eigen-Design algorithm on a workload and returns its strategy,
/// using the full-accuracy solver for small problems and the faster settings
/// for large ones.
pub fn eigen_strategy_for<W: Workload + ?Sized>(workload: &W) -> Strategy {
    let opts = if workload.dim() > 1024 {
        EigenDesignOptions::fast()
    } else {
        EigenDesignOptions::default()
    };
    eigen_design(&workload.gram(), &opts)
        .expect("eigen design succeeds on non-degenerate workloads")
        .strategy
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_strategies::identity::identity_strategy;
    use mm_strategies::wavelet::wavelet_1d;
    use mm_workload::range::AllRangeWorkload;

    #[test]
    fn figure3_domains_paper_scale() {
        let domains = figure3_domains(2048);
        let rendered: Vec<String> = domains.iter().map(|d| d.to_string()).collect();
        assert_eq!(
            rendered,
            vec![
                "[2048]",
                "[64·32]",
                "[16·16·8]",
                "[8·8·8·4]",
                "[2·2·2·2·2·2·2·2·2·2·2]"
            ]
        );
        for d in &domains {
            assert_eq!(d.n_cells(), 2048);
        }
    }

    #[test]
    fn figure3_domains_quick_scale() {
        let domains = figure3_domains(256);
        assert!(domains.iter().all(|d| d.n_cells() == 256));
        assert_eq!(domains[1].sizes(), &[16, 16]);
        assert_eq!(domains[2].sizes(), &[8, 8, 4]);
        assert_eq!(domains[3].sizes(), &[4, 4, 4, 4]);
    }

    #[test]
    fn comparison_evaluates_methods() {
        let w = AllRangeWorkload::new(Domain::new(&[16]));
        let g = w.gram();
        let cmp = Comparison::evaluate(
            &g,
            w.query_count(),
            &PrivacyParams::paper_default(),
            &[
                Method::new("Identity", identity_strategy(16)),
                Method::new("Wavelet", wavelet_1d(16)),
                Method::not_applicable("Fourier"),
            ],
        );
        assert_eq!(cmp.errors.len(), 2);
        assert!(cmp.error_of("Wavelet").unwrap() < cmp.error_of("Identity").unwrap());
        assert!(cmp.lower_bound <= cmp.error_of("Wavelet").unwrap());
        let (best, worst) = cmp.best_and_worst_excluding("Eigen Design").unwrap();
        assert!(best <= worst);
    }

    #[test]
    fn timed_returns_output() {
        let (v, secs) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
