//! Reproduces the Sec. 3.5 observations for the ε-(L1) matrix mechanism:
//! weighting the Wavelet basis improves all-range / random-range workloads and
//! weighting the Fourier basis improves low-order marginals, under Laplace
//! noise calibrated to L1 sensitivity.

use mm_bench::report::fmt;
use mm_bench::runs::figure3_domains;
use mm_bench::{ExperimentTable, RunConfig};
use mm_core::error::rms_workload_error_l1;
use mm_core::pure_dp::{l1_weighted_design_strategy, PureDpOptions};
use mm_core::PrivacyParams;
use mm_strategies::fourier::fourier_strategy;
use mm_strategies::wavelet::{haar_matrix, wavelet_1d};
use mm_workload::marginal::{MarginalKind, MarginalWorkload};
use mm_workload::range::{AllRangeWorkload, RandomRangeWorkload};
use mm_workload::{Domain, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = RunConfig::from_args();
    let privacy = PrivacyParams::pure(cfg.epsilon);
    let n = cfg.cells;

    let mut table = ExperimentTable::new(
        format!(
            "Sec. 3.5 — epsilon-DP (L1) query weighting ({n} cells, eps={})",
            cfg.epsilon
        ),
        &["workload", "basis", "unweighted", "weighted", "improvement"],
    );

    // All 1D ranges with the wavelet basis.
    {
        let w = AllRangeWorkload::new(Domain::one_dim(n));
        let g = w.gram();
        let plain = rms_workload_error_l1(&g, w.query_count(), &wavelet_1d(n), &privacy).unwrap();
        let weighted =
            l1_weighted_design_strategy("w", &g, &haar_matrix(n), &PureDpOptions::default())
                .unwrap();
        let werr =
            rms_workload_error_l1(&g, w.query_count(), &weighted.strategy, &privacy).unwrap();
        table.push_row(vec![
            "all 1D ranges".into(),
            "wavelet".into(),
            fmt(plain),
            fmt(werr),
            fmt(plain / werr),
        ]);
    }

    // Random ranges with the wavelet basis.
    {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let w = RandomRangeWorkload::sample(
            Domain::one_dim(n),
            if cfg.paper_scale { 2000 } else { 300 },
            &mut rng,
        );
        let g = w.gram();
        let plain = rms_workload_error_l1(&g, w.query_count(), &wavelet_1d(n), &privacy).unwrap();
        let weighted =
            l1_weighted_design_strategy("w", &g, &haar_matrix(n), &PureDpOptions::default())
                .unwrap();
        let werr =
            rms_workload_error_l1(&g, w.query_count(), &weighted.strategy, &privacy).unwrap();
        table.push_row(vec![
            "random 1D ranges".into(),
            "wavelet".into(),
            fmt(plain),
            fmt(werr),
            fmt(plain / werr),
        ]);
    }

    // Low-order marginals with the Fourier basis.
    {
        let domain = figure3_domains(n)
            .into_iter()
            .find(|d| d.num_attributes() == 3)
            .unwrap_or_else(|| Domain::new(&[8, 8, 4]));
        let w = MarginalWorkload::up_to_k_way(domain.clone(), 2, MarginalKind::Point);
        let g = w.gram();
        let fourier = fourier_strategy(&w);
        let plain = rms_workload_error_l1(&g, w.query_count(), &fourier, &privacy).unwrap();
        let design = fourier
            .matrix()
            .cloned()
            .expect("fourier strategy is explicit");
        let weighted =
            l1_weighted_design_strategy("f", &g, &design, &PureDpOptions::default()).unwrap();
        let werr =
            rms_workload_error_l1(&g, w.query_count(), &weighted.strategy, &privacy).unwrap();
        table.push_row(vec![
            format!("low-order marginals on {domain}"),
            "fourier".into(),
            fmt(plain),
            fmt(werr),
            fmt(plain / werr),
        ]);
    }

    table.emit(&cfg);
    println!(
        "Expected shape (paper): weighting improves the wavelet basis by ~1.1x (all ranges)\n\
         and ~1.5x (random ranges), and the Fourier basis by ~1.6x on low-order marginals."
    );
}
