//! Reproduces Example 4 / Fig. 2: errors of the identity, wavelet and adaptive
//! strategies on the 8-cell student workload of Fig. 1, against the lower bound.

use mm_bench::report::fmt;
use mm_bench::{ExperimentTable, RunConfig};
use mm_core::bounds::{rms_error_bound, workload_eigenvalues};
use mm_core::error::rms_workload_error;
use mm_core::{eigen_design, EigenDesignOptions};
use mm_strategies::identity::identity_strategy;
use mm_strategies::wavelet::wavelet_1d;
use mm_strategies::Strategy;
use mm_workload::example::fig1_workload;
use mm_workload::Workload;

fn main() {
    let cfg = RunConfig::from_args();
    let privacy = cfg.privacy();
    let w = fig1_workload();
    let gram = w.gram();
    let m = w.query_count();

    let eigen = eigen_design(&gram, &EigenDesignOptions::default()).expect("eigen design");
    let workload_as_strategy =
        Strategy::from_matrix("workload as strategy", w.to_matrix().unwrap());

    let bound = rms_error_bound(&workload_eigenvalues(&gram).unwrap(), m, &privacy);
    let mut table = ExperimentTable::new(
        format!(
            "Example 4 / Fig. 2 — Fig. 1 student workload (8 cells), eps={}, delta={}",
            cfg.epsilon, cfg.delta
        ),
        &["strategy", "rms workload error", "ratio to lower bound"],
    );
    let identity = identity_strategy(8);
    let wavelet = wavelet_1d(8);
    let entries: Vec<(&str, &Strategy)> = vec![
        ("workload as strategy", &workload_as_strategy),
        ("identity", &identity),
        ("wavelet", &wavelet),
        ("eigen design (adaptive)", &eigen.strategy),
    ];
    for (name, strategy) in entries {
        let err = rms_workload_error(&gram, m, strategy, &privacy).unwrap();
        table.push_row(vec![name.to_string(), fmt(err), fmt(err / bound)]);
    }
    table.push_row(vec![
        "lower bound (Thm. 2)".to_string(),
        fmt(bound),
        "1.000".to_string(),
    ]);
    table.emit(&cfg);

    println!("Adaptive strategy selected by the Eigen-Design algorithm (rows):");
    if let Some(matrix) = eigen.strategy.matrix() {
        for r in 0..matrix.rows().min(12) {
            let row: Vec<String> = matrix.row(r).iter().map(|v| format!("{v:6.2}")).collect();
            println!("  [{}]", row.join(", "));
        }
    }
    println!(
        "\nPaper reference (same ordering, absolute scale differs by a constant):\n\
         workload-as-strategy 47.78, identity 45.36, wavelet 34.62, adaptive 29.79, bound 29.18"
    );
}
