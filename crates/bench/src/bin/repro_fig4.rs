//! Reproduces Fig. 4: quality/efficiency trade-off of the two performance
//! optimizations — eigen-query separation (sweeping the group size) and the
//! principal-vector optimization (sweeping the number of principal vectors) —
//! on the all-1D-range workload and an all-2-way-marginal workload, against
//! the full Eigen-Design strategy, the best prior strategy and the lower bound.

use mm_bench::report::fmt;
use mm_bench::runs::{figure3_domains, timed, Comparison, Method};
use mm_bench::{ExperimentTable, RunConfig};
use mm_core::principal::{principal_vectors, PrincipalOptions};
use mm_core::separation::{eigen_separation, SeparationOptions};
use mm_core::{eigen_design, EigenDesignOptions};
use mm_strategies::datacube::datacube_strategy;
use mm_strategies::wavelet::wavelet_1d;
use mm_workload::marginal::{MarginalKind, MarginalWorkload};
use mm_workload::range::AllRangeWorkload;
use mm_workload::{Domain, Workload};

fn main() {
    let cfg = RunConfig::from_args();
    // The paper uses 8192 cells; the quick default keeps the same sweep shape
    // at the configured size.
    let n = if cfg.paper_scale { 8192 } else { cfg.cells };
    let privacy = cfg.privacy();

    let mut table = ExperimentTable::new(
        format!("Fig. 4 — performance optimizations ({n} cells)"),
        &[
            "workload",
            "method",
            "parameter",
            "workload error",
            "time (s)",
            "error vs full",
        ],
    );

    // --- All 1D ranges. ---
    {
        let w = AllRangeWorkload::new(Domain::one_dim(n));
        let gram = w.gram();
        let m = w.query_count();
        let (full, full_time) = timed(|| eigen_design(&gram, &EigenDesignOptions::fast()).unwrap());
        let baseline = Comparison::evaluate(
            &gram,
            m,
            &privacy,
            &[
                Method::new("Wavelet", wavelet_1d(n)),
                Method::new("Eigen Design", full.strategy.clone()),
            ],
        );
        let full_err = baseline.error_of("Eigen Design").unwrap();
        table.push_row(vec![
            "all 1D ranges".into(),
            "Eigen Design (full)".into(),
            "-".into(),
            fmt(full_err),
            fmt(full_time),
            "1.000".into(),
        ]);
        table.push_row(vec![
            "all 1D ranges".into(),
            "Wavelet".into(),
            "-".into(),
            fmt(baseline.error_of("Wavelet").unwrap()),
            "-".into(),
            fmt(baseline.error_of("Wavelet").unwrap() / full_err),
        ]);
        table.push_row(vec![
            "all 1D ranges".into(),
            "Lower bound".into(),
            "-".into(),
            fmt(baseline.lower_bound),
            "-".into(),
            fmt(baseline.lower_bound / full_err),
        ]);
        for group_size in [4usize, 16, 64, 256, 1024].iter().filter(|&&g| g <= n) {
            let (res, secs) = timed(|| {
                eigen_separation(&gram, &SeparationOptions::with_group_size(*group_size)).unwrap()
            });
            let err =
                mm_core::error::rms_workload_error(&gram, m, &res.strategy, &privacy).unwrap();
            table.push_row(vec![
                "all 1D ranges".into(),
                "Eigen separation".into(),
                format!("group size {group_size}"),
                fmt(err),
                fmt(secs),
                fmt(err / full_err),
            ]);
        }
        for pct in [25usize, 13, 6, 3, 2] {
            let count = ((n * pct) / 100).max(1);
            let (res, secs) = timed(|| {
                principal_vectors(&gram, &PrincipalOptions::with_principal_count(count)).unwrap()
            });
            let err =
                mm_core::error::rms_workload_error(&gram, m, &res.strategy, &privacy).unwrap();
            table.push_row(vec![
                "all 1D ranges".into(),
                "Principal vectors".into(),
                format!("{count} ({pct}%)"),
                fmt(err),
                fmt(secs),
                fmt(err / full_err),
            ]);
        }
    }

    // --- All 2-way marginals on a 3-attribute split of the same cell count. ---
    {
        let domain = figure3_domains(n)
            .into_iter()
            .find(|d| d.num_attributes() == 3)
            .unwrap_or_else(|| Domain::new(&[n.max(8) / 8, 4, 2]));
        let w = MarginalWorkload::all_k_way(domain.clone(), 2, MarginalKind::Point);
        let gram = w.gram();
        let m = w.query_count();
        let (full, full_time) = timed(|| eigen_design(&gram, &EigenDesignOptions::fast()).unwrap());
        let baseline = Comparison::evaluate(
            &gram,
            m,
            &privacy,
            &[
                Method::new("DataCube", datacube_strategy(&w)),
                Method::new("Eigen Design", full.strategy.clone()),
            ],
        );
        let full_err = baseline.error_of("Eigen Design").unwrap();
        table.push_row(vec![
            format!("2-way marginals {domain}"),
            "Eigen Design (full)".into(),
            "-".into(),
            fmt(full_err),
            fmt(full_time),
            "1.000".into(),
        ]);
        table.push_row(vec![
            format!("2-way marginals {domain}"),
            "DataCube".into(),
            "-".into(),
            fmt(baseline.error_of("DataCube").unwrap()),
            "-".into(),
            fmt(baseline.error_of("DataCube").unwrap() / full_err),
        ]);
        for group_size in [4usize, 16, 64, 256].iter().filter(|&&g| g <= n) {
            let (res, secs) = timed(|| {
                eigen_separation(&gram, &SeparationOptions::with_group_size(*group_size)).unwrap()
            });
            let err =
                mm_core::error::rms_workload_error(&gram, m, &res.strategy, &privacy).unwrap();
            table.push_row(vec![
                format!("2-way marginals {domain}"),
                "Eigen separation".into(),
                format!("group size {group_size}"),
                fmt(err),
                fmt(secs),
                fmt(err / full_err),
            ]);
        }
        for pct in [25usize, 13, 6, 3, 2] {
            let count = ((n * pct) / 100).max(1);
            let (res, secs) = timed(|| {
                principal_vectors(&gram, &PrincipalOptions::with_principal_count(count)).unwrap()
            });
            let err =
                mm_core::error::rms_workload_error(&gram, m, &res.strategy, &privacy).unwrap();
            table.push_row(vec![
                format!("2-way marginals {domain}"),
                "Principal vectors".into(),
                format!("{count} ({pct}%)"),
                fmt(err),
                fmt(secs),
                fmt(err / full_err),
            ]);
        }
    }

    table.emit(&cfg);
    println!(
        "Expected shape (paper): both optimizations stay within ~12% of the full\n\
         Eigen-Design error while being much faster; separation favours ranges,\n\
         principal vectors favour marginals."
    );
}
