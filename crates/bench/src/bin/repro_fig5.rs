//! Reproduces Fig. 5: the choice of design queries.  Program 1 is solved with
//! the Wavelet matrix, the (generalised) Fourier basis and the eigen-queries
//! as design sets, on 1D range and low-order marginal workloads, both in their
//! canonical form and with permuted cell conditions.

use mm_bench::report::fmt;
use mm_bench::runs::figure3_domains;
use mm_bench::{ExperimentTable, RunConfig};
use mm_core::bounds::{rms_error_bound, workload_eigenvalues};
use mm_core::design_set::{weighted_design_strategy, DesignWeightingOptions};
use mm_core::error::rms_workload_error;
use mm_core::{eigen_design, EigenDesignOptions};
use mm_linalg::Matrix;
use mm_strategies::fourier::fourier_strategy;
use mm_strategies::wavelet::haar_matrix;
use mm_workload::marginal::{MarginalKind, MarginalWorkload};
use mm_workload::range::AllRangeWorkload;
use mm_workload::transform::{seeded_permutation, PermutedWorkload};
use mm_workload::{Domain, Workload};
use mm_linalg::ops;

fn main() {
    let cfg = RunConfig::from_args();
    let privacy = cfg.privacy();
    let n = cfg.cells;

    let mut table = ExperimentTable::new(
        format!("Fig. 5 — comparison of design query sets ({n} cells)"),
        &["workload", "Wavelet design", "Fourier design", "Eigen design", "Lower Bound"],
    );

    // Design matrices over the 1D domain.
    let wavelet_design_1d = haar_matrix(n);
    // 1D ranges, canonical and permuted.
    {
        let w = AllRangeWorkload::new(Domain::one_dim(n));
        run_row(&mut table, &cfg, &privacy, &format!("1D range on [{n}]"), &w.gram(), w.query_count(), Some(&wavelet_design_1d), None);

        let perm = seeded_permutation(n, cfg.seed);
        let wp = PermutedWorkload::new(AllRangeWorkload::new(Domain::one_dim(n)), perm);
        run_row(
            &mut table,
            &cfg,
            &privacy,
            &format!("1D range on [{n}] (permuted)"),
            &wp.gram(),
            wp.query_count(),
            Some(&wavelet_design_1d),
            None,
        );
    }

    // Low-order marginals on the 2-attribute split, canonical and permuted.
    {
        let domain = figure3_domains(n)
            .into_iter()
            .find(|d| d.num_attributes() == 2)
            .unwrap_or_else(|| Domain::new(&[n / 2, 2]));
        let w = MarginalWorkload::up_to_k_way(domain.clone(), 2, MarginalKind::Point);
        let wavelet_design = ops::kron(
            &haar_matrix(domain.size(0)),
            &haar_matrix(domain.size(1)),
        );
        let fourier_design = fourier_strategy(&w).matrix().cloned();
        run_row(
            &mut table,
            &cfg,
            &privacy,
            &format!("marginals (≤2-way) on {domain}"),
            &w.gram(),
            w.query_count(),
            Some(&wavelet_design),
            fourier_design.as_ref(),
        );
        let perm = seeded_permutation(domain.n_cells(), cfg.seed + 1);
        let wp = PermutedWorkload::new(
            MarginalWorkload::up_to_k_way(domain.clone(), 2, MarginalKind::Point),
            perm,
        );
        run_row(
            &mut table,
            &cfg,
            &privacy,
            &format!("marginals (≤2-way) on {domain} (permuted)"),
            &wp.gram(),
            wp.query_count(),
            Some(&wavelet_design),
            fourier_design.as_ref(),
        );
    }

    table.emit(&cfg);
    println!(
        "Expected shape (paper): all design sets perform comparably on the canonical\n\
         workloads, but wavelet/Fourier design sets degrade sharply (several times worse)\n\
         under permuted cell conditions while the eigen-queries are unaffected."
    );
}

#[allow(clippy::too_many_arguments)]
fn run_row(
    table: &mut ExperimentTable,
    _cfg: &RunConfig,
    privacy: &mm_core::PrivacyParams,
    name: &str,
    gram: &Matrix,
    m: usize,
    wavelet_design: Option<&Matrix>,
    fourier_design: Option<&Matrix>,
) {
    let opts = DesignWeightingOptions::default();
    let err_for_design = |design: Option<&Matrix>| -> String {
        match design {
            Some(d) => match weighted_design_strategy("design", gram, d, &opts) {
                Ok(res) => fmt(rms_workload_error(gram, m, &res.strategy, privacy).unwrap_or(f64::NAN)),
                Err(_) => "-".to_string(),
            },
            None => "-".to_string(),
        }
    };
    let wavelet_err = err_for_design(wavelet_design);
    let fourier_err = err_for_design(fourier_design);
    let eigen = eigen_design(gram, &EigenDesignOptions::default()).unwrap();
    let eigen_err = rms_workload_error(gram, m, &eigen.strategy, privacy).unwrap();
    let bound = rms_error_bound(&workload_eigenvalues(gram).unwrap(), m, privacy);
    table.push_row(vec![
        name.to_string(),
        wavelet_err,
        fourier_err,
        fmt(eigen_err),
        fmt(bound),
    ]);
}
