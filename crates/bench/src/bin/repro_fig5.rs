//! Reproduces Fig. 5: the choice of design queries.  Program 1 is solved with
//! the Wavelet matrix, the (generalised) Fourier basis and the eigen-queries
//! as design sets, on 1D range and low-order marginal workloads, both in their
//! canonical form and with permuted cell conditions.
//!
//! Since the engine redesign this comparison is literally a selector swap:
//! each column is one `Engine` built with a different `StrategySelector`, and
//! every engine answers through the same `select`/`expected_rms_error` path.

use mm_bench::report::fmt;
use mm_bench::runs::figure3_domains;
use mm_bench::{ExperimentTable, RunConfig};
use mm_core::bounds::{rms_error_bound, workload_eigenvalues};
use mm_core::engine::{EigenDesignSelector, Engine, MatrixDesignSelector, StrategySelector};
use mm_core::PrivacyParams;
use mm_linalg::ops;
use mm_strategies::fourier::fourier_strategy;
use mm_strategies::wavelet::haar_matrix;
use mm_workload::marginal::{MarginalKind, MarginalWorkload};
use mm_workload::range::AllRangeWorkload;
use mm_workload::transform::{seeded_permutation, PermutedWorkload};
use mm_workload::{Domain, Workload};

fn main() {
    let cfg = RunConfig::from_args();
    let privacy = cfg.privacy();
    let n = cfg.cells;

    let mut table = ExperimentTable::new(
        format!("Fig. 5 — comparison of design query sets ({n} cells)"),
        &[
            "workload",
            "Wavelet design",
            "Fourier design",
            "Eigen design",
            "Lower Bound",
        ],
    );

    // 1D ranges, canonical and permuted.  One engine per design set; the
    // wavelet design is the 1D Haar matrix, the Fourier column does not apply.
    {
        let wavelet = MatrixDesignSelector::new("wavelet", haar_matrix(n));
        let w = AllRangeWorkload::new(Domain::one_dim(n));
        run_row(
            &mut table,
            &privacy,
            &format!("1D range on [{n}]"),
            &w,
            Some(wavelet.clone()),
            None,
        );

        let perm = seeded_permutation(n, cfg.seed);
        let wp = PermutedWorkload::new(AllRangeWorkload::new(Domain::one_dim(n)), perm);
        run_row(
            &mut table,
            &privacy,
            &format!("1D range on [{n}] (permuted)"),
            &wp,
            Some(wavelet),
            None,
        );
    }

    // Low-order marginals on the 2-attribute split, canonical and permuted.
    {
        let domain = figure3_domains(n)
            .into_iter()
            .find(|d| d.num_attributes() == 2)
            .unwrap_or_else(|| Domain::new(&[n / 2, 2]));
        let w = MarginalWorkload::up_to_k_way(domain.clone(), 2, MarginalKind::Point);
        let wavelet = MatrixDesignSelector::new(
            "wavelet (kron)",
            ops::kron(&haar_matrix(domain.size(0)), &haar_matrix(domain.size(1))),
        );
        let fourier = fourier_strategy(&w)
            .matrix()
            .cloned()
            .map(|m| MatrixDesignSelector::new("fourier", m));
        run_row(
            &mut table,
            &privacy,
            &format!("marginals (≤2-way) on {domain}"),
            &w,
            Some(wavelet.clone()),
            fourier.clone(),
        );
        let perm = seeded_permutation(domain.n_cells(), cfg.seed + 1);
        let wp = PermutedWorkload::new(
            MarginalWorkload::up_to_k_way(domain.clone(), 2, MarginalKind::Point),
            perm,
        );
        run_row(
            &mut table,
            &privacy,
            &format!("marginals (≤2-way) on {domain} (permuted)"),
            &wp,
            Some(wavelet),
            fourier,
        );
    }

    table.emit(&cfg);
    println!(
        "Expected shape (paper): all design sets perform comparably on the canonical\n\
         workloads, but wavelet/Fourier design sets degrade sharply (several times worse)\n\
         under permuted cell conditions while the eigen-queries are unaffected."
    );
}

/// Builds one engine per design-set selector, selects through each, and
/// reports the predicted RMS error per Prop. 4.
fn run_row<W: Workload>(
    table: &mut ExperimentTable,
    privacy: &PrivacyParams,
    name: &str,
    workload: &W,
    wavelet: Option<MatrixDesignSelector>,
    fourier: Option<MatrixDesignSelector>,
) {
    let engine_for = |selector: Box<dyn StrategySelector>| -> Engine {
        Engine::builder()
            .privacy(*privacy)
            .selector_arc(selector.into())
            .build()
            .expect("gaussian parameters are valid for every selector")
    };
    let err_for = |selector: Option<Box<dyn StrategySelector>>| -> String {
        match selector {
            Some(sel) => {
                let engine = engine_for(sel);
                match engine.select(workload) {
                    Ok((strategy, _, _)) => fmt(engine
                        .expected_rms_error(workload, &strategy, privacy)
                        .unwrap_or(f64::NAN)),
                    Err(_) => "-".to_string(),
                }
            }
            None => "-".to_string(),
        }
    };
    let wavelet_err = err_for(wavelet.map(|s| Box::new(s) as Box<dyn StrategySelector>));
    let fourier_err = err_for(fourier.map(|s| Box::new(s) as Box<dyn StrategySelector>));
    let eigen_engine = engine_for(Box::new(EigenDesignSelector::new()));
    let (eigen_strategy, _, _) = eigen_engine.select(workload).expect("eigen design");
    let eigen_err = eigen_engine
        .expected_rms_error(workload, &eigen_strategy, privacy)
        .expect("error evaluation");
    let gram = workload.gram();
    let bound = rms_error_bound(
        &workload_eigenvalues(&gram).unwrap(),
        workload.query_count(),
        privacy,
    );
    table.push_row(vec![
        name.to_string(),
        wavelet_err,
        fourier_err,
        fmt(eigen_err),
        fmt(bound),
    ]);
}
