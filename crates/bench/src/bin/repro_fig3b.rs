//! Reproduces Fig. 3(b): average relative error on range workloads over the
//! census-like and adult-like datasets, sweeping ε, for Hierarchical, Wavelet
//! and the Eigen-Design strategy (selected on the unit-norm scaled workload,
//! Sec. 3.4).  Also prints the Table 1 dataset summary.

use mm_bench::report::fmt;
use mm_bench::runs::eigen_strategy_for;
use mm_bench::{ExperimentTable, RunConfig};
use mm_core::PrivacyParams;
use mm_data::relative_error::{average_relative_error, RelativeErrorOptions};
use mm_data::synthetic::{synthetic_histogram, SyntheticDataset};
use mm_data::DataVector;
use mm_strategies::hierarchical::binary_hierarchical;
use mm_strategies::wavelet::wavelet_strategy;
use mm_strategies::Strategy;
use mm_workload::range::{AllRangeWorkload, RandomRangeWorkload};
use mm_workload::{Domain, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn datasets(cfg: &RunConfig) -> Vec<SyntheticDataset> {
    if cfg.paper_scale {
        vec![
            mm_data::census_like(cfg.seed),
            mm_data::adult_like(cfg.seed),
        ]
    } else {
        // Quick scale: same shapes, smaller domains.
        vec![
            SyntheticDataset {
                name: "census-like (quick 8x8x8)".to_string(),
                data: synthetic_histogram(&Domain::new(&[8, 8, 8]), 1_500_000.0, 1.1, 4, cfg.seed),
            },
            SyntheticDataset {
                name: "adult-like (quick 4x8x4x2)".to_string(),
                data: synthetic_histogram(&Domain::new(&[4, 8, 4, 2]), 33_000.0, 1.0, 3, cfg.seed),
            },
        ]
    }
}

fn main() {
    let cfg = RunConfig::from_args();
    let epsilons = [0.1, 0.5, 1.0, 2.5];
    let sets = datasets(&cfg);

    let mut t1 = ExperimentTable::new("Table 1 — datasets", &["dataset", "dimension", "# tuples"]);
    for ds in &sets {
        t1.push_row(vec![
            ds.name.clone(),
            ds.data.domain().to_string(),
            format!("{}", ds.data.total() as u64),
        ]);
    }
    t1.emit(&cfg);

    let mut table = ExperimentTable::new(
        "Fig. 3(b) — average relative error on range workloads",
        &[
            "dataset",
            "workload",
            "epsilon",
            "Hierarchical",
            "Wavelet",
            "Eigen Design",
        ],
    );

    for ds in &sets {
        let domain = ds.data.domain().clone();
        let hierarchical = binary_hierarchical(&domain);
        let wavelet = wavelet_strategy(&domain);

        // All range: select the eigen strategy on the normalized workload.
        let all = AllRangeWorkload::new(domain.clone());
        let all_norm = AllRangeWorkload::normalized(domain.clone());
        let eigen_all = eigen_strategy_for(&all_norm);
        sweep(
            &mut table,
            &cfg,
            ds,
            "all range",
            &all,
            &hierarchical,
            &wavelet,
            &eigen_all,
            &epsilons,
        );

        // Random range.
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let count = if cfg.paper_scale { 2000 } else { 300 };
        let random = RandomRangeWorkload::sample(domain.clone(), count, &mut rng);
        let random_norm = RandomRangeWorkload::from_boxes(domain.clone(), random.boxes().to_vec())
            .into_normalized();
        let eigen_rand = eigen_strategy_for(&random_norm);
        sweep(
            &mut table,
            &cfg,
            ds,
            "random range",
            &random,
            &hierarchical,
            &wavelet,
            &eigen_rand,
            &epsilons,
        );
    }
    table.emit(&cfg);
    println!(
        "Expected shape (paper): Eigen Design achieves the lowest relative error at every\n\
         epsilon, by roughly 1.3x-1.5x over the best of Wavelet/Hierarchical."
    );
}

#[allow(clippy::too_many_arguments)]
fn sweep<W: Workload>(
    table: &mut ExperimentTable,
    cfg: &RunConfig,
    ds: &SyntheticDataset,
    workload_name: &str,
    workload: &W,
    hierarchical: &Strategy,
    wavelet: &Strategy,
    eigen: &Strategy,
    epsilons: &[f64],
) {
    let data: &DataVector = &ds.data;
    for &eps in epsilons {
        let privacy = PrivacyParams::new(eps, cfg.delta);
        let opts = RelativeErrorOptions {
            trials: cfg.trials,
            floor: 1.0,
            seed: cfg.seed,
        };
        let rel = |s: &Strategy| {
            average_relative_error(workload, s, data, &privacy, &opts)
                .map(|r| r.mean)
                .unwrap_or(f64::NAN)
        };
        table.push_row(vec![
            ds.name.clone(),
            workload_name.to_string(),
            format!("{eps}"),
            fmt(rel(hierarchical)),
            fmt(rel(wavelet)),
            fmt(rel(eigen)),
        ]);
    }
}
