//! Reproduces Table 2: error-reduction factors of the Eigen-Design strategy on
//! the alternative workloads — permuted 1D ranges, 1-way and 2-way range
//! marginals, the 1D CDF workload and uniformly sampled predicate queries —
//! relative to the best and worst applicable competitor, plus the ratio of the
//! eigen strategy's error to the Thm. 2 lower bound.

use mm_bench::report::fmt;
use mm_bench::runs::{eigen_strategy_for, figure3_domains, Comparison, Method};
use mm_bench::{ExperimentTable, RunConfig};
use mm_strategies::datacube::datacube_strategy;
use mm_strategies::fourier::fourier_strategy;
use mm_strategies::hierarchical::{binary_hierarchical, binary_hierarchical_1d};
use mm_strategies::wavelet::{wavelet_1d, wavelet_strategy};
use mm_workload::marginal::{MarginalKind, MarginalWorkload};
use mm_workload::predicate::RandomPredicateWorkload;
use mm_workload::prefix::PrefixWorkload;
use mm_workload::range::AllRangeWorkload;
use mm_workload::transform::{seeded_permutation, PermutedWorkload};
use mm_workload::{Domain, Workload};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let cfg = RunConfig::from_args();
    let privacy = cfg.privacy();
    let n = cfg.cells;
    let domains = figure3_domains(n);
    let domain_3d = domains
        .iter()
        .find(|d| d.num_attributes() == 3)
        .cloned()
        .unwrap_or_else(|| Domain::one_dim(n));

    let mut table = ExperimentTable::new(
        format!("Table 2 — alternative workloads ({n} cells)"),
        &[
            "workload",
            "Eigen Design",
            "best competitor",
            "worst competitor",
            "ratio best/eigen",
            "ratio worst/eigen",
            "eigen/bound",
        ],
    );

    // 1D ranges with permuted cell conditions: wavelet/hierarchical lose their
    // locality, the eigen strategy is invariant.
    {
        let permuted = PermutedWorkload::new(
            AllRangeWorkload::new(Domain::one_dim(n)),
            seeded_permutation(n, cfg.seed),
        );
        let methods = vec![
            Method::new("Wavelet", wavelet_1d(n)),
            Method::new("Hierarchical", binary_hierarchical_1d(n)),
            Method::new("Eigen Design", eigen_strategy_for(&permuted)),
        ];
        push(
            &mut table,
            "1D range (permuted)",
            &permuted,
            methods,
            &privacy,
        );
    }

    // 1-way and 2-way range marginals on the 3-attribute domain.
    for (name, k) in [
        ("1-way range marginal", 1usize),
        ("2-way range marginal", 2usize),
    ] {
        let w = MarginalWorkload::all_k_way(domain_3d.clone(), k, MarginalKind::Range);
        let point = MarginalWorkload::all_k_way(domain_3d.clone(), k, MarginalKind::Point);
        let methods = vec![
            Method::new("Wavelet", wavelet_strategy(&domain_3d)),
            Method::new("Hierarchical", binary_hierarchical(&domain_3d)),
            Method::new("Fourier", fourier_strategy(&point)),
            Method::new("DataCube", datacube_strategy(&point)),
            Method::new("Eigen Design", eigen_strategy_for(&w)),
        ];
        push(&mut table, name, &w, methods, &privacy);
    }

    // 1D CDF workload (the paper's one exception: the eigen advantage is marginal).
    {
        let w = PrefixWorkload::new(n);
        let methods = vec![
            Method::new("Wavelet", wavelet_1d(n)),
            Method::new("Hierarchical", binary_hierarchical_1d(n)),
            Method::new("Eigen Design", eigen_strategy_for(&w)),
        ];
        push(&mut table, "1D CDF", &w, methods, &privacy);
    }

    // Uniformly sampled predicate queries.
    {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let count = if cfg.paper_scale { 2000 } else { 500 };
        let w = RandomPredicateWorkload::sample(n, count, &mut rng);
        let methods = vec![
            Method::new("Wavelet", wavelet_1d(n)),
            Method::new("Hierarchical", binary_hierarchical_1d(n)),
            Method::new("Eigen Design", eigen_strategy_for(&w)),
        ];
        push(&mut table, "random predicate", &w, methods, &privacy);
    }

    table.emit(&cfg);
    println!(
        "Expected shape (paper): Eigen Design beats every competitor by >= 1.3x on all rows\n\
         except the 1D CDF workload, with large factors (up to ~13x) on permuted ranges,\n\
         and stays close to the lower bound."
    );
}

fn push<W: Workload + ?Sized>(
    table: &mut ExperimentTable,
    name: &str,
    workload: &W,
    methods: Vec<Method>,
    privacy: &mm_core::PrivacyParams,
) {
    let cmp = Comparison::evaluate(&workload.gram(), workload.query_count(), privacy, &methods);
    let eigen = cmp.error_of("Eigen Design").unwrap_or(f64::NAN);
    let (best, worst) = cmp
        .best_and_worst_excluding("Eigen Design")
        .unwrap_or((f64::NAN, f64::NAN));
    table.push_row(vec![
        name.to_string(),
        fmt(eigen),
        fmt(best),
        fmt(worst),
        fmt(best / eigen),
        fmt(worst / eigen),
        fmt(eigen / cmp.lower_bound),
    ]);
}
